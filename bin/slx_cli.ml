(* The slx command-line interface.

   slx figure1 --object consensus|tm|s-prime [--procs N] [--steps N] [--json]
       Regenerate a panel of Figure 1 (or the Section 5.3 grid).

   slx live-explore --impl register|cas|selfish --property obstruction|l,k
       [--depth N] [--crashes N] [--json]
       Search the bounded configuration graph for a fair,
       progress-free cycle (a pumpable lasso certificate).

   slx game --impl register|cas --adversary lockstep|tie [--steps N]
       Play a consensus exclusion game and report the verdict.

   slx tm-game --impl i12|agp --adversary local-progress|three-way
       Play a TM exclusion game.

   slx theorems
       Machine-check the Theorem 4.4 micro-universes and the Theorem
       4.9 constructions.

   slx stats --trace FILE
       Replay a trace recorded with --trace into summary histograms.

   slx lint [PATHS] [--ci] [--json] [--root DIR] [--waivers FILE]
       Statically check model sources (escape/determinism/footprint
       families); nonzero exit on any unwaived finding.

   slx audit [--ci] [--oracle] [--lint] [--json] [--group G] [--case NAME]
       Sweep every registered implementation's bounded schedule tree
       with the conflict-soundness sanitizer armed; nonzero exit on
       any footprint violation.  --lint folds the static sweep in.

   slx serve --port N --workers N --store FILE
       Run the JSON-over-HTTP verification service: warm answers from
       the store, shards cold queries across worker processes.

   slx query [--kind explore|live] [--impl I] [--wait] [--port N] ...
       Submit a query to a running server (or --status ID / --stats /
       --shutdown).

   The exploration subcommands additionally take --trace FILE (record
   a Chrome trace-event JSON file, loadable in Perfetto),
   --progress[=SECS] (live heartbeats to stderr), and --store FILE
   (answer through the persistent verdict store: warm hits, frontier
   resumes, and recording — see doc/model.md section 11).  *)

open Cmdliner
open Slx_liveness
open Slx_core
module Obs = Slx_obs.Obs
module Progress = Slx_obs.Progress
module Json = Slx_obs.Json
module Trace_export = Slx_obs.Trace_export
module Vstore = Slx_store.Store
module Persist = Slx_store.Persist

(* ------------------------------------------------------------------ *)
(* Shared observability flags.                                         *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the exploration as a Chrome trace-event JSON file \
           (open it in Perfetto or chrome://tracing; replay it with \
           $(b,slx stats)).")

let progress_arg =
  Arg.(
    value
    & opt ~vopt:(Some 1.0) (some float) None
    & info [ "progress" ] ~docv:"SECS"
        ~doc:
          "Print a live progress heartbeat to stderr every $(docv) \
           seconds (default 1).")

let progress_json_arg =
  Arg.(
    value & flag
    & info [ "progress-json" ]
        ~doc:
          "Emit progress heartbeats as JSON lines instead of the human \
           one-liner (implies $(b,--progress)).")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"FILE"
        ~doc:
          "Answer through the persistent verdict store at $(docv): serve \
           an exact stored verdict warm (witnesses re-validated), resume \
           a deeper run from a stored frontier, and record this run's \
           verdict for the next one.  Created if missing; corrupt or \
           stale stores degrade to cold runs, never to wrong answers.")

(* Graceful ^C for the exploration subcommands: the engines poll the
   flag once per node and abandon with partial statistics; a
   store-backed run commits its counters first. *)
let install_sigint () =
  let hit = ref false in
  (try
     Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> hit := true))
   with Invalid_argument _ | Sys_error _ -> ());
  fun () -> !hit

let report_interrupt ~store ~stats =
  Printf.eprintf "[slx] interrupted: partial statistics below%s\n%!"
    (match store with
    | Some path -> Printf.sprintf " (store committed to %s)" path
    | None -> "");
  Format.eprintf "%a@." Explore_stats.pp stats;
  130

let make_obs ~trace ~progress ~progress_json =
  let reporter =
    match (progress, progress_json) with
    | None, false -> Progress.off
    | interval, json -> Progress.create ?interval ~json ()
  in
  Obs.create ~tracing:(trace <> None) ~progress:reporter ()

let write_trace obs = function
  | None -> ()
  | Some path ->
      Obs.write_trace obs path;
      let dropped = Obs.events_dropped obs in
      Printf.eprintf "[slx] trace written to %s (%d events%s)\n%!" path
        (List.length (Obs.events obs))
        (if dropped > 0 then Printf.sprintf ", %d dropped" dropped else "")

(* ------------------------------------------------------------------ *)
(* figure1                                                             *)

let figure1_cmd =
  let object_arg =
    let doc =
      "Which grid: consensus, consensus-exhaustive (fair-cycle search), \
       tm, s-prime, or mutex."
    in
    Arg.(value & opt string "consensus" & info [ "object"; "o" ] ~doc)
  in
  let procs_arg =
    let doc = "System size n." in
    Arg.(value & opt int 3 & info [ "procs"; "n" ] ~doc)
  in
  let steps_arg =
    let doc = "Step budget per run." in
    Arg.(value & opt int 900 & info [ "steps" ] ~doc)
  in
  let depth_arg =
    let doc = "Schedule-tree depth (consensus-exhaustive only)." in
    Arg.(value & opt int 10 & info [ "depth" ] ~doc)
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the grid as one JSON object.")
  in
  let run obj n max_steps depth json =
    let grid =
      match obj with
      | "consensus" -> Ok (Figure1.consensus ~n ~max_steps ())
      | "consensus-exhaustive" ->
          Ok (Figure1.consensus_exhaustive ~n ~depth ())
      | "tm" -> Ok (Figure1.tm ~n ~max_steps ())
      | "s-prime" -> Ok (Figure1.s_prime ~n ~max_steps ())
      | "mutex" -> Ok (Figure1.mutex ~n ~max_steps ())
      | other -> Error (Printf.sprintf "unknown object %S" other)
    in
    match grid with
    | Error e ->
        prerr_endline e;
        1
    | Ok grid when json ->
        print_endline (Figure1.to_json grid);
        0
    | Ok grid ->
        print_string (Figure1.render grid);
        let pp points =
          String.concat ", " (List.map (Format.asprintf "%a" Freedom.pp) points)
        in
        Printf.printf "strongest not excluding: %s\n"
          (pp (Figure1.strongest_not_excluded grid));
        Printf.printf "weakest excluding:       %s\n"
          (pp (Figure1.weakest_excluded grid));
        0
  in
  Cmd.v
    (Cmd.info "figure1" ~doc:"Regenerate a Figure 1 panel experimentally")
    Term.(const run $ object_arg $ procs_arg $ steps_arg $ depth_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* game (consensus)                                                    *)

let game_cmd =
  let impl_arg =
    let doc = "Implementation: register or cas." in
    Arg.(value & opt string "register" & info [ "impl"; "i" ] ~doc)
  in
  let adversary_arg =
    let doc = "Adversary: lockstep or tie." in
    Arg.(value & opt string "lockstep" & info [ "adversary"; "a" ] ~doc)
  in
  let steps_arg =
    Arg.(value & opt int 1000 & info [ "steps" ] ~doc:"Step budget.")
  in
  let run impl adversary steps =
    let open Slx_consensus in
    let factory =
      match impl with
      | "register" -> Ok (Register_consensus.factory ())
      | "cas" -> Ok (Cas_consensus.factory ())
      | other -> Error (Printf.sprintf "unknown implementation %S" other)
    in
    match factory with
    | Error e ->
        prerr_endline e;
        1
    | Ok factory -> begin
        match adversary with
        | "lockstep" ->
            let good (_ : Consensus_type.response) = true in
            let v =
              Exclusion.play ~n:2 ~factory
                ~adversary:(Consensus_adversary.lockstep ())
                ~safety:Consensus_safety.property
                ~liveness:
                  (Live_property.of_freedom ~good (Freedom.make ~l:1 ~k:2))
                ~max_steps:steps
            in
            Printf.printf "fair=%b safe=%b liveness((1,2))=%b\n"
              v.Exclusion.fair v.Exclusion.safety_holds
              v.Exclusion.liveness_holds;
            Printf.printf "%s\n"
              (if Exclusion.adversary_wins v then
                 "adversary wins: (1,2)-freedom excluded"
               else "implementation survives");
            0
        | "tie" -> begin
            match Consensus_adversary.tie_attack ~factory ~steps:60 () with
            | Consensus_adversary.Defeated r ->
                Printf.printf
                  "adversary wins: %d fair steps, no decision, safety %b\n"
                  r.Slx_sim.Run_report.total_time
                  (Consensus_safety.check r.Slx_sim.Run_report.history);
                0
            | Consensus_adversary.Lost _ ->
                Printf.printf "adversary loses: a decision was forced\n";
                0
          end
        | other ->
            Printf.eprintf "unknown adversary %S\n" other;
            1
      end
  in
  Cmd.v
    (Cmd.info "game" ~doc:"Play a consensus exclusion game")
    Term.(const run $ impl_arg $ adversary_arg $ steps_arg)

(* ------------------------------------------------------------------ *)
(* tm-game                                                             *)

let tm_game_cmd =
  let impl_arg =
    let doc = "Implementation: i12 or agp." in
    Arg.(value & opt string "i12" & info [ "impl"; "i" ] ~doc)
  in
  let adversary_arg =
    let doc = "Adversary: local-progress or three-way." in
    Arg.(value & opt string "local-progress" & info [ "adversary"; "a" ] ~doc)
  in
  let steps_arg =
    Arg.(value & opt int 800 & info [ "steps" ] ~doc:"Step budget.")
  in
  let run impl adversary steps =
    let open Slx_tm in
    let factory =
      match impl with
      | "i12" -> Ok (I12.factory ~vars:2)
      | "agp" -> Ok (Agp_tm.factory ~vars:2)
      | other -> Error (Printf.sprintf "unknown implementation %S" other)
    in
    match factory with
    | Error e ->
        prerr_endline e;
        1
    | Ok factory ->
        let report =
          match adversary with
          | "local-progress" ->
              Ok (Tm_adversary.run_local_progress ~factory ~max_steps:steps ())
          | "three-way" ->
              Ok (Tm_adversary.run_three_way ~factory ~max_steps:steps)
          | other -> Error (Printf.sprintf "unknown adversary %S" other)
        in
        begin
          match report with
          | Error e ->
              prerr_endline e;
              1
          | Ok r ->
              List.iter
                (fun (p, c) -> Printf.printf "p%d: %d commits\n" p c)
                (Tm_adversary.commits r.Slx_sim.Run_report.history);
              Printf.printf "final-state opacity: %b   S': %b\n"
                (Opacity.check_final r.Slx_sim.Run_report.history)
                (S_prime.check_final r.Slx_sim.Run_report.history);
              List.iter
                (fun (l, k) ->
                  let f = Freedom.make ~l ~k in
                  Printf.printf "%s: %b\n"
                    (Format.asprintf "%a" Freedom.pp f)
                    (Freedom.holds ~good:Tm_type.good r f))
                [ (1, 2); (2, 2); (1, 3) ];
              0
        end
  in
  Cmd.v
    (Cmd.info "tm-game" ~doc:"Play a TM exclusion game")
    Term.(const run $ impl_arg $ adversary_arg $ steps_arg)

(* ------------------------------------------------------------------ *)
(* theorems                                                            *)

let theorems_cmd =
  let run () =
    let pos = Theorem_4_4.positive () and neg = Theorem_4_4.negative () in
    Printf.printf "Theorem 4.4 (positive): |Gmax|=%d, weakest exists: %b\n"
      (List.length (Theorem_4_4.gmax pos))
      (Theorem_4_4.weakest_excluding_exists pos);
    Printf.printf "Theorem 4.4 (negative): |Gmax|=%d, weakest exists: %b\n"
      (List.length (Theorem_4_4.gmax neg))
      (Theorem_4_4.weakest_excluding_exists neg);
    let r = Theorem_4_9.run ~depth:5 in
    Printf.printf "Theorem 4.9: It/Ib ensure S: %b, incomparable: %b -> %s\n"
      r.Theorem_4_9.both_ensure_s r.Theorem_4_9.incomparable
      (if Theorem_4_9.holds r then "no strongest liveness below Lmax"
       else "CHECK FAILED");
    if Theorem_4_9.holds r then 0 else 1
  in
  Cmd.v
    (Cmd.info "theorems" ~doc:"Machine-check the Theorem 4.4/4.9 constructions")
    Term.(const run $ const ())


(* ------------------------------------------------------------------ *)
(* mutex                                                               *)

let mutex_cmd =
  let impl_arg =
    let doc = "Lock: tas, bakery, or peterson." in
    Arg.(value & opt string "tas" & info [ "impl"; "i" ] ~doc)
  in
  let steps_arg =
    Arg.(value & opt int 800 & info [ "steps" ] ~doc:"Step budget.")
  in
  let run impl steps =
    let open Slx_objects in
    let factory =
      match impl with
      | "tas" -> Ok (Mutex.tas_factory ())
      | "bakery" -> Ok (Bakery.factory ())
      | "peterson" -> Ok (Peterson.factory ())
      | other -> Error (Printf.sprintf "unknown lock %S" other)
    in
    match factory with
    | Error e ->
        prerr_endline e;
        1
    | Ok factory ->
        let r = Mutex.run_starvation ~factory ~max_steps:steps in
        List.iter
          (fun (p, c) -> Printf.printf "p%d acquired %d times\n" p c)
          (Mutex.acquisitions r.Slx_sim.Run_report.history);
        Printf.printf "mutual exclusion: %b   fair: %b\n"
          (Mutex.mutual_exclusion r.Slx_sim.Run_report.history)
          (Slx_liveness.Fairness.is_bounded_fair r);
        Printf.printf "starvation-freedom: %b\n"
          (Freedom.holds ~good:Mutex.good r (Freedom.wait_freedom ~n:2));
        0
  in
  Cmd.v
    (Cmd.info "mutex" ~doc:"Run a lock against the starvation scheduler")
    Term.(const run $ impl_arg $ steps_arg)

(* ------------------------------------------------------------------ *)
(* explore                                                             *)

let explore_cmd =
  let impl_arg =
    let doc = "Implementation: cas, register, or selfish (consensus)." in
    Arg.(value & opt string "cas" & info [ "impl"; "i" ] ~doc)
  in
  let depth_arg =
    Arg.(value & opt int 10 & info [ "depth" ] ~doc:"Schedule-tree depth.")
  in
  let crashes_arg =
    Arg.(value & opt int 0 & info [ "crashes" ] ~doc:"Max crash branches.")
  in
  let domains_arg =
    let doc =
      "Fan top-level branches across this many domains (0 = one per core)."
    in
    Arg.(value & opt int 1 & info [ "domains"; "j" ] ~doc)
  in
  let no_cache_arg =
    Arg.(value & flag
         & info [ "no-cache" ] ~doc:"Disable the transposition cache.")
  in
  let cache_capacity_arg =
    let doc =
      "Bound the transposition cache to this many entries per domain \
       (clock eviction); unbounded by default."
    in
    Arg.(value & opt (some int) None & info [ "cache-capacity" ] ~doc)
  in
  let no_por_arg =
    Arg.(value & flag
         & info [ "no-por" ]
             ~doc:"Disable declared-footprint sleep-set partial-order \
                   reduction (DPOR, if enabled, still reduces).")
  in
  let no_dpor_arg =
    Arg.(value & flag
         & info [ "no-dpor" ]
             ~doc:"Disable dynamic partial-order reduction (source-set \
                   sleep sets woken by observed-access race reversals).")
  in
  let no_symmetry_arg =
    Arg.(value & flag
         & info [ "no-symmetry" ]
             ~doc:"Disable symmetry reduction of untouched processes.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the verdict and full statistics as one JSON object.")
  in
  let naive_arg =
    Arg.(value & flag
         & info [ "naive" ]
             ~doc:"Use the replay-from-scratch reference engine.")
  in
  let sanitize_arg =
    Arg.(value & flag
         & info [ "sanitize" ]
             ~doc:"Arm the footprint sanitizer (counting mode): report \
                   violations in the stats without changing the verdict.")
  in
  let no_compact_arg =
    Arg.(value & flag
         & info [ "no-compact" ]
             ~doc:"Key the transposition cache on structural fingerprints \
                   instead of hash-consed compact encodings (slower; \
                   verdict-identical).")
  in
  let bitstate_arg =
    let doc =
      "Replace the exact transposition cache with SPIN-style hash \
       compaction: a 2^$(docv)-bit table of fingerprint hashes (4-30). \
       Bounded memory, but hits may be hash collisions, so a clean \
       verdict is no longer exhaustive; the reported \
       bitstate_collision_probability quantifies the risk."
    in
    Arg.(value & opt (some int) None
         & info [ "bitstate" ] ~doc ~docv:"BITS")
  in
  let run impl depth max_crashes domains no_cache cache_capacity no_por
      no_dpor no_symmetry json naive sanitize no_compact bitstate store trace
      progress progress_json =
    let open Slx_consensus in
    let factory =
      match impl with
      | "cas" -> Ok (fun () -> Cas_consensus.factory ())
      | "register" -> Ok (fun () -> Register_consensus.factory ())
      | "selfish" -> Ok (fun () -> Selfish_consensus.factory ())
      | other -> Error (Printf.sprintf "unknown implementation %S" other)
    in
    match factory with
    | Error e ->
        prerr_endline e;
        1
    | Ok factory -> begin
        let invoke =
          Explore.workload_invoke
            (Slx_sim.Driver.n_times 1 (fun p _ ->
                 Consensus_type.Propose (p - 1)))
        in
        let check r = Consensus_safety.check r.Slx_sim.Run_report.history in
        let obs = make_obs ~trace ~progress ~progress_json in
        if naive && trace <> None then
          prerr_endline
            "[slx] note: the naive engine does not trace; the trace will \
             be empty";
        if naive && sanitize then
          prerr_endline
            "[slx] note: the naive engine does not sanitize; use slx audit";
        if naive && store <> None then
          prerr_endline
            "[slx] note: the naive engine bypasses the store";
        let cancel = install_sigint () in
        let run_engine () =
          if naive then
            ( Explore.explore_naive ~n:2 ~factory ~invoke ~depth ~max_crashes
                ~check (),
              None )
          else begin
            let domains =
              if domains = 0 then Domain.recommended_domain_count ()
              else domains
            in
            match store with
            | None ->
                ( Explore.explore ~n:2 ~factory ~invoke ~depth ~max_crashes
                    ~cache:(not no_cache) ?cache_capacity ~por:(not no_por)
                    ~dpor:(not no_dpor) ~symmetry:(not no_symmetry) ~domains
                    ~obs ~sanitize ~compact:(not no_compact) ?bitstate ~cancel
                    ~check (),
                  None )
            | Some path ->
                let st = Vstore.open_ path in
                let qid =
                  Persist.query_key ~ident:impl ~check:"consensus-safety"
                    ~n:2
                    ~registry_digest:(Persist.instance_digest ~n:2 ~factory)
                    ~max_crashes ~por:(not no_por) ~dpor:(not no_dpor)
                    ~symmetry:(not no_symmetry) ()
                in
                let e, source =
                  Persist.run_explore ~store:st ~qid ~n:2 ~factory ~invoke
                    ~depth ~max_crashes ~cache:(not no_cache) ?cache_capacity
                    ~por:(not no_por) ~dpor:(not no_dpor)
                    ~symmetry:(not no_symmetry) ~domains ~obs ~sanitize
                    ~compact:(not no_compact) ?bitstate ~cancel ~check ()
                in
                (e, Some source)
          end
        in
        match run_engine () with
        | exception Explore.Interrupted stats ->
            write_trace obs trace;
            report_interrupt ~store ~stats
        | e, source -> begin
            write_trace obs trace;
            let source_string =
              Option.map (Format.asprintf "%a" Persist.pp_source) source
            in
            if json then begin
              let outcome, runs =
                match e.Explore.outcome with
                | Explore.Ok runs -> ("ok", runs)
                | Explore.Counterexample _ -> ("counterexample", 0)
              in
              Printf.printf
                "{\"impl\": %S, \"depth\": %d, \"max_crashes\": %d, \
                 \"outcome\": %S, \"runs\": %d%s, \"stats\": %s}\n"
                impl depth max_crashes outcome runs
                (match source_string with
                | None -> ""
                | Some s -> Printf.sprintf ", \"store_source\": %S" s)
                (Explore_stats.to_json e.Explore.stats)
            end
            else begin
              (match e.Explore.outcome with
              | Explore.Ok runs ->
                  Printf.printf "safe on all %d bounded schedules\n" runs
              | Explore.Counterexample r ->
                  Format.printf "counterexample: %a@." Consensus_type.pp_history
                    r.Slx_sim.Run_report.history;
                  let pp_d fmt = function
                    | Slx_sim.Driver.Schedule p -> Format.fprintf fmt "S%d" p
                    | Slx_sim.Driver.Invoke (p, Consensus_type.Propose v) ->
                        Format.fprintf fmt "I%d(%d)" p v
                    | Slx_sim.Driver.Crash p -> Format.fprintf fmt "C%d" p
                    | Slx_sim.Driver.Stop -> Format.fprintf fmt "stop"
                  in
                  Option.iter
                    (fun script ->
                      Format.printf "witness script: %a@."
                        (Format.pp_print_list ~pp_sep:Format.pp_print_space
                           pp_d)
                        script)
                    e.Explore.witness_script);
              Option.iter (Printf.printf "store: %s\n") source_string;
              Format.printf "%a@." Explore_stats.pp e.Explore.stats
            end;
            0
          end
      end
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Exhaustively check consensus safety on every bounded schedule")
    Term.(
      const run $ impl_arg $ depth_arg $ crashes_arg $ domains_arg
      $ no_cache_arg $ cache_capacity_arg $ no_por_arg $ no_dpor_arg
      $ no_symmetry_arg $ json_arg $ naive_arg $ sanitize_arg
      $ no_compact_arg $ bitstate_arg $ store_arg $ trace_arg
      $ progress_arg $ progress_json_arg)

(* ------------------------------------------------------------------ *)
(* live-explore                                                        *)

let live_explore_cmd =
  let impl_arg =
    let doc = "Implementation: register, cas, or selfish (consensus)." in
    Arg.(value & opt string "register" & info [ "impl"; "i" ] ~doc)
  in
  let property_arg =
    let doc =
      "Liveness property: obstruction, lock, wait, or an explicit \
       (l,k)-freedom point written l,k (e.g. 1,2)."
    in
    Arg.(value & opt string "obstruction" & info [ "property"; "p" ] ~doc)
  in
  let procs_arg =
    Arg.(value & opt int 2 & info [ "procs"; "n" ] ~doc:"System size n.")
  in
  let depth_arg =
    Arg.(value & opt int 10 & info [ "depth" ] ~doc:"Schedule-tree depth.")
  in
  let crashes_arg =
    let doc =
      "Max crash branches (pass at least n-1 to give obstruction-style \
       points their solo windows)."
    in
    Arg.(value & opt int 0 & info [ "crashes" ] ~doc)
  in
  let max_period_arg =
    Arg.(value & opt (some int) None
         & info [ "max-period" ]
             ~doc:"Bound candidate cycle length in ticks (default \
                   ceil(depth/2), the largest period observable twice \
                   within the depth bound).")
  in
  let pump_arg =
    Arg.(value & opt (some int) None
         & info [ "pump" ]
             ~doc:"Certificate validation budget in ticks (default 4*depth).")
  in
  let invoke_order_arg =
    Arg.(value & flag
         & info [ "invoke-order" ]
             ~doc:"Offer only the least idle process's invocation at each \
                   node (cycle-sound).")
  in
  let no_dpor_arg =
    Arg.(value & flag
         & info [ "no-dpor" ]
             ~doc:"Disable the cycle-proviso-guarded dynamic partial-order \
                   reduction.")
  in
  let proviso_arg =
    Arg.(value & opt (some int) None
         & info [ "proviso" ]
             ~doc:"Bounded-ignoring proviso: max consecutive edges a \
                   process may stay asleep (default 2; larger prunes more \
                   but can miss lassos of shorter period).")
  in
  let no_cache_arg =
    Arg.(value & flag
         & info [ "no-cache" ] ~doc:"Disable the transposition cache.")
  in
  let cache_capacity_arg =
    Arg.(value & opt (some int) None
         & info [ "cache-capacity" ]
             ~doc:"Bound the transposition cache (clock eviction).")
  in
  let sanitize_arg =
    Arg.(value & flag
         & info [ "sanitize" ]
             ~doc:"Arm the footprint sanitizer (counting mode) on every \
                   search cursor: violations surface in \
                   footprint_violations without perturbing the search.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the verdict, certificate and statistics as one \
                   JSON object.")
  in
  let no_compact_arg =
    Arg.(value & flag
         & info [ "no-compact" ]
             ~doc:"Key the suffix cache on structural fingerprints instead \
                   of hash-consed compact encodings (slower; verdict- and \
                   certificate-identical).")
  in
  let run impl property n depth max_crashes max_period pump_ticks invoke_order
      no_dpor proviso_bound no_cache cache_capacity sanitize no_compact json
      store trace progress progress_json =
    let open Slx_consensus in
    let factory =
      match impl with
      | "register" ->
          Ok (fun () -> Register_consensus.factory ~max_rounds:(max 8 depth) ())
      | "cas" -> Ok (fun () -> Cas_consensus.factory ())
      | "selfish" -> Ok (fun () -> Selfish_consensus.factory ())
      | other -> Error (Printf.sprintf "unknown implementation %S" other)
    in
    let point =
      match property with
      | "obstruction" -> Ok Freedom.obstruction_freedom
      | "lock" -> Ok (Freedom.lock_freedom ~n)
      | "wait" -> Ok (Freedom.wait_freedom ~n)
      | s -> begin
          match String.split_on_char ',' s with
          | [ l; k ] -> begin
              match
                (int_of_string_opt (String.trim l),
                 int_of_string_opt (String.trim k))
              with
              | Some l, Some k when l >= 1 && k >= 1 ->
                  Ok (Freedom.make ~l ~k)
              | _ -> Error (Printf.sprintf "unknown property %S" s)
            end
          | _ -> Error (Printf.sprintf "unknown property %S" s)
        end
    in
    match (factory, point) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        1
    | Ok factory, Ok point ->
        let invoke =
          Explore.workload_invoke
            (Slx_sim.Driver.forever (fun p -> Consensus_type.Propose (p - 1)))
        in
        let good (_ : Consensus_type.response) = true in
        let obs = make_obs ~trace ~progress ~progress_json in
        let cancel = install_sigint () in
        let run_engine () =
          match store with
          | None ->
              ( Live_explore.search ~n ~factory ~invoke ~good ~point ~depth
                  ~max_crashes ?max_period ?pump_ticks ~invoke_order
                  ~dpor:(not no_dpor) ?proviso_bound ~cache:(not no_cache)
                  ?cache_capacity ~sanitize ~compact:(not no_compact) ~obs
                  ~cancel (),
                None )
          | Some path ->
              let st = Vstore.open_ path in
              let qid =
                Persist.query_key ~ident:impl
                  ~check:("live:" ^ Format.asprintf "%a" Freedom.pp point)
                  ~n
                  ~registry_digest:(Persist.instance_digest ~n ~factory)
                  ~max_crashes ~dpor:(not no_dpor) ~invoke_order
                  ?proviso_bound ()
              in
              let r, source =
                Persist.run_live ~store:st ~qid ~n ~factory ~invoke ~good
                  ~point ~depth ~max_crashes ?max_period ?pump_ticks
                  ~invoke_order ~dpor:(not no_dpor) ?proviso_bound
                  ~cache:(not no_cache) ?cache_capacity ~obs ~sanitize
                  ~compact:(not no_compact) ~cancel ()
              in
              (r, Some source)
        in
        match run_engine () with
        | exception Explore.Interrupted stats ->
            write_trace obs trace;
            report_interrupt ~store ~stats
        | r, source ->
        write_trace obs trace;
        let source_string =
          Option.map (Format.asprintf "%a" Persist.pp_source) source
        in
        let dec_string = function
          | Slx_sim.Driver.Schedule p -> Printf.sprintf "S%d" p
          | Slx_sim.Driver.Invoke (p, Consensus_type.Propose v) ->
              Printf.sprintf "I%d(%d)" p v
          | Slx_sim.Driver.Crash p -> Printf.sprintf "C%d" p
          | Slx_sim.Driver.Stop -> "stop"
        in
        let property_string = Format.asprintf "%a" Freedom.pp point in
        if json then begin
          let cert_json =
            match r.Live_explore.outcome with
            | Live_explore.No_fair_cycle -> ""
            | Live_explore.Lasso c ->
                let script ds =
                  "["
                  ^ String.concat ", "
                      (List.map (fun d -> Printf.sprintf "%S" (dec_string d)) ds)
                  ^ "]"
                in
                Printf.sprintf ", \"stem\": %s, \"cycle\": %s, \"period\": %d"
                  (script c.Lasso.c_stem) (script c.Lasso.c_cycle)
                  (List.length c.Lasso.c_cycle)
          in
          let outcome =
            match r.Live_explore.outcome with
            | Live_explore.Lasso _ -> "lasso"
            | Live_explore.No_fair_cycle -> "no_fair_cycle"
          in
          Printf.printf
            "{\"impl\": %S, \"property\": %S, \"n\": %d, \"depth\": %d, \
             \"max_crashes\": %d, \"outcome\": %S%s%s, \"stats\": %s}\n"
            impl property_string n depth max_crashes outcome cert_json
            (match source_string with
            | None -> ""
            | Some s -> Printf.sprintf ", \"store_source\": %S" s)
            (Explore_stats.to_json r.Live_explore.stats)
        end
        else begin
          (match r.Live_explore.outcome with
          | Live_explore.Lasso c ->
              Printf.printf
                "fair non-progressing lasso found: %s is excluded\n"
                property_string;
              Printf.printf "  stem:  %s\n"
                (String.concat " " (List.map dec_string c.Lasso.c_stem));
              Printf.printf "  cycle: %s  (period %d, pump-validated)\n"
                (String.concat " " (List.map dec_string c.Lasso.c_cycle))
                (List.length c.Lasso.c_cycle)
          | Live_explore.No_fair_cycle ->
              Printf.printf
                "no fair non-progressing cycle within depth %d: %s is not \
                 excluded on this bounded graph\n"
                depth property_string);
          Option.iter (Printf.printf "store: %s\n") source_string;
          Format.printf "%a@." Explore_stats.pp r.Live_explore.stats
        end;
        0
  in
  Cmd.v
    (Cmd.info "live-explore"
       ~doc:
         "Search the bounded configuration graph for a fair, progress-free \
          cycle")
    Term.(
      const run $ impl_arg $ property_arg $ procs_arg $ depth_arg $ crashes_arg
      $ max_period_arg $ pump_arg $ invoke_order_arg $ no_dpor_arg
      $ proviso_arg $ no_cache_arg $ cache_capacity_arg $ sanitize_arg
      $ no_compact_arg $ json_arg $ store_arg $ trace_arg $ progress_arg
      $ progress_json_arg)

(* ------------------------------------------------------------------ *)
(* stats — replay a saved trace into histograms                        *)

(* One structured error path for CLI file problems: a [slx]-prefixed
   line on stderr and exit 2, whatever the flag that named the file. *)
let cli_error fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "[slx] error: %s\n" s;
      2)
    fmt

let stats_cmd =
  let trace_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"The Chrome trace-event JSON file to replay.")
  in
  let store_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:"Summarize the persistent verdict store at $(docv): \
                records, hit/resume counters, steps saved, health.")
  in
  let store_stats path =
    if not (Sys.file_exists path) then cli_error "%s: no such store" path
    else begin
      let st = Vstore.open_ path in
      let h = Vstore.health st and c = Vstore.counters st in
      let records = Vstore.records st in
      Printf.printf "store: %s\n" path;
      Printf.printf "  engine:   %s\n" Vstore.engine_version;
      (match h.Vstore.h_invalidated with
      | Some reason -> Printf.printf "  INVALIDATED: %s\n" reason
      | None -> ());
      if h.Vstore.h_records_dropped > 0 then
        Printf.printf "  dropped:  %d corrupt frame(s)\n"
          h.Vstore.h_records_dropped;
      Printf.printf
        "  counters: %d queries, %d warm, %d resumed, %d cold, %d \
         rejected, %d steps saved\n"
        c.Vstore.c_queries c.Vstore.c_warm_hits c.Vstore.c_resumes
        c.Vstore.c_colds c.Vstore.c_rejected c.Vstore.c_steps_saved;
      Printf.printf "  records:  %d\n" (List.length records);
      List.iter
        (fun (r : Vstore.record) ->
          let verdict, budgets =
            match r.Vstore.r_verdict with
            | Vstore.V_ok n -> (Printf.sprintf "ok(%d runs)" n, "")
            | Vstore.V_counterexample w ->
                (Printf.sprintf "counterexample(%d decisions)"
                   (List.length w), "")
            | Vstore.V_no_fair_cycle ->
                ( "no-fair-cycle",
                  Printf.sprintf " mp=%d pt=%d" r.Vstore.r_max_period
                    r.Vstore.r_pump_ticks )
            | Vstore.V_lasso { stem; cycle } ->
                ( Printf.sprintf "lasso(stem %d, cycle %d)"
                    (List.length stem) (List.length cycle),
                  Printf.sprintf " mp=%d pt=%d" r.Vstore.r_max_period
                    r.Vstore.r_pump_ticks )
          in
          Printf.printf
            "    qid=%016x depth=%-2d%s %-28s steps=%-9d %s\n"
            r.Vstore.r_qid r.Vstore.r_depth budgets verdict r.Vstore.r_steps
            (match r.Vstore.r_frontier with
            | Some f ->
                Printf.sprintf "frontier(%d seeds)"
                  (List.length f.Vstore.f_seeds)
            | None -> "no frontier"))
        records;
      0
    end
  in
  let trace_stats path =
    match Json.parse_file path with
    | Error e -> cli_error "%s: %s" path e
    | Ok json -> begin
        match Trace_export.validate json with
        | Error e -> cli_error "%s: invalid trace: %s" path e
        | Ok sm ->
            let events =
              match Json.member "traceEvents" json with
              | Some (Json.Arr es) -> es
              | _ -> []
            in
            let str_field e k = Option.bind (Json.member k e) Json.str in
            let int_field e k = Option.bind (Json.member k e) Json.int in
            let num_field e k = Option.bind (Json.member k e) Json.num in
            let arg_int e k =
              Option.bind (Json.member "args" e) (fun a ->
                  Option.bind (Json.member k a) Json.int)
            in
            Printf.printf "trace: %s\n" path;
            Printf.printf "  events:        %d on %d lane(s), %d dropped\n"
              sm.Trace_export.sm_events sm.Trace_export.sm_lanes
              sm.Trace_export.sm_dropped;
            List.iter
              (fun (n, c) -> Printf.printf "  spans  %-15s %d\n" n c)
              sm.Trace_export.sm_spans;
            List.iter
              (fun (n, c) -> Printf.printf "  events %-15s %d\n" n c)
              sm.Trace_export.sm_instants;
            Printf.printf "  steal flows:   %d published, %d stolen\n"
              sm.Trace_export.sm_flow_starts sm.Trace_export.sm_flow_ends;
            (* Cache-hit depth distribution: at which depths does the
               transposition cache actually cut subtrees? *)
            let hist = Hashtbl.create 16 in
            List.iter
              (fun e ->
                if str_field e "name" = Some "cache_hit" then
                  match arg_int e "depth" with
                  | Some d ->
                      Hashtbl.replace hist d
                        (1 + Option.value ~default:0 (Hashtbl.find_opt hist d))
                  | None -> ())
              events;
            if Hashtbl.length hist > 0 then begin
              let rows =
                List.sort compare
                  (Hashtbl.fold (fun d c acc -> (d, c) :: acc) hist [])
              in
              let peak = List.fold_left (fun m (_, c) -> max m c) 1 rows in
              Printf.printf "\n  cache-hit depth distribution:\n";
              List.iter
                (fun (d, c) ->
                  Printf.printf "    depth %2d |%-40s %d\n" d
                    (String.make (max 1 (40 * c / peak)) '#')
                    c)
                rows
            end;
            (* Reduction work: the reduce-category instants each carry
               the number of decisions affected in their args, so the
               instant counts alone under-report — sum the weights. *)
            let reduction_weight name arg =
              List.fold_left
                (fun acc e ->
                  if str_field e "name" = Some name then
                    acc + Option.value ~default:0 (arg_int e arg)
                  else acc)
                0 events
            in
            let reductions =
              [
                ("por_sleep", "slept");
                ("race_reversal", "woken");
                ("proviso_wake", "woken");
                ("invoke_prune", "pruned");
                ("symmetry_prune", "pruned");
              ]
              |> List.filter_map (fun (name, arg) ->
                     let w = reduction_weight name arg in
                     if w > 0 then Some (name, arg, w) else None)
            in
            if reductions <> [] then begin
              Printf.printf "\n  reduction decisions (weighted by args):\n";
              List.iter
                (fun (name, arg, w) ->
                  Printf.printf "    %-15s %-7s %d\n" name arg w)
                reductions
            end;
            (* Steal latency: publication ("s") to theft ("f") per flow
               id, in microseconds. *)
            let pushed = Hashtbl.create 16 in
            let latencies = ref [] in
            List.iter
              (fun e ->
                match (str_field e "ph", int_field e "id", num_field e "ts")
                with
                | Some "s", Some id, Some ts -> Hashtbl.replace pushed id ts
                | Some "f", Some id, Some ts -> begin
                    match Hashtbl.find_opt pushed id with
                    | Some t0 -> latencies := (ts -. t0) :: !latencies
                    | None -> ()
                  end
                | _ -> ())
              events;
            let describe label = function
              | [] -> ()
              | xs ->
                  let n = List.length xs in
                  let total = List.fold_left ( +. ) 0. xs in
                  let mn = List.fold_left min infinity xs in
                  let mx = List.fold_left max neg_infinity xs in
                  Printf.printf
                    "\n  %s: %d sample(s), min %.1f us, mean %.1f us, max \
                     %.1f us\n"
                    label n mn (total /. float_of_int n) mx
            in
            describe "steal latency" !latencies;
            (* Pump-validation cost: B/E "pump" span durations per
               lane, tagged with the verdict carried on the close. *)
            let open_pumps = Hashtbl.create 8 in
            let pump_costs = ref [] in
            let accepted = ref 0 in
            List.iter
              (fun e ->
                if str_field e "name" = Some "pump" then
                  let lane = (int_field e "pid", int_field e "tid") in
                  match (str_field e "ph", num_field e "ts") with
                  | Some "B", Some ts ->
                      Hashtbl.replace open_pumps lane
                        (ts
                        :: Option.value ~default:[]
                             (Hashtbl.find_opt open_pumps lane))
                  | Some "E", Some ts -> begin
                      match Hashtbl.find_opt open_pumps lane with
                      | Some (t0 :: rest) ->
                          Hashtbl.replace open_pumps lane rest;
                          pump_costs := (ts -. t0) :: !pump_costs;
                          if arg_int e "accepted" = Some 1 then incr accepted
                      | _ -> ()
                    end
                  | _ -> ())
              events;
            describe "pump validation" !pump_costs;
            if !pump_costs <> [] then
              Printf.printf "    certificates accepted: %d of %d\n" !accepted
                (List.length !pump_costs);
            0
      end
  in
  let run store trace =
    let store_rc = Option.map store_stats store in
    match (trace, store_rc) with
    | None, Some rc -> rc
    | None, None -> cli_error "stats needs --trace FILE and/or --store FILE"
    | Some path, store_rc ->
        let trc = trace_stats path in
        if store_rc = Some 0 || store_rc = None then trc
        else Option.get store_rc
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Validate a saved exploration trace and replay it into summary \
          histograms, or summarize a persistent verdict store")
    Term.(const run $ store_file_arg $ trace_file_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)

let lint_today () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let default_waiver_file = "lint-waivers.conf"

(* Shared by [slx lint] and [slx audit --lint]: sweep, defaulting the
   waiver file to the checked-in [lint-waivers.conf] when present. *)
let run_lint ?root ?paths ?waivers ~ci () =
  let module Lint = Slx_lint.Lint in
  let rootdir = Option.value root ~default:"." in
  let waiver_file =
    match waivers with
    | Some _ as w -> w
    | None ->
        if Sys.file_exists (Filename.concat rootdir default_waiver_file) then
          Some default_waiver_file
        else None
  in
  Lint.run ?root ?paths ?waiver_file ~today:(lint_today ())
    ~strict_waivers:ci ()

let lint_cmd =
  let module Lint = Slx_lint.Lint in
  let paths_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to sweep, relative to --root (default: \
             the model-code set: lib/objects, lib/consensus, lib/tm, \
             lib/base_objects, examples, lib/analysis/fixtures.ml).")
  in
  let root_arg =
    Arg.(
      value & opt string "."
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Resolve paths and the waiver file relative to $(docv).")
  in
  let waivers_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "waivers" ] ~docv:"FILE"
          ~doc:
            "The waiver file (default: lint-waivers.conf under --root \
             when present).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the full report as one JSON object.")
  in
  let ci_arg =
    Arg.(value & flag
         & info [ "ci" ]
             ~doc:"Gate on stale waivers too: an entry that matches no \
                   finding becomes a warning instead of a note.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Also write the report to this file.")
  in
  let run paths root waivers json ci out =
    let paths = match paths with [] -> None | ps -> Some ps in
    let rp = run_lint ~root ?paths ?waivers ~ci () in
    let rendered =
      if json then Lint.to_json rp ^ "\n"
      else Format.asprintf "%a@." Lint.pp rp
    in
    print_string rendered;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc rendered;
        close_out oc)
      out;
    if Lint.clean rp then 0 else 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check model sources for escape, determinism and \
          footprint violations: the conservative all-paths complement of \
          the audit's exact explored-paths sanitizer.  Nonzero exit on \
          any unwaived finding.")
    Term.(
      const run $ paths_arg $ root_arg $ waivers_arg $ json_arg $ ci_arg
      $ out_arg)

(* ------------------------------------------------------------------ *)
(* audit                                                               *)

let audit_cmd =
  let module Audit = Slx_analysis.Audit in
  let module Registry = Slx_analysis.Audit_registry in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the full report as one JSON object.")
  in
  let ci_arg =
    Arg.(value & flag
         & info [ "ci" ]
             ~doc:"Use the larger CI depth bound of each case.")
  in
  let oracle_arg =
    Arg.(value & flag
         & info [ "oracle" ]
             ~doc:"Also run the commutation oracle: execute both orders \
                   of declared-commuting pending pairs and compare the \
                   resulting states.")
  in
  let depth_arg =
    Arg.(value & opt (some int) None
         & info [ "depth" ]
             ~doc:"Override every case's depth bound (use with --case).")
  in
  let group_arg =
    Arg.(value & opt (some string) None
         & info [ "group"; "g" ]
             ~doc:"Only audit cases of this group (base, consensus, \
                   objects, universal, tm, fixture).")
  in
  let case_arg =
    Arg.(value & opt (some string) None
         & info [ "case"; "c" ] ~doc:"Only audit the named case.")
  in
  let fixtures_arg =
    Arg.(value & flag
         & info [ "fixtures" ]
             ~doc:"Include the deliberately mis-declared fixtures (each \
                   is expected dirty; for demonstration, not gating).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~doc:"Also write the report to this file.")
  in
  let lint_arg =
    Arg.(value & flag
         & info [ "lint" ]
             ~doc:"Also run the static lint sweep and fold its verdict \
                   into the report and the exit code.")
  in
  let run json ci oracle depth group case fixtures out lint =
    let pool =
      if fixtures then Registry.all () @ Registry.fixture_cases ()
      else Registry.all ()
    in
    let cases = Registry.select ?group ?name:case pool in
    if cases = [] then begin
      prerr_endline "[slx] no audit cases match the filter";
      1
    end
    else begin
      let bound = if ci then `Ci else `Runtest in
      let rp =
        {
          Audit.rp_bound = (if ci then "ci" else "runtest");
          rp_results =
            List.map (fun c -> Audit.run_case ~bound ?depth ~oracle c) cases;
        }
      in
      let lint_rp = if lint then Some (run_lint ~ci ()) else None in
      let rendered =
        match lint_rp with
        | None ->
            if json then Audit.report_to_json rp ^ "\n"
            else Format.asprintf "%a" Audit.pp_report rp
        | Some lrp ->
            if json then
              Printf.sprintf "{\"audit\": %s,\n\"lint\": %s}\n"
                (Audit.report_to_json rp)
                (Slx_lint.Lint.to_json lrp)
            else
              Format.asprintf "%a@.--- lint ---@.%a@." Audit.pp_report rp
                Slx_lint.Lint.pp lrp
      in
      print_string rendered;
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc rendered;
          close_out oc)
        out;
      let lint_clean =
        match lint_rp with None -> true | Some l -> Slx_lint.Lint.clean l
      in
      if Audit.clean rp && lint_clean then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Sweep every registered implementation's bounded schedule tree \
          with the conflict-soundness sanitizer armed: race-detect \
          undeclared base-object accesses (with replayable witnesses), \
          certify the observed conflict relation against declared \
          footprints, and lint over-declarations.  Nonzero exit on any \
          violation.")
    Term.(
      const run $ json_arg $ ci_arg $ oracle_arg $ depth_arg $ group_arg
      $ case_arg $ fixtures_arg $ out_arg $ lint_arg)

(* ------------------------------------------------------------------ *)
(* serve / query / worker                                              *)

let serve_cmd =
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR"
             ~doc:"Bind address (an IP literal).")
  in
  let port_arg =
    Arg.(value & opt int 8844 & info [ "port" ] ~docv:"PORT" ~doc:"TCP port.")
  in
  let workers_arg =
    Arg.(value & opt int 2
         & info [ "workers"; "j" ] ~docv:"N"
             ~doc:"Worker processes (the slx binary re-executed).")
  in
  let store_path_arg =
    Arg.(value & opt string "slx.store"
         & info [ "store" ] ~docv:"FILE"
             ~doc:"The persistent verdict store (coordinator is the only \
                   writer).")
  in
  let run host port workers store =
    Slx_serve.Serve.main ~host ~port ~workers ~store ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verification service: a JSON-over-HTTP coordinator that \
          answers queries warm from the store, shards cold ones across \
          worker processes (frontier slices, leased and re-leased on \
          crash), and dedupes identical in-flight queries.  Endpoints: \
          POST /query, GET /status/ID, GET /stats, POST /shutdown.")
    Term.(const run $ host_arg $ port_arg $ workers_arg $ store_path_arg)

let query_cmd =
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Server address.")
  in
  let port_arg =
    Arg.(value & opt int 8844 & info [ "port" ] ~docv:"PORT"
         ~doc:"Server port.")
  in
  let kind_arg =
    Arg.(value & opt string "explore"
         & info [ "kind"; "k" ] ~doc:"Query kind: explore or live.")
  in
  let impl_arg =
    Arg.(value & opt string "cas"
         & info [ "impl"; "i" ] ~doc:"Implementation: cas, register, or \
                                      selfish.")
  in
  let property_arg =
    Arg.(value & opt string "obstruction"
         & info [ "property"; "p" ]
             ~doc:"Liveness property (live queries): obstruction, lock, \
                   wait, or l,k.")
  in
  let procs_arg =
    Arg.(value & opt int 2 & info [ "procs"; "n" ] ~doc:"System size n.")
  in
  let depth_arg =
    Arg.(value & opt int 8 & info [ "depth" ] ~doc:"Schedule-tree depth.")
  in
  let crashes_arg =
    Arg.(value & opt int 0 & info [ "crashes" ] ~doc:"Max crash branches.")
  in
  let max_period_arg =
    Arg.(value & opt (some int) None
         & info [ "max-period" ] ~doc:"Liveness cycle-length bound.")
  in
  let pump_arg =
    Arg.(value & opt (some int) None
         & info [ "pump" ] ~doc:"Liveness pump budget in ticks.")
  in
  let wait_arg =
    Arg.(value & flag
         & info [ "wait"; "w" ]
             ~doc:"Stream progress heartbeats and the result (ndjson) \
                   instead of returning a ticket.")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECS"
             ~doc:"Server-side deadline for this query.")
  in
  let status_arg =
    Arg.(value & opt (some int) None
         & info [ "status" ] ~docv:"ID" ~doc:"Fetch a query's status \
                                              instead of submitting one.")
  in
  let stats_flag_arg =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Fetch the server's /stats instead of \
                                  submitting a query.")
  in
  let shutdown_arg =
    Arg.(value & flag
         & info [ "shutdown" ] ~doc:"Ask the server to drain and exit.")
  in
  let run host port kind impl property n depth crashes max_period pump wait
      timeout status stats shutdown =
    let finish = function
      | Ok () -> 0
      | Error e ->
          prerr_endline e;
          1
    in
    if shutdown then finish (Slx_serve.Client.shutdown ~host ~port ())
    else if stats then
      finish (Slx_serve.Client.get ~host ~port "/stats" ~out:stdout)
    else
      match status with
      | Some id ->
          finish
            (Slx_serve.Client.get ~host ~port
               (Printf.sprintf "/status/%d" id)
               ~out:stdout)
      | None ->
          let opt_int k = function
            | None -> ""
            | Some v -> Printf.sprintf ", %S: %d" k v
          in
          let spec =
            Printf.sprintf
              "{\"kind\": %S, \"impl\": %S, \"property\": %S, \"n\": %d, \
               \"depth\": %d, \"crashes\": %d%s%s}"
              kind impl property n depth crashes
              (opt_int "max_period" max_period)
              (opt_int "pump" pump)
          in
          finish
            (Slx_serve.Client.post_query ~host ~port ~wait ?timeout spec
               ~out:stdout)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Submit a verification query to a running $(b,slx serve) (or \
          fetch --status ID, --stats, or --shutdown).")
    Term.(
      const run $ host_arg $ port_arg $ kind_arg $ impl_arg $ property_arg
      $ procs_arg $ depth_arg $ crashes_arg $ max_period_arg $ pump_arg
      $ wait_arg $ timeout_arg $ status_arg $ stats_flag_arg $ shutdown_arg)

(* The serve coordinator re-executes this binary with argv
   [| slx; "worker" |]; the subcommand name is part of the protocol. *)
let worker_cmd =
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "(internal) Run the serve worker loop: JSON-lines tasks on \
          stdin, heartbeats and results on stdout.  Spawned by \
          $(b,slx serve); not meant to be run by hand.")
    Term.(const (fun () -> Slx_serve.Worker.main ()) $ const ())

let () =
  let info =
    Cmd.info "slx" ~version:"1.0.0"
      ~doc:"Safety-liveness exclusion in distributed computing (PODC 2015)"
  in
  exit (Cmd.eval' (Cmd.group info
       [ figure1_cmd; game_cmd; tm_game_cmd; theorems_cmd; mutex_cmd;
         explore_cmd; live_explore_cmd; stats_cmd; lint_cmd; audit_cmd;
         serve_cmd;
         query_cmd; worker_cmd ]))
