(* Benchmark entry point.

   dune exec bench/main.exe                -- experiments then perf
   dune exec bench/main.exe experiments    -- experiment suite only
   dune exec bench/main.exe perf           -- Bechamel perf only
   dune exec bench/main.exe smoke          -- tiny explorer smoke (runtest)
   dune exec bench/main.exe scaling        -- work-stealing domain scaling *)

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let ok =
    match mode with
    | "experiments" -> Experiments.run ()
    | "perf" ->
        Perf.run ();
        true
    | "smoke" -> Smoke.run ()
    | "scaling" -> Scaling.run ()
    | "all" ->
        let ok = Experiments.run () in
        Perf.run ();
        ok
    | other ->
        Printf.eprintf
          "unknown mode %S (use: experiments | perf | smoke | scaling)\n" other;
        false
  in
  exit (if ok then 0 else 1)
