(* The per-experiment harness: one section per table/figure/theorem of
   the paper (DESIGN.md, Section 4).  Each section prints the paper's
   expected shape, the measured result, and a PASS/FAIL verdict;
   EXPERIMENTS.md records the same comparisons. *)

open Slx_history
open Slx_sim
open Slx_liveness
open Slx_core

let failures = ref 0

let check name ~expected ~measured ok =
  Printf.printf "  %-58s %s\n" name (if ok then "PASS" else "FAIL");
  Printf.printf "    paper:    %s\n" expected;
  Printf.printf "    measured: %s\n" measured;
  if not ok then incr failures

let section title = Printf.printf "\n== %s ==\n" title

let pp_points points =
  if points = [] then "(none)"
  else String.concat ", " (List.map (Format.asprintf "%a" Freedom.pp) points)

(* ------------------------------------------------------------------ *)

let e1_figure_1a () =
  section "E1. Figure 1a - (l,k) plane for consensus (agreement & validity)";
  let grid = Figure1.consensus ~n:3 () in
  print_string (Figure1.render grid);
  let strongest = Figure1.strongest_not_excluded grid in
  let weakest = Figure1.weakest_excluded grid in
  check "white exactly at (1,1), black at every k >= 2"
    ~expected:"strongest implementable (1,1); weakest non-impl. (1,2)"
    ~measured:
      (Printf.sprintf "strongest %s; weakest %s" (pp_points strongest)
         (pp_points weakest))
    (Freedom.unique strongest = Some Freedom.obstruction_freedom
    && Freedom.unique weakest = Some (Freedom.make ~l:1 ~k:2));
  check "no Unknown cells"
    ~expected:"theorems leave no unclassified points"
    ~measured:
      (Printf.sprintf "%d unknowns"
         (List.length
            (List.filter (fun (_, c) -> c = Figure1.Unknown) grid.Figure1.cells)))
    (List.for_all (fun (_, c) -> c <> Figure1.Unknown) grid.Figure1.cells)

let e2_figure_1b () =
  section "E2. Figure 1b - (l,k) plane for TM (opacity)";
  let grid = Figure1.tm ~n:3 () in
  print_string (Figure1.render grid);
  let strongest = Figure1.strongest_not_excluded grid in
  let weakest = Figure1.weakest_excluded grid in
  check "white exactly at the l = 1 row"
    ~expected:"strongest implementable (1,n); weakest non-impl. (2,2)"
    ~measured:
      (Printf.sprintf "strongest %s; weakest %s" (pp_points strongest)
         (pp_points weakest))
    (Freedom.unique strongest = Some (Freedom.lock_freedom ~n:3)
    && Freedom.unique weakest = Some (Freedom.make ~l:2 ~k:2))

let e3_gmax_consensus () =
  section "E3. Corollary 4.5 - Gmax = {} for consensus from registers";
  let open Slx_consensus in
  let f1 = Consensus_adversary_sets.f1 ~v:0 ~v':1 in
  let f2 = Consensus_adversary_sets.f2 ~v:0 ~v':1 in
  check "F1, F2 are adversary sets w.r.t. wait-freedom and A&V"
    ~expected:"both inside S, both leave a correct proposer undecided"
    ~measured:
      (Printf.sprintf "F1: safe=%b undecided=%b; F2: safe=%b undecided=%b"
         (Consensus_adversary_sets.all_safe f1)
         (Consensus_adversary_sets.all_incomplete f1)
         (Consensus_adversary_sets.all_safe f2)
         (Consensus_adversary_sets.all_incomplete f2))
    (Consensus_adversary_sets.all_safe f1
    && Consensus_adversary_sets.all_incomplete f1
    && Consensus_adversary_sets.all_safe f2
    && Consensus_adversary_sets.all_incomplete f2);
  check "F1 and F2 are disjoint, so Gmax = {}"
    ~expected:"F1 starts with propose_1, F2 with propose_2: empty meet"
    ~measured:
      (Printf.sprintf "|F1|=%d |F2|=%d |F1 meet F2|=%d" (List.length f1)
         (List.length f2)
         (List.length
            (Gmax.intersect ~equal:Consensus_adversary_sets.equal_history
               (Gmax.make ~name:"F1" f1) (Gmax.make ~name:"F2" f2))))
    (Consensus_adversary_sets.disjoint f1 f2);
  (* The Theorem 4.4 micro model checker, both directions. *)
  let pos = Theorem_4_4.positive () and neg = Theorem_4_4.negative () in
  check "Theorem 4.4 criterion on the positive micro-universe"
    ~expected:"asymmetric S: Gmax is an adversary set, weakest exists"
    ~measured:
      (Printf.sprintf "|Gmax|=%d adversary-set=%b brute-force-agrees=%b"
         (List.length (Theorem_4_4.gmax pos))
         (Theorem_4_4.gmax_is_adversary_set pos)
         (Theorem_4_4.verify_by_enumeration pos))
    (Theorem_4_4.weakest_excluding_exists pos
    && Theorem_4_4.verify_by_enumeration pos);
  check "Theorem 4.4 criterion on the negative micro-universe"
    ~expected:"symmetric S: Gmax = {}, no weakest exists"
    ~measured:
      (Printf.sprintf "|Gmax|=%d adversary-set=%b brute-force-agrees=%b"
         (List.length (Theorem_4_4.gmax neg))
         (Theorem_4_4.gmax_is_adversary_set neg)
         (Theorem_4_4.verify_by_enumeration neg))
    ((not (Theorem_4_4.weakest_excluding_exists neg))
    && Theorem_4_4.verify_by_enumeration neg)

let e4_gmax_tm () =
  section "E4. Corollary 4.6 - Gmax = {} for TM opacity";
  let open Slx_tm in
  let r1 =
    Tm_adversary.run_local_progress ~factory:(I12.factory ~vars:1)
      ~max_steps:400 ()
  in
  let r2 =
    Tm_adversary.run_local_progress ~swap:true ~factory:(I12.factory ~vars:1)
      ~max_steps:400 ()
  in
  let first r = History.nth r.Run_report.history 0 in
  check "the strategy and its swap produce disjoint history families"
    ~expected:"F1 histories start with start_1, F2 with start_2"
    ~measured:
      (Format.asprintf "F1 first event %a; F2 first event %a"
         (Slx_history.Event.pp ~pp_inv:Tm_type.pp_invocation
            ~pp_res:Tm_type.pp_response)
         (first r1)
         (Slx_history.Event.pp ~pp_inv:Tm_type.pp_invocation
            ~pp_res:Tm_type.pp_response)
         (first r2))
    (first r1 = Slx_history.Event.Invocation (1, Tm_type.Start)
    && first r2 = Slx_history.Event.Invocation (2, Tm_type.Start));
  let starved r p = List.assoc p (Tm_adversary.commits r.Run_report.history) = 0 in
  check "each adversary defeats local progress while opacity holds"
    ~expected:"one process never commits; history remains opaque"
    ~measured:
      (Printf.sprintf "F1: p1 starved=%b opaque=%b; F2: p2 starved=%b opaque=%b"
         (starved r1 1)
         (Opacity.check_final r1.Run_report.history)
         (starved r2 2)
         (Opacity.check_final r2.Run_report.history))
    (starved r1 1 && starved r2 2
    && Opacity.check_final r1.Run_report.history
    && Opacity.check_final r2.Run_report.history)

let e5_theorem_4_9 () =
  section "E5. Theorem 4.9 - no strongest liveness below Lmax (It/Ib)";
  let r = Theorem_4_9.run ~depth:5 in
  check "It and Ib ensure S; h and h' separate their fair sets"
    ~expected:
      "h = ping in fair(It)\\fair(Ib); h' = ping.ack.ping in fair(Ib)\\fair(It)"
    ~measured:
      (Printf.sprintf "ensure-S=%b h-separates=%b h'-separates=%b outside-Lmax=%b"
         r.Theorem_4_9.both_ensure_s r.Theorem_4_9.h_separates
         r.Theorem_4_9.h'_separates r.Theorem_4_9.h_outside_lmax)
    (Theorem_4_9.holds r);
  check "hence Lt and Lb are incomparable: no strongest exists"
    ~expected:"Lmax is the only candidate (Theorem 4.9)"
    ~measured:(Printf.sprintf "incomparable=%b" r.Theorem_4_9.incomparable)
    r.Theorem_4_9.incomparable;
  check "Lemma 4.8: strongest ensured liveness is Lmax + fair(A_I)"
    ~expected:"enumerated over every liveness property on the universe"
    ~measured:
      (Printf.sprintf "depth-5=%b depth-7=%b"
         (Theorem_4_9.lemma_4_8 ~depth:5)
         (Theorem_4_9.lemma_4_8 ~depth:7))
    (Theorem_4_9.lemma_4_8 ~depth:5 && Theorem_4_9.lemma_4_8 ~depth:7)

let e6_theorem_5_2 () =
  section "E6. Theorem 5.2 - consensus: (1,1) implementable, (1,2) not";
  let open Slx_consensus in
  let good (_ : Consensus_type.response) = true in
  let factory = Register_consensus.factory () in
  (* Positive: solo runs decide, over several victims/seeds. *)
  let solo_ok =
    List.for_all
      (fun seed ->
        let r =
          Runner.run ~n:2 ~factory
            ~driver:
              (Driver.with_crashes [ (0, 2) ]
                 (Driver.random ~procs:[ 1 ] ~seed
                    ~workload:
                      (Driver.forever (fun p -> Consensus_type.Propose (p - 1)))
                    ()))
            ~max_steps:300 ()
        in
        Freedom.holds ~good r Freedom.obstruction_freedom
        && Consensus_safety.check r.Run_report.history)
      [ 1; 2; 3; 4; 5 ]
  in
  check "(1,1): solo runs decide and stay safe (5 seeds)"
    ~expected:"obstruction-free consensus from registers [20, 17]"
    ~measured:(Printf.sprintf "all-pass=%b" solo_ok)
    solo_ok;
  (* Negative: lockstep games across window sizes. *)
  let lockstep_ok =
    List.for_all
      (fun max_steps ->
        let v =
          Exclusion.play ~n:2 ~factory
            ~adversary:(Consensus_adversary.lockstep ())
            ~safety:Consensus_safety.property
            ~liveness:(Live_property.of_freedom ~good (Freedom.make ~l:1 ~k:2))
            ~max_steps
        in
        Exclusion.adversary_wins v)
      [ 400; 800; 1600; 3200 ]
  in
  check "(1,2): the lockstep adversary wins at every window"
    ~expected:"two proposers stay tied forever (CIL impossibility)"
    ~measured:(Printf.sprintf "adversary-wins-at-all-windows=%b" lockstep_ok)
    lockstep_ok

let e7_theorem_5_3 () =
  section "E7. Theorem 5.3 - TM: (1,n) implementable, (2,2) not";
  let open Slx_tm in
  let lock_free_ok =
    List.for_all
      (fun seed ->
        let r =
          Runner.run ~n:3 ~factory:(Agp_tm.factory ~vars:1)
            ~driver:(Tm_workload.random ~seed ())
            ~max_steps:400 ()
        in
        Freedom.holds ~good:Tm_type.good r (Freedom.lock_freedom ~n:3)
        && Opacity.check_final r.Run_report.history)
      [ 1; 2; 3; 4; 5 ]
  in
  check "(1,n): AGP is lock-free and opaque under contention (5 seeds)"
    ~expected:"(1,n)-freedom implementable with opacity [9]"
    ~measured:(Printf.sprintf "all-pass=%b" lock_free_ok)
    lock_free_ok;
  let adversary_ok =
    List.for_all
      (fun max_steps ->
        let r =
          Tm_adversary.run_local_progress ~factory:(Agp_tm.factory ~vars:1)
            ~max_steps ()
        in
        Fairness.is_bounded_fair r
        && Opacity.check_final r.Run_report.history
        && not (Freedom.holds ~good:Tm_type.good r (Freedom.make ~l:2 ~k:2)))
      [ 300; 600; 1200 ]
  in
  check "(2,2): the Section 4.1 adversary wins at every window"
    ~expected:"biprogressing liveness impossible with opacity [4]"
    ~measured:(Printf.sprintf "adversary-wins-at-all-windows=%b" adversary_ok)
    adversary_ok

let e8_lemma_5_4 () =
  section "E8. Lemma 5.4 - I(1,2) ensures S' and (1,2)-freedom";
  let open Slx_tm in
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let safe =
    List.for_all
      (fun seed ->
        let r =
          Runner.run ~n:3 ~factory:(I12.factory ~vars:2)
            ~driver:(Tm_workload.random ~seed ())
            ~max_steps:200 ()
        in
        S_prime.check_final r.Run_report.history)
      seeds
  in
  check "S' holds on random 3-process schedules (8 seeds)"
    ~expected:"opacity + the timestamp abort rule"
    ~measured:(Printf.sprintf "all-pass=%b" safe)
    safe;
  let live =
    List.for_all
      (fun seed ->
        let r =
          Runner.run ~n:3 ~factory:(I12.factory ~vars:2)
            ~driver:
              (Driver.with_crashes [ (0, 3) ]
                 (Tm_workload.random ~procs:[ 1; 2 ] ~seed ()))
            ~max_steps:400 ()
        in
        Freedom.holds ~good:Tm_type.good r (Freedom.make ~l:1 ~k:2))
      seeds
  in
  check "(1,2)-freedom holds when two processes run (8 seeds)"
    ~expected:"with <= 2 active the timestamp rule cannot fire"
    ~measured:(Printf.sprintf "all-pass=%b" live)
    live

let e9_counterexample () =
  section "E9. Section 5.3 - no weakest (l,k)-freedom excluding S'";
  let grid = Figure1.s_prime ~n:3 () in
  print_string (Figure1.render grid);
  let weakest = Figure1.weakest_excluded grid in
  check "two incomparable minimal excluders: (2,2) and (1,3)"
    ~expected:"(2,2) and (1,3) both exclude S'; (1,2) does not"
    ~measured:(Printf.sprintf "minimal blacks: %s" (pp_points weakest))
    (List.length weakest = 2
    && List.exists (Freedom.equal (Freedom.make ~l:2 ~k:2)) weakest
    && List.exists (Freedom.equal (Freedom.make ~l:1 ~k:3)) weakest
    && Freedom.unique weakest = None);
  check "strongest (l,k)-freedom implementable with S' is (1,2)"
    ~expected:"Algorithm I(1,2) implements it (Lemma 5.4)"
    ~measured:(pp_points (Figure1.strongest_not_excluded grid))
    (Freedom.unique (Figure1.strongest_not_excluded grid)
    = Some (Freedom.make ~l:1 ~k:2))

let e10_section_6 () =
  section "E10. Section 6 - alternative restricted liveness spaces";
  let nx = Alt.Nx_liveness.all ~n:3 in
  let total_order =
    List.for_all
      (fun a ->
        List.for_all
          (fun b ->
            Alt.Nx_liveness.stronger_equal a b
            || Alt.Nx_liveness.stronger_equal b a)
          nx)
      nx
  in
  check "(n,x)-liveness is totally ordered"
    ~expected:"strongest impl. (n,0); weakest non-impl. (n,1) [25]"
    ~measured:(Printf.sprintf "total-order=%b over %d points" total_order (List.length nx))
    total_order;
  let singles = Alt.S_freedom.singletons ~n:3 in
  let pairwise_incomparable =
    List.for_all
      (fun a ->
        List.for_all
          (fun b -> a == b || not (Alt.S_freedom.comparable a b))
          singles)
      singles
  in
  check "singleton S-freedoms are pairwise incomparable"
    ~expected:"no strongest implementable S-freedom [36]"
    ~measured:(Printf.sprintf "pairwise-incomparable=%b" pairwise_incomparable)
    pairwise_incomparable


let e11_ablation_timestamp_rule () =
  section "E11. Ablation - Algorithm 1's timestamp rule (I(1,2) vs AGP)";
  let open Slx_tm in
  let run factory = Tm_adversary.run_three_way ~factory ~max_steps:600 in
  let with_rule = run (I12.factory ~vars:1) in
  let without_rule = run (Agp_tm.factory ~vars:1) in
  let commits r =
    List.fold_left (fun acc (_, c) -> acc + c) 0
      (Tm_adversary.commits r.Run_report.history)
  in
  check "the timestamp rule is exactly what buys S' (and costs (1,3))"
    ~expected:"with rule: 0 commits, S' holds; without: commits, S' violated"
    ~measured:
      (Printf.sprintf
         "I(1,2): %d commits, S'=%b; AGP: %d commits, rule-violated=%b"
         (commits with_rule)
         (S_prime.check_final with_rule.Run_report.history)
         (commits without_rule)
         (not (S_prime.timestamp_rule without_rule.Run_report.history)))
    (commits with_rule = 0
    && S_prime.check_final with_rule.Run_report.history
    && commits without_rule > 0
    && not (S_prime.timestamp_rule without_rule.Run_report.history))

let e12_window_sensitivity () =
  section "E12. Ablation - verdict stability across observation windows";
  let open Slx_consensus in
  let good (_ : Consensus_type.response) = true in
  (* The lockstep exclusion verdict must not depend on the bounded-run
     parameters: sweep step budgets x window fractions. *)
  let verdicts =
    List.concat_map
      (fun max_steps ->
        List.map
          (fun frac ->
            let window = max_steps * frac / 4 in
            let report =
              Runner.run ~n:2
                ~factory:(Register_consensus.factory ())
                ~driver:(Consensus_adversary.lockstep ())
                ~max_steps ~window ()
            in
            Slx_liveness.Fairness.is_bounded_fair report
            && Consensus_safety.check report.Run_report.history
            && not
                 (Slx_liveness.Freedom.holds ~good report
                    (Slx_liveness.Freedom.make ~l:1 ~k:2)))
          [ 1; 2; 3 ])
      [ 200; 600; 1800 ]
  in
  check "lockstep wins at every budget x window combination"
    ~expected:"finitization artefacts absent (DESIGN.md section 5)"
    ~measured:
      (Printf.sprintf "%d/%d combinations agree"
         (List.length (List.filter Fun.id verdicts))
         (List.length verdicts))
    (List.for_all Fun.id verdicts)

let e13_mutex_starvation () =
  section "E13. Extension - locks: starvation-freedom as the lock Lmax";
  let open Slx_objects in
  let r = Mutex.run_starvation ~factory:(Mutex.tas_factory ()) ~max_steps:800 in
  let acq = Mutex.acquisitions r.Run_report.history in
  check "the TAS lock is deadlock-free but not starvation-free"
    ~expected:"Section 3.2: starvation-freedom is Lmax for locks"
    ~measured:
      (Printf.sprintf
         "p1 acquisitions=%d p2 acquisitions=%d mutual-exclusion=%b (2,2)=%b"
         (List.assoc 1 acq) (List.assoc 2 acq)
         (Mutex.mutual_exclusion r.Run_report.history)
         (Slx_liveness.Freedom.holds ~good:Mutex.good r
            (Slx_liveness.Freedom.make ~l:2 ~k:2)))
    (List.assoc 1 acq = 0
    && List.assoc 2 acq > 2
    && Mutex.mutual_exclusion r.Run_report.history
    && not
         (Slx_liveness.Freedom.holds ~good:Mutex.good r
            (Slx_liveness.Freedom.make ~l:2 ~k:2))
    && Slx_liveness.Freedom.holds ~good:Mutex.good r
         (Slx_liveness.Freedom.make ~l:1 ~k:2));
  (* The counterpoint: Lamport's Bakery lock is starvation-free, so for
     mutual exclusion the lock Lmax does NOT exclude safety. *)
  let fair_run =
    Runner.run ~n:3 ~factory:(Bakery.factory ())
      ~driver:(Mutex.workload ())
      ~max_steps:1200 ()
  in
  let bakery_starved =
    Mutex.run_starvation ~factory:(Bakery.factory ()) ~max_steps:800
  in
  check "the Bakery lock implements the lock Lmax: no trade-off here"
    ~expected:"starvation-freedom implementable for mutual exclusion"
    ~measured:
      (Printf.sprintf
         "fair run: all-acquire=%b; adversary run fair=%b (unfair = no witness)"
         (Slx_liveness.Freedom.holds ~good:Mutex.good fair_run
            (Slx_liveness.Freedom.wait_freedom ~n:3))
         (Slx_liveness.Fairness.is_bounded_fair bakery_starved))
    (Slx_liveness.Freedom.holds ~good:Mutex.good fair_run
       (Slx_liveness.Freedom.wait_freedom ~n:3)
    && Mutex.mutual_exclusion fair_run.Run_report.history
    && not
         (List.assoc 1 (Mutex.acquisitions bakery_starved.Run_report.history)
          = 0
         && Slx_liveness.Fairness.is_bounded_fair bakery_starved))

let e14_snapshot_substitution () =
  section "E14. Substitution - Algorithm 1 over a register-built snapshot";
  let open Slx_tm in
  let seeds = [ 1; 2; 3 ] in
  let safe =
    List.for_all
      (fun seed ->
        let r =
          Runner.run ~n:3 ~factory:(I12_reg.factory ~vars:2)
            ~driver:(Tm_workload.random ~seed ())
            ~max_steps:250 ()
        in
        S_prime.check_final r.Run_report.history)
      seeds
  in
  let starved =
    let r =
      Tm_adversary.run_three_way ~factory:(I12_reg.factory ~vars:2)
        ~max_steps:1500
    in
    List.fold_left (fun acc (_, c) -> acc + c) 0
      (Tm_adversary.commits r.Run_report.history)
    = 0
  in
  check "Lemma 5.4 survives discharging the snapshot assumption"
    ~expected:"Afek et al. wait-free snapshot preserves S' and the adversary"
    ~measured:(Printf.sprintf "S'-on-random=%b three-way-starves=%b" safe starved)
    (safe && starved)


(* A tiny deterministic counter object for the universal-construction
   experiment. *)
module Counter_type = struct
  type state = int
  type invocation = Incr
  type response = Count of int

  let name = "counter"
  let initial = 0
  let seq Incr st = [ (st + 1, Count (st + 1)) ]
  let good (_ : response) = true
  let equal_state = Int.equal
  let equal_invocation (a : invocation) b = a = b
  let equal_response (a : response) b = a = b
  let pp_state = Format.pp_print_int
  let pp_invocation fmt Incr = Format.pp_print_string fmt "incr"
  let pp_response fmt (Count v) = Format.fprintf fmt "count(%d)" v
end

let e15_universal_construction () =
  section "E15. Extension - universal objects inherit the consensus grid";
  let open Slx_objects in
  let tp : _ Slx_history.Object_type.t = (module Counter_type) in
  let workload = Driver.forever (fun _ -> Counter_type.Incr) in
  let good (_ : Counter_type.response) = true in
  (* Positive: a solo process completes operations over the
     register-consensus log. *)
  let solo =
    Runner.run ~n:2
      ~factory:(Universal.factory ~tp ~consensus:`Registers ())
      ~driver:(Driver.with_crashes [ (0, 2) ] (Driver.solo 1 ~workload))
      ~max_steps:600 ()
  in
  let solo_ok =
    Freedom.holds ~good solo Freedom.obstruction_freedom
    && Slx_history.History.responses_of solo.Run_report.history 1 <> []
  in
  (* Negative: the lockstep schedule ties the first log slot forever. *)
  let lockstep : (Counter_type.invocation, Counter_type.response) Driver.t =
   fun view ->
    let next = if view.Driver.steps 1 <= view.Driver.steps 2 then 1 else 2 in
    match view.Driver.status next with
    | Slx_sim.Runtime.Ready -> Driver.Schedule next
    | Slx_sim.Runtime.Idle -> Driver.Invoke (next, Counter_type.Incr)
    | Slx_sim.Runtime.Crashed -> Driver.Stop
  in
  let tied =
    Runner.run ~n:2
      ~factory:(Universal.factory ~tp ~consensus:`Registers ())
      ~driver:lockstep ~max_steps:1500 ()
  in
  let tied_ok =
    Slx_history.History.count Slx_history.Event.is_response
      tied.Run_report.history
    = 0
    && Fairness.is_bounded_fair tied
    && not (Freedom.holds ~good tied (Freedom.make ~l:1 ~k:2))
  in
  (* With CAS consensus the same schedule cannot stop the log. *)
  let cas =
    Runner.run ~n:2
      ~factory:(Universal.factory ~tp ~consensus:`Cas ())
      ~driver:lockstep ~max_steps:300 ()
  in
  let cas_ok =
    Slx_history.History.count Slx_history.Event.is_response
      cas.Run_report.history
    > 0
  in
  check "any object from registers inherits Figure 1a"
    ~expected:"universal log = consensus per slot: (1,1) yes, (1,2) no"
    ~measured:
      (Printf.sprintf "solo-(1,1)=%b lockstep-ties=%b cas-advances=%b" solo_ok
         tied_ok cas_ok)
    (solo_ok && tied_ok && cas_ok)


let e16_exhaustive_verification () =
  section "E16. Exhaustive bounded verification (all schedules)";
  let one_proposal =
    Explore.workload_invoke
      (Driver.n_times 1 (fun p _ -> Slx_consensus.Consensus_type.Propose (p - 1)))
  in
  let consensus =
    Explore.explore ~n:2
      ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
      ~invoke:one_proposal ~depth:10 ~max_crashes:1
      ~check:(fun r ->
        Slx_consensus.Consensus_safety.check r.Run_report.history)
      ()
  in
  let consensus_ok, consensus_runs =
    match consensus.Explore.outcome with
    | Explore.Ok runs -> (true, runs)
    | Explore.Counterexample _ -> (false, 0)
  in
  let naive =
    Explore.explore_naive ~n:2
      ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
      ~invoke:one_proposal ~depth:10 ~max_crashes:1
      ~check:(fun r ->
        Slx_consensus.Consensus_safety.check r.Run_report.history)
      ()
  in
  Printf.printf
    "    engine: incremental %d steps vs naive %d steps (%.2fx); %d cache \
     hits, %d replays avoided\n"
    consensus.Explore.stats.Explore_stats.steps_executed
    naive.Explore.stats.Explore_stats.steps_executed
    (float_of_int naive.Explore.stats.Explore_stats.steps_executed
    /. float_of_int
         (max 1 consensus.Explore.stats.Explore_stats.steps_executed))
    consensus.Explore.stats.Explore_stats.cache_hits
    consensus.Explore.stats.Explore_stats.replays_avoided;
  let reduced =
    Explore.explore ~n:2
      ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
      ~invoke:one_proposal ~depth:10 ~por:true ~symmetry:true
      ~check:(fun r ->
        Slx_consensus.Consensus_safety.check r.Run_report.history)
      ()
  in
  let plain =
    Explore.explore ~n:2
      ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
      ~invoke:one_proposal ~depth:10
      ~check:(fun r ->
        Slx_consensus.Consensus_safety.check r.Run_report.history)
      ()
  in
  let reduced_ok =
    match (reduced.Explore.outcome, plain.Explore.outcome) with
    | Explore.Ok _, Explore.Ok _ -> true
    | _ -> false
  in
  Printf.printf
    "    reductions (register depth 10): plain %d steps vs POR+symmetry %d \
     steps (%.2fx); %d slept, %d pruned, %d of %d representative runs\n"
    plain.Explore.stats.Explore_stats.steps_executed
    reduced.Explore.stats.Explore_stats.steps_executed
    (float_of_int plain.Explore.stats.Explore_stats.steps_executed
    /. float_of_int (max 1 reduced.Explore.stats.Explore_stats.steps_executed))
    reduced.Explore.stats.Explore_stats.por_prunes
    reduced.Explore.stats.Explore_stats.symmetry_pruned
    reduced.Explore.stats.Explore_stats.runs
    plain.Explore.stats.Explore_stats.runs;
  let one_txn view p =
    let h = Slx_history.History.project view.Driver.history p in
    let has inv =
      Slx_history.History.count
        (fun e -> Slx_history.Event.invocation e = Some inv)
        h
      > 0
    in
    if not (has Slx_tm.Tm_type.Start) then Some Slx_tm.Tm_type.Start
    else if not (has Slx_tm.Tm_type.Try_commit) then
      Some Slx_tm.Tm_type.Try_commit
    else None
  in
  let tm_ok, tm_runs =
    match
      Explore.forall_schedules ~n:2
        ~factory:(fun () -> Slx_tm.Agp_tm.factory ~vars:1)
        ~invoke:one_txn ~depth:10
        ~check:(fun r -> Slx_tm.Opacity.check_final r.Run_report.history)
        ()
    with
    | Explore.Ok runs -> (true, runs)
    | Explore.Counterexample _ -> (false, 0)
  in
  check "safety holds on EVERY schedule, not just sampled ones"
    ~expected:"universal quantification on small instances"
    ~measured:
      (Printf.sprintf
         "CAS consensus: %d schedules (with crashes) ok=%b; AGP: %d schedules ok=%b"
         consensus_runs consensus_ok tm_runs tm_ok)
    (consensus_ok && tm_ok && reduced_ok)

let e17_blocking_vs_non_blocking () =
  section "E17. Extension - blocking vs non-blocking TMs under crashes";
  let open Slx_tm in
  (* Crash p1 while it holds TL2's commit lock; run p2 solo after. *)
  let crash_holding_lock ~factory =
    let driver view =
      let open Driver in
      if Slx_history.Proc.Set.mem 1 (Slx_history.History.crashed view.history)
      then
        match view.status 2 with
        | Slx_sim.Runtime.Ready -> Schedule 2
        | Slx_sim.Runtime.Idle -> Invoke (2, Tm_workload.next_invocation view 2)
        | Slx_sim.Runtime.Crashed -> Stop
      else
        let p1_tryc =
          Slx_history.History.count
            (fun e ->
              Slx_history.Event.invocation e = Some Tm_type.Try_commit)
            (Slx_history.History.project view.history 1)
          > 0
        in
        match view.status 1 with
        | Slx_sim.Runtime.Idle -> Invoke (1, Tm_workload.next_invocation view 1)
        | Slx_sim.Runtime.Ready ->
            if p1_tryc && view.steps 1 >= 4 then Crash 1 else Schedule 1
        | Slx_sim.Runtime.Crashed -> Stop
    in
    Runner.run ~n:2 ~factory ~driver ~max_steps:400 ()
  in
  let tl2 = crash_holding_lock ~factory:(Tl2_tm.factory ()) in
  let agp = crash_holding_lock ~factory:(Agp_tm.factory ~vars:1) in
  let commits r p = List.assoc p (Tm_adversary.commits r.Run_report.history) in
  check "a dead lock holder wedges TL2 but not AGP"
    ~expected:"the paper's non-blocking footnote: crashes must not block others"
    ~measured:
      (Printf.sprintf
         "TL2: p2 commits=%d (1,1)=%b; AGP: p2 commits=%d (1,1)=%b"
         (commits tl2 2)
         (Freedom.holds ~good:Tm_type.good tl2 Freedom.obstruction_freedom)
         (commits agp 2)
         (Freedom.holds ~good:Tm_type.good agp Freedom.obstruction_freedom))
    (commits tl2 2 = 0
    && (not (Freedom.holds ~good:Tm_type.good tl2 Freedom.obstruction_freedom))
    && commits agp 2 > 0
    && Freedom.holds ~good:Tm_type.good agp Freedom.obstruction_freedom)


let e18_consensus_number () =
  section "E18. Extension - the consensus-number-2 boundary (queues)";
  let one_proposal =
    Explore.workload_invoke
      (Driver.n_times 1 (fun p _ -> Slx_consensus.Consensus_type.Propose (p - 1)))
  in
  let two_ok, two_runs =
    match
      Explore.forall_schedules ~n:2
        ~factory:(fun () -> Slx_consensus.Queue_consensus.factory ())
        ~invoke:one_proposal ~depth:10 ~max_crashes:1
        ~check:(fun r ->
          Slx_consensus.Consensus_safety.check r.Run_report.history
          && (r.Run_report.total_time < 10
             || Slx_history.History.count Slx_history.Event.is_response
                  r.Run_report.history
                > 0))
        ()
    with
    | Explore.Ok runs -> (true, runs)
    | Explore.Counterexample _ -> (false, 0)
  in
  let three_breaks =
    match
      Explore.forall_schedules ~n:3
        ~factory:(fun () -> Slx_consensus.Queue_consensus.factory ())
        ~invoke:one_proposal ~depth:9
        ~check:(fun r ->
          Slx_consensus.Consensus_safety.check r.Run_report.history)
        ()
    with
    | Explore.Ok _ -> false
    | Explore.Counterexample _ -> true
  in
  check "wait-free for two processes, broken for three (Herlihy [19])"
    ~expected:"queues have consensus number exactly 2"
    ~measured:
      (Printf.sprintf "n=2: %d schedules all safe+live=%b; n=3: violation found=%b"
         two_runs two_ok three_breaks)
    (two_ok && three_breaks)


let e19_mutex_grid () =
  section "E19. Extension - the mutex grid: no trade-off anywhere";
  let grid = Figure1.mutex ~n:3 () in
  print_string (Figure1.render grid);
  check "every (l,k) point is white for mutual exclusion"
    ~expected:"the lock Lmax (starvation-freedom) is implementable (Bakery)"
    ~measured:
      (Printf.sprintf "whites=%d blacks=%d unknowns=%d (of %d points)"
         (List.length
            (List.filter (fun (_, c) -> c = Figure1.Not_excluded) grid.Figure1.cells))
         (List.length
            (List.filter (fun (_, c) -> c = Figure1.Excluded) grid.Figure1.cells))
         (List.length
            (List.filter (fun (_, c) -> c = Figure1.Unknown) grid.Figure1.cells))
         (List.length grid.Figure1.cells))
    (List.for_all (fun (_, c) -> c = Figure1.Not_excluded) grid.Figure1.cells)

let e20_fair_cycle_cross_validation () =
  section "E20. Fair-cycle search vs adversary games (cross-validation)";
  (* Leg 1: register consensus at n = 2, the Theorem 5.2 grid
     classified twice — by the sampled adversary games and by the
     exhaustive fair-cycle search — and compared cell by cell. *)
  let exhaustive = Figure1.consensus_exhaustive ~n:2 ~depth:10 () in
  let games = Figure1.consensus ~n:2 ~max_steps:1200 () in
  print_string (Figure1.render exhaustive);
  let color_name = function
    | Figure1.Not_excluded -> "not-excluded"
    | Figure1.Excluded -> "excluded"
    | Figure1.Unknown -> "unknown"
  in
  Printf.printf "  point  adversary games  fair-cycle search  agree\n";
  let agreements =
    List.map
      (fun (point, color) ->
        let l = Freedom.l point and k = Freedom.k point in
        let game =
          Option.value (Figure1.color_at games ~l ~k) ~default:Figure1.Unknown
        in
        let agree = game = color in
        Printf.printf "  (%d,%d)  %-16s %-18s %b\n" l k (color_name game)
          (color_name color) agree;
        agree)
      exhaustive.Figure1.cells
  in
  Printf.printf "  games  json: %s\n" (Figure1.to_json games);
  Printf.printf "  search json: %s\n" (Figure1.to_json exhaustive);
  check "every game verdict confirmed by exhaustive search"
    ~expected:"Theorem 5.2 shape from both engines: white only at (1,1)"
    ~measured:
      (Printf.sprintf "%d/%d grid points agree"
         (List.length (List.filter Fun.id agreements))
         (List.length agreements))
    (List.for_all Fun.id agreements);
  (* The acceptance witness in full: the (1,2) lasso at depth 8, and
     its absence for (1,1) under a solo window. *)
  let factory () = Slx_consensus.Register_consensus.factory ~max_rounds:16 () in
  let invoke =
    Explore.workload_invoke
      (Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1)))
  in
  let good (_ : Slx_consensus.Consensus_type.response) = true in
  let r12 =
    Live_explore.search ~n:2 ~factory ~invoke ~good
      ~point:(Freedom.make ~l:1 ~k:2) ~depth:8 ()
  in
  let pp_dec = function
    | Driver.Schedule p -> Printf.sprintf "S%d" p
    | Driver.Invoke (p, _) -> Printf.sprintf "I%d" p
    | Driver.Crash p -> Printf.sprintf "C%d" p
    | Driver.Stop -> "stop"
  in
  (match r12.Live_explore.outcome with
  | Live_explore.Lasso c ->
      Printf.printf "  (1,2) witness: stem [%s], cycle [%s]\n"
        (String.concat " " (List.map pp_dec c.Lasso.c_stem))
        (String.concat " " (List.map pp_dec c.Lasso.c_cycle));
      check "(1,2): fair non-progressing lasso found and pumps"
        ~expected:"Theorem 5.2, negative half: (1,2)-freedom excluded"
        ~measured:
          (Printf.sprintf "period %d, %d nodes, %d candidates"
             (List.length c.Lasso.c_cycle)
             r12.Live_explore.stats.Explore_stats.nodes
             r12.Live_explore.stats.Explore_stats.cycles_examined)
        (match Lasso.pump ~factory:(factory ()) ~repetitions:4 c with
        | Ok rep ->
            Lasso.certified_violation ~good rep (Freedom.make ~l:1 ~k:2)
        | Error _ -> false)
  | Live_explore.No_fair_cycle ->
      check "(1,2): fair non-progressing lasso found and pumps"
        ~expected:"Theorem 5.2, negative half: (1,2)-freedom excluded"
        ~measured:"no lasso found" false);
  let r11 =
    Live_explore.search ~n:2 ~factory ~invoke ~good
      ~point:Freedom.obstruction_freedom ~depth:9 ~max_crashes:1 ()
  in
  check "(1,1): no fair cycle even with solo windows"
    ~expected:"Theorem 5.2, positive half: obstruction-freedom survives"
    ~measured:
      (Printf.sprintf "%s after %d nodes / %d candidates"
         (match r11.Live_explore.outcome with
         | Live_explore.No_fair_cycle -> "no fair cycle"
         | Live_explore.Lasso _ -> "lasso (!)")
         r11.Live_explore.stats.Explore_stats.nodes
         r11.Live_explore.stats.Explore_stats.cycles_examined)
    (r11.Live_explore.outcome = Live_explore.No_fair_cycle);
  (* Leg 2: I12 vs local progress.  A fair transaction cycle spans
     tens of ticks, far past exhaustive reach, so the Section 4.1
     adversary's sampled win is promoted to the same certificate form
     by replay + pumping (doc/model.md section 7 records the
     asymmetry). *)
  let open Slx_tm in
  let ri12 =
    Live_explore.certify_run ~n:2
      ~factory:(fun () -> I12.factory ~vars:1)
      ~driver:(Tm_adversary.local_progress_adversary ())
      ~good:Tm_type.good
      ~point:(Freedom.wait_freedom ~n:2)
      ~max_steps:400 ()
  in
  check "I12 vs local progress: adversary run certifies as a lasso"
    ~expected:"Corollary 4.6 witness is replayable and pumpable"
    ~measured:
      (match ri12.Live_explore.outcome with
      | Live_explore.Lasso c ->
          Printf.sprintf "lasso, period %d ticks" (List.length c.Lasso.c_cycle)
      | Live_explore.No_fair_cycle -> "no certificate")
    (match ri12.Live_explore.outcome with
    | Live_explore.Lasso c -> (
        match
          Lasso.pump ~factory:(I12.factory ~vars:1) ~repetitions:3 c
        with
        | Ok _ -> true
        | Error _ -> false)
    | Live_explore.No_fair_cycle -> false)

let run () =
  Printf.printf "Safety-Liveness Exclusion - experiment suite\n";
  Printf.printf "(paper: Bushkov & Guerraoui, PODC 2015; see EXPERIMENTS.md)\n";
  e1_figure_1a ();
  e2_figure_1b ();
  e3_gmax_consensus ();
  e4_gmax_tm ();
  e5_theorem_4_9 ();
  e6_theorem_5_2 ();
  e7_theorem_5_3 ();
  e8_lemma_5_4 ();
  e9_counterexample ();
  e10_section_6 ();
  e11_ablation_timestamp_rule ();
  e12_window_sensitivity ();
  e13_mutex_starvation ();
  e14_snapshot_substitution ();
  e15_universal_construction ();
  e16_exhaustive_verification ();
  e17_blocking_vs_non_blocking ();
  e18_consensus_number ();
  e19_mutex_grid ();
  e20_fair_cycle_cross_validation ();
  Printf.printf "\n%s\n"
    (if !failures = 0 then "ALL EXPERIMENTS PASS"
     else Printf.sprintf "%d EXPERIMENT CHECKS FAILED" !failures);
  !failures = 0
