(* Domain-scaling measurement for the work-stealing explorer: the same
   depth-8 CAS exploration at 1 and 4 domains, wall clock and
   per-domain load split.  Emits the JSON recorded under "scaling" in
   BENCH_explore.json.  Run with `dune exec bench/main.exe scaling` —
   preferably on a machine with >= 4 cores; on fewer cores the domains
   time-slice and the ratio reflects scheduling overhead, not
   parallelism (the recommended_domain_count is printed so the reader
   can judge). *)

open Slx_sim

let one_proposal =
  Slx_core.Explore.workload_invoke
    (Driver.n_times 1 (fun p _ -> Slx_consensus.Consensus_type.Propose (p - 1)))

let check r = Slx_consensus.Consensus_safety.check r.Run_report.history

let time_explore ~domains ~repeat =
  (* Minimum of [repeat] timings: less noise than the mean under
     container scheduling jitter.  The engine now times itself
     ([Explore_stats.elapsed_ns]), so the measurement excludes this
     harness's own bookkeeping. *)
  let best = ref max_int in
  let last = ref None in
  for _ = 1 to repeat do
    let e =
      Slx_core.Explore.explore ~n:2
        ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
        ~invoke:one_proposal ~depth:8 ~max_crashes:1 ~domains ~check ()
    in
    let dt = e.Slx_core.Explore.stats.Slx_core.Explore_stats.elapsed_ns in
    if dt < !best then best := dt;
    last := Some e
  done;
  (!best, Option.get !last)

let run () =
  let cores = Domain.recommended_domain_count () in
  Printf.printf "== bench scaling: work-stealing fan-out (depth-8 CAS) ==\n";
  Printf.printf "  recommended_domain_count: %d\n" cores;
  let t1, e1 = time_explore ~domains:1 ~repeat:5 in
  let t4, e4 = time_explore ~domains:4 ~repeat:5 in
  let runs e = e.Slx_core.Explore.stats.Slx_core.Explore_stats.runs in
  let st4 = e4.Slx_core.Explore.stats in
  (* On a single-core machine the 4-domain timing measures time-slicing
     overhead, not parallelism: a "speedup" number there is noise
     dressed up as a result, so the row says [single_core] instead.
     The verdict-identity check below runs either way — correctness
     across domain counts does not depend on the core count. *)
  let speedup_field =
    if cores <= 1 then "\"single_core\": true"
    else
      Printf.sprintf "\"speedup\": %.2f"
        (float_of_int t1 /. float_of_int (max 1 t4))
  in
  (* This row is what BENCH_explore.json records under "scaling";
     regenerate it with `dune exec bench/main.exe -- scaling` and paste
     the printed object verbatim.  [recommended_domain_count] rides in
     the row (not just the log line above) so a reader of the JSON can
     judge whether the 4-domain timing measured parallelism or
     single-core time-slicing, and [per_domain_steps] shows how evenly
     the work-stealing fan-out balanced the load. *)
  Printf.printf
    "  {\"case\": \"cas-depth-8-crashes-1-domains\", \
     \"recommended_domain_count\": %d, \"domains_1_ns\": %d, \
     \"domains_4_ns\": %d, %s, \"steals\": %d, \"per_domain_steps\": [%s]}\n"
    cores t1 t4 speedup_field
    st4.Slx_core.Explore_stats.steals
    (String.concat ", "
       (List.map string_of_int
          (Slx_core.Explore_stats.values
             st4.Slx_core.Explore_stats.per_domain_steps)));
  if runs e1 <> runs e4 then begin
    Printf.printf "  SCALING FAILURE: run counts differ (%d vs %d)\n" (runs e1)
      (runs e4);
    false
  end
  else begin
    Printf.printf "  verdicts agree across domain counts (%d runs)\n" (runs e1);
    true
  end
