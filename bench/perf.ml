(* Bechamel performance benchmarks of the artifact itself (P1-P5 in
   DESIGN.md): checker scaling, simulator throughput, implementation
   commit rates and adversary games. *)

open Bechamel
open Toolkit
open Slx_sim

(* ------------------------------------------------------------------ *)
(* Fixtures: histories and factories prepared outside the timed code.  *)

let consensus_workload =
  Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1))

let register_history ~ops =
  (* A register history with [ops] completed operations from a real
     3-process run of a CAS-backed register. *)
  let factory : (Test_support_register.invocation, Test_support_register.response) Runner.factory =
    Test_support_register.factory
  in
  let r =
    Runner.run ~n:3 ~factory
      ~driver:
        (Driver.random ~seed:7
           ~workload:(Driver.n_times ops (fun p k -> Test_support_register.workload p k))
           ())
      ~max_steps:(ops * 8) ()
  in
  r.Run_report.history

let tm_history ~steps =
  let r =
    Runner.run ~n:3 ~factory:(Slx_tm.I12.factory ~vars:2)
      ~driver:(Slx_tm.Tm_workload.random ~seed:9 ())
      ~max_steps:steps ()
  in
  r.Run_report.history

(* P1: linearizability checker scaling. *)
let lin_tests =
  let module Lin = Slx_safety.Linearizability.Make (Test_support_register) in
  List.map
    (fun ops ->
      let h = register_history ~ops in
      Test.make
        ~name:(Printf.sprintf "linearizability/%d-ops" ops)
        (Staged.stage (fun () -> ignore (Lin.check h))))
    [ 4; 8; 12 ]

(* P2: opacity checker scaling. *)
let opacity_tests =
  List.map
    (fun steps ->
      let h = tm_history ~steps in
      let txns = List.length (Slx_tm.Transaction.of_history h) in
      Test.make
        ~name:(Printf.sprintf "opacity/%d-txns" txns)
        (Staged.stage (fun () -> ignore (Slx_tm.Opacity.check_final h))))
    [ 60; 120; 240 ]

(* P3: simulator throughput (steps/run of register consensus). *)
let simulator_tests =
  List.map
    (fun steps ->
      Test.make
        ~name:(Printf.sprintf "simulator/consensus-%d-steps" steps)
        (Staged.stage (fun () ->
             ignore
               (Runner.run ~n:3
                  ~factory:(Slx_consensus.Register_consensus.factory ())
                  ~driver:
                    (Driver.random ~seed:3 ~workload:consensus_workload ())
                  ~max_steps:steps ()))))
    [ 200; 400 ]

(* P4: I(1,2) commit throughput by process count. *)
let i12_tests =
  List.map
    (fun n ->
      Test.make
        ~name:(Printf.sprintf "i12/run-n%d-300-steps" n)
        (Staged.stage (fun () ->
             ignore
               (Runner.run ~n ~factory:(Slx_tm.I12.factory ~vars:2)
                  ~driver:(Slx_tm.Tm_workload.random ~seed:5 ())
                  ~max_steps:300 ()))))
    [ 2; 3; 4 ]

(* P4b: the snapshot-substitution overhead (atomic snapshot vs the
   Afek-et-al. register construction). *)
let snapshot_substitution_tests =
  List.map
    (fun (name, factory) ->
      Test.make
        ~name:(Printf.sprintf "i12-variant/%s-200-steps" name)
        (Staged.stage (fun () ->
             ignore
               (Runner.run ~n:3 ~factory
                  ~driver:(Slx_tm.Tm_workload.random ~seed:5 ())
                  ~max_steps:200 ()))))
    [
      ("atomic-snapshot", Slx_tm.I12.factory ~vars:2);
      ("register-snapshot", Slx_tm.I12_reg.factory ~vars:2);
    ]

(* P4c: universal-construction throughput over the two consensus
   building blocks. *)
let universal_tests =
  let tp : _ Slx_history.Object_type.t = (module Test_support_register) in
  let workload =
    Driver.forever (fun p ->
        if p = 1 then Test_support_register.Write p else Test_support_register.Read)
  in
  List.map
    (fun (name, consensus) ->
      Test.make
        ~name:(Printf.sprintf "universal/%s-200-steps" name)
        (Staged.stage (fun () ->
             ignore
               (Runner.run ~n:3
                  ~factory:(Slx_objects.Universal.factory ~tp ~consensus ())
                  ~driver:(Driver.random ~seed:7 ~workload ())
                  ~max_steps:200 ()))))
    [ ("cas-consensus", `Cas); ("register-consensus", `Registers) ]

(* P4d: the exhaustive explorer — the incremental engine against the
   replay-from-scratch reference, wall clock. *)
let explore_tests =
  let one_proposal =
    Slx_core.Explore.workload_invoke
      (Driver.n_times 1 (fun p _ -> Slx_consensus.Consensus_type.Propose (p - 1)))
  in
  List.concat_map
    (fun depth ->
      [
        Test.make
          ~name:(Printf.sprintf "explore/cas-consensus-depth-%d" depth)
          (Staged.stage (fun () ->
               ignore
                 (Slx_core.Explore.explore ~n:2
                    ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
                    ~invoke:one_proposal ~depth
                    ~check:(fun _ -> true)
                    ())));
        Test.make
          ~name:(Printf.sprintf "explore/cas-consensus-depth-%d-naive" depth)
          (Staged.stage (fun () ->
               ignore
                 (Slx_core.Explore.explore_naive ~n:2
                    ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
                    ~invoke:one_proposal ~depth
                    ~check:(fun _ -> true)
                    ())));
      ])
    [ 6; 8; 10 ]
  @ [
      (* The reduced engine (POR + symmetry) on the branchier
         register-consensus tree, against the plain incremental engine
         on the same instance. *)
      Test.make ~name:"explore/register-consensus-depth-10-reduced"
        (Staged.stage (fun () ->
             ignore
               (Slx_core.Explore.explore ~n:2
                  ~factory:(fun () ->
                    Slx_consensus.Register_consensus.factory ())
                  ~invoke:one_proposal ~depth:10 ~por:true ~symmetry:true
                  ~check:(fun _ -> true)
                  ())));
      Test.make ~name:"explore/register-consensus-depth-10"
        (Staged.stage (fun () ->
             ignore
               (Slx_core.Explore.explore ~n:2
                  ~factory:(fun () ->
                    Slx_consensus.Register_consensus.factory ())
                  ~invoke:one_proposal ~depth:10
                  ~check:(fun _ -> true)
                  ())));
    ]

(* P4e: TM checker family on one fixed history. *)
let checker_family_tests =
  let h = tm_history ~steps:120 in
  [
    Test.make ~name:"checker/opacity-final"
      (Staged.stage (fun () -> ignore (Slx_tm.Opacity.check_final h)));
    Test.make ~name:"checker/strict-serializability"
      (Staged.stage (fun () -> ignore (Slx_tm.Serializability.strict h)));
    Test.make ~name:"checker/serializability"
      (Staged.stage (fun () -> ignore (Slx_tm.Serializability.plain h)));
    Test.make ~name:"checker/s-prime-rule"
      (Staged.stage (fun () -> ignore (Slx_tm.S_prime.timestamp_rule h)));
  ]

(* P6: hot-loop raw-speed microbenchmarks — the three operations the
   compact-encoding pass rewrote, each against its predecessor, so the
   claimed speedups (BENCH_explore.json "micro" rows, gated ≥2x by
   bench/smoke.ml) are measured per-operation and not only end-to-end:
   transposition keying (structural fingerprint lookup vs hash-consed
   compact key), pending-step commutation (footprint list walk vs
   conflict bitmask), and the sanitizer (shadowed vs bare run, now
   batched per step). *)
let micro_tests =
  let one_proposal =
    Slx_core.Explore.workload_invoke
      (Driver.n_times 1 (fun p _ -> Slx_consensus.Consensus_type.Propose (p - 1)))
  in
  (* A mid-tree register-consensus configuration: the kind of cursor
     the engine keys at every node. *)
  let cursor =
    let c =
      Runner.Cursor.create ~n:2
        ~factory:(Slx_consensus.Register_consensus.factory ()) ()
    in
    List.iter (Runner.Cursor.apply c)
      [
        Driver.Invoke (1, Slx_consensus.Consensus_type.Propose 0);
        Driver.Schedule 1;
        Driver.Invoke (2, Slx_consensus.Consensus_type.Propose 1);
        Driver.Schedule 2;
        Driver.Schedule 1;
      ];
    c
  in
  let struct_table = Hashtbl.create 64 in
  Hashtbl.replace struct_table (Runner.Cursor.fingerprint cursor) 1;
  let keys = Slx_core.Intern.Ints.create () in
  let compact_table = Hashtbl.create 64 in
  Hashtbl.replace compact_table
    (Slx_core.Intern.Ints.intern keys (Runner.Cursor.compact_key cursor ~extra:[ 0 ]))
    1;
  let fp_a =
    Runtime.of_accesses
      [
        { Runtime.obj = 1; write = true };
        { Runtime.obj = 2; write = false };
        { Runtime.obj = 3; write = false };
      ]
  and fp_b =
    Runtime.of_accesses
      [
        { Runtime.obj = 2; write = false };
        { Runtime.obj = 4; write = true };
        { Runtime.obj = 5; write = false };
      ]
  in
  let mask_a = Runtime.mask_of_footprint fp_a
  and mask_b = Runtime.mask_of_footprint fp_b in
  [
    Test.make ~name:"micro/fingerprint-structural"
      (Staged.stage (fun () ->
           ignore
             (Hashtbl.find_opt struct_table (Runner.Cursor.fingerprint cursor))));
    Test.make ~name:"micro/fingerprint-compact"
      (Staged.stage (fun () ->
           ignore
             (Hashtbl.find_opt compact_table
                (Slx_core.Intern.Ints.intern keys
                   (Runner.Cursor.compact_key cursor ~extra:[ 0 ])))));
    Test.make ~name:"micro/shared-digest-full-fold"
      (Staged.stage (fun () ->
           ignore (Runner.Cursor.shared_digest_full cursor)));
    Test.make ~name:"micro/shared-digest-incremental"
      (Staged.stage (fun () -> ignore (Runner.Cursor.shared_digest cursor)));
    Test.make ~name:"micro/commute-footprints"
      (Staged.stage (fun () -> ignore (Runtime.footprints_commute fp_a fp_b)));
    Test.make ~name:"micro/commute-masks"
      (Staged.stage (fun () -> ignore (Runtime.masks_commute mask_a mask_b)));
    Test.make ~name:"micro/explore-depth-8-sanitized"
      (Staged.stage (fun () ->
           ignore
             (Slx_core.Explore.explore ~n:2
                ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
                ~invoke:one_proposal ~depth:8 ~sanitize:true
                ~check:(fun _ -> true)
                ())));
    Test.make ~name:"micro/explore-depth-8-bare"
      (Staged.stage (fun () ->
           ignore
             (Slx_core.Explore.explore ~n:2
                ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
                ~invoke:one_proposal ~depth:8
                ~check:(fun _ -> true)
                ())));
  ]

(* P5: adversary games. *)
let game_tests =
  [
    Test.make ~name:"game/lockstep-600-steps"
      (Staged.stage (fun () ->
           ignore
             (Slx_consensus.Consensus_adversary.run_lockstep
                ~factory:(Slx_consensus.Register_consensus.factory ())
                ~max_steps:600)));
    Test.make ~name:"game/tm-local-progress-400-steps"
      (Staged.stage (fun () ->
           ignore
             (Slx_tm.Tm_adversary.run_local_progress
                ~factory:(Slx_tm.I12.factory ~vars:1)
                ~max_steps:400 ())));
  ]

let all_tests () =
  Test.make_grouped ~name:"slx"
    (lin_tests @ opacity_tests @ simulator_tests @ i12_tests
    @ snapshot_substitution_tests @ universal_tests @ explore_tests
    @ checker_family_tests @ micro_tests @ game_tests)

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg instances (all_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n== performance (ns per run, OLS on monotonic clock) ==\n";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        (name, est) :: acc)
      results []
  in
  List.iter
    (fun (name, est) -> Printf.printf "  %-44s %14.0f ns\n" name est)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)
