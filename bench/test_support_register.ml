(* A shared integer register as an object type + implementation, used
   as the linearizability-checker workload in the perf benches. *)

type state = int
type invocation = Read | Write of int
type response = Val of int | Ok

let name = "register"
let initial = 0

let seq inv st =
  match inv with Read -> [ (st, Val st) ] | Write v -> [ (v, Ok) ]

let good (_ : response) = true
let equal_state = Int.equal
let equal_invocation (a : invocation) b = a = b
let equal_response (a : response) b = a = b
let pp_state = Format.pp_print_int

let pp_invocation fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write v -> Format.fprintf fmt "write(%d)" v

let pp_response fmt = function
  | Val v -> Format.fprintf fmt "val(%d)" v
  | Ok -> Format.pp_print_string fmt "ok"

(* Linearizable implementation backed by one atomic cell. *)
let factory : n:int -> (invocation, response) Slx_sim.Runner.impl =
 fun ~n:_ ->
  let cell = Slx_base_objects.Register.make 0 in
  fun ~proc:_ inv ->
    match inv with
    | Read -> Val (Slx_base_objects.Register.read cell)
    | Write v ->
        Slx_base_objects.Register.write cell v;
        Ok

let workload p k = if (p + k) mod 2 = 0 then Read else Write ((p * 10) + k)
