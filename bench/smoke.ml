(* Bench smoke: a single tiny exploration (depth 8, one iteration per
   engine) cheap enough to run on every `dune runtest`, asserting the
   incremental engine's headline property — at least 3x fewer runtime
   steps than naive replay on depth-8 CAS consensus — and emitting the
   JSON recorded in BENCH_explore.json. *)

open Slx_sim

let explore_pair ~impl ~factory ~depth ~max_crashes =
  let one_proposal =
    Slx_core.Explore.workload_invoke
      (Driver.n_times 1 (fun p _ -> Slx_consensus.Consensus_type.Propose (p - 1)))
  in
  let check r = Slx_consensus.Consensus_safety.check r.Run_report.history in
  let inc =
    Slx_core.Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth
      ~max_crashes ~check ()
  in
  let naive =
    Slx_core.Explore.explore_naive ~n:2 ~factory ~invoke:one_proposal ~depth
      ~max_crashes ~check ()
  in
  let steps e = e.Slx_core.Explore.stats.Slx_core.Explore_stats.steps_executed in
  let runs e = e.Slx_core.Explore.stats.Slx_core.Explore_stats.runs in
  let digest e =
    e.Slx_core.Explore.stats.Slx_core.Explore_stats.history_digest
  in
  let ratio = float_of_int (steps naive) /. float_of_int (max 1 (steps inc)) in
  Printf.printf
    "  {\"case\": \"%s-depth-%d-crashes-%d\", \"naive_steps\": %d, \
     \"incremental_steps\": %d, \"ratio\": %.2f, \"runs\": %d, \
     \"cache_hits\": %d}\n"
    impl depth max_crashes (steps naive) (steps inc) ratio (runs inc)
    inc.Slx_core.Explore.stats.Slx_core.Explore_stats.cache_hits;
  let equivalent = runs inc = runs naive && digest inc = digest naive in
  if not equivalent then
    Printf.printf
      "  SMOKE FAILURE: engines disagree (runs %d vs %d, digest mismatch=%b)\n"
      (runs inc) (runs naive)
      (digest inc <> digest naive);
  (ratio, equivalent)

let run () =
  Printf.printf "== bench smoke: incremental explorer vs naive replay ==\n";
  let cas_ratio, cas_eq =
    explore_pair ~impl:"cas"
      ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
      ~depth:8 ~max_crashes:0
  in
  let crash_ratio, crash_eq =
    explore_pair ~impl:"cas"
      ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
      ~depth:8 ~max_crashes:1
  in
  let ok = cas_ratio >= 3.0 && crash_ratio >= 3.0 && cas_eq && crash_eq in
  Printf.printf "smoke %s: depth-8 step ratios %.2fx / %.2fx (bar: 3x)\n"
    (if ok then "OK" else "FAILED")
    cas_ratio crash_ratio;
  ok
