(* Bench smoke: tiny explorations (one iteration per engine) cheap
   enough to run on every `dune runtest`, asserting the engine's two
   headline properties — the incremental engine executes at least 3x
   fewer runtime steps than naive replay on depth-8 CAS consensus, and
   the POR+symmetry reduced engine at least 3x fewer again than the
   plain incremental engine on depth-10 register consensus — and
   emitting the JSON rows recorded in BENCH_explore.json. *)

open Slx_sim

let one_proposal =
  Slx_core.Explore.workload_invoke
    (Driver.n_times 1 (fun p _ -> Slx_consensus.Consensus_type.Propose (p - 1)))

let check r = Slx_consensus.Consensus_safety.check r.Run_report.history

let steps e = e.Slx_core.Explore.stats.Slx_core.Explore_stats.steps_executed
let runs e = e.Slx_core.Explore.stats.Slx_core.Explore_stats.runs
let digest e = e.Slx_core.Explore.stats.Slx_core.Explore_stats.history_digest

let safe e =
  match e.Slx_core.Explore.outcome with
  | Slx_core.Explore.Ok _ -> true
  | Slx_core.Explore.Counterexample _ -> false

let explore_pair ~impl ~factory ~depth ~max_crashes =
  let inc =
    Slx_core.Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth
      ~max_crashes ~check ()
  in
  let naive =
    Slx_core.Explore.explore_naive ~n:2 ~factory ~invoke:one_proposal ~depth
      ~max_crashes ~check ()
  in
  let ratio = float_of_int (steps naive) /. float_of_int (max 1 (steps inc)) in
  Printf.printf
    "  {\"case\": \"%s-depth-%d-crashes-%d\", \"naive_steps\": %d, \
     \"incremental_steps\": %d, \"ratio\": %.2f, \"runs\": %d, \
     \"cache_hits\": %d}\n"
    impl depth max_crashes (steps naive) (steps inc) ratio (runs inc)
    inc.Slx_core.Explore.stats.Slx_core.Explore_stats.cache_hits;
  let equivalent = runs inc = runs naive && digest inc = digest naive in
  if not equivalent then
    Printf.printf
      "  SMOKE FAILURE: engines disagree (runs %d vs %d, digest mismatch=%b)\n"
      (runs inc) (runs naive)
      (digest inc <> digest naive);
  (ratio, equivalent)

(* The reduced engine (POR + symmetry) against the plain incremental
   engine on the same instance: the reductions must agree on the
   verdict (representative runs, not the full multiset) and cut the
   executed steps by at least [bar]. *)
let explore_reduced ~impl ~factory ~depth ~max_crashes =
  let inc =
    Slx_core.Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth
      ~max_crashes ~check ()
  in
  let red =
    Slx_core.Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth
      ~max_crashes ~por:true ~symmetry:true ~check ()
  in
  let ratio = float_of_int (steps inc) /. float_of_int (max 1 (steps red)) in
  let st = red.Slx_core.Explore.stats in
  Printf.printf
    "  {\"case\": \"%s-depth-%d-crashes-%d\", \"incremental_steps\": %d, \
     \"reduced_steps\": %d, \"ratio\": %.2f, \"representative_runs\": %d, \
     \"por_prunes\": %d, \"symmetry_pruned\": %d}\n"
    impl depth max_crashes (steps inc) (steps red) ratio (runs red)
    st.Slx_core.Explore_stats.por_prunes
    st.Slx_core.Explore_stats.symmetry_pruned;
  let agree = safe inc = safe red in
  if not agree then
    Printf.printf
      "  SMOKE FAILURE: reduced engine verdict differs (safe %b vs %b)\n"
      (safe inc) (safe red);
  (ratio, agree)

(* The dynamic reduction (observed-access DPOR) against the plain
   incremental engine on the same instance: observed accesses refine
   declared footprints, so DPOR must prune at least as hard as the
   declaration-based sleep sets while agreeing on the verdict.  These
   are the BENCH_explore.json "dpor" step rows. *)
let explore_dpor ~impl ~factory ~depth ~max_crashes =
  let inc =
    Slx_core.Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth
      ~max_crashes ~check ()
  in
  let red =
    Slx_core.Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth
      ~max_crashes ~dpor:true ~check ()
  in
  let ratio = float_of_int (steps inc) /. float_of_int (max 1 (steps red)) in
  let st = red.Slx_core.Explore.stats in
  Printf.printf
    "  {\"case\": \"%s-depth-%d-crashes-%d\", \"incremental_steps\": %d, \
     \"dpor_steps\": %d, \"ratio\": %.2f, \"representative_runs\": %d, \
     \"por_prunes\": %d, \"race_reversals\": %d}\n"
    impl depth max_crashes (steps inc) (steps red) ratio (runs red)
    st.Slx_core.Explore_stats.por_prunes
    st.Slx_core.Explore_stats.race_reversals;
  let agree = safe inc = safe red in
  if not agree then
    Printf.printf
      "  SMOKE FAILURE: dpor engine verdict differs (safe %b vs %b)\n"
      (safe inc) (safe red);
  (ratio, agree && steps red <= steps inc)

(* The fair-cycle search on the Theorem 5.2 split: the (1,2) lasso must
   be found and (1,1) must come back clean under a solo window, with
   the work counters emitted as the BENCH_explore.json "live" rows. *)
let live_smoke () =
  Printf.printf "== bench smoke: fair-cycle search (live explorer) ==\n";
  let factory () = Slx_consensus.Register_consensus.factory ~max_rounds:16 () in
  let invoke =
    Slx_core.Explore.workload_invoke
      (Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1)))
  in
  let good (_ : Slx_consensus.Consensus_type.response) = true in
  let case ~name ~point ~depth ~max_crashes =
    let r =
      Slx_core.Live_explore.search ~n:2 ~factory ~invoke ~good ~point ~depth
        ~max_crashes ()
    in
    let st = r.Slx_core.Live_explore.stats in
    let outcome =
      match r.Slx_core.Live_explore.outcome with
      | Slx_core.Live_explore.Lasso _ -> "lasso"
      | Slx_core.Live_explore.No_fair_cycle -> "no_fair_cycle"
    in
    Printf.printf
      "  {\"case\": %S, \"outcome\": %S, \"nodes\": %d, \"steps\": %d, \
       \"cycles_examined\": %d, \"fair_cycles\": %d}\n"
      name outcome st.Slx_core.Explore_stats.nodes
      st.Slx_core.Explore_stats.steps_executed
      st.Slx_core.Explore_stats.cycles_examined
      st.Slx_core.Explore_stats.fair_cycles;
    outcome
  in
  let o12 =
    case ~name:"register-live-(1,2)-depth-8"
      ~point:(Slx_liveness.Freedom.make ~l:1 ~k:2)
      ~depth:8 ~max_crashes:0
  in
  let o11 =
    case ~name:"register-live-(1,1)-depth-8-crashes-1"
      ~point:Slx_liveness.Freedom.obstruction_freedom ~depth:8 ~max_crashes:1
  in
  let ok = o12 = "lasso" && o11 = "no_fair_cycle" in
  if not ok then
    Printf.printf
      "  SMOKE FAILURE: Theorem 5.2 split not reproduced ((1,2) %s, (1,1) %s)\n"
      o12 o11;
  ok

(* The cycle-proviso DPOR legs: the same two live instances, reduced.
   The (1,1) no-fair-cycle leg is the headline acceptance bar — the
   reduction must cut BOTH nodes and steps by at least 3x while
   reproducing the clean verdict; the (1,2) leg must emit the
   byte-identical lex-least lasso certificate.  These are the
   BENCH_explore.json "dpor" live rows. *)
let live_dpor_smoke () =
  Printf.printf "== bench smoke: cycle-proviso DPOR (live explorer) ==\n";
  let factory () = Slx_consensus.Register_consensus.factory ~max_rounds:16 () in
  let invoke =
    Slx_core.Explore.workload_invoke
      (Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1)))
  in
  let good (_ : Slx_consensus.Consensus_type.response) = true in
  let search ~reduce ~point ~depth ~max_crashes =
    Slx_core.Live_explore.search ~n:2 ~factory ~invoke ~good ~point ~depth
      ~max_crashes ~dpor:reduce ~invoke_order:reduce ()
  in
  let nodes r = r.Slx_core.Live_explore.stats.Slx_core.Explore_stats.nodes in
  let lsteps r =
    r.Slx_core.Live_explore.stats.Slx_core.Explore_stats.steps_executed
  in
  let row ~name base red =
    let st = red.Slx_core.Live_explore.stats in
    let node_ratio =
      float_of_int (nodes base) /. float_of_int (max 1 (nodes red))
    in
    let step_ratio =
      float_of_int (lsteps base) /. float_of_int (max 1 (lsteps red))
    in
    Printf.printf
      "  {\"case\": %S, \"baseline_nodes\": %d, \"dpor_nodes\": %d, \
       \"baseline_steps\": %d, \"dpor_steps\": %d, \"node_ratio\": %.2f, \
       \"step_ratio\": %.2f, \"race_reversals\": %d, \"proviso_wakes\": %d, \
       \"invoke_order_prunes\": %d}\n"
      name (nodes base) (nodes red) (lsteps base) (lsteps red) node_ratio
      step_ratio st.Slx_core.Explore_stats.race_reversals
      st.Slx_core.Explore_stats.proviso_wakes
      st.Slx_core.Explore_stats.invoke_order_prunes;
    (node_ratio, step_ratio)
  in
  (* The (1,1) clean leg under a solo window. *)
  let point11 = Slx_liveness.Freedom.obstruction_freedom in
  let base11 = search ~reduce:false ~point:point11 ~depth:8 ~max_crashes:1 in
  let red11 = search ~reduce:true ~point:point11 ~depth:8 ~max_crashes:1 in
  let clean r =
    match r.Slx_core.Live_explore.outcome with
    | Slx_core.Live_explore.No_fair_cycle -> true
    | Slx_core.Live_explore.Lasso _ -> false
  in
  let node_ratio, step_ratio =
    row ~name:"register-live-(1,1)-depth-8-crashes-1-dpor" base11 red11
  in
  let verdict11 = clean base11 && clean red11 in
  if not verdict11 then
    Printf.printf "  SMOKE FAILURE: DPOR broke the (1,1) clean verdict\n";
  (* The (1,2) lasso leg: byte-identical certificate. *)
  let point12 = Slx_liveness.Freedom.make ~l:1 ~k:2 in
  let base12 = search ~reduce:false ~point:point12 ~depth:8 ~max_crashes:0 in
  let red12 = search ~reduce:true ~point:point12 ~depth:8 ~max_crashes:0 in
  ignore (row ~name:"register-live-(1,2)-depth-8-dpor" base12 red12);
  let cert_identical =
    match
      (base12.Slx_core.Live_explore.outcome, red12.Slx_core.Live_explore.outcome)
    with
    | Slx_core.Live_explore.Lasso a, Slx_core.Live_explore.Lasso b ->
        a.Slx_liveness.Lasso.c_stem = b.Slx_liveness.Lasso.c_stem
        && a.Slx_liveness.Lasso.c_cycle = b.Slx_liveness.Lasso.c_cycle
        && a.Slx_liveness.Lasso.c_cells = b.Slx_liveness.Lasso.c_cells
    | _ -> false
  in
  if not cert_identical then
    Printf.printf
      "  SMOKE FAILURE: DPOR (1,2) lasso certificate differs from baseline\n";
  let ok =
    verdict11 && cert_identical && node_ratio >= 3.0 && step_ratio >= 3.0
  in
  if not (node_ratio >= 3.0 && step_ratio >= 3.0) then
    Printf.printf
      "  SMOKE FAILURE: DPOR live reduction below the 3x bar (nodes %.2fx, \
       steps %.2fx)\n"
      node_ratio step_ratio;
  (ok, node_ratio, step_ratio)

(* Observability smoke: one traced fair-cycle search and one traced
   2-domain exploration, exported to Chrome trace-event JSON, re-parsed
   with the validator, and reconciled event-by-event against the stats
   of the run that produced them — plus the tracing-overhead row of
   BENCH_explore.json (the disabled sink must stay within noise; the
   ring sink within a few percent).  The trace of the live case is kept
   at [$SLX_SMOKE_TRACE] when that is set, so CI can upload it as an
   artifact. *)
module Obs = Slx_obs.Obs
module Json = Slx_obs.Json
module Trace_export = Slx_obs.Trace_export

(* (path, keep): kept for CI upload when [$SLX_SMOKE_TRACE] names it. *)
let smoke_trace_path () =
  match Sys.getenv_opt "SLX_SMOKE_TRACE" with
  | Some p when p <> "" -> (p, true)
  | _ -> (Filename.temp_file "slx_smoke" ".trace.json", false)

let reconcile name pairs =
  let bad = List.filter (fun (_, got, want) -> got <> want) pairs in
  List.iter
    (fun (what, got, want) ->
      Printf.printf "  SMOKE FAILURE: %s: %s = %d, stats say %d\n" name what
        got want)
    bad;
  bad = []

let obs_live_smoke () =
  let factory () = Slx_consensus.Register_consensus.factory ~max_rounds:16 () in
  let invoke =
    Slx_core.Explore.workload_invoke
      (Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1)))
  in
  let good (_ : Slx_consensus.Consensus_type.response) = true in
  let search ?obs () =
    Slx_core.Live_explore.search ~n:2 ~factory ~invoke ~good
      ~point:Slx_liveness.Freedom.obstruction_freedom ~depth:8 ~max_crashes:1
      ?obs ()
  in
  let untraced = search () in
  let obs = Obs.create ~tracing:true ~ring_capacity:(1 lsl 18) () in
  let traced = search ~obs () in
  let same_outcome =
    (match (untraced.Slx_core.Live_explore.outcome,
            traced.Slx_core.Live_explore.outcome) with
    | Slx_core.Live_explore.No_fair_cycle, Slx_core.Live_explore.No_fair_cycle
      ->
        true
    | Slx_core.Live_explore.Lasso _, Slx_core.Live_explore.Lasso _ -> true
    | _ -> false)
    && untraced.Slx_core.Live_explore.stats.Slx_core.Explore_stats.steps_executed
       = traced.Slx_core.Live_explore.stats.Slx_core.Explore_stats.steps_executed
  in
  if not same_outcome then
    Printf.printf "  SMOKE FAILURE: tracing changed the live search\n";
  let st = traced.Slx_core.Live_explore.stats in
  let path, keep = smoke_trace_path () in
  Obs.write_trace obs path;
  let verdict = Result.bind (Json.parse_file path) Trace_export.validate in
  if not keep then Sys.remove path;
  match verdict with
  | Error msg ->
      Printf.printf "  SMOKE FAILURE: live trace invalid: %s\n" msg;
      false
  | Ok sm ->
      Printf.printf
        "  {\"case\": \"register-live-(1,1)-depth-8-crashes-1-traced\", \
         \"trace_events\": %d, \"node_spans\": %d, \"pump_spans\": %d, \
         \"dropped\": %d, \"trace\": %S}\n"
        sm.Trace_export.sm_events
        (Trace_export.span_count sm "node")
        (Trace_export.span_count sm "pump")
        sm.Trace_export.sm_dropped path;
      same_outcome
      && reconcile "live trace"
           [
             ( "node spans",
               Trace_export.span_count sm "node",
               st.Slx_core.Explore_stats.nodes );
             ( "cache_hit instants",
               Trace_export.instant_count sm "cache_hit",
               st.Slx_core.Explore_stats.cache_hits );
             ( "cycle_candidate instants",
               Trace_export.instant_count sm "cycle_candidate",
               st.Slx_core.Explore_stats.cycles_examined );
             ( "pump spans",
               Trace_export.span_count sm "pump",
               st.Slx_core.Explore_stats.fair_cycles );
             ("dropped", sm.Trace_export.sm_dropped, 0);
           ]

let obs_parallel_smoke () =
  let obs = Obs.create ~tracing:true ~ring_capacity:(1 lsl 18) () in
  let e =
    Slx_core.Explore.explore ~n:2
      ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
      ~invoke:one_proposal ~depth:6 ~max_crashes:0 ~domains:2 ~obs ~check ()
  in
  let st = e.Slx_core.Explore.stats in
  let path = Filename.temp_file "slx_smoke_par" ".trace.json" in
  Obs.write_trace obs path;
  let r =
    match
      Result.bind (Json.parse_file path) (fun j -> Trace_export.validate j)
    with
    | Error msg ->
        Printf.printf "  SMOKE FAILURE: parallel trace invalid: %s\n" msg;
        false
    | Ok sm ->
        Printf.printf
          "  {\"case\": \"cas-depth-6-domains-2-traced\", \"lanes\": %d, \
           \"flow_starts\": %d, \"flow_ends\": %d, \"steals\": %d}\n"
          sm.Trace_export.sm_lanes sm.Trace_export.sm_flow_starts
          sm.Trace_export.sm_flow_ends st.Slx_core.Explore_stats.steals;
        reconcile "parallel trace"
          [
            ( "steal flow ends",
              sm.Trace_export.sm_flow_ends,
              st.Slx_core.Explore_stats.steals );
            ("dropped", sm.Trace_export.sm_dropped, 0);
          ]
  in
  Sys.remove path;
  r

(* The tracing-overhead row: the depth-10 reduced exploration with the
   sink disabled vs a live ring sink, minimum elapsed_ns over a few
   repetitions (the same instance as the reduction row above, so the
   step count must come back identical). *)
let obs_overhead_smoke () =
  let explore ?obs () =
    Slx_core.Explore.explore ~n:2
      ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
      ~invoke:one_proposal ~depth:10 ~max_crashes:0 ~por:true ~symmetry:true
      ?obs ~check ()
  in
  let best f =
    let ns = ref max_int and last = ref None in
    for _ = 1 to 3 do
      let e = f () in
      ns := min !ns e.Slx_core.Explore.stats.Slx_core.Explore_stats.elapsed_ns;
      last := Some e
    done;
    (!ns, Option.get !last)
  in
  let off_ns, off = best (fun () -> explore ()) in
  let on_ns, on_ =
    best (fun () ->
        explore ~obs:(Obs.create ~tracing:true ~ring_capacity:(1 lsl 18) ()) ())
  in
  let pct = 100.0 *. (float_of_int on_ns /. float_of_int off_ns -. 1.0) in
  Printf.printf
    "  {\"case\": \"register-depth-10-reduced-tracing-overhead\", \
     \"untraced_ns\": %d, \"traced_ns\": %d, \"overhead_pct\": %.1f, \
     \"steps\": %d}\n"
    off_ns on_ns pct (steps off);
  let agree = steps off = steps on_ && runs off = runs on_ in
  if not agree then
    Printf.printf
      "  SMOKE FAILURE: tracing changed the reduced exploration (steps %d vs \
       %d)\n"
      (steps off) (steps on_);
  agree

let obs_smoke () =
  Printf.printf "== bench smoke: traced exploration (observability) ==\n";
  let live_ok = obs_live_smoke () in
  let par_ok = obs_parallel_smoke () in
  let ovh_ok = obs_overhead_smoke () in
  live_ok && par_ok && ovh_ok

(* The sanitizer-overhead row: the same depth-10 reduced instance with
   the counting shadow off vs on.  Sanitizing must change no decision
   (identical steps, runs and digest), find no violations in the
   instrumented implementations, and — now that shadow checks are
   batched per step (one packed store per touch, validated at step
   end) instead of per-touch — stay within the 15% bar that makes
   [--sanitize] the CI default.  (Measured: within noise; the bar
   leaves headroom for loaded CI runners.) *)
let sanitize_overhead_smoke () =
  Printf.printf "== bench smoke: sanitizer overhead (counting shadow) ==\n";
  let explore ~sanitize () =
    Slx_core.Explore.explore ~n:2
      ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
      ~invoke:one_proposal ~depth:10 ~max_crashes:0 ~por:true ~symmetry:true
      ~sanitize ~check ()
  in
  let best f =
    let ns = ref max_int and last = ref None in
    for _ = 1 to 5 do
      let e = f () in
      ns := min !ns e.Slx_core.Explore.stats.Slx_core.Explore_stats.elapsed_ns;
      last := Some e
    done;
    (!ns, Option.get !last)
  in
  let off_ns, off = best (fun () -> explore ~sanitize:false ()) in
  let on_ns, on_ = best (fun () -> explore ~sanitize:true ()) in
  let violations =
    on_.Slx_core.Explore.stats.Slx_core.Explore_stats.footprint_violations
  in
  let pct = 100.0 *. (float_of_int on_ns /. float_of_int off_ns -. 1.0) in
  Printf.printf
    "  {\"case\": \"register-depth-10-reduced-sanitizer-overhead\", \
     \"off_ns\": %d, \"on_ns\": %d, \"overhead_pct\": %.1f, \"steps\": %d, \
     \"violations\": %d}\n"
    off_ns on_ns pct (steps off) violations;
  let agree =
    steps off = steps on_ && runs off = runs on_ && digest off = digest on_
    && violations = 0
  in
  if not agree then
    Printf.printf
      "  SMOKE FAILURE: sanitizing changed the exploration (steps %d vs %d, \
       runs %d vs %d, violations %d)\n"
      (steps off) (steps on_) (runs off) (runs on_) violations;
  if pct > 15.0 then
    Printf.printf
      "  SMOKE FAILURE: sanitizer overhead %.1f%% above the 15%% bar\n" pct;
  agree && pct <= 15.0

(* Hot-path microbenchmarks: the two operations the compact-encoding
   pass rewrote, gated at >= 2x each — per-node transposition keying
   (the seed's path: structural fingerprint over a from-scratch
   shared-state digest fold, vs the new path: compact key over the
   incremental digest, interned to one dense int) and pending-step
   commutation (footprint list walk vs conflict bitmask).  Best-of-N
   tight loops on the monotonic clock; [Sys.opaque_identity] keeps the
   optimizer from deleting the measured body. *)
let micro_smoke () =
  Printf.printf
    "== bench smoke: hot-path microbenchmarks (compact encodings) ==\n";
  let time_ns ~iters f =
    let best = ref max_int in
    for _ = 1 to 5 do
      let t0 = Slx_obs.Clock.now_ns () in
      for _ = 1 to iters do
        ignore (Sys.opaque_identity (f ()))
      done;
      let dt = Slx_obs.Clock.now_ns () - t0 in
      if dt < !best then best := dt
    done;
    float_of_int !best /. float_of_int iters
  in
  (* A mid-tree register-consensus cursor, the configuration shape the
     engine keys at every node.  The factory preallocates its rounds
     (thousands of registers), which is exactly why the seed's
     from-scratch digest fold dominated the hot loop. *)
  let cursor =
    let c =
      Runner.Cursor.create ~n:2
        ~factory:(Slx_consensus.Register_consensus.factory ())
        ()
    in
    List.iter (Runner.Cursor.apply c)
      [
        Driver.Invoke (1, Slx_consensus.Consensus_type.Propose 0);
        Driver.Schedule 1;
        Driver.Invoke (2, Slx_consensus.Consensus_type.Propose 1);
        Driver.Schedule 2;
        Driver.Schedule 1;
      ];
    c
  in
  let struct_table = Hashtbl.create 64 in
  Hashtbl.replace struct_table (Runner.Cursor.fingerprint cursor) 1;
  let keys = Slx_core.Intern.Ints.create () in
  let compact_table = Hashtbl.create 64 in
  Hashtbl.replace compact_table
    (Slx_core.Intern.Ints.intern keys
       (Runner.Cursor.compact_key cursor ~extra:[ 0 ]))
    1;
  (* Seed path: every visit re-folded the whole registry (the full
     digest is recomputed here exactly as the seed did per node) and
     keyed the cache on the structural fingerprint. *)
  let structural_ns =
    time_ns ~iters:100 (fun () ->
        ignore (Sys.opaque_identity (Runner.Cursor.shared_digest_full cursor));
        Hashtbl.find_opt struct_table (Runner.Cursor.fingerprint cursor))
  in
  let compact_ns =
    time_ns ~iters:20_000 (fun () ->
        Hashtbl.find_opt compact_table
          (Slx_core.Intern.Ints.intern keys
             (Runner.Cursor.compact_key cursor ~extra:[ 0 ])))
  in
  let fp_ratio = structural_ns /. compact_ns in
  let fp_a =
    Runtime.of_accesses
      [
        { Runtime.obj = 1; write = true };
        { Runtime.obj = 2; write = false };
        { Runtime.obj = 3; write = false };
      ]
  and fp_b =
    Runtime.of_accesses
      [
        { Runtime.obj = 2; write = false };
        { Runtime.obj = 4; write = true };
        { Runtime.obj = 5; write = false };
      ]
  in
  let mask_a = Runtime.mask_of_footprint fp_a
  and mask_b = Runtime.mask_of_footprint fp_b in
  let list_ns =
    time_ns ~iters:200_000 (fun () -> Runtime.footprints_commute fp_a fp_b)
  in
  let mask_ns =
    time_ns ~iters:200_000 (fun () -> Runtime.masks_commute mask_a mask_b)
  in
  let commute_ratio = list_ns /. mask_ns in
  Printf.printf
    "  {\"case\": \"node-keying-seed-vs-compact\", \"seed_full_fold_ns\": \
     %.1f, \"compact_incremental_ns\": %.1f, \"ratio\": %.2f}\n"
    structural_ns compact_ns fp_ratio;
  Printf.printf
    "  {\"case\": \"pending-commutation-check\", \"footprint_ns\": %.1f, \
     \"mask_ns\": %.1f, \"ratio\": %.2f}\n"
    list_ns mask_ns commute_ratio;
  let ok = fp_ratio >= 2.0 && commute_ratio >= 2.0 in
  if not ok then
    Printf.printf
      "  SMOKE FAILURE: microbenchmark ratios below the 2x bar (fingerprint \
       %.2fx, commute %.2fx)\n"
      fp_ratio commute_ratio;
  (ok, fp_ratio, commute_ratio)

(* Compact-encoding identity + the bitstate row: the hash-consed keys
   must reproduce the structural keys' exploration exactly (same runs,
   digest, cache hits — byte-identical counters, not just verdicts),
   and bitstate mode must report its honest collision bound in the
   stats it emits. *)
let compact_smoke () =
  Printf.printf
    "== bench smoke: compact keys vs structural keys (+ bitstate) ==\n";
  let explore ~compact ?bitstate () =
    Slx_core.Explore.explore ~n:2
      ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
      ~invoke:one_proposal ~depth:10 ~max_crashes:1 ~dpor:true ~compact
      ?bitstate ~check ()
  in
  let best f =
    let ns = ref max_int and last = ref None in
    for _ = 1 to 3 do
      let e = f () in
      ns := min !ns e.Slx_core.Explore.stats.Slx_core.Explore_stats.elapsed_ns;
      last := Some e
    done;
    (!ns, Option.get !last)
  in
  let structural_ns, s = best (fun () -> explore ~compact:false ()) in
  let compact_ns, c = best (fun () -> explore ~compact:true ()) in
  let hits e = e.Slx_core.Explore.stats.Slx_core.Explore_stats.cache_hits in
  let identical =
    runs s = runs c && digest s = digest c && hits s = hits c
    && steps s = steps c && safe s = safe c
  in
  Printf.printf
    "  {\"case\": \"register-depth-10-crashes-1-dpor-compact-keys\", \
     \"structural_ns\": %d, \"compact_ns\": %d, \"ratio\": %.2f, \
     \"runs\": %d, \"cache_hits\": %d, \"identical\": %b}\n"
    structural_ns compact_ns
    (float_of_int structural_ns /. float_of_int (max 1 compact_ns))
    (runs c) (hits c) identical;
  if not identical then
    Printf.printf
      "  SMOKE FAILURE: compact keys changed the exploration (runs %d vs %d, \
       hits %d vs %d, digest mismatch=%b)\n"
      (runs s) (runs c) (hits s) (hits c)
      (digest s <> digest c);
  let _, b = best (fun () -> explore ~compact:true ~bitstate:16 ()) in
  let bst = b.Slx_core.Explore.stats in
  let prob = Slx_core.Explore_stats.bitstate_collision_probability bst in
  Printf.printf
    "  {\"case\": \"register-depth-10-crashes-1-dpor-bitstate-16\", \
     \"bitstate_bits\": %d, \"bitstate_adds\": %d, \"bitstate_hits\": %d, \
     \"bitstate_marks\": %d, \"collision_probability\": %g, \
     \"runs_checked\": %d, \"safe\": %b}\n"
    bst.Slx_core.Explore_stats.bitstate_bits
    bst.Slx_core.Explore_stats.bitstate_adds
    bst.Slx_core.Explore_stats.bitstate_hits
    bst.Slx_core.Explore_stats.bitstate_marks prob
    bst.Slx_core.Explore_stats.runs_checked (safe b);
  let bitstate_ok =
    safe b && bst.Slx_core.Explore_stats.bitstate_bits = 16
    && bst.Slx_core.Explore_stats.bitstate_adds > 0
    && prob > 0.0
  in
  if not bitstate_ok then
    Printf.printf "  SMOKE FAILURE: bitstate row missing or dishonest\n";
  identical && bitstate_ok

(* The persistent-store resume row: the depth-8 register exploration
   committed cold to a scratch store, then the same query deepened to
   10 — the store plans a resume, the engine replays the stored
   frontier's cut seeds and explores only the delta.  The gate: the
   resumed run's executed steps stay under half the cold depth-10
   run's, with the identical verdict and run count (the store is an
   accelerator, never an approximation).  This is the
   BENCH_explore.json "store_resume" row. *)
let store_resume_smoke () =
  Printf.printf "== bench smoke: store-backed resume (frontier delta) ==\n";
  let module Store = Slx_store.Store in
  let module Persist = Slx_store.Persist in
  let factory () = Slx_consensus.Register_consensus.factory () in
  let path = Filename.temp_file "slx_smoke" ".store" in
  let store = Store.open_ path in
  let qid =
    Persist.query_key ~ident:"register" ~check:"consensus-safety" ~n:2
      ~registry_digest:(Persist.instance_digest ~n:2 ~factory)
      ~dpor:true ()
  in
  let stored depth =
    Persist.run_explore ~store ~qid ~n:2 ~factory ~invoke:one_proposal ~depth
      ~dpor:true ~check ()
  in
  let cold10 =
    Slx_core.Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:10
      ~dpor:true ~check ()
  in
  let base8, src8 = stored 8 in
  let resumed10, src10 = stored 10 in
  Sys.remove path;
  let replayed =
    resumed10.Slx_core.Explore.stats.Slx_core.Explore_stats.steps_replayed
  in
  (* The saved work is the fresh (non-replay) delta: replay ticks only
     re-establish the stored cut's cursors and are already counted
     apart by the engine ([steps_replayed]). *)
  let fresh = steps resumed10 - replayed in
  let pct = 100.0 *. float_of_int fresh /. float_of_int (max 1 (steps cold10)) in
  Printf.printf
    "  {\"case\": \"register-depth-10-dpor-store-resume\", \
     \"cold_depth8_steps\": %d, \"cold_depth10_steps\": %d, \
     \"resumed_steps\": %d, \"resumed_replayed\": %d, \"fresh_steps\": %d, \
     \"fresh_pct\": %.1f, \"runs\": %d}\n"
    (steps base8) (steps cold10) (steps resumed10) replayed fresh pct
    (runs cold10);
  let planned =
    src8 = Persist.Cold && src10 = Persist.Resumed 8
  in
  if not planned then
    Printf.printf
      "  SMOKE FAILURE: store planning wrong (depth 8 %s, depth 10 %s)\n"
      (Format.asprintf "%a" Persist.pp_source src8)
      (Format.asprintf "%a" Persist.pp_source src10);
  let identical =
    safe cold10 = safe resumed10 && runs cold10 = runs resumed10
  in
  if not identical then
    Printf.printf
      "  SMOKE FAILURE: resume changed the verdict (runs %d vs %d)\n"
      (runs cold10) (runs resumed10);
  if pct >= 50.0 then
    Printf.printf
      "  SMOKE FAILURE: resumed fresh steps %.1f%% of cold, above the 50%% \
       bar\n"
      pct;
  (planned && identical && pct < 50.0, pct)

let run () =
  Printf.printf "== bench smoke: incremental explorer vs naive replay ==\n";
  let cas_ratio, cas_eq =
    explore_pair ~impl:"cas"
      ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
      ~depth:8 ~max_crashes:0
  in
  let crash_ratio, crash_eq =
    explore_pair ~impl:"cas"
      ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
      ~depth:8 ~max_crashes:1
  in
  Printf.printf "== bench smoke: POR+symmetry vs plain incremental ==\n";
  let red_ratio, red_eq =
    explore_reduced ~impl:"register"
      ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
      ~depth:10 ~max_crashes:0
  in
  Printf.printf "== bench smoke: observed-access DPOR vs plain incremental ==\n";
  let dpor_cas0 =
    explore_dpor ~impl:"cas"
      ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
      ~depth:8 ~max_crashes:0
  in
  let dpor_cas1 =
    explore_dpor ~impl:"cas"
      ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
      ~depth:8 ~max_crashes:1
  in
  let dpor_reg8 =
    explore_dpor ~impl:"register"
      ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
      ~depth:8 ~max_crashes:0
  in
  let dpor_reg10 =
    explore_dpor ~impl:"register"
      ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
      ~depth:10 ~max_crashes:0
  in
  let dpor_results = [ dpor_cas0; dpor_cas1; dpor_reg8; dpor_reg10 ] in
  let dpor_ok = List.for_all snd dpor_results in
  let live_ok = live_smoke () in
  let live_dpor_ok, live_node_ratio, live_step_ratio = live_dpor_smoke () in
  let obs_ok = obs_smoke () in
  let san_ok = sanitize_overhead_smoke () in
  let micro_ok, fp_ratio, commute_ratio = micro_smoke () in
  let compact_ok = compact_smoke () in
  let store_ok, store_pct = store_resume_smoke () in
  let ok =
    cas_ratio >= 3.0 && crash_ratio >= 3.0 && red_ratio >= 3.0 && cas_eq
    && crash_eq && red_eq && dpor_ok && live_ok && live_dpor_ok && obs_ok
    && san_ok && micro_ok && compact_ok && store_ok
  in
  Printf.printf
    "smoke %s: depth-8 incremental ratios %.2fx / %.2fx, depth-10 reduction \
     ratio %.2fx (bar: 3x each), dpor %s, live split %s, live dpor %.2fx \
     nodes / %.2fx steps (bar: 3x each), traces %s, sanitizer %s (bar: \
     <=15%%), micro fingerprint %.2fx / commute %.2fx (bar: 2x each), \
     compact keys %s, store resume %.1f%% of cold (bar: <50%%)\n"
    (if ok then "OK" else "FAILED")
    cas_ratio crash_ratio red_ratio
    (if dpor_ok then "sound" else "BROKEN")
    (if live_ok then "reproduced" else "BROKEN")
    live_node_ratio live_step_ratio
    (if obs_ok then "reconciled" else "BROKEN")
    (if san_ok then "transparent" else "BROKEN")
    fp_ratio commute_ratio
    (if compact_ok then "identical" else "BROKEN")
    store_pct;
  ok
