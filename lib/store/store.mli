(** The on-disk verdict/fingerprint store: a CRC-framed, append-only
    record log with atomic-rename commits.

    One file holds every verdict a machine has computed: for each
    {e query} (an implementation + workload + property + flags,
    digested into a [qid] by {!Persist.query_key}) and depth, the
    outcome, the witness or lasso scripts in coded form
    ({!Slx_core.Explore.code_of_decision}), and — for
    counterexample-free bounded runs — the {e cut frontier} a deeper
    run can resume from.

    {b Format.}  The file starts with the magic ["SLXSTOR1"], followed
    by frames [[u32 length][u32 crc32][payload]].  The first frame is
    the {e header} binding the format version and the engine version;
    any mismatch — or a bad magic — invalidates the whole file (it is
    read as empty and overwritten on the next commit), so a stale
    cache can never forge a verdict across an engine change.  A frame
    whose CRC does not match its payload is dropped (and counted in
    {!health}) without giving up on later frames; a truncated tail
    frame drops the remainder.  Within the log, a later record for the
    same [(qid, depth)] supersedes an earlier one.

    {b Concurrency.}  Readers see a consistent file because commits
    are whole-file rewrites published by [rename(2)]; a store is
    single-writer by convention (the CLI holds it for a run; the serve
    daemon's coordinator is the only writer, its workers never open
    the store).  No in-file locking. *)

type verdict =
  | V_ok of int  (** Safety: every maximal run passed; the run count. *)
  | V_counterexample of int list
      (** Safety: the lex-least failing run's coded decision script.
          Never trusted blindly: {!Persist} replays it and re-runs the
          check before serving it as a hit. *)
  | V_no_fair_cycle
  | V_lasso of { stem : int list; cycle : int list }
      (** Liveness: the certificate's coded stem and cycle scripts.
          Re-validated (rebuilt, pumped) before being served. *)

type seed = { sd_script : int list; sd_sleep : int list }
(** A stored frontier seed: the coded cut-leaf script plus the
    engine-specific sleep payload (safety: one bitset word; liveness:
    packed [(streak lsl 8) lor proc] entries). *)

type frontier = {
  f_base_runs : int;
  f_base_digest : int;
  f_seeds : seed list;
}

type record = {
  r_qid : int;  (** {!Persist.query_key} digest — binds impl, workload,
                    property, flags and registry digest. *)
  r_depth : int;
  r_max_period : int;  (** Liveness only; 0 for safety records. *)
  r_pump_ticks : int;  (** Liveness only; 0 for safety records. *)
  r_runs : int;  (** [stats.runs] of the producing run. *)
  r_steps : int;  (** [stats.steps_executed] of the producing run — the
                      work a warm hit saves, reported by [slx stats]. *)
  r_verdict : verdict;
  r_frontier : frontier option;
}

type counters = {
  c_queries : int;  (** Store-backed queries answered. *)
  c_warm_hits : int;  (** Served from an exact [(qid, depth)] record. *)
  c_resumes : int;  (** Served by deepening a stored frontier. *)
  c_colds : int;  (** Explored from scratch. *)
  c_rejected : int;
      (** Stored witnesses that failed re-validation (fell back to a
          cold run and were overwritten). *)
  c_steps_saved : int;
      (** Runtime steps of the stored runs that warm hits and resumes
          did not re-execute (resumes: stored steps minus the delta
          actually run). *)
}

type health = {
  h_created : bool;  (** No file existed (or it was empty). *)
  h_invalidated : string option;
      (** The file was discarded wholesale: bad magic, bad header, or
          an engine/format version mismatch — the reason, verbatim. *)
  h_records_dropped : int;
      (** Frames dropped for CRC mismatch or a truncated tail. *)
}

val format_version : int

val engine_version : string
(** Identifies the verdict-relevant engine semantics (bumped on any
    change to menus, reductions, fingerprints or frontier encoding)
    plus the OCaml version (polymorphic-hash digests are not
    guaranteed stable across compiler versions). *)

val digest_string : string -> int
(** 64-bit FNV-1a, masked non-negative — the [qid] digest helper. *)

type t

val open_ : ?engine_version:string -> string -> t
(** Read (or initialize) the store at a path.  Never raises on bad
    content: corruption and mismatches degrade to an empty (or
    partial) store, reported in {!health}.  [engine_version] defaults
    to {!engine_version}; tests override it to forge mismatches.
    @raise Sys_error only on unreadable paths (permissions). *)

val path : t -> string

val health : t -> health

val records : t -> record list
(** All live records, oldest first (superseded duplicates removed). *)

val find : t -> qid:int -> depth:int -> record option
(** The exact record for this query at this depth, if any. *)

val best_resumable : t -> qid:int -> depth:int -> record option
(** The deepest stored record for [qid] that is strictly shallower
    than [depth], carries a frontier, and whose verdict is resumable
    ([V_ok] / [V_no_fair_cycle] — failing verdicts never resume:
    a shallow counterexample's extensions are unexplored). *)

val add : t -> record -> unit
(** Insert (in memory), superseding any record with the same
    [(qid, depth)].  Visible on disk after {!commit}. *)

val bump :
  t -> [ `Query | `Warm of int | `Resume of int | `Cold | `Rejected ] -> unit
(** Count a store interaction into {!counters}; the [`Warm]/[`Resume]
    payloads are runtime steps saved. *)

val counters : t -> counters

val commit : t -> unit
(** Publish the in-memory state: serialize the whole log to
    [path ^ ".tmp.<pid>"] and atomically rename it over [path]. *)
