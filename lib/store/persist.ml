open Slx_sim
open Slx_core

type source = Warm | Resumed of int | Cold | Uncached of string

let pp_source fmt = function
  | Warm -> Format.fprintf fmt "warm"
  | Resumed d -> Format.fprintf fmt "resumed from depth %d" d
  | Cold -> Format.fprintf fmt "cold"
  | Uncached why -> Format.fprintf fmt "uncached (%s)" why

let instance_digest ~n ~factory =
  Runner.Cursor.shared_digest
    (Runner.Cursor.create ~n ~factory:(factory ()) ())

let query_key ~ident ~check ~n ~registry_digest ?(max_crashes = 0)
    ?(por = false) ?(dpor = false) ?(symmetry = false) ?(invoke_order = false)
    ?(proviso_bound = 2) () =
  Store.digest_string
    (Printf.sprintf "%s|%s|n=%d|rd=%d|mc=%d|por=%b|dpor=%b|sym=%b|io=%b|pb=%d"
       ident check n registry_digest max_crashes por dpor symmetry
       invoke_order proviso_bound)

(* ------------------------------------------------------------------ *)
(* Safety.                                                             *)

let frontier_of_store (f : Store.frontier) : Explore.frontier option =
  (* Safety seeds carry one sleep bitset word; a malformed seed list
     (hand-edited store) degrades to no-resume rather than an error. *)
  let ok = List.for_all (fun s -> List.length s.Store.sd_sleep <= 1) f.Store.f_seeds in
  if not ok then None
  else
    Some
      {
        Explore.fr_depth = 0 (* patched by caller *);
        fr_base_runs = f.Store.f_base_runs;
        fr_base_digest = f.Store.f_base_digest;
        fr_seeds =
          List.map
            (fun s ->
              {
                Explore.seed_script = s.Store.sd_script;
                seed_sleep =
                  (match s.Store.sd_sleep with [ w ] -> w | _ -> 0);
              })
            f.Store.f_seeds;
      }

let frontier_to_store (f : Explore.frontier) : Store.frontier =
  {
    Store.f_base_runs = f.Explore.fr_base_runs;
    f_base_digest = f.Explore.fr_base_digest;
    f_seeds =
      List.map
        (fun s ->
          {
            Store.sd_script = s.Explore.seed_script;
            sd_sleep = (if s.Explore.seed_sleep = 0 then [] else [ s.Explore.seed_sleep ]);
          })
        f.Explore.fr_seeds;
  }

let record_of_exploration ~qid ~depth ~inherited (e : ('inv, 'res) Explore.exploration) =
  let verdict =
    match e.Explore.outcome with
    | Explore.Ok runs -> Store.V_ok runs
    | Explore.Counterexample _ ->
        Store.V_counterexample
          (Explore.codes_of_script (Option.get e.Explore.witness_script))
  in
  {
    Store.r_qid = qid;
    r_depth = depth;
    r_max_period = 0;
    r_pump_ticks = 0;
    r_runs = e.Explore.stats.Explore_stats.runs;
    r_steps = e.Explore.stats.Explore_stats.steps_executed + inherited;
    r_verdict = verdict;
    r_frontier = Option.map frontier_to_store e.Explore.frontier;
  }

let run_explore ~store ~qid ~n ~factory ~invoke ~depth ?(max_crashes = 0)
    ?(cache = true) ?cache_capacity ?(por = false) ?(dpor = false)
    ?(symmetry = false) ?(domains = 1) ?obs ?(sanitize = false)
    ?(compact = true) ?bitstate ?cancel ~check () =
  let explore ?resume ?(persist = true) () =
    Explore.explore ~n ~factory ~invoke ~depth ~max_crashes ~cache
      ?cache_capacity ~por ~dpor ~symmetry ~domains ?obs ~sanitize ~compact
      ?bitstate ~persist ?resume ?cancel ~check ()
  in
  match bitstate with
  | Some _ ->
      (* Bitstate verdicts are probabilistic; the store only holds
         exhaustive facts. *)
      (explore ~persist:false (), Uncached "bitstate")
  | None -> begin
      Store.bump store `Query;
      let finish_live source inherited =
        (* Run the engine (resumed or cold), store this answer's
           record, and flush — also on interruption, so a SIGINT'd
           session still pays its counters forward. *)
        let resume =
          match source with
          | Resumed _ -> (
              match Store.best_resumable store ~qid ~depth with
              | Some r -> (
                  match Option.bind r.Store.r_frontier frontier_of_store with
                  | Some f -> Some { f with Explore.fr_depth = r.Store.r_depth }
                  | None -> None)
              | None -> None)
          | _ -> None
        in
        match explore ?resume () with
        | e ->
            (match source with
            | Resumed _ ->
                Store.bump store
                  (`Resume
                    (max 0
                       (inherited
                       - e.Explore.stats.Explore_stats.steps_replayed)))
            | _ -> Store.bump store `Cold);
            Store.add store (record_of_exploration ~qid ~depth ~inherited e);
            Store.commit store;
            (e, source)
        | exception Explore.Interrupted stats ->
            Store.commit store;
            raise (Explore.Interrupted stats)
      in
      match Store.find store ~qid ~depth with
      | Some { Store.r_verdict = Store.V_ok runs; r_steps; r_frontier; _ } ->
          Store.bump store (`Warm r_steps);
          Store.commit store;
          ( {
              Explore.outcome = Explore.Ok runs;
              stats = Explore_stats.zero;
              witness_script = None;
              frontier =
                Option.bind r_frontier (fun f ->
                    Option.map
                      (fun fr -> { fr with Explore.fr_depth = depth })
                      (frontier_of_store f));
            },
            Warm )
      | Some { Store.r_verdict = Store.V_counterexample codes; r_steps; _ }
        -> begin
          (* Never trust a stored witness: replay it and re-run the
             check.  A reproduction is served; anything else is a
             rejected record (stale engine state the version header
             missed, or a tampered file) and we fall back cold. *)
          match Explore.run_of_codes ~n ~factory ~invoke codes with
          | ds, report when not (check report) ->
              Store.bump store (`Warm (max 0 (r_steps - List.length codes)));
              Store.commit store;
              ( {
                  Explore.outcome = Explore.Counterexample report;
                  stats = Explore_stats.zero;
                  witness_script = Some ds;
                  frontier = None;
                },
                Warm )
          | _ | (exception _) ->
              Store.bump store `Rejected;
              finish_live Cold 0
        end
      | Some _ ->
          (* A liveness verdict under a safety qid: impossible unless
             the file was forged — treat as rejected. *)
          Store.bump store `Rejected;
          finish_live Cold 0
      | None -> (
          if domains > 1 then
            (* The engine only cuts frontiers sequentially; resuming
               under a parallel run would silently go cold inside the
               engine and scramble the counters — plan cold here. *)
            finish_live Cold 0
          else
            match Store.best_resumable store ~qid ~depth with
            | Some r when Option.bind r.Store.r_frontier frontier_of_store <> None
              ->
                finish_live (Resumed r.Store.r_depth) r.Store.r_steps
            | _ -> finish_live Cold 0)
    end

(* ------------------------------------------------------------------ *)
(* Liveness.                                                           *)

let live_frontier_of_store ~(r : Store.record) (f : Store.frontier) :
    Live_explore.live_frontier =
  {
    Live_explore.lf_depth = r.Store.r_depth;
    lf_max_period = r.Store.r_max_period;
    lf_pump_ticks = r.Store.r_pump_ticks;
    lf_base_runs = f.Store.f_base_runs;
    lf_seeds =
      List.map
        (fun s ->
          {
            Live_explore.ls_script = s.Store.sd_script;
            ls_sleep = s.Store.sd_sleep;
          })
        f.Store.f_seeds;
  }

let live_frontier_to_store (f : Live_explore.live_frontier) : Store.frontier =
  {
    Store.f_base_runs = f.Live_explore.lf_base_runs;
    f_base_digest = 0;
    f_seeds =
      List.map
        (fun s ->
          {
            Store.sd_script = s.Live_explore.ls_script;
            sd_sleep = s.Live_explore.ls_sleep;
          })
        f.Live_explore.lf_seeds;
  }

let record_of_live ~qid ~depth ~max_period ~pump_ticks ~inherited
    (r : ('inv, 'res) Live_explore.result) =
  let verdict =
    match r.Live_explore.outcome with
    | Live_explore.No_fair_cycle -> Store.V_no_fair_cycle
    | Live_explore.Lasso c ->
        Store.V_lasso
          {
            stem = Explore.codes_of_script c.Slx_liveness.Lasso.c_stem;
            cycle = Explore.codes_of_script c.Slx_liveness.Lasso.c_cycle;
          }
  in
  {
    Store.r_qid = qid;
    r_depth = depth;
    r_max_period = max_period;
    r_pump_ticks = pump_ticks;
    r_runs = r.Live_explore.stats.Explore_stats.runs;
    r_steps = r.Live_explore.stats.Explore_stats.steps_executed + inherited;
    r_verdict = verdict;
    r_frontier = Option.map live_frontier_to_store r.Live_explore.frontier;
  }

let run_live ~store ~qid ~n ~factory ~invoke ~good ~point ~depth
    ?(max_crashes = 0) ?max_period ?pump_ticks ?(invoke_order = false)
    ?(dpor = false) ?proviso_bound ?(cache = true) ?cache_capacity ?obs
    ?(sanitize = false) ?(compact = true) ?cancel () =
  (* Resolve the depth-derived defaults here: the store needs the
     actual values to gate comparability across depths. *)
  let max_period = Option.value max_period ~default:(max 1 ((depth + 1) / 2)) in
  let pump_ticks = Option.value pump_ticks ~default:(4 * depth) in
  let search ?resume () =
    Live_explore.search ~n ~factory ~invoke ~good ~point ~depth ~max_crashes
      ~max_period ~pump_ticks ~invoke_order ~dpor ?proviso_bound ~cache
      ?cache_capacity ?obs ~sanitize ~compact ~persist:true ?resume ?cancel ()
  in
  Store.bump store `Query;
  let finish_live source inherited resume =
    match search ?resume () with
    | r ->
        (match source with
        | Resumed _ ->
            Store.bump store
              (`Resume
                (max 0
                   (inherited - r.Live_explore.stats.Explore_stats.steps_replayed)))
        | _ -> Store.bump store `Cold);
        Store.add store
          (record_of_live ~qid ~depth ~max_period ~pump_ticks ~inherited r);
        Store.commit store;
        (r, source)
    | exception Explore.Interrupted stats ->
        Store.commit store;
        raise (Explore.Interrupted stats)
  in
  let cold () = finish_live Cold 0 None in
  let try_resume () =
    match Store.best_resumable store ~qid ~depth with
    | Some r
      when r.Store.r_pump_ticks = pump_ticks
           && r.Store.r_max_period >= min max_period (r.Store.r_depth / 2) -> (
        match r.Store.r_frontier with
        | Some f ->
            finish_live (Resumed r.Store.r_depth) r.Store.r_steps
              (Some (live_frontier_of_store ~r f))
        | None -> cold ())
    | _ -> cold ()
  in
  match Store.find store ~qid ~depth with
  | Some
      ({ Store.r_max_period = mp; r_pump_ticks = pt; _ } as r)
    when mp = max_period && pt = pump_ticks -> begin
      match r.Store.r_verdict with
      | Store.V_no_fair_cycle ->
          Store.bump store (`Warm r.Store.r_steps);
          Store.commit store;
          ( {
              Live_explore.outcome = Live_explore.No_fair_cycle;
              stats = Explore_stats.zero;
              frontier =
                Option.map
                  (fun f -> live_frontier_of_store ~r f)
                  r.Store.r_frontier;
            },
            Warm )
      | Store.V_lasso { stem; cycle } -> begin
          match
            Live_explore.validate_cert_codes ~n ~factory ~invoke ~good ~point
              ~pump_ticks ~stem ~cycle ()
          with
          | Some cert ->
              Store.bump store (`Warm (max 0 r.Store.r_steps));
              Store.commit store;
              ( {
                  Live_explore.outcome = Live_explore.Lasso cert;
                  stats = Explore_stats.zero;
                  frontier = None;
                },
                Warm )
          | None ->
              Store.bump store `Rejected;
              cold ()
        end
      | Store.V_ok _ | Store.V_counterexample _ ->
          (* A safety verdict under a liveness qid: forged file. *)
          Store.bump store `Rejected;
          cold ()
    end
  | Some _ ->
      (* Same depth, different period/pump budgets: not comparable;
         the fresh run supersedes the slot. *)
      cold ()
  | None -> try_resume ()
