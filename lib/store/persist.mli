(** Store-backed exploration: the policy layer between the engines
    ({!Slx_core.Explore}, {!Slx_core.Live_explore}) and the on-disk
    {!Store}.

    Each query is digested into a [qid] ({!query_key}) binding exactly
    the verdict-relevant identity: the implementation ident, the
    property ident, the system size, the initial shared-state digest
    ({!instance_digest}) and the reduction flags.  Anything that
    cannot change a verdict — cache on/off, capacity, compaction,
    domain count — deliberately stays out of the key, so tuning runs
    share records.

    Answer planning, in order:

    + {b warm} — an exact [(qid, depth)] record (for liveness: with
      the same resolved [max_period]/[pump_ticks]).  Positive verdicts
      ([V_ok]/[V_no_fair_cycle]) are trusted under the version + qid
      binding; witnesses never are — a stored counterexample is
      replayed and re-checked, a stored lasso rebuilt and re-pumped
      ({!Slx_core.Live_explore.validate_cert_codes}).  A witness that
      fails re-validation is {e rejected}: counted, never served, and
      overwritten by the fresh run's record.
    + {b resume} — the deepest shallower record with a frontier and a
      resumable verdict; the engine replays its cut seeds and explores
      only the frontier delta.  Liveness resumes additionally require
      the stored [pump_ticks] to equal the request's and the stored
      [max_period] to cover every candidate the stored walk could
      have examined (see {!Slx_core.Live_explore.live_frontier}).
    + {b cold} — explore from scratch.

    Every non-warm answer runs with [~persist:true] and stores its
    record (superseding the slot) before returning; the store is
    committed even when the run is {e interrupted} ([?cancel] /
    SIGINT), so partial sessions still pay forward their counters.
    Bitstate runs bypass the store entirely: their clean verdicts are
    probabilistic, not exhaustive, and must never be replayed as
    facts.  Parallel ([domains > 1]) runs are stored warm-servable but
    frontier-less (the engine only cuts frontiers sequentially). *)

open Slx_history
open Slx_sim
open Slx_liveness
open Slx_core

type source =
  | Warm  (** Served from an exact stored record (witnesses re-validated). *)
  | Resumed of int
      (** Deepened from the stored frontier at this shallower depth. *)
  | Cold  (** Explored from scratch (and stored). *)
  | Uncached of string
      (** The store was bypassed — the reason (e.g. ["bitstate"]). *)

val pp_source : Format.formatter -> source -> unit

val instance_digest :
  n:int -> factory:(unit -> ('inv, 'res) Runner.factory) -> int
(** The shared-state digest of a fresh instance's initial
    configuration ({!Slx_sim.Runner.Cursor.shared_digest}) — the
    cheap, workload-independent component that ties a [qid] to the
    implementation's actual initial base objects, so renaming an impl
    ident cannot alias two different implementations. *)

val query_key :
  ident:string ->
  check:string ->
  n:int ->
  registry_digest:int ->
  ?max_crashes:int ->
  ?por:bool ->
  ?dpor:bool ->
  ?symmetry:bool ->
  ?invoke_order:bool ->
  ?proviso_bound:int ->
  unit ->
  int
(** Digest a query identity into a [qid].  [ident] names the
    implementation + workload (e.g. ["cas"]); [check] names the
    property (e.g. ["consensus-safety"], ["live:obstruction"]) — for
    liveness it must embed the [good]/[point] identity, because
    frontier seeds carry property-specific abstract cells
    (doc/model.md §11).  Flag defaults mirror the engines'
    ([max_crashes 0], reductions off, [proviso_bound 2]). *)

(** {2 Frontier conversions}

    Between the engines' typed frontier forms and the store's neutral
    one — exported for {!Slx_serve}, whose coordinator slices stored
    frontiers across workers and stitches the results back. *)

val frontier_of_store : Store.frontier -> Explore.frontier option
(** [None] if a seed's sleep payload is not the single bitset word a
    safety frontier carries (a malformed or liveness record).  The
    returned [fr_depth] is 0 — the caller patches in the record's
    depth. *)

val frontier_to_store : Explore.frontier -> Store.frontier

val live_frontier_to_store : Live_explore.live_frontier -> Store.frontier
(** The liveness base digest is not stored (cells are rebuilt on
    resume); [f_base_digest] is 0. *)

val run_explore :
  store:Store.t ->
  qid:int ->
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  depth:int ->
  ?max_crashes:int ->
  ?cache:bool ->
  ?cache_capacity:int ->
  ?por:bool ->
  ?dpor:bool ->
  ?symmetry:bool ->
  ?domains:int ->
  ?obs:Slx_obs.Obs.t ->
  ?sanitize:bool ->
  ?compact:bool ->
  ?bitstate:int ->
  ?cancel:(unit -> bool) ->
  check:(('inv, 'res) Run_report.t -> bool) ->
  unit ->
  ('inv, 'res) Explore.exploration * source
(** Store-backed {!Slx_core.Explore.explore}.  The caller must build
    [qid] with {!query_key} from the same flags it passes here —
    {!Slx_serve} and the CLI both go through one helper to make that
    unforgeable.  Warm hits return synthesized explorations
    (zero work counters; [runs] and the witness restored from the
    record).  The exploration and the store file are consistent on
    return: the record for this [(qid, depth)] reflects this answer.
    @raise Explore.Interrupted as the engine does; the store's
    counters are committed first. *)

val run_live :
  store:Store.t ->
  qid:int ->
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  good:('res -> bool) ->
  point:Freedom.t ->
  depth:int ->
  ?max_crashes:int ->
  ?max_period:int ->
  ?pump_ticks:int ->
  ?invoke_order:bool ->
  ?dpor:bool ->
  ?proviso_bound:int ->
  ?cache:bool ->
  ?cache_capacity:int ->
  ?obs:Slx_obs.Obs.t ->
  ?sanitize:bool ->
  ?compact:bool ->
  ?cancel:(unit -> bool) ->
  unit ->
  ('inv, 'res) Live_explore.result * source
(** Store-backed {!Slx_core.Live_explore.search}.  [max_period] and
    [pump_ticks] are resolved to the engine's defaults {e here} and
    stored per record, because the defaults are depth-derived and the
    comparability gates need the actual values: a warm hit requires
    both to match, a resume requires equal [pump_ticks] and a
    covering stored [max_period] — anything else plans cold (pin both
    flags across depths to make a depth sweep resume end-to-end).
    @raise Explore.Interrupted as the engine does; counters are
    committed first. *)
