type verdict =
  | V_ok of int
  | V_counterexample of int list
  | V_no_fair_cycle
  | V_lasso of { stem : int list; cycle : int list }

type seed = { sd_script : int list; sd_sleep : int list }

type frontier = {
  f_base_runs : int;
  f_base_digest : int;
  f_seeds : seed list;
}

type record = {
  r_qid : int;
  r_depth : int;
  r_max_period : int;
  r_pump_ticks : int;
  r_runs : int;
  r_steps : int;
  r_verdict : verdict;
  r_frontier : frontier option;
}

type counters = {
  c_queries : int;
  c_warm_hits : int;
  c_resumes : int;
  c_colds : int;
  c_rejected : int;
  c_steps_saved : int;
}

type health = {
  h_created : bool;
  h_invalidated : string option;
  h_records_dropped : int;
}

let format_version = 1

(* Bump the engine tag whenever menus, reductions, fingerprint or
   frontier semantics change — a stored verdict is only as good as the
   engine that would reproduce it.  The OCaml version rides along
   because history digests go through the runtime's value hashing. *)
let engine_version = Printf.sprintf "slx-engine-8+ocaml-%s" Sys.ocaml_version

let magic = "SLXSTOR1"

let zero_counters =
  {
    c_queries = 0;
    c_warm_hits = 0;
    c_resumes = 0;
    c_colds = 0;
    c_rejected = 0;
    c_steps_saved = 0;
  }

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, table-driven) and digesting.                     *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let digest_string s =
  (* FNV-1a 64-bit offset basis, assembled in two halves: the literal
     overflows OCaml's 63-bit int, and the hash is mod-2^63 anyway. *)
  let h = ref ((0xcbf29ce4 lsl 32) lor 0x84222325) in
  String.iter
    (fun ch ->
      h := !h lxor Char.code ch;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

(* ------------------------------------------------------------------ *)
(* Payload (de)serialization: line-oriented text inside CRC frames.    *)

let ints_to_string xs = String.concat " " (List.map string_of_int xs)

let verdict_lines = function
  | V_ok n -> Printf.sprintf "ok %d" n
  | V_counterexample codes ->
      Printf.sprintf "cex %d %s" (List.length codes) (ints_to_string codes)
  | V_no_fair_cycle -> "nofc"
  | V_lasso { stem; cycle } ->
      Printf.sprintf "lasso %d %d %s" (List.length stem) (List.length cycle)
        (ints_to_string (stem @ cycle))

let record_payload r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "Q %d %d %d %d %d %d\n" r.r_qid r.r_depth r.r_max_period
       r.r_pump_ticks r.r_runs r.r_steps);
  Buffer.add_string b (verdict_lines r.r_verdict);
  Buffer.add_char b '\n';
  (match r.r_frontier with
  | None -> Buffer.add_string b "nofr"
  | Some f ->
      Buffer.add_string b
        (Printf.sprintf "fr %d %d %d" f.f_base_runs f.f_base_digest
           (List.length f.f_seeds));
      List.iter
        (fun s ->
          Buffer.add_string b
            (Printf.sprintf "\ns %d %s %d %s" (List.length s.sd_script)
               (ints_to_string s.sd_script) (List.length s.sd_sleep)
               (ints_to_string s.sd_sleep)))
        f.f_seeds);
  Buffer.contents b

let counters_payload c =
  Printf.sprintf "C %d %d %d %d %d %d" c.c_queries c.c_warm_hits c.c_resumes
    c.c_colds c.c_rejected c.c_steps_saved

let header_payload ~engine_version =
  Printf.sprintf "H %d %s" format_version engine_version

exception Malformed

(* Empty-list fields serialize as nothing, leaving double or trailing
   spaces ("s 0  0 "); dropping empty tokens makes those round-trip. *)
let tokens line =
  List.filter (fun s -> s <> "") (String.split_on_char ' ' line)

let int_tok s = match int_of_string_opt s with Some n -> n | None -> raise Malformed

let rec take_ints k toks =
  if k = 0 then ([], toks)
  else
    match toks with
    | [] -> raise Malformed
    | t :: tl ->
        let xs, rest = take_ints (k - 1) tl in
        (int_tok t :: xs, rest)

let parse_verdict line =
  match tokens line with
  | [ "ok"; n ] -> V_ok (int_tok n)
  | "cex" :: k :: rest ->
      let codes, extra = take_ints (int_tok k) rest in
      if extra <> [] then raise Malformed;
      V_counterexample codes
  | [ "nofc" ] -> V_no_fair_cycle
  | "lasso" :: sl :: cl :: rest ->
      let stem, rest = take_ints (int_tok sl) rest in
      let cycle, extra = take_ints (int_tok cl) rest in
      if extra <> [] then raise Malformed;
      V_lasso { stem; cycle }
  | _ -> raise Malformed

let parse_seed line =
  match tokens line with
  | "s" :: k :: rest ->
      let script, rest = take_ints (int_tok k) rest in
      (match rest with
      | m :: rest ->
          let sleep, extra = take_ints (int_tok m) rest in
          if extra <> [] then raise Malformed;
          { sd_script = script; sd_sleep = sleep }
      | [] -> raise Malformed)
  | _ -> raise Malformed

let parse_record payload =
  match String.split_on_char '\n' payload with
  | q :: v :: fr :: seeds -> (
      match tokens q with
      | [ "Q"; qid; depth; mp; pt; runs; steps ] ->
          let r_verdict = parse_verdict v in
          let r_frontier =
            match tokens fr with
            | [ "nofr" ] ->
                if seeds <> [] then raise Malformed;
                None
            | [ "fr"; base_runs; base_digest; nseeds ] ->
                if List.length seeds <> int_tok nseeds then raise Malformed;
                Some
                  {
                    f_base_runs = int_tok base_runs;
                    f_base_digest = int_tok base_digest;
                    f_seeds = List.map parse_seed seeds;
                  }
            | _ -> raise Malformed
          in
          {
            r_qid = int_tok qid;
            r_depth = int_tok depth;
            r_max_period = int_tok mp;
            r_pump_ticks = int_tok pt;
            r_runs = int_tok runs;
            r_steps = int_tok steps;
            r_verdict;
            r_frontier;
          }
      | _ -> raise Malformed)
  | _ -> raise Malformed

let parse_counters payload =
  match tokens payload with
  | [ "C"; q; w; r; c; x; s ] ->
      {
        c_queries = int_tok q;
        c_warm_hits = int_tok w;
        c_resumes = int_tok r;
        c_colds = int_tok c;
        c_rejected = int_tok x;
        c_steps_saved = int_tok s;
      }
  | _ -> raise Malformed

(* ------------------------------------------------------------------ *)
(* Framing.                                                            *)

let add_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let add_frame b payload =
  add_u32 b (String.length payload);
  add_u32 b (crc32 payload);
  Buffer.add_string b payload

(* The sane upper bound on one frame: seeds are small int lists, so a
   larger length field means a corrupted frame, not a big record. *)
let max_frame = 1 lsl 26

type t = {
  t_path : string;
  t_engine_version : string;
  mutable t_records : record list;  (* newest first *)
  mutable t_counters : counters;
  t_health : health;
}

(* Walk the frames of [data] after the magic.  Returns the payloads in
   file order plus the number of frames dropped (CRC mismatch: skip
   the frame, keep framing; truncation/insane length: stop). *)
let read_frames data =
  let len = String.length data in
  let dropped = ref 0 in
  let rec go off acc =
    if off = len then List.rev acc
    else if off + 8 > len then begin
      incr dropped;
      List.rev acc
    end
    else begin
      let plen = get_u32 data off in
      let crc = get_u32 data (off + 4) in
      if plen < 0 || plen > max_frame || off + 8 + plen > len then begin
        incr dropped;
        List.rev acc
      end
      else begin
        let payload = String.sub data (off + 8) plen in
        if crc32 payload <> crc then begin
          incr dropped;
          go (off + 8 + plen) acc
        end
        else go (off + 8 + plen) (payload :: acc)
      end
    end
  in
  let payloads = go 0 [] in
  (payloads, !dropped)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let same_slot a b = a.r_qid = b.r_qid && a.r_depth = b.r_depth

let open_ ?engine_version:(ev = engine_version) path =
  if not (Sys.file_exists path) then
    {
      t_path = path;
      t_engine_version = ev;
      t_records = [];
      t_counters = zero_counters;
      t_health =
        { h_created = true; h_invalidated = None; h_records_dropped = 0 };
    }
  else begin
    let data = read_file path in
    let fresh reason =
      {
        t_path = path;
        t_engine_version = ev;
        t_records = [];
        t_counters = zero_counters;
        t_health =
          {
            h_created = String.length data = 0;
            h_invalidated =
              (if String.length data = 0 then None else Some reason);
            h_records_dropped = 0;
          };
      }
    in
    if String.length data < String.length magic then fresh "bad magic"
    else if String.sub data 0 (String.length magic) <> magic then
      fresh "bad magic"
    else begin
      let body =
        String.sub data (String.length magic)
          (String.length data - String.length magic)
      in
      let payloads, dropped = read_frames body in
      match payloads with
      | [] -> fresh "missing header"
      | header :: rest -> (
          match tokens header with
          | [ "H"; fv; hev ] when int_of_string_opt fv = Some format_version
            ->
              if hev <> ev then
                fresh
                  (Printf.sprintf "engine version mismatch (%s, want %s)" hev
                     ev)
              else begin
                let dropped = ref dropped in
                let records = ref [] and counters = ref zero_counters in
                List.iter
                  (fun payload ->
                    match
                      if String.length payload = 0 then raise Malformed
                      else payload.[0]
                    with
                    | 'Q' -> (
                        match parse_record payload with
                        | r ->
                            records :=
                              r :: List.filter (fun o -> not (same_slot o r))
                                     !records
                        | exception Malformed -> incr dropped)
                    | 'C' -> (
                        match parse_counters payload with
                        | c -> counters := c
                        | exception Malformed -> incr dropped)
                    | _ | (exception Malformed) -> incr dropped)
                  rest;
                {
                  t_path = path;
                  t_engine_version = ev;
                  t_records = !records;
                  t_counters = !counters;
                  t_health =
                    {
                      h_created = false;
                      h_invalidated = None;
                      h_records_dropped = !dropped;
                    };
                }
              end
          | _ -> fresh "bad header")
    end
  end

let path t = t.t_path
let health t = t.t_health
let records t = List.rev t.t_records

let find t ~qid ~depth =
  List.find_opt (fun r -> r.r_qid = qid && r.r_depth = depth) t.t_records

let resumable r =
  r.r_frontier <> None
  && match r.r_verdict with V_ok _ | V_no_fair_cycle -> true | _ -> false

let best_resumable t ~qid ~depth =
  List.fold_left
    (fun best r ->
      if r.r_qid = qid && r.r_depth < depth && resumable r then
        match best with
        | Some b when b.r_depth >= r.r_depth -> best
        | _ -> Some r
      else best)
    None t.t_records

let add t r =
  t.t_records <- r :: List.filter (fun o -> not (same_slot o r)) t.t_records

let bump t event =
  let c = t.t_counters in
  t.t_counters <-
    (match event with
    | `Query -> { c with c_queries = c.c_queries + 1 }
    | `Warm saved ->
        {
          c with
          c_warm_hits = c.c_warm_hits + 1;
          c_steps_saved = c.c_steps_saved + max 0 saved;
        }
    | `Resume saved ->
        {
          c with
          c_resumes = c.c_resumes + 1;
          c_steps_saved = c.c_steps_saved + max 0 saved;
        }
    | `Cold -> { c with c_colds = c.c_colds + 1 }
    | `Rejected -> { c with c_rejected = c.c_rejected + 1 })

let counters t = t.t_counters

let commit t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  add_frame b (header_payload ~engine_version:t.t_engine_version);
  add_frame b (counters_payload t.t_counters);
  List.iter (fun r -> add_frame b (record_payload r)) (List.rev t.t_records);
  let tmp = Printf.sprintf "%s.tmp.%d" t.t_path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc b);
  Unix.rename tmp t.t_path
