open Parsetree
module SSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Small AST utilities.                                                *)

let rec unwrap e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e) ->
      unwrap e
  | _ -> e

let path_of e =
  match (unwrap e).pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | _ -> None

(* [...Runtime.name] with any (or no) prefix before [Runtime]. *)
let is_runtime name path =
  match List.rev path with
  | n :: "Runtime" :: _ -> String.equal n name
  | _ -> false

let iter_exprs f e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e

let exists_expr pred e =
  let found = ref false in
  iter_exprs (fun e -> if pred e then found := true) e;
  !found

let mentions name e =
  exists_expr
    (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; _ } -> String.equal x name
      | _ -> false)
    e

let sub_lambdas e =
  let acc = ref [] in
  iter_exprs
    (fun e ->
      match e.pexp_desc with
      | Pexp_fun _ | Pexp_function _ -> acc := e :: !acc
      | _ -> ())
    e;
  !acc

let pat_vars p =
  let acc = ref SSet.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := SSet.add txt !acc
          | Ppat_alias (_, { txt; _ }) -> acc := SSet.add txt !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  !acc

let rec fun_params e =
  match (unwrap e).pexp_desc with
  | Pexp_fun (lbl, _, pat, body) ->
      let ps, b = fun_params body in
      ((lbl, pat) :: ps, b)
  | _ -> ([], e)

let bool_lit e =
  match (unwrap e).pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "true"; _ }, None) -> Some true
  | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) -> Some false
  | _ -> None

(* The handle roots of an expression: the free lowercase identifiers
   it is built from, skipping identifiers in function position (so
   [snd a] and [r.obj] both root at the handle, not the accessor). *)
let roots e =
  let acc = ref SSet.empty in
  let rec go e =
    let e = unwrap e in
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } -> acc := SSet.add x !acc
    | Pexp_ident _ -> ()
    | Pexp_field (b, _) -> go b
    | Pexp_apply (f, args) ->
        (match (unwrap f).pexp_desc with Pexp_ident _ -> () | _ -> go f);
        List.iter (fun (_, a) -> go a) args
    | Pexp_tuple es -> List.iter go es
    | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> go a
    | Pexp_constant _ | Pexp_construct (_, None) | Pexp_variant (_, None) -> ()
    | _ -> iter_exprs
             (fun e ->
               match e.pexp_desc with
               | Pexp_ident { txt = Longident.Lident x; _ } ->
                   acc := SSet.add x !acc
               | _ -> ())
             e
  in
  go e;
  !acc

(* ------------------------------------------------------------------ *)
(* Classification tables.                                              *)

let creation_name = function
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref"
  | [ "Array"; ("make" | "init" | "create_float" | "make_matrix") ]
  | [ "Bytes"; ("create" | "make") ]
  | [ "Hashtbl"; "create" ]
  | [ "Atomic"; "make" ]
  | [ "Buffer"; "create" ]
  | [ "Queue"; "create" ]
  | [ "Stack"; "create" ]
  | [ "Weak"; "create" ] as p ->
      Some (String.concat "." p)
  | _ -> None

let mutation_name = function
  | [ ":=" ] | [ "incr" ] | [ "decr" ] -> true
  | [ "Array"; ("set" | "fill" | "blit") ]
  | [ "Bytes"; ("set" | "fill" | "blit") ]
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear") ]
  | [ "Atomic"; ("set" | "exchange" | "compare_and_set" | "fetch_and_add"
               | "incr" | "decr") ] ->
      true
  | _ -> false

(* The determinism banlist.  [Random.State] (explicit, seeded state
   threaded by the caller) is deliberately allowed: it is replay-
   deterministic.  The global [Random] functions mutate the hidden
   default state and are not. *)
let det_banned = function
  | "Random" :: rest when (match rest with "State" :: _ -> false | _ -> true)
    -> true
  | [ "Hashtbl"; ("hash" | "hash_param" | "seeded_hash" | "randomize") ]
  | [ "Sys"; ("time" | "cpu_time" | "opaque_identity") ]
  | [ "Unix"; ("gettimeofday" | "time" | "times") ]
  | [ "Domain"; ("spawn" | "self" | "join" | "cpu_relax") ]
  | [ "Oo"; "id" ] ->
      true
  | "Gc" :: _ :: _ -> true
  | _ -> false

let is_register_path path =
  match List.rev path with
  | ("register_object" | "fingerprinted") :: _ -> true
  | _ -> false

(* Applications that keep a step body "closed" for the unused-
   declaration check: operators plus a few pure standbys. *)
let pure_fn = function
  | [ x ] ->
      (x <> "" && not ((x.[0] >= 'a' && x.[0] <= 'z') || x.[0] = '_'))
      || List.mem x
           [ "fst"; "snd"; "not"; "ignore"; "min"; "max"; "abs"; "succ";
             "pred"; "compare"; "string_of_int"; "string_of_bool" ]
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Pass A: per-file helper discovery.                                  *)

type param_key = PLabel of string | PIndex of int

type touch_spec = { t_param : param_key; t_write : bool }

type declare_spec = {
  d_obj : param_key;
  d_cb : param_key option;
  d_write : bool;
}

type helpers = {
  touch_helpers : (string, touch_spec list) Hashtbl.t;
  declare_helpers : (string, declare_spec) Hashtbl.t;
  registering : SSet.t ref;  (** names whose body reaches a registration *)
  touching : SSet.t ref;  (** names whose body reaches the runtime *)
}

let named_functions str =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } ->
              let params, body = fun_params vb.pvb_expr in
              if params <> [] then acc := (txt, params, body) :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  List.iter (it.structure_item it) str;
  !acc

(* The key under which an application site will pass this parameter:
   its label, or its index among the unlabelled parameters. *)
let param_keys params =
  let idx = ref (-1) in
  List.map
    (fun (lbl, pat) ->
      match lbl with
      | Asttypes.Labelled l | Asttypes.Optional l -> (PLabel l, pat_vars pat)
      | Asttypes.Nolabel ->
          incr idx;
          (PIndex !idx, pat_vars pat))
    params

let arg_for args = function
  | PLabel l ->
      List.assoc_opt (Asttypes.Labelled l) args
  | PIndex k ->
      let unlabelled =
        List.filter_map
          (fun (lbl, a) ->
            match lbl with Asttypes.Nolabel -> Some a | _ -> None)
          args
      in
      List.nth_opt unlabelled k

let discover str =
  let fns = named_functions str in
  let h =
    {
      touch_helpers = Hashtbl.create 8;
      declare_helpers = Hashtbl.create 8;
      registering = ref SSet.empty;
      touching = ref SSet.empty;
    }
  in
  (* Touch helpers: a parameter whose pattern binds every root of a
     direct [Runtime.touch ~obj:..] in the body carries the handle. *)
  List.iter
    (fun (name, params, body) ->
      let keys = param_keys params in
      let specs = ref [] in
      iter_exprs
        (fun e ->
          match e.pexp_desc with
          | Pexp_apply (f, args) -> begin
              match path_of f with
              | Some p when is_runtime "touch" p -> begin
                  match arg_for args (PLabel "obj") with
                  | None -> ()
                  | Some obj ->
                      let r = roots obj in
                      let write =
                        match arg_for args (PLabel "write") with
                        | Some w -> Option.value (bool_lit w) ~default:true
                        | None -> true
                      in
                      List.iter
                        (fun (key, vars) ->
                          if (not (SSet.is_empty r)) && SSet.subset r vars then
                            specs := { t_param = key; t_write = write } :: !specs)
                        keys
                end
              | _ -> ()
            end
          | _ -> ())
        body;
      if !specs <> [] then Hashtbl.replace h.touch_helpers name !specs)
    fns;
  (* Declare helpers: the body is one [atomic_access] forwarding an
     [~obj] parameter, with a literal [~write] (the [reads]/[writes]
     wrappers of Slx_base_objects). *)
  List.iter
    (fun (name, params, body) ->
      let keys = param_keys params in
      match (unwrap body).pexp_desc with
      | Pexp_apply (f, args) -> begin
          match path_of f with
          | Some p when is_runtime "atomic_access" p -> begin
              let param_of e =
                match (unwrap e).pexp_desc with
                | Pexp_ident { txt = Longident.Lident x; _ } ->
                    List.find_map
                      (fun (key, vars) ->
                        if SSet.mem x vars then Some key else None)
                      keys
                | _ -> None
              in
              match Option.bind (arg_for args (PLabel "obj")) param_of with
              | None -> ()
              | Some d_obj ->
                  let d_write =
                    match arg_for args (PLabel "write") with
                    | Some w -> Option.value (bool_lit w) ~default:true
                    | None -> true
                  in
                  let d_cb =
                    List.find_map
                      (fun (lbl, a) ->
                        match lbl with
                        | Asttypes.Nolabel -> param_of a
                        | _ -> None)
                      args
                  in
                  Hashtbl.replace h.declare_helpers name { d_obj; d_cb; d_write }
            end
          | _ -> ()
        end
      | _ -> ())
    fns;
  (* Registration and runtime-reaching closures, to a fixpoint over
     the file's named functions. *)
  let reaches body pred locals =
    exists_expr
      (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt; _ } -> begin
            match Longident.flatten txt with
            | exception _ -> false
            | [ x ] when SSet.mem x locals -> true
            | p -> pred p
          end
        | _ -> false)
      body
  in
  let fix pred =
    let set = ref SSet.empty in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (name, _, body) ->
          if (not (SSet.mem name !set)) && reaches body pred !set then begin
            set := SSet.add name !set;
            changed := true
          end)
        fns
    done;
    !set
  in
  h.registering := fix is_register_path;
  h.touching :=
    fix (fun p ->
        is_runtime "touch" p || is_runtime "atomic_access" p
        || is_runtime "atomic" p
        ||
        match p with
        | [ x ] ->
            Hashtbl.mem h.touch_helpers x || Hashtbl.mem h.declare_helpers x
        | _ -> false);
  h

(* ------------------------------------------------------------------ *)
(* Pass B: the walker.                                                 *)

type app_kind =
  | Declare of expression option * bool * expression option
      (** obj, write, callback *)
  | Opaque_declare of expression option
  | Touches of (expression * bool) list  (** (obj expr, write) *)
  | Plain

type decl_ctx = {
  opaque : bool;
  map : (string * bool) list;  (** root -> write declared *)
  mutable touched : SSet.t;
  mutable unknown : bool;  (** an un-analyzable application was seen *)
}

let check ~file ~source str =
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let snippet_at line =
    if line >= 1 && line <= Array.length lines then lines.(line - 1) else ""
  in
  let findings = ref [] in
  let report ~rule ?(severity = Finding.Error) ~loc message =
    let p = loc.Location.loc_start in
    let line = p.Lexing.pos_lnum and col = p.Lexing.pos_cnum - p.Lexing.pos_bol in
    findings :=
      Finding.v ~rule ~severity ~file ~line ~col ~snippet:(snippet_at line)
        message
      :: !findings
  in
  let h = discover str in
  let contains_register e =
    exists_expr
      (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt; _ } -> begin
            match Longident.flatten txt with
            | exception _ -> false
            | [ x ] when SSet.mem x !(h.registering) -> true
            | p -> is_register_path p
          end
        | _ -> false)
      e
  in
  let contains_interaction e =
    exists_expr
      (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt; _ } -> begin
            match Longident.flatten txt with
            | exception _ -> false
            | [ x ] ->
                SSet.mem x !(h.touching)
                || Hashtbl.mem h.touch_helpers x
                || Hashtbl.mem h.declare_helpers x
            | p ->
                is_runtime "touch" p || is_runtime "atomic_access" p
                || is_runtime "atomic" p
          end
        | _ -> false)
      e
  in
  let classify f args =
    match path_of f with
    | Some p when is_runtime "atomic_access" p ->
        let cb =
          List.filter_map
            (fun (lbl, a) ->
              match lbl with Asttypes.Nolabel -> Some a | _ -> None)
            args
        in
        Declare
          ( arg_for args (PLabel "obj"),
            (match arg_for args (PLabel "write") with
            | Some w -> Option.value (bool_lit w) ~default:true
            | None -> true),
            match List.rev cb with c :: _ -> Some c | [] -> None )
    | Some p when is_runtime "atomic" p ->
        Opaque_declare
          (List.find_map
             (fun (lbl, a) ->
               match lbl with Asttypes.Nolabel -> Some a | _ -> None)
             args)
    | Some p when is_runtime "touch" p -> begin
        match arg_for args (PLabel "obj") with
        | None -> Plain
        | Some obj ->
            let write =
              match arg_for args (PLabel "write") with
              | Some w -> Option.value (bool_lit w) ~default:true
              | None -> true
            in
            Touches [ (obj, write) ]
      end
    | Some [ name ] when Hashtbl.mem h.declare_helpers name ->
        let s = Hashtbl.find h.declare_helpers name in
        Declare
          ( arg_for args s.d_obj,
            s.d_write,
            Option.bind s.d_cb (fun k -> arg_for args k) )
    | Some [ name ] when Hashtbl.mem h.touch_helpers name ->
        Touches
          (List.filter_map
             (fun s ->
               Option.map (fun a -> (a, s.t_write))
                 (arg_for args s.t_param))
             (Hashtbl.find h.touch_helpers name))
    | _ -> Plain
  in
  (* Mutable walker state, saved and restored around sub-walks. *)
  let fun_depth = ref 0 in
  let registered_scope = ref false in
  let interacting_scope = ref false in
  let local_bound = ref SSet.empty in
  let cb_bound = ref SSet.empty in
  let ctx : decl_ctx option ref = ref None in
  let handled_creations = Hashtbl.create 8 in
  let it = ref Ast_iterator.default_iterator in
  let walk e = !it.expr !it e in
  (* The escape analysis at a [let x = <creation>] site.  [scope] is
     where captures of [x] can live. *)
  let escape_check vb scope_exprs =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = x; _ } -> begin
        let rhs = unwrap vb.pvb_expr in
        match rhs.pexp_desc with
        | Pexp_apply (f, _) -> begin
            match Option.bind (path_of f) creation_name with
            | None -> ()
            | Some what ->
                Hashtbl.replace handled_creations rhs.pexp_loc ();
                if not !registered_scope then begin
                  let captors =
                    List.concat_map sub_lambdas scope_exprs
                    |> List.filter (mentions x)
                  in
                  if captors = [] then ()  (* function-local scratch *)
                  else if !fun_depth = 0 then
                    report ~rule:"escape-global-mutable" ~loc:rhs.pexp_loc
                      (Printf.sprintf
                         "module-level %s bound to %S is captured by a \
                          function: one mutable cell shared by every \
                          instance and every replay"
                         what x)
                  else if List.exists contains_interaction captors then
                    report ~rule:"escape-unregistered-state" ~loc:rhs.pexp_loc
                      (Printf.sprintf
                         "%s bound to %S is captured by a runtime-\
                          interacting closure with no \
                          Runtime.register_object in scope: invisible to \
                          fingerprints and the sanitizer shadow"
                         what x)
                  (* else: scheduler-side closure state (drivers,
                     adversaries) — replay re-decides, not re-draws *)
                end
          end
        | _ -> ()
      end
    | _ -> ()
  in
  let creation_fallback e =
    match e.pexp_desc with
    | Pexp_apply (f, _) -> begin
        match Option.bind (path_of f) creation_name with
        | Some what
          when !fun_depth = 0
               && (not (Hashtbl.mem handled_creations e.pexp_loc))
               && not !registered_scope ->
            report ~rule:"escape-global-mutable" ~loc:e.pexp_loc
              (Printf.sprintf
                 "module-level %s outside any let-binding this lint can \
                  track: module state is shared by every instance and \
                  every replay"
                 what)
        | _ -> ()
      end
    | _ -> ()
  in
  let mutation_check f args loc =
    let is_mut =
      match path_of f with Some p -> mutation_name p | None -> false
    in
    if is_mut && !ctx = None && !interacting_scope then
      match
        List.find_map
          (fun (lbl, a) ->
            match lbl with Asttypes.Nolabel -> Some a | _ -> None)
          args
      with
      | None -> ()
      | Some target ->
          let r = SSet.diff (roots target) !local_bound in
          if not (SSet.is_empty r) then
            report ~rule:"escape-naked-mutation" ~severity:Finding.Warn ~loc
              (Printf.sprintf
                 "mutation of %s outside any atomic/atomic_access callback \
                  in runtime-interacting code: invisible to declared \
                  footprints"
                 (String.concat ", " (SSet.elements r)))
  in
  let touch_check obj write loc =
    match !ctx with
    | None | Some { opaque = true; _ } -> ()
    | Some c ->
        let r = SSet.diff (roots obj) !cb_bound in
        c.touched <- SSet.union c.touched r;
        SSet.iter
          (fun x ->
            match List.assoc_opt x c.map with
            | None ->
                report ~rule:"fp-undeclared-handle" ~loc
                  (Printf.sprintf
                     "handle %S is touched under a declaration that only \
                      mentions {%s}: the static twin of Undeclared_touch"
                     x
                     (String.concat ", " (List.map fst c.map)))
            | Some declared_write ->
                if write && not declared_write then
                  report ~rule:"fp-write-under-read" ~loc
                    (Printf.sprintf
                       "handle %S is written under a read-only declaration: \
                        POR would commute steps that do not commute"
                       x))
          r
  in
  (* Walk a declare's callback under a new footprint context. *)
  let with_ctx new_ctx cb =
    let saved_ctx = !ctx and saved_cb = !cb_bound in
    ctx := Some new_ctx;
    cb_bound := SSet.empty;
    walk cb;
    ctx := saved_ctx;
    cb_bound := saved_cb
  in
  let declare_check obj write callback loc =
    let declared = match obj with Some o -> roots o | None -> SSet.empty in
    (* A nested declaration must stay inside the pending footprint
       (the static twin of Undeclared_nesting). *)
    (match !ctx with
    | Some c when not c.opaque ->
        let fresh =
          SSet.filter (fun x -> not (List.mem_assoc x c.map))
            (SSet.diff declared !cb_bound)
        in
        SSet.iter
          (fun x ->
            report ~rule:"fp-undeclared-handle" ~loc
              (Printf.sprintf
                 "nested atomic declaration mentions handle %S outside the \
                  pending footprint {%s}: the static twin of \
                  Undeclared_nesting"
                 x
                 (String.concat ", " (List.map fst c.map))))
          fresh
    | _ -> ());
    let outer_map, outer_opaque =
      match !ctx with Some c -> (c.map, c.opaque) | None -> ([], false)
    in
    match callback with
    | Some cb when (match (unwrap cb).pexp_desc with
                   | Pexp_fun _ | Pexp_function _ -> true
                   | _ -> false) ->
        let new_roots =
          SSet.filter (fun x -> not (List.mem_assoc x outer_map)) declared
        in
        let c =
          {
            opaque = outer_opaque;
            map =
              SSet.fold (fun x acc -> (x, write) :: acc) declared outer_map;
            touched = SSet.empty;
            unknown = false;
          }
        in
        with_ctx c cb;
        let untouched = SSet.diff new_roots c.touched in
        if (not c.opaque) && (not c.unknown) && not (SSet.is_empty untouched)
        then
          report ~rule:"fp-unused-declaration" ~severity:Finding.Warn ~loc
            (Printf.sprintf
               "declared handle%s {%s} never touched in this closed step \
                body: the static twin of the audit's Never_touched lint"
               (if SSet.cardinal untouched > 1 then "s" else "")
               (String.concat ", " (SSet.elements untouched)))
    | Some cb -> walk cb  (* opaque callback value: analyzed elsewhere *)
    | None -> ()
  in
  let expr_override _it e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> begin
        match Longident.flatten txt with
        | exception _ -> ()
        | [ ("==" | "!=") as op ] ->
            report ~rule:"det-physical-equality" ~loc:e.pexp_loc
              (Printf.sprintf
                 "physical equality (%s) depends on sharing, which replay \
                  does not preserve; use structural equality or a stable \
                  identity"
                 op)
        | p when det_banned p ->
            report ~rule:"det-banned-call" ~loc:e.pexp_loc
              (Printf.sprintf
                 "%s can differ between a run and its replay: fingerprints, \
                  lex-least witnesses and stored-verdict re-validation all \
                  assume determinism"
                 (String.concat "." p))
        | _ -> ()
      end
    | Pexp_fun _ | Pexp_function _ ->
        let saved =
          (!fun_depth, !registered_scope, !interacting_scope, !local_bound,
           !cb_bound)
        in
        incr fun_depth;
        if not !registered_scope then
          registered_scope := contains_register e;
        if not !interacting_scope then
          interacting_scope := contains_interaction e;
        (match e.pexp_desc with
        | Pexp_fun (_, _, pat, _) ->
            local_bound := SSet.union !local_bound (pat_vars pat);
            cb_bound := SSet.union !cb_bound (pat_vars pat)
        | _ -> ());
        Ast_iterator.default_iterator.expr !it e;
        let d, r, i, l, c = saved in
        fun_depth := d;
        registered_scope := r;
        interacting_scope := i;
        local_bound := l;
        cb_bound := c
    | Pexp_let (_, vbs, cont) ->
        List.iter (fun vb -> escape_check vb (cont :: List.map (fun v -> v.pvb_expr) (List.filter (fun v -> v != vb) vbs))) vbs;
        List.iter (fun vb -> walk vb.pvb_expr) vbs;
        let saved = (!local_bound, !cb_bound) in
        let vars =
          List.fold_left
            (fun acc vb -> SSet.union acc (pat_vars vb.pvb_pat))
            SSet.empty vbs
        in
        local_bound := SSet.union !local_bound vars;
        cb_bound := SSet.union !cb_bound vars;
        walk cont;
        local_bound := fst saved;
        cb_bound := snd saved
    | Pexp_apply (f, args) -> begin
        creation_fallback e;
        mutation_check f args e.pexp_loc;
        (match !ctx with
        | Some c when not c.opaque -> begin
            match classify f args with
            | Plain -> begin
                match path_of f with
                | Some p when pure_fn p || mutation_name p -> ()
                | Some _ | None -> c.unknown <- true
              end
            | _ -> ()
          end
        | _ -> ());
        match classify f args with
        | Declare (obj, write, callback) ->
            walk f;
            Option.iter walk obj;
            List.iter
              (fun (lbl, a) ->
                let is_cb =
                  match callback with Some cb -> a == cb | None -> false
                in
                let is_obj =
                  match obj with Some o -> a == o | None -> false
                in
                if (not is_cb) && not is_obj then
                  match lbl with _ -> walk a)
              args;
            declare_check obj write callback e.pexp_loc
        | Opaque_declare callback -> begin
            walk f;
            match callback with
            | Some cb
              when (match (unwrap cb).pexp_desc with
                   | Pexp_fun _ | Pexp_function _ -> true
                   | _ -> false) ->
                with_ctx
                  { opaque = true; map = []; touched = SSet.empty;
                    unknown = false }
                  cb
            | Some cb -> walk cb
            | None -> ()
          end
        | Touches objs ->
            List.iter
              (fun (obj, write) -> touch_check obj write e.pexp_loc)
              objs;
            Ast_iterator.default_iterator.expr !it e
        | Plain -> Ast_iterator.default_iterator.expr !it e
      end
    | Pexp_setfield (b, _, _) ->
        (if !ctx = None && !interacting_scope then
           let r = SSet.diff (roots b) !local_bound in
           if not (SSet.is_empty r) then
             report ~rule:"escape-naked-mutation" ~severity:Finding.Warn
               ~loc:e.pexp_loc
               (Printf.sprintf
                  "field mutation of %s outside any atomic/atomic_access \
                   callback in runtime-interacting code: invisible to \
                   declared footprints"
                  (String.concat ", " (SSet.elements r))));
        Ast_iterator.default_iterator.expr !it e
    | _ -> Ast_iterator.default_iterator.expr !it e
  in
  it := { Ast_iterator.default_iterator with expr = expr_override };
  (* Top level: [Pstr_value] bindings get the escape analysis with the
     whole structure as the capture scope (conservative about textual
     order, precise enough in practice). *)
  let all_toplevel_exprs =
    List.filter_map
      (fun si ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) -> Some (List.map (fun vb -> vb.pvb_expr) vbs)
        | _ -> None)
      str
    |> List.concat
  in
  List.iter
    (fun si ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              escape_check vb
                (List.filter (fun e -> e != vb.pvb_expr) all_toplevel_exprs))
            vbs;
          List.iter (fun vb -> walk vb.pvb_expr) vbs
      | _ -> !it.structure_item !it si)
    str;
  List.sort_uniq Finding.compare !findings
