type severity = Info | Warn | Error

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  snippet : string;
  message : string;
}

let v ~rule ~severity ~file ?(line = 0) ?(col = 0) ?(snippet = "") message =
  { rule; severity; file; line; col; snippet; message }

let gating f = match f.severity with Info -> false | Warn | Error -> true

let compare a b =
  match String.compare a.file b.file with
  | 0 -> begin
      match Int.compare a.line b.line with
      | 0 -> begin
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c
        end
      | c -> c
    end
  | c -> c

let severity_label = function
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col
    (severity_label f.severity)
    f.rule f.message;
  if f.snippet <> "" then Format.fprintf ppf "@,    | %s" (String.trim f.snippet)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    "{\"rule\": %S, \"severity\": %S, \"file\": %S, \"line\": %d, \"col\": \
     %d, \"message\": \"%s\", \"snippet\": \"%s\"}"
    f.rule
    (severity_label f.severity)
    f.file f.line f.col (json_escape f.message)
    (json_escape (String.trim f.snippet))

(* The catalog is the single source of rule ids; [Rules] and [Lint]
   construct findings through it so a typo'd id cannot ship. *)
let rules =
  [
    ( "escape-global-mutable",
      Error,
      "module-level mutable state (ref/array/Hashtbl/...) captured by a \
       function: shared across every instance and run, invisible to \
       fingerprints and replay" );
    ( "escape-unregistered-state",
      Error,
      "mutable state captured by a runtime-interacting closure without a \
       Runtime.register_object in scope: the shadow detector and the \
       fingerprint registry never see it" );
    ( "escape-naked-mutation",
      Warn,
      "mutation of non-local state in runtime-interacting code outside any \
       atomic/atomic_access callback: the access is invisible to declared \
       footprints" );
    ( "det-banned-call",
      Error,
      "call that can differ across replays (Random globals, Hashtbl.hash, \
       wall clocks, Gc introspection, Domain spawns): fingerprints, \
       lex-least witnesses and store re-validation assume determinism" );
    ( "det-physical-equality",
      Error,
      "physical equality (==/!=) in model code: depends on sharing, which \
       replay does not preserve" );
    ( "fp-undeclared-handle",
      Error,
      "an object handle is touched (or re-declared by a nested atomic \
       action) under a declaration that never mentions it: the static twin \
       of the sanitizer's Undeclared_touch/Undeclared_nesting" );
    ( "fp-write-under-read",
      Error,
      "a write-touch under a declaration that announced only a read: POR \
       would commute steps that do not commute" );
    ( "fp-unused-declaration",
      Warn,
      "a declared handle is never touched in a closed step body: harmless \
       for soundness, destroys reduction (the static twin of the audit's \
       Never_touched lint)" );
    ( "parse-error",
      Error,
      "the source file does not parse; nothing behind the error is checked" );
    ( "waiver-expired",
      Error,
      "a waiver entry is past its expiry date: re-justify or fix" );
    ( "waiver-unused",
      Warn,
      "a waiver entry matched no finding: stale, delete it" );
    ( "waiver-malformed",
      Error,
      "a waiver line does not parse: fix the entry" );
  ]
