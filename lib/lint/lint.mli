(** The sweep driver: files -> parse -> {!Rules.check} -> waivers.

    The library is clock-free and [unix]-free: [today] is an ISO date
    string supplied by the caller (the CLI computes it; tests pin it),
    and with the default ["0000-00-00"] nothing ever expires. *)

type report = {
  root : string;  (** all paths below are relative to this *)
  files : string list;  (** every [.ml] swept, sorted *)
  findings : Finding.t list;
      (** unwaived findings, including [parse-error] and the
          [waiver-*] meta findings, sorted *)
  waived : (Finding.t * Waivers.entry) list;
      (** suppressed findings with the entry that suppressed each *)
}

val default_paths : string list
(** The model-code sweep: [lib/objects], [lib/consensus], [lib/tm],
    [lib/base_objects], [examples], and [lib/analysis/fixtures.ml]
    (the deliberately-broken fixtures — which is what the waiver file
    is for). *)

val run :
  ?root:string ->
  ?paths:string list ->
  ?waiver_file:string ->
  ?today:string ->
  ?strict_waivers:bool ->
  unit ->
  report
(** Sweep [paths] (files or directories, relative to [root], default
    {!default_paths}; directories recurse over [.ml] files, [.mli]
    interfaces carry no step bodies and are skipped).  A missing
    [path] is itself a finding, not an exception.  [waiver_file] (also
    relative to [root]) suppresses matching findings; a missing or
    malformed waiver file yields a [waiver-malformed] finding.
    [strict_waivers] raises unused-waiver findings from [Info] to the
    gating [Warn] (the [--ci] posture). *)

val clean : report -> bool
(** No finding at [Warn] or above. *)

val pp : Format.formatter -> report -> unit
val to_json : report -> string
