(** A structured lint finding.

    Every rule reports through this one type so the human renderer,
    the JSON emitter, the waiver matcher and the CI gate all agree on
    what a finding is.  Findings are pure data: producing one never
    prints, raises or exits. *)

type severity =
  | Info  (** Reported, never gates. *)
  | Warn  (** Gates [--ci]; waivable. *)
  | Error  (** Gates every run; waivable. *)

type t = {
  rule : string;  (** Rule id, e.g. ["fp-undeclared-handle"]. *)
  severity : severity;
  file : string;  (** Path relative to the lint root. *)
  line : int;  (** 1-based; 0 when the finding is file-level. *)
  col : int;  (** 0-based column of [line]. *)
  snippet : string;  (** The source line the finding points at. *)
  message : string;
}

val v :
  rule:string ->
  severity:severity ->
  file:string ->
  ?line:int ->
  ?col:int ->
  ?snippet:string ->
  string ->
  t

val gating : t -> bool
(** Whether the finding fails the lint ([severity >= Warn]). *)

val compare : t -> t -> int
(** Order by file, line, column, rule — the stable report order. *)

val severity_label : severity -> string
val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One-line JSON object. *)

val json_escape : string -> string
(** JSON string-body escaping (shared with the report emitters). *)

val rules : (string * severity * string) list
(** The rule catalog: id, default severity, one-line doc.  [slx lint
    --rules] prints it; tests assert reported ids stay within it. *)
