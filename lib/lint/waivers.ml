type entry = {
  w_rule : string;
  w_file : string;
  w_match : string option;
  w_expires : string option;
  w_reason : string;
  w_line : int;
}

(* Split a line into [key=value] tokens; a value may be double-quoted
   to contain spaces (["\""] inside quoted values is not supported —
   waiver matches are source substrings, which never need it). *)
let tokens line =
  let n = String.length line in
  let rec skip i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip (i + 1) else i in
  let rec token acc i =
    let i = skip i in
    if i >= n || line.[i] = '#' then Ok (List.rev acc)
    else
      match String.index_from_opt line i '=' with
      | None -> Error i
      | Some eq ->
          let key = String.sub line i (eq - i) in
          if key = "" || String.contains key ' ' then Error i
          else if eq + 1 < n && line.[eq + 1] = '"' then begin
            match String.index_from_opt line (eq + 2) '"' with
            | None -> Error i
            | Some close ->
                let v = String.sub line (eq + 2) (close - eq - 2) in
                token ((key, v) :: acc) (close + 1)
          end
          else
            let stop =
              match String.index_from_opt line (eq + 1) ' ' with
              | None -> n
              | Some s -> s
            in
            token ((key, String.sub line (eq + 1) (stop - eq - 1)) :: acc) stop
  in
  token [] 0

let is_date s =
  String.length s = 10
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s
  && s.[4] = '-' && s.[7] = '-'

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> begin
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go acc (lineno + 1) rest
        else
          match tokens trimmed with
          | Error col ->
              Error
                ( Printf.sprintf "unparsable token at column %d" (col + 1),
                  lineno )
          | Ok kvs -> begin
              let find k = List.assoc_opt k kvs in
              let bad msg = Error (msg, lineno) in
              match (find "rule", find "file", find "reason") with
              | None, _, _ -> bad "missing rule="
              | _, None, _ -> bad "missing file="
              | _, _, None -> bad "missing reason= (every waiver needs one)"
              | Some rule, Some file, Some reason ->
                  if not (List.exists (fun (r, _, _) -> r = rule) Finding.rules)
                  then bad (Printf.sprintf "unknown rule %S" rule)
                  else begin
                    match find "expires" with
                    | Some d when not (is_date d) ->
                        bad
                          (Printf.sprintf "bad expires %S (want YYYY-MM-DD)" d)
                    | expires ->
                        let unknown =
                          List.filter
                            (fun (k, _) ->
                              not
                                (List.mem k
                                   [ "rule"; "file"; "match"; "expires";
                                     "reason" ]))
                            kvs
                        in
                        if unknown <> [] then
                          bad
                            (Printf.sprintf "unknown key %S"
                               (fst (List.hd unknown)))
                        else
                          go
                            ({
                               w_rule = rule;
                               w_file = file;
                               w_match = find "match";
                               w_expires = expires;
                               w_reason = reason;
                               w_line = lineno;
                             }
                            :: acc)
                            (lineno + 1) rest
                  end
            end
      end
  in
  go [] 1 lines

let contains ~sub s =
  let ls = String.length s and lsub = String.length sub in
  if lsub = 0 then true
  else
    let rec at i =
      i + lsub <= ls && (String.sub s i lsub = sub || at (i + 1))
    in
    at 0

let matches e (f : Finding.t) =
  e.w_rule = f.rule && e.w_file = f.file
  &&
  match e.w_match with
  | None -> true
  | Some sub ->
      contains ~sub (if f.snippet = "" then f.message else f.snippet)

(* ISO dates compare lexicographically; an entry with no expiry never
   expires. *)
let expired ~today e =
  match e.w_expires with None -> false | Some d -> String.compare d today < 0

let pp_entry ppf e =
  Format.fprintf ppf "line %d: %s %s%s%s (%s)" e.w_line e.w_rule e.w_file
    (match e.w_match with Some m -> Printf.sprintf " match=%S" m | None -> "")
    (match e.w_expires with
    | Some d -> Printf.sprintf " expires=%s" d
    | None -> "")
    e.w_reason

let entry_to_json e =
  Printf.sprintf
    "{\"line\": %d, \"rule\": %S, \"file\": %S, \"match\": %s, \"expires\": \
     %s, \"reason\": \"%s\"}"
    e.w_line e.w_rule e.w_file
    (match e.w_match with
    | Some m -> Printf.sprintf "\"%s\"" (Finding.json_escape m)
    | None -> "null")
    (match e.w_expires with Some d -> Printf.sprintf "%S" d | None -> "null")
    (Finding.json_escape e.w_reason)
