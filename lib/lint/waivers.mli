(** The checked-in waiver file.

    One entry per line, [key=value] tokens separated by whitespace,
    values optionally double-quoted; [#] starts a comment:

    {v
    # deliberately-broken sanitizer fixture (doc/model.md section 12)
    rule=fp-undeclared-handle file=lib/analysis/fixtures.ml \
      match="store b v" expires=2030-12-31 \
      reason="leaky fixture: the leak is the point"
    v}

    [rule] and [file] are mandatory and matched exactly ([file] is the
    lint-root-relative path).  [match] is an optional substring of the
    finding's source-line snippet — waivers deliberately do not carry
    line numbers, so unrelated edits to the file cannot silently
    re-aim one.  [expires] (optional, [YYYY-MM-DD]) turns the entry
    into a [waiver-expired] finding once today is past it; [reason] is
    mandatory so every suppression carries its justification. *)

type entry = {
  w_rule : string;
  w_file : string;
  w_match : string option;
  w_expires : string option;  (** [YYYY-MM-DD]; lexicographic order. *)
  w_reason : string;
  w_line : int;  (** 1-based line in the waiver file, for reporting. *)
}

val parse : string -> (entry list, string * int) result
(** Parse the file contents; [Error (msg, line)] on the first
    malformed entry. *)

val matches : entry -> Finding.t -> bool
(** Rule and file equal; [match] substring present in the snippet (or
    in the message when the snippet is empty). *)

val expired : today:string -> entry -> bool

val pp_entry : Format.formatter -> entry -> unit
val entry_to_json : entry -> string
