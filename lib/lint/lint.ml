type report = {
  root : string;
  files : string list;
  findings : Finding.t list;
  waived : (Finding.t * Waivers.entry) list;
}

let default_paths =
  [
    "lib/objects";
    "lib/consensus";
    "lib/tm";
    "lib/base_objects";
    "examples";
    "lib/analysis/fixtures.ml";
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let under root p = if Filename.is_relative p then Filename.concat root p else p

let is_ml name =
  String.length name > 3 && String.sub name (String.length name - 3) 3 = ".ml"

(* Collect the [.ml] files under [rel] (root-relative), recursing into
   directories.  Hidden entries and [_build]-style dirs never appear
   under the swept paths, but skip dotfiles anyway. *)
let rec collect ~root rel acc =
  let abs = under root rel in
  if Sys.file_exists abs && Sys.is_directory abs then
    Array.fold_left
      (fun acc name ->
        if String.length name > 0 && name.[0] = '.' then acc
        else collect ~root (Filename.concat rel name) acc)
      acc (Sys.readdir abs)
  else if Sys.file_exists abs && is_ml rel then rel :: acc
  else acc

let check_file ~root rel =
  let abs = under root rel in
  match read_file abs with
  | exception Sys_error e ->
      [ Finding.v ~rule:"parse-error" ~severity:Finding.Error ~file:rel
          (Printf.sprintf "cannot read source: %s" e) ]
  | source -> begin
      let lexbuf = Lexing.from_string source in
      Lexing.set_filename lexbuf rel;
      match Parse.implementation lexbuf with
      | str -> Rules.check ~file:rel ~source str
      | exception exn ->
          let line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum in
          let msg =
            match exn with
            | Syntaxerr.Error _ -> "syntax error"
            | exn -> Printexc.to_string exn
          in
          [ Finding.v ~rule:"parse-error" ~severity:Finding.Error ~file:rel
              ~line
              (Printf.sprintf
                 "does not parse (%s): nothing behind the error is checked"
                 msg) ]
    end

let load_waivers ~root ~strict = function
  | None -> ([], [])
  | Some wf -> begin
      let abs = under root wf in
      match read_file abs with
      | exception Sys_error e ->
          ( [],
            [ Finding.v ~rule:"waiver-malformed" ~severity:Finding.Error
                ~file:wf
                (Printf.sprintf "cannot read waiver file: %s" e) ] )
      | contents -> begin
          match Waivers.parse contents with
          | Error (msg, line) ->
              ( [],
                [ Finding.v ~rule:"waiver-malformed" ~severity:Finding.Error
                    ~file:wf ~line msg ] )
          | Ok entries ->
              ignore strict;
              (entries, [])
        end
    end

let run ?(root = ".") ?(paths = default_paths) ?waiver_file
    ?(today = "0000-00-00") ?(strict_waivers = false) () =
  let files, missing =
    List.fold_left
      (fun (files, missing) p ->
        if Sys.file_exists (under root p) then
          (collect ~root p files, missing)
        else
          ( files,
            Finding.v ~rule:"parse-error" ~severity:Finding.Error ~file:p
              "swept path does not exist"
            :: missing ))
      ([], []) paths
  in
  let files = List.sort_uniq String.compare files in
  let raw = List.concat_map (check_file ~root) files @ missing in
  let entries, waiver_findings =
    load_waivers ~root ~strict:strict_waivers waiver_file
  in
  let live, dead = List.partition (fun e -> not (Waivers.expired ~today e)) entries in
  let used = Hashtbl.create 8 in
  let findings, waived =
    List.fold_left
      (fun (fs, ws) f ->
        match List.find_opt (fun e -> Waivers.matches e f) live with
        | Some e ->
            Hashtbl.replace used e.Waivers.w_line ();
            (fs, (f, e) :: ws)
        | None -> (f :: fs, ws))
      ([], []) raw
  in
  let wf = Option.value waiver_file ~default:"" in
  let expired_findings =
    List.map
      (fun (e : Waivers.entry) ->
        Finding.v ~rule:"waiver-expired" ~severity:Finding.Error ~file:wf
          ~line:e.w_line
          (Printf.sprintf "waiver for %s on %s expired %s (%s)" e.w_rule
             e.w_file
             (Option.value e.w_expires ~default:"?")
             e.w_reason))
      dead
  in
  let unused_findings =
    List.filter_map
      (fun (e : Waivers.entry) ->
        if Hashtbl.mem used e.w_line then None
        else
          Some
            (Finding.v ~rule:"waiver-unused"
               ~severity:(if strict_waivers then Finding.Warn else Finding.Info)
               ~file:wf ~line:e.w_line
               (Printf.sprintf "waiver for %s on %s matched nothing (%s)"
                  e.w_rule e.w_file e.w_reason)))
      live
  in
  {
    root;
    files;
    findings =
      List.sort Finding.compare
        (findings @ waiver_findings @ expired_findings @ unused_findings);
    waived = List.rev waived;
  }

let clean rp = not (List.exists Finding.gating rp.findings)

let pp ppf rp =
  Format.fprintf ppf "@[<v>";
  List.iter (fun f -> Format.fprintf ppf "%a@," Finding.pp f) rp.findings;
  if rp.waived <> [] then
    Format.fprintf ppf "%d finding%s waived@," (List.length rp.waived)
      (if List.length rp.waived = 1 then "" else "s");
  Format.fprintf ppf "%d file%s swept, %d finding%s%s@]"
    (List.length rp.files)
    (if List.length rp.files = 1 then "" else "s")
    (List.length rp.findings)
    (if List.length rp.findings = 1 then "" else "s")
    (if clean rp then " - clean" else "")

let to_json rp =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"root\": \"%s\",\n" (Finding.json_escape rp.root));
  Buffer.add_string b
    (Printf.sprintf "  \"files\": %d,\n" (List.length rp.files));
  Buffer.add_string b
    (Printf.sprintf "  \"clean\": %b,\n" (clean rp));
  Buffer.add_string b "  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n    ";
      Buffer.add_string b (Finding.to_json f))
    rp.findings;
  if rp.findings <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "],\n";
  Buffer.add_string b "  \"waived\": [";
  List.iteri
    (fun i (f, e) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n    {\"finding\": ";
      Buffer.add_string b (Finding.to_json f);
      Buffer.add_string b ", \"waiver\": ";
      Buffer.add_string b (Waivers.entry_to_json e);
      Buffer.add_string b "}")
    rp.waived;
  if rp.waived <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}";
  Buffer.contents b
