(** The three rule families over one parsed implementation source.

    All analyses are intraprocedural and purely syntactic over the
    {!Parsetree} — no typing, no cmt files — so they run on any source
    the compiler can parse, at parse cost.  They are {e conservative
    with documented blind spots} (doc/model.md section 12), the static
    complement of the exact-but-explored-paths-only runtime shadow:

    - {b escape}: raw mutable state (refs, arrays, hash tables,
      atomics) must not be shared across steps except through
      [Runtime.register_object]-registered cells.  Module-level
      mutable state and closure-captured unregistered state in
      runtime-interacting code are flagged; function-local scratch and
      scheduler-side (never-touching-the-runtime) closure state are
      allowed.
    - {b determinism}: calls whose result can differ between a run and
      its replay are banned ([Random] globals — the explicitly-seeded
      [Random.State] is allowed — [Hashtbl.hash]*, wall clocks, [Gc]
      introspection, [Domain] spawns, physical equality).
    - {b footprint}: inside an [atomic_access ~obj:D] callback, every
      handle reaching a [touch] (directly, through per-file touch
      helpers, or via a nested atomic declaration) must be rooted in
      the identifiers of [D]; writes must be declared as writes; a
      declared handle never touched in a closed body is flagged.
      [Runtime.atomic] (Opaque) discharges the family. *)

val check : file:string -> source:string -> Parsetree.structure -> Finding.t list
(** All findings of the three families for one file, sorted.  [file]
    is used verbatim in the findings; [source] provides snippets. *)
