(** Happens-before certifier: cross-checks the conflict relation the
    explorer's partial-order reduction relies on against the accesses
    actually observed during a run.

    The POR soundness argument (doc/model.md §9) needs declared
    footprints to over-approximate real accesses {e pairwise}: whenever
    two steps of different processes touch a common base-object cell
    with at least one write (an {e observed conflict}), their declared
    footprints must not commute.  The race detector
    ({!Slx_sim.Runtime.touch}) certifies the per-step inclusion
    [touched ⊆ declared]; this module certifies the derived pairwise
    property directly from a recorded run, so the two checks agree by
    independent routes.

    Runs are short (bounded by the audit depth), so the cross-check is
    a plain all-pairs sweep; a FastTrack-style vector-clock pass then
    counts the non-redundant happens-before edges induced by the
    observed conflicts — the number reported as
    {!Slx_core.Explore_stats.hb_edges}. *)

open Slx_history
open Slx_sim

type step = {
  hs_proc : Proc.t;  (** The process granted this scheduling step. *)
  hs_decl : Runtime.footprint;  (** The footprint it declared. *)
  hs_touched : Runtime.access list;
      (** The cell accesses it actually performed (from a recording
          shadow's {!Slx_sim.Runtime.step_log}). *)
}
(** One scheduling step of a recorded run. *)

type cert = {
  hb_steps : int;  (** Steps certified. *)
  hb_edges : int;
      (** Non-redundant happens-before edges (vector-clock joins that
          actually advanced a clock). *)
  hb_checks : int;
      (** Observed-conflict pairs cross-checked against
          {!Slx_sim.Runtime.footprints_commute}. *)
}

type mismatch = {
  mm_obj : int;  (** Object both steps touched. *)
  mm_write : bool;  (** Whether the conflicting access pair wrote. *)
  mm_earlier : int;  (** Index of the earlier step in the run. *)
  mm_earlier_proc : Proc.t;
  mm_earlier_decl : Runtime.footprint;
  mm_later : int;  (** Index of the later step. *)
  mm_later_proc : Proc.t;
  mm_later_decl : Runtime.footprint;
}
(** An observed conflict between steps whose declared footprints
    commute — exactly the situation in which POR could have explored
    only one order of a non-commuting pair.  Implies an
    under-declaration the race detector also flags. *)

val observed_conflict : Runtime.access -> Runtime.access -> bool
(** The conflict oracle: same object, at least one write.  This is
    {e the same binding} as {!Slx_core.Dpor.observed_conflict} — the
    certifier checks exactly the relation the DPOR reduction reversed
    races with. *)

val pp_mismatch : Format.formatter -> mismatch -> unit

val certify : n:int -> step list -> (cert, mismatch) result
(** [certify ~n steps] cross-checks one recorded run of an [n]-process
    system.  [Ok cert] means every observed conflict is covered by
    non-commuting declarations; [Error m] reports the first pair that
    is not (in step order). *)

val of_run :
  shadow:Runtime.shadow -> grants:(int * Proc.t) list -> step list
(** Zip a recording shadow's step logs with the run report's grant
    list ({!Slx_sim.Run_report.t}) into certifiable steps.  The shadow
    must have recorded exactly this run: one step log per grant, in
    order.  @raise Invalid_argument if the lengths disagree. *)
