open Slx_history
open Slx_sim
module B = Slx_base_objects
module Explore = Slx_core.Explore

(* ------------------------------------------------------------------ *)
(* Workload adapters.                                                  *)

let counting w = Explore.workload_invoke w

let asprintf pp v = Format.asprintf "%a" pp v

let pp_consensus = function
  | Slx_consensus.Consensus_type.Propose v -> "propose " ^ string_of_int v

let one_proposal =
  counting
    (Driver.n_times 1 (fun p _ -> Slx_consensus.Consensus_type.Propose (p - 1)))

(* Capped protocol-legal TM workload: [Tm_workload.next_invocation]
   derives the next legal operation from the process's projection; the
   cap bounds total invocations so audit trees stay finite. *)
let tm_invoke ~cap view p =
  let issued =
    History.length
      (History.filter
         (fun e -> Event.is_invocation e && Proc.equal (Event.proc e) p)
         view.Driver.history)
  in
  if issued >= cap then None
  else Some (Slx_tm.Tm_workload.next_invocation view p)

(* ------------------------------------------------------------------ *)
(* Base-object exercisers: one tiny harness per primitive, so every
   instrumented base object is audited directly, not only through the
   algorithms that happen to use it. *)

type base_inv = Op of int
type base_res = Res of int

let pp_base (Op k) = "op " ^ string_of_int k

let base_invoke =
  counting (Driver.n_times 2 (fun p k -> Op ((2 * p) + k)))

let base_case ~name ?(waive_never_wrote = false) impl_of =
  Audit.case ~group:"base" ~name ~n:2 ~depth:6 ~waive_never_wrote
    ~factory:(fun () ~n -> impl_of ~n)
    ~invoke:base_invoke ~pp_inv:pp_base ()

let base_cases () =
  [
    base_case ~name:"base-register" (fun ~n:_ ->
        let r = B.Register.make 0 in
        fun ~proc:(_ : Proc.t) (Op k) ->
          if k mod 2 = 0 then begin
            B.Register.write r k;
            Res 0
          end
          else Res (B.Register.read r));
    (* CAS against a stale expected value may never physically write
       at this depth; that is the primitive working as specified. *)
    base_case ~name:"base-cas" ~waive_never_wrote:true (fun ~n:_ ->
        let c = B.Cas.make 0 in
        fun ~proc:_ (Op k) ->
          if k mod 2 = 0 then
            Res (if B.Cas.compare_and_swap c ~expected:0 ~desired:k then 1 else 0)
          else Res (B.Cas.read c));
    base_case ~name:"base-test-and-set" (fun ~n:_ ->
        let t = B.Test_and_set.make () in
        fun ~proc:_ (Op k) ->
          if k mod 2 = 0 then Res (if B.Test_and_set.test_and_set t then 1 else 0)
          else begin
            B.Test_and_set.reset t;
            Res 0
          end);
    base_case ~name:"base-fetch-and-add" (fun ~n:_ ->
        let c = B.Fetch_and_add.make 0 in
        fun ~proc:_ (Op k) -> Res (B.Fetch_and_add.fetch_and_add c k));
    base_case ~name:"base-queue" (fun ~n:_ ->
        let q = B.Queue.make [] in
        fun ~proc:_ (Op k) ->
          if k mod 2 = 0 then begin
            B.Queue.enqueue q k;
            Res 0
          end
          else Res (match B.Queue.dequeue q with Some v -> v | None -> -1));
    base_case ~name:"base-snapshot" (fun ~n ->
        let s = B.Snapshot.make ~n 0 in
        fun ~proc (Op k) ->
          if k mod 2 = 0 then begin
            B.Snapshot.update s proc k;
            Res 0
          end
          else Res (Array.fold_left ( + ) 0 (B.Snapshot.scan s)));
  ]

(* ------------------------------------------------------------------ *)
(* Consensus implementations. *)

let consensus_cases () =
  let mk ~name ?(depth = 6) ?(max_crashes = 0) ?(waive_opaque = false) factory
      =
    Audit.case ~group:"consensus" ~name ~n:2 ~depth ~max_crashes ~waive_opaque
      ~factory ~invoke:one_proposal ~pp_inv:pp_consensus ()
  in
  [
    (* max_rounds caps the eager per-round register preallocation so
       fingerprinting stays cheap; lazily-allocated rounds take an
       Opaque lookup step, hence the waiver. *)
    mk ~name:"consensus-register" ~max_crashes:1 ~waive_opaque:true (fun () ->
        Slx_consensus.Register_consensus.factory ~max_rounds:4 ());
    mk ~name:"consensus-cas" (fun () -> Slx_consensus.Cas_consensus.factory ());
    mk ~name:"consensus-queue" (fun () ->
        Slx_consensus.Queue_consensus.factory ());
    mk ~name:"consensus-selfish" (fun () ->
        Slx_consensus.Selfish_consensus.factory ());
  ]

(* One-shot consensus objects, audited through a direct harness. *)
let one_shot_case ~name ?(waive_opaque = false) (module C : Slx_objects
                                                  .One_shot_consensus.S) =
  Audit.case ~group:"consensus" ~name ~n:2 ~depth:6 ~waive_opaque
    ~factory:(fun () ~n ->
      let o = C.make ~n () in
      fun ~proc -> function
        | Slx_consensus.Consensus_type.Propose v ->
            Slx_consensus.Consensus_type.Decided (C.propose o ~proc v))
    ~invoke:one_proposal ~pp_inv:pp_consensus ()

(* ------------------------------------------------------------------ *)
(* Shared objects. *)

let lock_invoke =
  counting
    (Driver.n_times 2 (fun _ k ->
         if k mod 2 = 0 then Slx_objects.Mutex.Acquire
         else Slx_objects.Mutex.Release))

let lock_case ~name ?(depth = 6) ?(max_crashes = 0) factory =
  Audit.case ~group:"objects" ~name ~n:2 ~depth ~max_crashes ~factory
    ~invoke:lock_invoke
    ~pp_inv:(asprintf Slx_objects.Mutex.pp_invocation)
    ()

let stack_invoke =
  counting
    (Driver.n_times 2 (fun p k ->
         if k mod 2 = 0 then Slx_objects.Stack_type.Push ((10 * p) + k)
         else Slx_objects.Stack_type.Pop))

let queue_invoke =
  counting
    (Driver.n_times 2 (fun p k ->
         if k mod 2 = 0 then Slx_objects.Queue_type.Enqueue ((10 * p) + k)
         else Slx_objects.Queue_type.Dequeue))

let snapshot_factory ~n =
  let s = Slx_objects.Snapshot_alg.make ~n 0 in
  fun ~proc -> function
    | Slx_objects.Snapshot_type.Update (i, v) ->
        Slx_objects.Snapshot_alg.update s ~proc:i v;
        ignore proc;
        Slx_objects.Snapshot_type.Ok
    | Slx_objects.Snapshot_type.Scan ->
        Slx_objects.Snapshot_type.View
          (Array.to_list (Slx_objects.Snapshot_alg.scan s))

let object_cases () =
  let module St = Slx_objects.Stack_type in
  let module Qt = Slx_objects.Queue_type in
  let module Sn = Slx_objects.Snapshot_type in
  let pp_stack = function
    | St.Push v -> "push " ^ string_of_int v
    | St.Pop -> "pop"
  in
  let pp_queue = function
    | Qt.Enqueue v -> "enqueue " ^ string_of_int v
    | Qt.Dequeue -> "dequeue"
  in
  let pp_snapshot = function
    | Sn.Update (i, v) -> Printf.sprintf "update %d %d" i v
    | Sn.Scan -> "scan"
  in
  [
    lock_case ~name:"mutex-tas" ~max_crashes:1 (fun () ->
        Slx_objects.Mutex.tas_factory ());
    lock_case ~name:"mutex-bakery" (fun () -> Slx_objects.Bakery.factory ());
    lock_case ~name:"mutex-peterson" (fun () ->
        Slx_objects.Peterson.factory ());
    Audit.case ~group:"objects" ~name:"treiber-stack" ~n:2 ~depth:6
      ~factory:(fun () -> Slx_objects.Treiber_stack.factory ())
      ~invoke:stack_invoke ~pp_inv:pp_stack ();
    Audit.case ~group:"objects" ~name:"cas-queue" ~n:2 ~depth:6
      ~factory:(fun () -> Slx_objects.Cas_queue.factory ())
      ~invoke:queue_invoke ~pp_inv:pp_queue ();
    Audit.case ~group:"objects" ~name:"snapshot-alg" ~n:2 ~depth:6
      ~factory:(fun () -> snapshot_factory)
      ~invoke:
        (counting
           (Driver.n_times 2 (fun p k ->
                if k mod 2 = 0 then Sn.Update (p, (10 * p) + k) else Sn.Scan)))
      ~pp_inv:pp_snapshot ();
    one_shot_case ~name:"oneshot-cas" (module Slx_objects.One_shot_consensus.Cas);
    one_shot_case ~name:"oneshot-registers" ~waive_opaque:true
      (module Slx_objects.One_shot_consensus.Registers);
  ]

let universal_cases () =
  let stack_tp : _ Object_type.t = (module Slx_objects.Stack_type.Self) in
  let pp_stack = function
    | Slx_objects.Stack_type.Push v -> "push " ^ string_of_int v
    | Slx_objects.Stack_type.Pop -> "pop"
  in
  let invoke =
    counting
      (Driver.n_times 1 (fun p _ -> Slx_objects.Stack_type.Push (10 * p)))
  in
  let mk ~name consensus waive_opaque =
    Audit.case ~group:"universal" ~name ~n:2 ~depth:5 ~depth_ci:7
      ~waive_opaque
      ~factory:(fun () ->
        Slx_objects.Universal.factory ~tp:stack_tp ~consensus ~max_ops:8 ())
      ~invoke ~pp_inv:pp_stack ()
  in
  (* Both variants allocate log slots lazily behind an Opaque lookup
     step, hence the waivers. *)
  [ mk ~name:"universal-cas" `Cas true;
    mk ~name:"universal-registers" `Registers true ]

(* ------------------------------------------------------------------ *)
(* Transactional memories. *)

let tm_cases () =
  let pp = asprintf Slx_tm.Tm_type.pp_invocation in
  let mk ~name ?(depth = 6) factory =
    Audit.case ~group:"tm" ~name ~n:2 ~depth ~factory
      ~invoke:(tm_invoke ~cap:4) ~pp_inv:pp ()
  in
  [
    mk ~name:"tm-i12" (fun () -> Slx_tm.I12.factory ~vars:1);
    mk ~name:"tm-i12-reg" (fun () -> Slx_tm.I12_reg.factory ~vars:1);
    mk ~name:"tm-agp" (fun () -> Slx_tm.Agp_tm.factory ~vars:1);
    mk ~name:"tm-mutual-abort" (fun () ->
        Slx_tm.Mutual_abort_tm.factory ~vars:1);
    mk ~name:"tm-tl2" (fun () -> Slx_tm.Tl2_tm.factory ());
    mk ~name:"tm-always-abort" (fun () -> Slx_tm.Always_abort_tm.factory ());
  ]

(* ------------------------------------------------------------------ *)
(* Fixtures (not part of [all]): the deliberately mis-declared
   implementations of {!Fixtures}, for the sanitizer's own tests. *)

let fixture_case ~name ?(waive_opaque = false) factory =
  Audit.case ~group:"fixture" ~name ~n:2 ~depth:5 ~waive_opaque
    ~factory:(fun () -> factory)
    ~invoke:(counting (Fixtures.workload ~ops:1))
    ~pp_inv:Fixtures.pp_inv ()

let fixture_cases () =
  [
    fixture_case ~name:"fixture-leaky" Fixtures.leaky_factory;
    fixture_case ~name:"fixture-write-under-read"
      Fixtures.write_under_read_factory;
    fixture_case ~name:"fixture-phantom" Fixtures.phantom_factory;
    fixture_case ~name:"fixture-nested-escape" Fixtures.nested_escape_factory;
    fixture_case ~name:"fixture-nested-ok" ~waive_opaque:true
      Fixtures.nested_ok_factory;
    fixture_case ~name:"fixture-clean" Fixtures.clean_factory;
    (* The depth-gated leak: its undeclared write fires on the eighth
       poke, far past these bounds, so the dynamic sanitizer reports
       clean while the static lint flags the site (EXPERIMENTS E26). *)
    Audit.case ~group:"fixture" ~name:"fixture-deep-leak" ~n:2 ~depth:6
      ~factory:(fun () -> Fixtures.deep_leaky_factory)
      ~invoke:(counting (Fixtures.workload ~ops:12))
      ~pp_inv:Fixtures.pp_inv ();
  ]

let all () =
  base_cases () @ consensus_cases () @ object_cases () @ universal_cases ()
  @ tm_cases ()

let select ?group ?name cases =
  List.filter
    (fun c ->
      (match group with
      | Some g -> Audit.case_group c = g
      | None -> true)
      && match name with Some n -> Audit.case_name c = n | None -> true)
    cases
