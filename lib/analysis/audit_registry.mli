(** The audit registry: one {!Audit.case} per registered
    implementation, so [slx audit] (and the test suite) sweeps every
    object and TM in the repository.

    Groups: ["base"] (direct exercisers for each instrumented base
    object), ["consensus"] (the consensus implementations and the
    one-shot objects), ["objects"] (locks, stacks, queues, snapshot),
    ["universal"] (the universal construction over both consensus
    building blocks), ["tm"] (the transactional memories), and —
    outside {!all} — ["fixture"] (the deliberately mis-declared
    implementations of {!Fixtures}).

    Waivers are declared here, next to the case, with a comment
    explaining each: lazily-allocating implementations take [Opaque]
    lookup steps ([waive_opaque]); CAS under a stale expected value
    may never physically write at audit depths
    ([waive_never_wrote]). *)

val all : unit -> Audit.case list
(** Every registered implementation (fixtures excluded). *)

val base_cases : unit -> Audit.case list
val consensus_cases : unit -> Audit.case list
val object_cases : unit -> Audit.case list
val universal_cases : unit -> Audit.case list
val tm_cases : unit -> Audit.case list

val fixture_cases : unit -> Audit.case list
(** The mis-declared fixtures, each expected dirty (or linty) in its
    own specific way — see {!Fixtures}. *)

val select : ?group:string -> ?name:string -> Audit.case list -> Audit.case list
(** Filter by exact group and/or case name. *)
