open Slx_history
open Slx_sim

(* ------------------------------------------------------------------ *)
(* Cases.                                                              *)

type ('inv, 'res) case_def = {
  c_name : string;
  c_group : string;
  c_n : int;
  c_factory : unit -> ('inv, 'res) Runner.factory;
  c_invoke : ('inv, 'res) Driver.view -> Proc.t -> 'inv option;
  c_pp_inv : 'inv -> string;
  c_depth : int;
  c_depth_ci : int;
  c_max_crashes : int;
  c_waive_opaque : bool;
  c_waive_never_wrote : bool;
}

type case = Case : ('inv, 'res) case_def -> case

let case ?(group = "misc") ?(depth = 6) ?depth_ci ?(max_crashes = 0)
    ?(waive_opaque = false) ?(waive_never_wrote = false) ~name ~n ~factory
    ~invoke ~pp_inv () =
  Case
    {
      c_name = name;
      c_group = group;
      c_n = n;
      c_factory = factory;
      c_invoke = invoke;
      c_pp_inv = pp_inv;
      c_depth = depth;
      c_depth_ci = (match depth_ci with Some d -> d | None -> depth + 2);
      c_max_crashes = max_crashes;
      c_waive_opaque = waive_opaque;
      c_waive_never_wrote = waive_never_wrote;
    }

let case_name (Case c) = c.c_name
let case_group (Case c) = c.c_group

(* ------------------------------------------------------------------ *)
(* Results.                                                            *)

type witness = {
  w_violation : Runtime.violation;
  w_script : string list;
  w_replayed : bool;
}

type lint =
  | Never_touched of int * Runtime.decl_stat
  | Never_wrote of int * Runtime.decl_stat
  | Opaque_steps of int

type case_result = {
  cr_name : string;
  cr_group : string;
  cr_depth : int;
  cr_runs : int;
  cr_steps : int;
  cr_witness : witness option;
  cr_hb_runs : int;
  cr_hb_edges : int;
  cr_hb_checks : int;
  cr_hb_mismatch : string option;
  cr_oracle_checks : int;
  cr_oracle_failures : string list;
  cr_lints : lint list;
}

let case_clean r =
  r.cr_witness = None && r.cr_hb_mismatch = None && r.cr_oracle_failures = []

type report = { rp_bound : string; rp_results : case_result list }

let clean rp = List.for_all case_clean rp.rp_results

(* ------------------------------------------------------------------ *)
(* The sweep.                                                          *)

exception Aborted
(* Private control-flow marker: the shared raising shadow flagged a
   violation; the typed witness script is in the sweep's [found]
   ref. *)

let pp_decision pp_inv = function
  | Driver.Schedule p -> Printf.sprintf "schedule p%d" p
  | Driver.Invoke (p, i) -> Printf.sprintf "invoke p%d (%s)" p (pp_inv i)
  | Driver.Crash p -> Printf.sprintf "crash p%d" p
  | Driver.Stop -> "stop"

(* The decision menu, in the explorer's canonical order (steps and
   invocations for 1..n, then crashes).  No symmetry or POR: an audit
   certifies runs, so it wants the unreduced tree. *)
let menu ~n ~invoke ~depth ~max_crashes view len crashes =
  if len >= depth then []
  else begin
    let steps =
      List.concat_map
        (fun p ->
          match view.Driver.status p with
          | Runtime.Ready -> [ Driver.Schedule p ]
          | Runtime.Idle -> begin
              match invoke view p with
              | Some inv -> [ Driver.Invoke (p, inv) ]
              | None -> []
            end
          | Runtime.Crashed -> [])
        (Proc.all ~n)
    in
    let crash_branches =
      if crashes < max_crashes then
        List.filter_map
          (fun p ->
            if view.Driver.status p = Runtime.Crashed then None
            else Some (Driver.Crash p))
          (Proc.all ~n)
      else []
    in
    steps @ crash_branches
  end

(* Projection digest for the commutation oracle: commuting orders may
   differ in the interleaving of events of different processes, but
   every per-process projection must agree (doc/model.md §6). *)
let projection_digest ~n h =
  Runtime.hash_value (List.map (fun p -> History.project h p) (Proc.all ~n))

let run_case ?(bound = `Runtest) ?depth ?(oracle = false) ?(detect = true)
    ?(max_hb_runs = 64) ?(max_oracle_checks = 256) (Case c) =
  let depth =
    match depth with
    | Some d -> d
    | None -> ( match bound with `Runtest -> c.c_depth | `Ci -> c.c_depth_ci)
  in
  let n = c.c_n in
  let menu = menu ~n ~invoke:c.c_invoke ~depth ~max_crashes:c.c_max_crashes in
  let ticks = ref 0 in
  (* One shared shadow for the whole sweep: violations raise (under
     [detect]); declaration statistics aggregate across every cursor,
     prefix replays included, so [touched_steps = 0] at the end means
     the object was never touched on any audited run.  The audit stays
     on the per-touch shadow deliberately: raising at the offending
     access and attributing each touch to a step is the product here,
     whereas the batched per-step frame the explorers use under
     [--sanitize] trades that attribution away for speed. *)
  let shadow = Runtime.make_shadow ~record:false ~raise_on_violation:detect () in
  let found = ref None in
  let runs = ref 0 in
  let hb_runs = ref 0
  and hb_edges = ref 0
  and hb_checks = ref 0
  and hb_mismatch = ref None in
  let oracle_checks = ref 0 and oracle_failures = ref [] in
  let apply_checked cursor rev_script d =
    try Runner.Cursor.apply cursor d
    with Runtime.Shadow_violation v ->
      found := Some (v, List.rev (d :: rev_script));
      raise Aborted
  in
  let fresh_cursor () =
    Runner.Cursor.create ~n ~factory:(c.c_factory ()) ~ticks ~shadow ()
  in
  (* A leaf: certify the run's conflict relation by replaying its
     script under a fresh recording (never-raising) shadow and
     cross-checking observed accesses against declared footprints. *)
  let certify_leaf script =
    if !hb_runs < max_hb_runs && !hb_mismatch = None then begin
      incr hb_runs;
      let rec_sh = Runtime.make_shadow ~record:true ~raise_on_violation:false () in
      let cur =
        Runner.Cursor.replay ~n ~factory:(c.c_factory ()) ~ticks ~shadow:rec_sh
          script
      in
      let r = Runner.Cursor.report cur () in
      let steps = Hb.of_run ~shadow:rec_sh ~grants:r.Run_report.grants in
      match Hb.certify ~n steps with
      | Ok cert ->
          hb_edges := !hb_edges + cert.Hb.hb_edges;
          hb_checks := !hb_checks + cert.Hb.hb_checks
      | Error m -> hb_mismatch := Some (Format.asprintf "%a" Hb.pp_mismatch m)
    end
  in
  (* The commutation oracle: for schedule pairs the explorer would
     treat as commuting, execute both orders from this configuration
     and require identical resulting states and per-process
     projections. *)
  let oracle_node cursor rev_script =
    if oracle && !oracle_checks < max_oracle_checks then begin
      let prefix = List.rev rev_script in
      let view = Runner.Cursor.view cursor in
      let ready =
        List.filter (fun p -> view.Driver.status p = Runtime.Ready) (Proc.all ~n)
      in
      let pend p = Runner.Cursor.pending cursor p in
      List.iter
        (fun p ->
          List.iter
            (fun q ->
              if
                p < q
                && !oracle_checks < max_oracle_checks
                &&
                match (pend p, pend q) with
                | Some a, Some b -> Runtime.footprints_commute a b
                | _ -> false
              then begin
                incr oracle_checks;
                let order d1 d2 =
                  let cur =
                    Runner.Cursor.replay ~n ~factory:(c.c_factory ()) ~ticks
                      prefix
                  in
                  Runner.Cursor.apply cur (Driver.Schedule d1);
                  Runner.Cursor.apply cur (Driver.Schedule d2);
                  Runner.Cursor.fingerprint cur
                in
                let f1 = order p q and f2 = order q p in
                let same =
                  f1.Runner.fp_shared = f2.Runner.fp_shared
                  && f1.Runner.fp_crashed = f2.Runner.fp_crashed
                  && f1.Runner.fp_procs = f2.Runner.fp_procs
                  && projection_digest ~n f1.Runner.fp_history
                     = projection_digest ~n f2.Runner.fp_history
                in
                if not same then
                  oracle_failures :=
                    Printf.sprintf
                      "steps of p%d and p%d declared commuting but executing \
                       both orders after [%s] diverges"
                      p q
                      (String.concat "; "
                         (List.map (pp_decision c.c_pp_inv) prefix))
                    :: !oracle_failures
              end)
            ready)
        ready
    end
  in
  (* Incremental DFS, the explorer's shape with reductions off: the
     first child extends the cursor in place, later siblings replay
     the decision prefix into a fresh cursor under the same shadow. *)
  let rec visit cursor rev_script len crashes =
    let decisions = menu (Runner.Cursor.view cursor) len crashes in
    match decisions with
    | [] ->
        incr runs;
        certify_leaf (List.rev rev_script)
    | _ ->
        oracle_node cursor rev_script;
        List.iteri
          (fun i d ->
            let crashes' =
              match d with Driver.Crash _ -> crashes + 1 | _ -> crashes
            in
            let child =
              if i = 0 then cursor
              else begin
                let cur = fresh_cursor () in
                List.iter
                  (fun d -> apply_checked cur [] d)
                  (List.rev rev_script);
                cur
              end
            in
            apply_checked child rev_script d;
            visit child (d :: rev_script) (len + 1) crashes')
          decisions
  in
  (try
     let root =
       try fresh_cursor ()
       with Runtime.Shadow_violation v ->
         found := Some (v, []);
         raise Aborted
     in
     visit root [] 0 0
   with Aborted -> ());
  (* Replay-verify the witness: a fresh instance under a fresh raising
     shadow must reproduce the same violation on the last decision.
     ([v_step] is a shadow-global ordinal, so only the violation's
     identity — kind, object, direction — is compared.) *)
  let witness =
    Option.map
      (fun ((v : Runtime.violation), script) ->
        let replayed =
          let sh = Runtime.make_shadow ~raise_on_violation:true () in
          match
            Runner.Cursor.replay ~n ~factory:(c.c_factory ()) ~ticks:(ref 0)
              ~shadow:sh script
          with
          | (_ : (_, _) Runner.Cursor.t) -> false
          | exception Runtime.Shadow_violation v' ->
              v'.Runtime.v_kind = v.Runtime.v_kind
              && v'.Runtime.v_obj = v.Runtime.v_obj
              && v'.Runtime.v_write = v.Runtime.v_write
        in
        {
          w_violation = v;
          w_script = List.map (pp_decision c.c_pp_inv) script;
          w_replayed = replayed;
        })
      !found
  in
  let lints =
    let stats = Runtime.shadow_decl_stats shadow in
    let decl_lints =
      List.filter_map
        (fun (obj, (s : Runtime.decl_stat)) ->
          if s.Runtime.decl_steps > 0 && s.Runtime.touched_steps = 0 then
            Some (Never_touched (obj, s))
          else if
            s.Runtime.write_decl_steps > 0
            && s.Runtime.wrote_steps = 0
            && not c.c_waive_never_wrote
          then Some (Never_wrote (obj, s))
          else None)
        stats
    in
    let opaque = Runtime.shadow_opaque_steps shadow in
    if opaque > 0 && not c.c_waive_opaque then
      decl_lints @ [ Opaque_steps opaque ]
    else decl_lints
  in
  {
    cr_name = c.c_name;
    cr_group = c.c_group;
    cr_depth = depth;
    cr_runs = !runs;
    cr_steps = !ticks;
    cr_witness = witness;
    cr_hb_runs = !hb_runs;
    cr_hb_edges = !hb_edges;
    cr_hb_checks = !hb_checks;
    cr_hb_mismatch = !hb_mismatch;
    cr_oracle_checks = !oracle_checks;
    cr_oracle_failures = List.rev !oracle_failures;
    cr_lints = lints;
  }

let run_cases ?(bound = `Runtest) ?oracle ?detect ?max_hb_runs
    ?max_oracle_checks cases =
  {
    rp_bound = (match bound with `Runtest -> "runtest" | `Ci -> "ci");
    rp_results =
      List.map
        (fun c -> run_case ~bound ?oracle ?detect ?max_hb_runs
             ?max_oracle_checks c)
        cases;
  }

(* ------------------------------------------------------------------ *)
(* Reporting.                                                          *)

let pp_lint fmt = function
  | Never_touched (obj, s) ->
      Format.fprintf fmt
        "object %d declared in %d step(s) but never touched" obj
        s.Runtime.decl_steps
  | Never_wrote (obj, s) ->
      Format.fprintf fmt
        "object %d declared written in %d step(s) but never written" obj
        s.Runtime.write_decl_steps
  | Opaque_steps k ->
      Format.fprintf fmt
        "%d opaque step(s): invisible to the race detector and to POR" k

let pp_case_result fmt r =
  let verdict =
    if case_clean r then "ok"
    else if r.cr_witness <> None then "VIOLATION"
    else "FAIL"
  in
  Format.fprintf fmt "@[<v2>%-28s %-10s depth %d: %d runs, %d steps [%s]"
    r.cr_name r.cr_group r.cr_depth r.cr_runs r.cr_steps verdict;
  (match r.cr_witness with
  | Some w ->
      Format.fprintf fmt "@,%a%s" Runtime.pp_violation w.w_violation
        (if w.w_replayed then " (witness replays)"
         else " (WITNESS DOES NOT REPLAY)");
      Format.fprintf fmt "@,@[<v2>witness script:";
      List.iter (fun l -> Format.fprintf fmt "@,%s" l) w.w_script;
      Format.fprintf fmt "@]"
  | None -> ());
  (match r.cr_hb_mismatch with
  | Some m -> Format.fprintf fmt "@,hb mismatch: %s" m
  | None ->
      if r.cr_hb_runs > 0 then
        Format.fprintf fmt "@,hb: %d run(s) certified, %d edge(s), %d check(s)"
          r.cr_hb_runs r.cr_hb_edges r.cr_hb_checks);
  List.iter (fun f -> Format.fprintf fmt "@,oracle: %s" f) r.cr_oracle_failures;
  if r.cr_oracle_checks > 0 && r.cr_oracle_failures = [] then
    Format.fprintf fmt "@,oracle: %d pair(s) commute" r.cr_oracle_checks;
  List.iter (fun l -> Format.fprintf fmt "@,lint: %a" pp_lint l) r.cr_lints;
  Format.fprintf fmt "@]"

let pp_report fmt rp =
  Format.fprintf fmt "@[<v>slx audit (%s bound): %d case(s), %d dirty@,"
    rp.rp_bound
    (List.length rp.rp_results)
    (List.length (List.filter (fun r -> not (case_clean r)) rp.rp_results));
  List.iter (fun r -> Format.fprintf fmt "%a@," pp_case_result r) rp.rp_results;
  Format.fprintf fmt "@]"

(* Hand-rolled JSON, as elsewhere in the repo (no json dependency). *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let lint_to_json = function
  | Never_touched (obj, s) ->
      Printf.sprintf
        "{\"kind\": \"never_touched\", \"obj\": %d, \"decl_steps\": %d}" obj
        s.Runtime.decl_steps
  | Never_wrote (obj, s) ->
      Printf.sprintf
        "{\"kind\": \"never_wrote\", \"obj\": %d, \"write_decl_steps\": %d}"
        obj s.Runtime.write_decl_steps
  | Opaque_steps k ->
      Printf.sprintf "{\"kind\": \"opaque_steps\", \"steps\": %d}" k

let case_result_to_json r =
  let witness =
    match r.cr_witness with
    | None -> "null"
    | Some w ->
        let v = w.w_violation in
        let kind =
          match v.Runtime.v_kind with
          | Runtime.Undeclared_touch -> "undeclared_touch"
          | Runtime.Undeclared_nesting -> "undeclared_nesting"
          | Runtime.Outside_atomic -> "outside_atomic"
        in
        Printf.sprintf
          "{\"kind\": \"%s\", \"obj\": %d, \"write\": %b, \"replayed\": %b, \
           \"script\": [%s]}"
          kind v.Runtime.v_obj v.Runtime.v_write w.w_replayed
          (String.concat ", "
             (List.map (fun l -> "\"" ^ escape l ^ "\"") w.w_script))
  in
  Printf.sprintf
    "{\"name\": \"%s\", \"group\": \"%s\", \"depth\": %d, \"runs\": %d, \
     \"steps\": %d, \"clean\": %b, \"witness\": %s, \"hb_runs\": %d, \
     \"hb_edges\": %d, \"hb_checks\": %d, \"hb_mismatch\": %s, \
     \"oracle_checks\": %d, \"oracle_failures\": [%s], \"lints\": [%s]}"
    (escape r.cr_name) (escape r.cr_group) r.cr_depth r.cr_runs r.cr_steps
    (case_clean r) witness r.cr_hb_runs r.cr_hb_edges r.cr_hb_checks
    (match r.cr_hb_mismatch with
    | None -> "null"
    | Some m -> "\"" ^ escape m ^ "\"")
    r.cr_oracle_checks
    (String.concat ", "
       (List.map (fun f -> "\"" ^ escape f ^ "\"") r.cr_oracle_failures))
    (String.concat ", " (List.map lint_to_json r.cr_lints))

let report_to_json rp =
  Printf.sprintf "{\"bound\": \"%s\", \"clean\": %b, \"cases\": [%s]}"
    rp.rp_bound (clean rp)
    (String.concat ", " (List.map case_result_to_json rp.rp_results))
