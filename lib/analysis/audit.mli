(** The conflict-soundness audit: sweep an implementation's bounded
    decision tree with the sanitizer shadow armed.

    POR ({!Slx_core.Explore}) and the transposition cache prune on
    declared footprints; if an implementation touches a cell its
    footprint never declared, that pruning silently drops real
    interleavings.  An audit certifies, for every run of a bounded
    tree, that declarations over-approximate reality, via three
    independent layers:

    - the {b race detector} ({!Slx_sim.Runtime.touch} against a raising
      shadow) flags the first undeclared access, with a replayable
      decision-script witness;
    - the {b happens-before certifier} ({!Hb}) re-derives the conflict
      relation from observed accesses on a sample of runs and
      cross-checks it against {!Slx_sim.Runtime.footprints_commute};
    - the optional {b commutation oracle} executes both orders of
      declared-commuting pending pairs and requires identical
      resulting states and per-process projections.

    Over-declarations (harmless for soundness, costly for reduction)
    are reported as lints, never as failures. *)

open Slx_history
open Slx_sim

type ('inv, 'res) case_def = {
  c_name : string;
  c_group : string;  (** Grouping key for filtering ([base], [tm], …). *)
  c_n : int;
  c_factory : unit -> ('inv, 'res) Runner.factory;
  c_invoke : ('inv, 'res) Driver.view -> Proc.t -> 'inv option;
  c_pp_inv : 'inv -> string;  (** For witness scripts and reports. *)
  c_depth : int;  (** Tree depth at the [`Runtest] bound. *)
  c_depth_ci : int;  (** Tree depth at the [`Ci] bound. *)
  c_max_crashes : int;
  c_waive_opaque : bool;
      (** Waive the opaque-steps lint (for implementations that
          legitimately take [Opaque] steps, e.g. lazy allocators). *)
  c_waive_never_wrote : bool;
      (** Waive the declared-write-never-written lint (for
          conditional writers like CAS at small depths). *)
}

type case = Case : ('inv, 'res) case_def -> case
(** An audit case packs its invocation types away so heterogeneous
    registries ({!Audit_registry}) can be swept uniformly. *)

val case :
  ?group:string ->
  ?depth:int ->
  ?depth_ci:int ->
  ?max_crashes:int ->
  ?waive_opaque:bool ->
  ?waive_never_wrote:bool ->
  name:string ->
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  pp_inv:('inv -> string) ->
  unit ->
  case
(** Defaults: [group "misc"], [depth 6], [depth_ci = depth + 2],
    [max_crashes 0], no waivers. *)

val case_name : case -> string
val case_group : case -> string

type witness = {
  w_violation : Runtime.violation;
  w_script : string list;
      (** The decision prefix reproducing the violation, pretty-printed
          in order; the last decision is the violating grant. *)
  w_replayed : bool;
      (** The script was replayed on a fresh instance and reproduced a
          violation of the same kind/object/direction. *)
}

type lint =
  | Never_touched of int * Runtime.decl_stat
      (** Declared on some step, physically touched on none. *)
  | Never_wrote of int * Runtime.decl_stat
      (** Declared written on some step, physically written on none. *)
  | Opaque_steps of int  (** Steps taken with an [Opaque] footprint. *)

type case_result = {
  cr_name : string;
  cr_group : string;
  cr_depth : int;
  cr_runs : int;  (** Maximal runs swept. *)
  cr_steps : int;
      (** Runtime ticks executed, witness/HB/oracle replays included. *)
  cr_witness : witness option;  (** The race detector's finding. *)
  cr_hb_runs : int;  (** Runs HB-certified (capped by [max_hb_runs]). *)
  cr_hb_edges : int;
  cr_hb_checks : int;
  cr_hb_mismatch : string option;  (** The certifier's finding. *)
  cr_oracle_checks : int;
  cr_oracle_failures : string list;  (** The oracle's findings. *)
  cr_lints : lint list;
}

val case_clean : case_result -> bool
(** No violation witness, no HB mismatch, no oracle failure.  Lints do
    not make a case dirty. *)

type report = { rp_bound : string; rp_results : case_result list }

val clean : report -> bool

val run_case :
  ?bound:[ `Runtest | `Ci ] ->
  ?depth:int ->
  ?oracle:bool ->
  ?detect:bool ->
  ?max_hb_runs:int ->
  ?max_oracle_checks:int ->
  case ->
  case_result
(** Sweep one case's full decision tree (depth from [bound], default
    [`Runtest], unless [depth] overrides), with the incremental
    first-child-in-place strategy of {!Slx_core.Explore} and no
    reductions (an audit wants the unreduced tree).

    [detect] (default [true]) arms the raising shadow; the first
    violation aborts the sweep and becomes the replay-verified
    [cr_witness].  With [detect:false] the sweep runs to completion
    and only the HB certifier reports mis-declarations — the mode the
    tests use to show the two layers agree independently.

    [oracle] (default [false]) enables the commutation oracle;
    [max_hb_runs] (default 64) caps leaf runs HB-certified;
    [max_oracle_checks] (default 256) caps differentially executed
    pairs. *)

val run_cases :
  ?bound:[ `Runtest | `Ci ] ->
  ?oracle:bool ->
  ?detect:bool ->
  ?max_hb_runs:int ->
  ?max_oracle_checks:int ->
  case list ->
  report

val pp_lint : Format.formatter -> lint -> unit
val pp_case_result : Format.formatter -> case_result -> unit
val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string
(** One-line JSON object:
    [{"bound": …, "clean": …, "cases": [{…}]}]. *)
