open Slx_history
open Slx_sim

type step = {
  hs_proc : Proc.t;
  hs_decl : Runtime.footprint;
  hs_touched : Runtime.access list;
}

type cert = { hb_steps : int; hb_edges : int; hb_checks : int }

type mismatch = {
  mm_obj : int;
  mm_write : bool;
  mm_earlier : int;
  mm_earlier_proc : Proc.t;
  mm_earlier_decl : Runtime.footprint;
  mm_later : int;
  mm_later_proc : Proc.t;
  mm_later_decl : Runtime.footprint;
}

let pp_mismatch fmt m =
  Format.fprintf fmt
    "steps %d (proc %d, declared %a) and %d (proc %d, declared %a) conflict \
     on object %d (%s) but their declared footprints commute"
    m.mm_earlier m.mm_earlier_proc Runtime.pp_footprint m.mm_earlier_decl
    m.mm_later m.mm_later_proc Runtime.pp_footprint m.mm_later_decl m.mm_obj
    (if m.mm_write then "write" else "read")

(* Dedupe a step's touch list to one access per object (write wins):
   repeated touches of the same cell within one atomic action are one
   conflict source, not several. *)
let dedup touched =
  match Runtime.of_accesses touched with
  | Runtime.Opaque -> []
  | fp -> Option.value ~default:[] (Runtime.accesses fp)

(* An observed conflict: both steps touched [obj], at least one wrote.
   The same oracle the DPOR engines wake sleepers with — sharing it is
   what makes this certifier a check of exactly the relation the
   reduction relied on. *)
let observed_conflict = Slx_core.Dpor.observed_conflict

let certify ~n steps =
  let steps = Array.of_list steps in
  let k = Array.length steps in
  let touches = Array.map (fun s -> dedup s.hs_touched) steps in
  (* Pass 1 — the cross-check (soundness): every pair of steps of
     different processes with an observed conflict must have declared
     footprints that do NOT commute.  Derived purely from the observed
     touches, so it certifies the commutation relation POR used
     without trusting any declaration.  O(k²) in the run length, which
     is bounded by the audit depth. *)
  let mismatch = ref None in
  let checks = ref 0 in
  (try
     for j = 0 to k - 1 do
       for i = 0 to j - 1 do
         if not (Proc.equal steps.(i).hs_proc steps.(j).hs_proc) then
           let conflicting =
             List.exists
               (fun a -> List.exists (observed_conflict a) touches.(j))
               touches.(i)
           in
           if conflicting then begin
             incr checks;
             if Runtime.footprints_commute steps.(i).hs_decl steps.(j).hs_decl
             then begin
               let obj, write =
                 (* The first conflicting object, for the report. *)
                 let found = ref (0, false) in
                 List.iter
                   (fun (a : Runtime.access) ->
                     List.iter
                       (fun (b : Runtime.access) ->
                         if observed_conflict a b && !found = (0, false) then
                           found :=
                             (a.Runtime.obj, a.Runtime.write || b.Runtime.write))
                       touches.(j))
                   touches.(i);
                 !found
               in
               mismatch :=
                 Some
                   {
                     mm_obj = obj;
                     mm_write = write;
                     mm_earlier = i;
                     mm_earlier_proc = steps.(i).hs_proc;
                     mm_earlier_decl = steps.(i).hs_decl;
                     mm_later = j;
                     mm_later_proc = steps.(j).hs_proc;
                     mm_later_decl = steps.(j).hs_decl;
                   };
               raise Exit
             end
           end
       done
     done
   with Exit -> ());
  match !mismatch with
  | Some m -> Error m
  | None ->
      (* Pass 2 — the FastTrack-style vector-clock sweep, counting the
         non-redundant happens-before edges the conflicts induce: per
         object, the last write and the reads since it; an edge is new
         only when its source is not already ordered before the
         current step.  The count sizes the certified conflict
         relation ([Explore_stats.hb_edges]). *)
      let vc = Array.init (n + 1) (fun _ -> Array.make (n + 1) 0) in
      (* Per object: last write and reads-since-last-write, each as
         (proc, clock snapshot). *)
      let last_write : (int, Proc.t * int array) Hashtbl.t =
        Hashtbl.create 16
      in
      let reads : (int, (Proc.t * int array) list) Hashtbl.t =
        Hashtbl.create 16
      in
      let edges = ref 0 in
      for j = 0 to k - 1 do
        let p = steps.(j).hs_proc in
        let me = vc.(p) in
        me.(p) <- me.(p) + 1;
        let join (q, snap) =
          if not (Proc.equal q p) then begin
            if me.(q) < snap.(q) then begin
              (* Not yet ordered: a fresh conflict edge. *)
              incr edges;
              for i = 0 to n do
                if snap.(i) > me.(i) then me.(i) <- snap.(i)
              done
            end
          end
        in
        List.iter
          (fun (a : Runtime.access) ->
            let o = a.Runtime.obj in
            (match Hashtbl.find_opt last_write o with
            | Some w -> join w
            | None -> ());
            if a.Runtime.write then begin
              List.iter join
                (Option.value ~default:[] (Hashtbl.find_opt reads o));
              Hashtbl.replace last_write o (p, Array.copy me);
              Hashtbl.replace reads o []
            end
            else
              Hashtbl.replace reads o
                ((p, Array.copy me)
                :: Option.value ~default:[] (Hashtbl.find_opt reads o)))
          touches.(j)
      done;
      Ok { hb_steps = k; hb_edges = !edges; hb_checks = !checks }

let of_run ~shadow ~grants =
  let logs = Runtime.shadow_steps shadow in
  let procs = List.map snd grants in
  if List.length logs <> List.length procs then
    invalid_arg "Hb.of_run: shadow log and grant list disagree";
  List.map2
    (fun (log : Runtime.step_log) p ->
      {
        hs_proc = p;
        hs_decl = log.Runtime.declared;
        hs_touched = log.Runtime.touched;
      })
    logs procs
