(** Deliberately mis-declared implementations, pinning the sanitizer's
    behavior.

    Each factory is a tiny register-like object whose footprint
    declarations are wrong in exactly one way; the audit tests assert
    that each is caught by the intended layer (race detector, nesting
    check, declaration lints, HB certifier, commutation oracle) with a
    replayable witness, and that the clean twin passes. *)

open Slx_sim

type inv = Poke of int | Peek
type res = Ack | Got of int

val pp_inv : inv -> string
val pp_res : res -> string

val cell : 'a -> 'a ref * int
(** A bare instrumented cell: a ref plus its registered footprint id.
    Must be created under a registry (i.e. inside a factory run by
    {!Slx_sim.Runner.Cursor.create}). *)

val load : 'a ref * int -> 'a
(** Read through {!Slx_sim.Runtime.touch}. *)

val store : 'a ref * int -> 'a -> unit
(** Write through {!Slx_sim.Runtime.touch}. *)

val leaky_factory : (inv, res) Runner.factory
(** [Poke] declares a write of one cell but secretly writes a second;
    [Peek] reads the second correctly.  Caught as
    {!Slx_sim.Runtime.Undeclared_touch}. *)

val write_under_read_factory : (inv, res) Runner.factory
(** [Poke] declares a read but performs a write of the same cell.
    Caught as {!Slx_sim.Runtime.Undeclared_touch} with [v_write]. *)

val phantom_factory : (inv, res) Runner.factory
(** [Poke] takes an extra step declaring a write of a cell it never
    touches.  No violation; linted as never-touched over-declaration. *)

val nested_escape_factory : (inv, res) Runner.factory
(** A nested atomic action declares an object the pending footprint
    never mentioned.  Caught as
    {!Slx_sim.Runtime.Undeclared_nesting}. *)

val nested_ok_factory : (inv, res) Runner.factory
(** Legal nesting under an [Opaque] outer step — clean, modulo the
    opaque-step lint its audit case waives. *)

val clean_factory : (inv, res) Runner.factory
(** The correctly-declared twin of {!leaky_factory} — passes every
    audit layer. *)

val deep_leaky_factory : (inv, res) Runner.factory
(** [leaky_factory] with the undeclared write gated behind the eighth
    [Poke]: bounded exploration at the audit's default depths never
    reaches it (the sanitizer reports clean), the static footprint
    lint flags it on every run.  The doc/model.md section 12 and
    EXPERIMENTS.md E26 demonstration pair. *)

val workload : ops:int -> (inv, res) Driver.workload
(** Process 1 pokes, everyone else peeks, [ops] invocations each. *)
