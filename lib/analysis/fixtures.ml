open Slx_sim

type inv = Poke of int | Peek
type res = Ack | Got of int

let pp_inv = function
  | Poke v -> "poke " ^ string_of_int v
  | Peek -> "peek"

let pp_res = function
  | Ack -> "ack"
  | Got v -> "got " ^ string_of_int v

(* A bare instrumented cell, bypassing [Slx_base_objects] so fixtures
   control exactly which accesses are declared.  Same construction as
   the real base objects: a ref plus a fingerprint-registry reader. *)
let cell init =
  let r = ref init in
  let id = Runtime.register_object (fun () -> Runtime.hash_value !r) in
  (r, id)

let load (r, id) =
  Runtime.touch ~obj:id ~write:false;
  !r

let store (r, id) v =
  Runtime.touch ~obj:id ~write:true;
  r := v

(* Under-declaration: [Poke] declares only a write of [a] but also
   writes [b]; [Peek] reads [b] with a correct declaration.  The race
   detector flags the leak at the touch; the HB certifier flags the
   (Poke, Peek) pair when detection is off; the commutation oracle
   sees Poke and Peek commute by declaration but not by effect. *)
let leaky_factory ~n:_ =
  let a = cell 0 and b = cell 0 in
  fun ~proc:_ -> function
    | Poke v ->
        Runtime.atomic_access ~obj:(snd a) ~write:true (fun () ->
            store a v;
            store b v);
        Ack
    | Peek ->
        Got (Runtime.atomic_access ~obj:(snd b) ~write:false (fun () -> load b))

(* Write-under-read: declares a read of the cell, performs a write. *)
let write_under_read_factory ~n:_ =
  let c = cell 0 in
  fun ~proc:_ -> function
    | Poke v ->
        Runtime.atomic_access ~obj:(snd c) ~write:false (fun () -> store c v);
        Ack
    | Peek ->
        Got (Runtime.atomic_access ~obj:(snd c) ~write:false (fun () -> load c))

(* Over-declaration: a proper write of [real], then a step declaring a
   write of [ghost] that never touches it — no violation, but the
   audit's declaration statistics lint it ([Never_touched]). *)
let phantom_factory ~n:_ =
  let real = cell 0 and ghost = cell 0 in
  fun ~proc:_ -> function
    | Poke v ->
        Runtime.atomic_access ~obj:(snd real) ~write:true (fun () ->
            store real v);
        Runtime.atomic_access ~obj:(snd ghost) ~write:true (fun () -> ());
        Ack
    | Peek ->
        Got
          (Runtime.atomic_access ~obj:(snd real) ~write:false (fun () ->
               load real))

(* Nested escape: the outer step declares [a]; a nested atomic action
   declares (and touches) [b], escaping the pending footprint — the
   declaration POR consulted never mentioned [b]. *)
let nested_escape_factory ~n:_ =
  let a = cell 0 and b = cell 0 in
  fun ~proc:_ -> function
    | Poke v ->
        Runtime.atomic_access ~obj:(snd a) ~write:true (fun () ->
            store a v;
            Runtime.atomic_access ~obj:(snd b) ~write:true (fun () ->
                store b v));
        Ack
    | Peek ->
        Got (Runtime.atomic_access ~obj:(snd a) ~write:false (fun () -> load a))

(* Legal nesting: an [Opaque] outer step covers any nested
   declaration; the nested action runs inline and its touches are
   checked against the composed effective footprint.  Clean (modulo
   the opaque-step lint, which its audit case waives). *)
let nested_ok_factory ~n:_ =
  let c = cell 0 in
  fun ~proc:_ -> function
    | Poke v ->
        Runtime.atomic (fun () ->
            Runtime.atomic_access ~obj:(snd c) ~write:true (fun () -> store c v));
        Ack
    | Peek ->
        Got (Runtime.atomic_access ~obj:(snd c) ~write:false (fun () -> load c))

(* Fully clean twin of [leaky_factory]: both cells declared and
   touched exactly as announced.  The differential baseline. *)
let clean_factory ~n:_ =
  let a = cell 0 and b = cell 0 in
  fun ~proc:_ -> function
    | Poke v ->
        Runtime.atomic_access ~obj:(snd a) ~write:true (fun () -> store a v);
        Runtime.atomic_access ~obj:(snd b) ~write:true (fun () -> store b v);
        Ack
    | Peek ->
        Got (Runtime.atomic_access ~obj:(snd b) ~write:false (fun () -> load b))

(* Depth-gated twin of [leaky_factory]: the undeclared write of [b]
   only happens on the eighth poke, so bounded exploration at the
   audit's default depths never reaches it and the sanitizer reports
   clean — while the static footprint lint flags the site on every
   run.  The demonstration pair for doc/model.md section 12. *)
let deep_leaky_factory ~n:_ =
  let a = cell 0 and b = cell 0 in
  fun ~proc:_ -> function
    | Poke v ->
        Runtime.atomic_access ~obj:(snd a) ~write:true (fun () ->
            let k = load a in
            store a (k + 1);
            if k >= 7 then store b (v + k));
        Ack
    | Peek ->
        Got (Runtime.atomic_access ~obj:(snd b) ~write:false (fun () -> load b))

(* The standard fixture workload: process 1 pokes, everyone else
   peeks, [ops] invocations each. *)
let workload ~ops : (inv, res) Slx_sim.Driver.workload =
  Slx_sim.Driver.n_times ops (fun p _ -> if p = 1 then Poke p else Peek)
