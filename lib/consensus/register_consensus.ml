open Slx_base_objects

(* One commit-adopt round: two arrays of single-writer registers.
   [a.(i)] holds process [i+1]'s phase-1 preference; [b.(i)] holds its
   phase-2 report [(commit_candidate, preference)]. *)
type round = {
  a : int option Register.t array;
  b : (bool * int) option Register.t array;
}

let make_round n =
  {
    a = Array.init n (fun _ -> Register.make None);
    b = Array.init n (fun _ -> Register.make None);
  }

type outcome = Commit of int | Adopt of int

(* The classical two-phase commit-adopt protocol (Gafni 1998):
   CA1  if all participants propose [v], everyone commits [v];
   CA2  if anyone commits [v], everyone commits or adopts [v];
   and it is wait-free. *)
let commit_adopt round ~n ~i v =
  Register.write round.a.(i - 1) (Some v);
  let seen_a =
    List.filter_map
      (fun j -> Register.read round.a.(j))
      (List.init n (fun j -> j))
  in
  let phase1 =
    if List.for_all (Int.equal v) seen_a then (true, v) else (false, v)
  in
  Register.write round.b.(i - 1) (Some phase1);
  let seen_b =
    List.filter_map
      (fun j -> Register.read round.b.(j))
      (List.init n (fun j -> j))
  in
  let trues = List.filter fst seen_b in
  match trues with
  | (_, u) :: _ when List.for_all (fun (f, _) -> f) seen_b -> Commit u
  | (_, u) :: _ -> Adopt u
  | [] -> Adopt v

let factory ?(max_rounds = 4096) () : _ Slx_sim.Runner.factory =
 fun ~n ->
  let rounds = Array.init max_rounds (fun _ -> make_round n) in
  let decision = Register.make None in
  fun ~proc (Consensus_type.Propose v) ->
    let rec go r pref =
      if r >= max_rounds then
        failwith "Register_consensus: max_rounds exceeded"
      else
        match Register.read decision with
        | Some w -> Consensus_type.Decided w
        | None -> begin
            match commit_adopt rounds.(r) ~n ~i:proc pref with
            | Commit u ->
                Register.write decision (Some u);
                Consensus_type.Decided u
            | Adopt u -> go (r + 1) u
          end
    in
    go 0 v
