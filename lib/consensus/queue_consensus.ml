open Slx_base_objects

type token = Token

let factory () : _ Slx_sim.Runner.factory =
 fun ~n ->
  let queue = Queue.make [ Token ] in
  let proposals = Array.init (n + 1) (fun _ -> Register.make None) in
  fun ~proc (Consensus_type.Propose v) ->
    Register.write proposals.(proc) (Some v);
    match Queue.dequeue queue with
    | Some Token -> Consensus_type.Decided v
    | None ->
        (* Lost the race: adopt the winner's proposal.  With two
           processes "the other" is unambiguous and, because the winner
           published before dequeuing, its register is set.  With more
           processes this guess is wrong by design (consensus number
           2); the explorer exhibits the violation. *)
        let other =
          match List.find_opt (fun j -> j <> proc) (List.init n (fun i -> i + 1)) with
          | Some j -> j
          | None -> proc
        in
        (match Register.read proposals.(other) with
        | Some w -> Consensus_type.Decided w
        | None -> Consensus_type.Decided v)
