open Slx_history

type history = (Consensus_type.invocation, Consensus_type.response) History.t

let decided_values h =
  List.filter_map
    (fun e ->
      match Event.response e with
      | Some (Consensus_type.Decided v) -> Some v
      | None -> None)
    (History.to_list h)

let agreement h =
  match decided_values h with
  | [] -> true
  | v :: rest -> List.for_all (Int.equal v) rest

let validity h =
  (* Scan chronologically, remembering the proposals seen so far; every
     decision must be among them. *)
  let rec go proposed = function
    | [] -> true
    | Event.Invocation (_, Consensus_type.Propose v) :: rest ->
        go (v :: proposed) rest
    | Event.Response (_, Consensus_type.Decided v) :: rest ->
        List.mem v proposed && go proposed rest
    | Event.Crash _ :: rest -> go proposed rest
  in
  go [] (History.to_list h)

let check h = History.is_well_formed h && agreement h && validity h

let property = Slx_safety.Property.make ~name:"agreement-and-validity" check

module Lin = Slx_safety.Linearizability.Make (Consensus_type.Self)

let linearizability = Lin.property
