open Slx_history

type history = (Consensus_type.invocation, Consensus_type.response) History.t

let decided_values h =
  List.filter_map
    (fun e ->
      match Event.response e with
      | Some (Consensus_type.Decided v) -> Some v
      | None -> None)
    (History.to_list h)

let k_agreement ~k h =
  List.length (List.sort_uniq Int.compare (decided_values h)) <= k

let validity = Consensus_safety.validity

let check ~k h = History.is_well_formed h && k_agreement ~k h && validity h

let property ~k =
  Slx_safety.Property.make
    ~name:(Printf.sprintf "%d-set-agreement" k)
    (check ~k)

let group_of ~k p = (p - 1) mod k

let grouped_factory ~k ?max_rounds () : _ Slx_sim.Runner.factory =
  if k < 1 then invalid_arg "Kset.grouped_factory: k must be positive";
  fun ~n ->
    (* One commit-adopt consensus instance per group; a process plays
       in the instance of its group.  Instances are sized [n] so that
       process identifiers can be used directly as slots. *)
    let instances =
      Array.init k (fun _ -> Register_consensus.factory ?max_rounds () ~n)
    in
    fun ~proc inv -> instances.(group_of ~k proc) ~proc inv
