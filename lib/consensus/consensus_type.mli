(** The consensus object type.

    “A consensus shared object is used by processes to agree on some
    value from a set of proposed values.  Each process proposes its own
    value [v] by invoking operation [propose(v)] on a consensus object
    and receives as a response some value [v'].” (Section 4.1.)

    The sequential specification decides the first proposed value and
    returns it to every later proposer.  Every response is a good
    response ([GTp = Res]): deciding is progress. *)

type invocation = Propose of int

type response = Decided of int

include
  Slx_history.Object_type.S
    with type state = int option
     and type invocation := invocation
     and type response := response

module Self :
  Slx_history.Object_type.S
    with type state = int option
     and type invocation = invocation
     and type response = response
(** The type as a module, for the checker functors
    ({!Slx_safety.Linearizability.Make} etc.). *)

val tp : (int option, invocation, response) Slx_history.Object_type.t
(** The type packed as a first-class value. *)

val pp_history :
  Format.formatter -> (invocation, response) Slx_history.History.t -> unit
(** Histories printed in the paper's notation:
    ["propose(0)_1 . propose(1)_2 . 0_1"]. *)
