(** Agreement and validity: the consensus safety property of the
    paper's corollaries.

    “Agreement and validity, a safety property of consensus objects,
    states that all processes decide the same value and the decided
    value is the value proposed by one of the processes.”
    (Section 4.1.)

    This is deliberately the paper's property — weaker than
    linearizability of the consensus type (which is also provided, via
    {!Slx_safety.Linearizability}, for the test suites to compare). *)

open Slx_history

type history = (Consensus_type.invocation, Consensus_type.response) History.t

val agreement : history -> bool
(** All decided values in the history are equal. *)

val validity : history -> bool
(** Every decided value was proposed before it was decided. *)

val check : history -> bool
(** Agreement ∧ validity ∧ well-formedness. *)

val property : history Slx_safety.Property.t
(** The property as a first-class value, named
    ["agreement-and-validity"].  Prefix-closed: both conjuncts only
    constrain events against earlier events. *)

val linearizability : history Slx_safety.Property.t
(** Linearizability w.r.t. the consensus sequential specification —
    strictly stronger than {!property}; used as a comparison point in
    tests. *)
