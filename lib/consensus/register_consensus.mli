(** Obstruction-free consensus from read/write registers.

    The positive half of Theorem 5.2: (1,1)-freedom (obstruction-
    freedom) does not exclude agreement and validity for
    register-based consensus — witnessed by this implementation, a
    commit–adopt cascade in the style of [Herlihy–Luchangco–Moir 2003]
    and [Guerraoui–Ruppert 2007] (the paper's citations [20, 17]).

    Structure: an unbounded sequence of commit–adopt rounds, each built
    from two arrays of single-writer registers, plus a decision
    register.  In round [r] a process writes its preference, collects
    the round's writes, and either {e commits} (it saw only its own
    value, twice) or {e adopts} a possibly-different preference and
    moves to round [r + 1].  A process running solo commits within two
    rounds; two lockstep processes with distinct inputs adopt their own
    values forever — exactly the behaviour the paper's Section 5.2
    impossibility discussion requires (see {!Consensus_adversary}).

    Only {!Slx_base_objects.Register} is used, so the implementation
    falls inside the “implementations from registers” class of
    Corollaries 4.5 and 4.10 and Theorem 5.2. *)

val factory :
  ?max_rounds:int ->
  unit ->
  (Consensus_type.invocation, Consensus_type.response) Slx_sim.Runner.factory
(** A fresh implementation instance.  [max_rounds] (default [4096])
    bounds the commit–adopt cascade; a process exceeding it raises —
    choose it larger than [max_steps / 6] to make the bound
    unreachable in bounded runs. *)
