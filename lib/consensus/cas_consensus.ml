open Slx_base_objects

let factory () : _ Slx_sim.Runner.factory =
 fun ~n:_ ->
  let cell = Cas.make None in
  fun ~proc:_ (Consensus_type.Propose v) ->
    let _won = Cas.compare_and_swap cell ~expected:None ~desired:(Some v) in
    match Cas.read cell with
    | Some w -> Consensus_type.Decided w
    | None -> assert false
