(** Herlihy's two-process consensus from a FIFO queue.

    Queues have consensus number 2 (Herlihy, "Wait-free
    synchronization" — the paper's [19]): the classical protocol makes
    two processes wait-free consensus out of one queue and two
    registers, and {e no} protocol built from queues and registers can
    solve it for three.

    The protocol: the queue initially holds a single token; each
    process publishes its proposal in its register, then dequeues.
    Whoever gets the token is the winner and decides its own proposal;
    the other process (dequeue returned [None] or a non-token) decides
    the winner's published value.

    For [n = 2] the implementation is wait-free and safe on {e every}
    schedule — the test suite proves it exhaustively with
    {!Slx_core.Explore}.  Run with [n = 3] it is deliberately the
    naive extension (the loser cannot tell who won among two others and
    adopts the smaller-id opponent's value): the explorer finds an
    agreement violation automatically, an executable echo of the
    consensus-number hierarchy (experiment E18). *)

val factory :
  unit ->
  (Consensus_type.invocation, Consensus_type.response) Slx_sim.Runner.factory
