type invocation = Propose of int
type response = Decided of int
type state = int option

let name = "consensus"
let initial = None

let seq (Propose v) = function
  | None -> [ (Some v, Decided v) ]
  | Some w -> [ (Some w, Decided w) ]

let good (_ : response) = true

let equal_state = Option.equal Int.equal
let equal_invocation (Propose v) (Propose w) = Int.equal v w
let equal_response (Decided v) (Decided w) = Int.equal v w

let pp_state fmt = function
  | None -> Format.pp_print_string fmt "undecided"
  | Some v -> Format.fprintf fmt "decided(%d)" v

let pp_invocation fmt (Propose v) = Format.fprintf fmt "propose(%d)" v
let pp_response fmt (Decided v) = Format.fprintf fmt "%d" v

module Self = struct
  type nonrec state = state
  type nonrec invocation = invocation
  type nonrec response = response

  let name = name
  let initial = initial
  let seq = seq
  let good = good
  let equal_state = equal_state
  let equal_invocation = equal_invocation
  let equal_response = equal_response
  let pp_state = pp_state
  let pp_invocation = pp_invocation
  let pp_response = pp_response
end

let tp : (state, invocation, response) Slx_history.Object_type.t =
  (module Self)

let pp_history fmt h =
  Slx_history.History.pp ~pp_inv:pp_invocation ~pp_res:pp_response fmt h
