(** Wait-free consensus from compare-and-swap.

    The foil showing that the paper's consensus corollaries are about
    the {e base-object restriction}: with a single compare-and-swap
    object (consensus number ∞, Herlihy 1991) wait-freedom — the
    consensus [Lmax] — is implementable together with agreement and
    validity.  Every [propose] is two atomic steps: one CAS attempt and
    one read. *)

val factory :
  unit ->
  (Consensus_type.invocation, Consensus_type.response) Slx_sim.Runner.factory
