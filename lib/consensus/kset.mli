(** k-set agreement: the generalization the paper's introduction names
    as another context for its impossibilities (via Borowsky–Gafni
    [3]).

    Processes propose values and each decides one; safety demands at
    most [k] distinct decided values ({!k_agreement}) and that every
    decision was proposed ({!validity}).  [k = 1] is consensus.

    {!grouped_factory} implements k-set agreement from registers by
    partitioning the processes into [k] groups, each running its own
    register consensus (commit–adopt cascade): at most one decision
    value per group.  The consensus trade-off is inherited per group:
    a group member running without in-group contention decides
    ((1,1)-freedom survives), while the lockstep adversary applied
    {e inside} one group starves that group — so the same Figure 1a
    shape holds for k-set agreement from registers, which the test
    suite demonstrates. *)

open Slx_history

type history = (Consensus_type.invocation, Consensus_type.response) History.t

val k_agreement : k:int -> history -> bool
(** At most [k] distinct decided values. *)

val validity : history -> bool
(** Every decided value was proposed before it was decided. *)

val check : k:int -> history -> bool
(** Well-formedness ∧ k-agreement ∧ validity. *)

val property : k:int -> history Slx_safety.Property.t
(** Named ["<k>-set-agreement"]. *)

val group_of : k:int -> Proc.t -> int
(** The group (0-based, [< k]) a process belongs to under the
    round-robin partition used by {!grouped_factory}. *)

val grouped_factory :
  k:int ->
  ?max_rounds:int ->
  unit ->
  (Consensus_type.invocation, Consensus_type.response) Slx_sim.Runner.factory
(** [k] independent register-consensus instances, one per group. *)
