open Slx_history

type history = (Consensus_type.invocation, Consensus_type.response) History.t

let propose p v = Event.Invocation (p, Consensus_type.Propose v)
let decide p v = Event.Response (p, Consensus_type.Decided v)

let f1 ~v ~v' =
  if v = v' then invalid_arg "Consensus_adversary_sets.f1: v = v'";
  List.map History.of_list
    [
      [ propose 1 v; propose 2 v' ];
      [ propose 1 v; decide 1 v; propose 2 v' ];
      [ propose 1 v; propose 2 v'; decide 1 v ];
      [ propose 1 v; propose 2 v'; decide 1 v' ];
      [ propose 1 v; propose 2 v'; decide 2 v ];
      [ propose 1 v; propose 2 v'; decide 2 v' ];
    ]

let swap12 p = if p = 1 then 2 else if p = 2 then 1 else p

let f2 ~v ~v' = List.map (History.rename swap12) (f1 ~v ~v')

let equal_history =
  History.equal ~inv:Consensus_type.equal_invocation
    ~res:Consensus_type.equal_response

let disjoint fa fb =
  not (List.exists (fun h -> List.exists (equal_history h) fb) fa)

let all_safe f = List.for_all Consensus_safety.check f

let all_incomplete f =
  let undecided h =
    Proc.Set.exists
      (fun p ->
        History.is_correct h p
        && History.invocations_of h p <> []
        && History.responses_of h p = [])
      (History.procs h)
  in
  List.for_all undecided f
