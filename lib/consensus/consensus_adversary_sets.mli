(** The disjoint adversary sets of Corollary 4.5.

    Section 4.1 exhibits, for consensus from registers, two adversary
    sets w.r.t. wait-freedom and agreement-and-validity:

    [F1] — the six histories in which [p1] proposes [v] first, [p2]
    proposes [v' ≠ v], and at least one of them never decides:
    {v content: [propose_1(v) . propose_2(v')],
     [propose_1(v) . v_1 . propose_2(v')],
     [propose_1(v) . propose_2(v') . v_1],
     [propose_1(v) . propose_2(v') . v'_1],
     [propose_1(v) . propose_2(v') . v_2],
     [propose_1(v) . propose_2(v') . v'_2]. v}

    [F2] — the same with the roles of [p1] and [p2] exchanged.

    Every history of [F1] begins with an invocation by [p1] and every
    history of [F2] with one by [p2], so [F1 ∩ F2 = ∅] and hence
    [Gmax = ∅]: by Theorem 4.4 there is no weakest liveness property
    excluding agreement and validity (Corollary 4.5).  This module
    provides the sets as concrete history lists so the disjointness —
    and the membership of each history in the safety property — can be
    machine-checked and reported by the benches. *)

open Slx_history

type history = (Consensus_type.invocation, Consensus_type.response) History.t

val f1 : v:int -> v':int -> history list
(** The six histories of [F1].  @raise Invalid_argument if [v = v']. *)

val f2 : v:int -> v':int -> history list
(** [F2 = F1] with processes 1 and 2 exchanged. *)

val equal_history : history -> history -> bool

val disjoint : history list -> history list -> bool
(** No common history. *)

val all_safe : history list -> bool
(** Every history of the set satisfies agreement and validity —
    condition (1) of Definition 4.3, [F ⊆ S]. *)

val all_incomplete : history list -> bool
(** In every history of the set, some correct process that has invoked
    never decides — the finite witness of condition (2) of Definition
    4.3, [F ⊆ complement of Lmax] (wait-freedom). *)
