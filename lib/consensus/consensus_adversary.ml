open Slx_history
open Slx_sim

type invocation = Consensus_type.invocation
type response = Consensus_type.response

let decisions h =
  List.filter_map
    (fun e ->
      match e with
      | Event.Response (p, Consensus_type.Decided v) -> Some (p, v)
      | Event.Invocation _ | Event.Crash _ -> None)
    (History.to_list h)

let lockstep ?(pair = (1, 2)) ?(proposals = (0, 1)) () : _ Driver.t =
  let p1, p2 = pair in
  let v1, v2 = proposals in
  let proposal p = if p = p1 then v1 else v2 in
  fun view ->
    (* Keep the two processes in lockstep: next is whichever has fewer
       grants (ties to the first); re-invoke on completion. *)
    let next = if view.Driver.steps p1 <= view.Driver.steps p2 then p1 else p2 in
    match view.Driver.status next with
    | Runtime.Ready -> Driver.Schedule next
    | Runtime.Idle -> Driver.Invoke (next, Consensus_type.Propose (proposal next))
    | Runtime.Crashed -> Driver.Stop

let run_lockstep ~factory ~max_steps =
  Runner.run ~n:2 ~factory ~driver:(lockstep ()) ~max_steps ()

type attack_result =
  | Defeated of (invocation, response) Run_report.t
  | Lost of (invocation, response) Run_report.t

(* Replay a schedule prefix and return the report. *)
let replay ~factory ~script ?(extra = fun (_ : _ Driver.view) -> Driver.Stop)
    ~max_steps () =
  let scripted = Driver.of_script script in
  let done_ = ref false in
  let driver view =
    if !done_ then extra view
    else
      match scripted view with
      | Driver.Stop ->
          done_ := true;
          extra view
      | d -> d
  in
  Runner.run ~n:2 ~factory ~driver ~max_steps ()

(* The decision process [p] reaches when run solo after [script]. *)
let solo_decision ~factory ~script ~solo_budget p =
  let extra view =
    match view.Driver.status p with
    | Runtime.Ready -> Driver.Schedule p
    | Runtime.Idle | Runtime.Crashed -> Driver.Stop
  in
  let report =
    replay ~factory ~script ~extra
      ~max_steps:(List.length script + solo_budget)
      ()
  in
  (* The first decision by [p] (replaying a deterministic
     implementation, [p] decides at most one value). *)
  List.find_map
    (fun (q, v) -> if Proc.equal p q then Some v else None)
    (decisions report.Run_report.history)

let tie_attack ~factory ~steps ?(solo_budget = 1000) () =
  let initial =
    [
      Driver.Invoke (1, Consensus_type.Propose 0);
      Driver.Invoke (2, Consensus_type.Propose 1);
    ]
  in
  let tied script =
    let d1 = solo_decision ~factory ~script ~solo_budget 1 in
    let d2 = solo_decision ~factory ~script ~solo_budget 2 in
    match d1, d2 with Some v1, Some v2 -> v1 <> v2 | _, _ -> false
  in
  let no_decision script =
    let report = replay ~factory ~script ~max_steps:(List.length script) () in
    decisions report.Run_report.history = []
  in
  let grants_of script p =
    List.length
      (List.filter (function Driver.Schedule q -> q = p | _ -> false) script)
  in
  let rec extend script remaining =
    if remaining = 0 then
      Defeated (replay ~factory ~script ~max_steps:(List.length script) ())
    else
      let candidates =
        if grants_of script 1 <= grants_of script 2 then [ 1; 2 ] else [ 2; 1 ]
      in
      let try_cand p =
        let script' = script @ [ Driver.Schedule p ] in
        (* A candidate can be outright invalid (the process completed
           an operation and is idle); treat that like a broken tie. *)
        match no_decision script' && tied script' with
        | true -> Some script'
        | false -> None
        | exception Invalid_argument _ -> None
      in
      match List.find_map try_cand candidates with
      | Some script' -> extend script' (remaining - 1)
      | None ->
          (* Every extension decides or breaks the tie: the adversary
             lost.  Report a run where a decision is reachable: let the
             first candidate run solo to completion. *)
          let p = List.hd candidates in
          let extra view =
            match view.Driver.status p with
            | Runtime.Ready -> Driver.Schedule p
            | Runtime.Idle | Runtime.Crashed -> Driver.Stop
          in
          Lost
            (replay ~factory ~script ~extra
               ~max_steps:(List.length script + solo_budget)
               ())
  in
  if tied initial then extend initial steps
  else Lost (replay ~factory ~script:initial ~max_steps:2 ())
