let factory () : _ Slx_sim.Runner.factory =
 fun ~n:_ ~proc:_ (Consensus_type.Propose v) -> Consensus_type.Decided v
