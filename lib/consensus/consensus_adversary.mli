(** Adversaries against register-based consensus.

    The paper's negative results are games: “there is an adversary
    w.r.t. [L], i.e., an entity that plays against an implementation
    ensuring [S] and that decides on the schedule and inputs of
    processes to win the game by having the implementation violate
    [L]” (Section 1).  This module implements two such entities for
    consensus:

    - {!lockstep}: the classical synchronous schedule that keeps two
      processes with distinct proposals perfectly tied — the schedule
      underlying the Chor–Israeli–Li impossibility (the paper's [5])
      specialized to round-based register algorithms;

    - {!tie_attack}: an implementation-agnostic adversary that
      {e searches} for a tie-preserving schedule by replaying bounded
      prefixes and probing solo extensions (“valency probing”).  It
      defeats every deterministic register implementation we provide,
      and — correctly — fails against {!Cas_consensus}.

    A successful attack yields a bounded-fair run in which two
    processes take steps forever and neither ever decides: the witness
    that (1,2)-freedom excludes agreement and validity (Theorem 5.2,
    negative half). *)

open Slx_sim

type invocation = Consensus_type.invocation
type response = Consensus_type.response

val lockstep :
  ?pair:Slx_history.Proc.t * Slx_history.Proc.t ->
  ?proposals:int * int ->
  unit ->
  (invocation, response) Driver.t
(** The strict-alternation adversary for the two processes of [pair]
    (default [(1, 2)]): the first proposes the first value of
    [proposals] (default [(0, 1)]), the second the other, then steps
    alternate strictly, re-invoking a process if it ever completes an
    operation. *)

val run_lockstep :
  factory:(invocation, response) Runner.factory ->
  max_steps:int ->
  (invocation, response) Run_report.t
(** Play {!lockstep} against an implementation in a 2-process system. *)

type attack_result =
  | Defeated of (invocation, response) Run_report.t
      (** The adversary built a bounded-fair run with both processes
          active and no decision: liveness violated. *)
  | Lost of (invocation, response) Run_report.t
      (** The adversary could not avoid a decision; the report is a run
          in which a decision occurred. *)

val tie_attack :
  factory:(invocation, response) Runner.factory ->
  steps:int ->
  ?solo_budget:int ->
  unit ->
  attack_result
(** The search adversary.  Starting from [propose(0)_1 . propose(1)_2],
    it extends the schedule one grant at a time, always keeping the
    configuration {e tied}: running either process solo from the
    current configuration must still lead to different decisions.  It
    prefers the process with fewer grants, so a successful attack is
    bounded-fair.  [solo_budget] (default [1000]) bounds each probe.

    The probes replay the schedule prefix from scratch, so the
    implementation must be deterministic (all ours are). *)

val decisions :
  (invocation, response) Slx_history.History.t -> (Slx_history.Proc.t * int) list
(** All (process, decided value) pairs in a history — empty on a
    successful attack. *)
