(** The unsafe foil: each process decides its own value immediately.

    Wait-free — indeed it makes no base-object step at all — but
    violates agreement as soon as two distinct values are proposed.
    Used by the test suites and benches to check that the safety
    checkers reject what the liveness checkers accept: the trade-off
    cuts both ways. *)

val factory :
  unit ->
  (Consensus_type.invocation, Consensus_type.response) Slx_sim.Runner.factory
