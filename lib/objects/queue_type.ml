type invocation = Enqueue of int | Dequeue

type response = Enqueued | Dequeued of int | Empty

type state = int list (* front of the queue first *)

let name = "queue"
let initial : state = []

let seq inv st =
  match inv, st with
  | Enqueue v, _ -> [ (st @ [ v ], Enqueued) ]
  | Dequeue, [] -> [ ([], Empty) ]
  | Dequeue, x :: rest -> [ (rest, Dequeued x) ]

let good (_ : response) = true
let equal_state = List.equal Int.equal
let equal_invocation (a : invocation) b = a = b
let equal_response (a : response) b = a = b

let pp_state fmt st =
  Format.fprintf fmt "[%s]" (String.concat ";" (List.map string_of_int st))

let pp_invocation fmt = function
  | Enqueue v -> Format.fprintf fmt "enq(%d)" v
  | Dequeue -> Format.pp_print_string fmt "deq"

let pp_response fmt = function
  | Enqueued -> Format.pp_print_string fmt "ok"
  | Dequeued v -> Format.fprintf fmt "deq(%d)" v
  | Empty -> Format.pp_print_string fmt "empty"

module Self = struct
  type nonrec state = state
  type nonrec invocation = invocation
  type nonrec response = response

  let name = name
  let initial = initial
  let seq = seq
  let good = good
  let equal_state = equal_state
  let equal_invocation = equal_invocation
  let equal_response = equal_response
  let pp_state = pp_state
  let pp_invocation = pp_invocation
  let pp_response = pp_response
end
