(** A lock-free FIFO queue from compare-and-swap (the whole-value CAS
    analogue of Michael–Scott): enqueue and dequeue retry a CAS on the
    functional queue value until they win.  Linearizable at the
    successful CAS / empty read; lock-free like the Treiber stack.
    Completes the linearizability checker's workout across LIFO and
    FIFO disciplines — histories that are stack-legal are usually not
    queue-legal and vice versa, which the tests exploit. *)

val factory :
  unit -> (Queue_type.invocation, Queue_type.response) Slx_sim.Runner.factory
