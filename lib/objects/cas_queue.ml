open Slx_base_objects

let factory () : _ Slx_sim.Runner.factory =
 fun ~n:_ ->
  let q = Cas.make ([] : int list) in
  fun ~proc:_ inv ->
    match inv with
    | Queue_type.Enqueue v ->
        let rec attempt () =
          let cur = Cas.read q in
          if Cas.compare_and_swap q ~expected:cur ~desired:(cur @ [ v ]) then
            Queue_type.Enqueued
          else attempt ()
        in
        attempt ()
    | Queue_type.Dequeue ->
        let rec attempt () =
          match Cas.read q with
          | [] -> Queue_type.Empty
          | x :: rest ->
              if Cas.compare_and_swap q ~expected:(x :: rest) ~desired:rest
              then Queue_type.Dequeued x
              else attempt ()
        in
        attempt ()
