(** The FIFO queue object type, for checking queue implementations
    linearizable. *)

type invocation = Enqueue of int | Dequeue

type response = Enqueued | Dequeued of int | Empty

include
  Slx_history.Object_type.S
    with type state = int list
     and type invocation := invocation
     and type response := response

module Self :
  Slx_history.Object_type.S
    with type state = int list
     and type invocation = invocation
     and type response = response
