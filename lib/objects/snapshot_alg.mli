(** A wait-free atomic snapshot built from single-writer registers
    (Afek, Attiya, Dolev, Gafni, Merritt & Shavit, JACM 1993).

    The paper's Algorithm 1 assumes an atomic snapshot object [R] as a
    base object.  {!Slx_base_objects.Snapshot} provides that assumption
    directly (one atomic step per [scan]); this module discharges it:
    the same interface implemented from read/write registers only, with
    [scan] and [update] taking many steps but remaining wait-free and
    linearizable.

    The construction is the classical unbounded-timestamp one: each
    segment register holds [(value, seq, view)] where [view] is a full
    snapshot embedded by the writer.  A scanner double-collects; if two
    collects agree on every sequence number, the second collect is a
    valid snapshot (it was atomic between the collects); otherwise some
    writer moved — and a writer seen moving {e twice} wrote its
    embedded view entirely within the scanner's interval, so that view
    can be borrowed.  At most [n] moves can happen before some writer
    moves twice, bounding the loop: wait-freedom.

    [I12_reg] uses this to re-run the paper's Lemma 5.4 experiments
    with the snapshot assumption discharged (DESIGN.md substitution
    table). *)

type 'a t

val make : n:int -> 'a -> 'a t
(** Segments [1..n], all initialized to the given value. *)

val update : 'a t -> proc:Slx_history.Proc.t -> 'a -> unit
(** [update s ~proc v] writes [v] into [proc]'s segment.  Wait-free;
    O(n) atomic steps (it embeds a scan). *)

val scan : 'a t -> 'a array
(** A linearizable snapshot of all segments (index [p - 1] for process
    [p]).  Wait-free; O(n²) atomic steps worst case. *)
