open Slx_history
open Slx_sim
open Slx_base_objects

type invocation = Acquire | Release

type response = Acquired | Released

let good = function Acquired -> true | Released -> false

let pp_invocation fmt = function
  | Acquire -> Format.pp_print_string fmt "acquire"
  | Release -> Format.pp_print_string fmt "release"

let pp_response fmt = function
  | Acquired -> Format.pp_print_string fmt "acquired"
  | Released -> Format.pp_print_string fmt "released"

type history = (invocation, response) History.t

let mutual_exclusion h =
  let rec go holder = function
    | [] -> true
    | Event.Response (p, Acquired) :: rest ->
        holder = None && go (Some p) rest
    | Event.Response (p, Released) :: rest ->
        holder = Some p && go None rest
    | (Event.Invocation _ | Event.Crash _) :: rest -> go holder rest
  in
  go None (History.to_list h)

let property = Slx_safety.Property.make ~name:"mutual-exclusion" mutual_exclusion

let tas_factory () : _ Runner.factory =
 fun ~n:_ ->
  let flag = Test_and_set.make () in
  fun ~proc:_ inv ->
    match inv with
    | Acquire ->
        let rec spin () =
          if Test_and_set.test_and_set flag then Acquired else spin ()
        in
        spin ()
    | Release ->
        Test_and_set.reset flag;
        Released

(* Whether [p] currently holds the lock according to the history. *)
let holds_lock view p =
  let rec last_status = function
    | [] -> `Free
    | Event.Response (_, Acquired) :: _ -> `Held
    | Event.Response (_, Released) :: _ -> `Free
    | (Event.Invocation _ | Event.Crash _) :: rest -> last_status rest
  in
  (* Scan [p]'s responses backwards. *)
  last_status (List.rev (History.to_list (History.project view.Driver.history p)))

let next_invocation view p =
  match holds_lock view p with `Held -> Release | `Free -> Acquire

let eligible view p =
  match view.Driver.status p with
  | Slx_sim.Runtime.Ready -> Some (Driver.Schedule p)
  | Slx_sim.Runtime.Idle -> Some (Driver.Invoke (p, next_invocation view p))
  | Slx_sim.Runtime.Crashed -> None

let workload ?procs () : _ Driver.t =
  let cursor = ref 0 in
  fun view ->
    let procs = Option.value procs ~default:(Proc.all ~n:view.Driver.n) in
    let len = List.length procs in
    let rec try_from k =
      if k >= len then Driver.Stop
      else
        let p = List.nth procs ((!cursor + k) mod len) in
        match eligible view p with
        | Some d ->
            cursor := (!cursor + k + 1) mod len;
            d
        | None -> try_from (k + 1)
    in
    try_from 0

let random_workload ?procs ~seed () : _ Driver.t =
  let rng = Random.State.make [| seed |] in
  fun view ->
    let procs = Option.value procs ~default:(Proc.all ~n:view.Driver.n) in
    let candidates = List.filter_map (eligible view) procs in
    match candidates with
    | [] -> Driver.Stop
    | _ :: _ ->
        List.nth candidates (Random.State.int rng (List.length candidates))

let starvation_adversary () : _ Driver.t =
  (* Whether p1's doomed attempt was already granted during the current
     hold of the lock. *)
  let granted_this_hold = ref false in
  fun view ->
    let lock_held =
      (* Any process currently between Acquired and Released. *)
      List.exists (fun p -> holds_lock view p = `Held) [ 1; 2 ]
    in
    if not lock_held then granted_this_hold := false;
    match view.Driver.status 1 with
    | Slx_sim.Runtime.Idle -> Driver.Invoke (1, Acquire)
    | Slx_sim.Runtime.Crashed -> Driver.Stop
    | Slx_sim.Runtime.Ready ->
        if lock_held && not !granted_this_hold then begin
          (* p1's test-and-set attempt, guaranteed to fail. *)
          granted_this_hold := true;
          Driver.Schedule 1
        end
        else begin
          match view.Driver.status 2 with
          | Slx_sim.Runtime.Ready -> Driver.Schedule 2
          | Slx_sim.Runtime.Idle ->
              Driver.Invoke (2, next_invocation view 2)
          | Slx_sim.Runtime.Crashed -> Driver.Stop
        end

let run_starvation ~factory ~max_steps =
  Runner.run ~n:2 ~factory ~driver:(starvation_adversary ()) ~max_steps ()

let acquisitions h =
  List.map
    (fun p ->
      ( p,
        List.length
          (List.filter (fun r -> r = Acquired) (History.responses_of h p)) ))
    (Proc.Set.elements (History.procs h))
