(** Peterson's two-process lock: starvation-free mutual exclusion from
    bounded registers.

    The Bakery lock ({!Bakery}) is starvation-free but needs unbounded
    tickets; Peterson's algorithm achieves the same guarantees for two
    processes with two flags and one turn register — the classical
    bounded-space point in the mutex design space.  Used alongside
    {!Bakery} and {!Mutex.tas_factory} in the lock liveness tests:
    all three are safe under every schedule, but only the
    flag/turn-based locks survive the starvation scheduler fairly. *)

val factory :
  unit -> (Mutex.invocation, Mutex.response) Slx_sim.Runner.factory
(** A fresh Peterson lock.  The run must have [n = 2]; any other
    process id raises at invocation time. *)
