open Slx_base_objects

let factory () : _ Slx_sim.Runner.factory =
 fun ~n:_ ->
  let head = Cas.make ([] : int list) in
  fun ~proc:_ inv ->
    match inv with
    | Stack_type.Push v ->
        let rec attempt () =
          let cur = Cas.read head in
          if Cas.compare_and_swap head ~expected:cur ~desired:(v :: cur) then
            Stack_type.Pushed
          else attempt ()
        in
        attempt ()
    | Stack_type.Pop ->
        let rec attempt () =
          match Cas.read head with
          | [] -> Stack_type.Empty
          | x :: rest ->
              if Cas.compare_and_swap head ~expected:(x :: rest) ~desired:rest
              then Stack_type.Popped x
              else attempt ()
        in
        attempt ()
