type invocation = Push of int | Pop

type response = Pushed | Popped of int | Empty

type state = int list

let name = "stack"
let initial : state = []

let seq inv st =
  match inv, st with
  | Push v, _ -> [ (v :: st, Pushed) ]
  | Pop, [] -> [ ([], Empty) ]
  | Pop, x :: rest -> [ (rest, Popped x) ]

let good (_ : response) = true
let equal_state = List.equal Int.equal
let equal_invocation (a : invocation) b = a = b
let equal_response (a : response) b = a = b

let pp_state fmt st =
  Format.fprintf fmt "[%s]" (String.concat ";" (List.map string_of_int st))

let pp_invocation fmt = function
  | Push v -> Format.fprintf fmt "push(%d)" v
  | Pop -> Format.pp_print_string fmt "pop"

let pp_response fmt = function
  | Pushed -> Format.pp_print_string fmt "ok"
  | Popped v -> Format.fprintf fmt "popped(%d)" v
  | Empty -> Format.pp_print_string fmt "empty"

module Self = struct
  type nonrec state = state
  type nonrec invocation = invocation
  type nonrec response = response

  let name = name
  let initial = initial
  let seq = seq
  let good = good
  let equal_state = equal_state
  let equal_invocation = equal_invocation
  let equal_response = equal_response
  let pp_state = pp_state
  let pp_invocation = pp_invocation
  let pp_response = pp_response
end
