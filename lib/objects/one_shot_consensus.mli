(** Polymorphic one-shot consensus objects, the building block of the
    universal construction.

    Two variants with the same interface and different base objects —
    exactly the split the paper's consensus corollaries hinge on:

    - {!Cas}: from a single compare-and-swap: wait-free (two steps);
    - {!Registers}: a commit–adopt cascade from read/write registers:
      obstruction-free, and tied forever by a lockstep schedule.

    [propose] is idempotent per object: every call returns the decided
    value, so processes can re-propose while racing for log slots. *)

open Slx_history

module type S = sig
  type 'a t

  val make : n:int -> unit -> 'a t
  (** A fresh undecided consensus object for [n] processes. *)

  val propose : 'a t -> proc:Proc.t -> 'a -> 'a
  (** Propose a value; returns the decided value.  May take unboundedly
      many steps for {!Registers} under contention. *)

  val peek : 'a t -> 'a option
  (** The decided value, if any (one atomic step). *)
end

module Cas : S
(** Decide by a single compare-and-swap. *)

module Registers : S
(** The commit–adopt cascade of {!Slx_consensus.Register_consensus},
    generalized to arbitrary values.  Obstruction-free only. *)
