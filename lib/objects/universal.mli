(** Herlihy's universal construction: a linearizable shared object of
    {e any} deterministic sequential type from consensus objects.

    The paper's introduction lists “high-level object implementations
    from registers [19]” among the contexts where its impossibilities
    apply.  This module supplies the context: processes agree — one
    log slot at a time, via {!One_shot_consensus} — on the order of
    all operations, and each process computes its response by replaying
    the decided log.  Linearizability holds by construction (the log
    {e is} the linearization order).

    Liveness is inherited from the consensus building block:

    - with {!One_shot_consensus.Cas} every slot race has a winner, so
      the log — and some process — always advances: lock-free,
      (1,n)-freedom (individual wait-freedom would additionally need
      Herlihy's helping/announce mechanism, deliberately not
      implemented here);
    - with {!One_shot_consensus.Registers} a process running without
      step contention fills a slot with its own operation:
      obstruction-free — and the lockstep schedule ties a slot's
      commit–adopt cascade forever, so (1,2)-freedom fails: the
      consensus grid of Figure 1a is the grid of {e every} universal
      object from registers, which the test suite and experiment E15
      demonstrate on a register and a stack. *)

open Slx_history

val factory :
  tp:('st, 'inv, 'res) Object_type.t ->
  consensus:[ `Cas | `Registers ] ->
  ?max_ops:int ->
  unit ->
  ('inv, 'res) Slx_sim.Runner.factory
(** A universal implementation of [tp].  The sequential specification
    must be deterministic (the first branch of [seq] is used; a spec
    with no branch for some reachable invocation makes that operation
    answer the first branch of a retry — such specs should be total).
    [max_ops] (default [4096]) bounds the log length.

    @raise Failure at run time if the log or the spec is exhausted. *)
