open Slx_history
open Slx_base_objects

module type S = sig
  type 'a t

  val make : n:int -> unit -> 'a t
  val propose : 'a t -> proc:Proc.t -> 'a -> 'a
  val peek : 'a t -> 'a option
end

module Cas = struct
  type 'a t = 'a option Slx_base_objects.Cas.t

  let make ~n:_ () = Slx_base_objects.Cas.make None

  let propose t ~proc:_ v =
    let _won =
      Slx_base_objects.Cas.compare_and_swap t ~expected:None ~desired:(Some v)
    in
    match Slx_base_objects.Cas.read t with
    | Some w -> w
    | None -> assert false

  let peek t = Slx_base_objects.Cas.read t
end

module Registers = struct
  (* One commit-adopt round (cf. Slx_consensus.Register_consensus,
     generalized to arbitrary values). *)
  type 'a round = {
    a : 'a option Register.t array;
    b : (bool * 'a) option Register.t array;
  }

  type 'a t = {
    n : int;
    rounds : 'a round option array;  (* allocated on first use *)
    allocated : int ref;  (* rounds allocated so far (prefix of [rounds]) *)
    tbl : int;  (* footprint id of the allocation table *)
    decision : 'a option Register.t;
  }

  let max_rounds = 4096

  let make_round n =
    {
      a = Array.init n (fun _ -> Register.make None);
      b = Array.init n (fun _ -> Register.make None);
    }

  let make ~n () =
    (* The allocation table is shared mutable state: fingerprint it
       (rounds are allocated in order, so the count characterizes it —
       the registers themselves register their own readers) and give
       it a footprint id so the lazy-allocation step can report its
       accesses to the sanitizer. *)
    let allocated = ref 0 in
    {
      n;
      rounds = Array.make max_rounds None;
      allocated;
      tbl = Slx_sim.Runtime.register_object (fun () -> !allocated);
      decision = Register.make None;
    }

  (* Lazily allocate round [r]; modelled as one atomic step so the
     shared table mutation cannot be interleaved.  Kept [Opaque]
     (rather than a declared write of [tbl]): allocation also runs the
     nested [Register.make] registrations, and an opaque step's
     conflict-with-everything is the sound declaration for that —
     audits waive the resulting opaque-step lint. *)
  let round t r =
    Slx_sim.Runtime.atomic (fun () ->
        Slx_sim.Runtime.touch ~obj:t.tbl ~write:false;
        match t.rounds.(r) with
        | Some round -> round
        | None ->
            let round = make_round t.n in
            Slx_sim.Runtime.touch ~obj:t.tbl ~write:true;
            t.rounds.(r) <- Some round;
            incr t.allocated;
            round)

  type 'a outcome = Commit of 'a | Adopt of 'a

  let commit_adopt round ~n ~i v =
    Register.write round.a.(i - 1) (Some v);
    let seen_a =
      List.filter_map
        (fun j -> Register.read round.a.(j))
        (List.init n (fun j -> j))
    in
    let phase1 = if List.for_all (fun u -> u = v) seen_a then (true, v) else (false, v) in
    Register.write round.b.(i - 1) (Some phase1);
    let seen_b =
      List.filter_map
        (fun j -> Register.read round.b.(j))
        (List.init n (fun j -> j))
    in
    let trues = List.filter fst seen_b in
    match trues with
    | (_, u) :: _ when List.for_all (fun (f, _) -> f) seen_b -> Commit u
    | (_, u) :: _ -> Adopt u
    | [] -> Adopt v

  let propose t ~proc v =
    let rec go r pref =
      if r >= max_rounds then
        failwith "One_shot_consensus.Registers: max_rounds exceeded"
      else
        match Register.read t.decision with
        | Some w -> w
        | None -> begin
            match commit_adopt (round t r) ~n:t.n ~i:proc pref with
            | Commit u ->
                Register.write t.decision (Some u);
                u
            | Adopt u -> go (r + 1) u
          end
    in
    if Proc.is_valid ~n:t.n proc then go 0 v
    else invalid_arg "One_shot_consensus.Registers.propose: bad process"

  let peek t = Register.read t.decision
end
