(** The atomic-snapshot object type, for checking the register-based
    construction ({!Snapshot_alg}) linearizable.

    An invocation [Update (i, v)] writes [v] into segment [i] (callers
    use their own process id as [i], matching the single-writer
    discipline); [Scan] returns all segments.  Every response is good:
    snapshots have no abort-like responses. *)

type invocation = Update of int * int | Scan

type response = Ok | View of int list

val make : n:int -> (module Slx_history.Object_type.S
    with type state = int list
     and type invocation = invocation
     and type response = response)
(** The object type for a system of [n] segments (all initially 0). *)
