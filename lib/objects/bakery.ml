open Slx_base_objects

(* Lamport's Bakery algorithm, verbatim:

     choosing[i] := true
     number[i]   := 1 + max_j number[j]
     choosing[i] := false
     for each j != i:
       wait until choosing[j] = false
       wait until number[j] = 0  or  (number[j], j) > (number[i], i)
     ... critical section ...
     number[i] := 0

   Every wait is a spin of atomic reads, one scheduling step each. *)
let factory () : _ Slx_sim.Runner.factory =
 fun ~n ->
  let choosing = Array.init (n + 1) (fun _ -> Register.make false) in
  let number = Array.init (n + 1) (fun _ -> Register.make 0) in
  fun ~proc inv ->
    match inv with
    | Mutex.Release ->
        Register.write number.(proc) 0;
        Mutex.Released
    | Mutex.Acquire ->
        Register.write choosing.(proc) true;
        let max_ticket = ref 0 in
        for j = 1 to n do
          let t = Register.read number.(j) in
          if t > !max_ticket then max_ticket := t
        done;
        let my_ticket = !max_ticket + 1 in
        Register.write number.(proc) my_ticket;
        Register.write choosing.(proc) false;
        for j = 1 to n do
          if j <> proc then begin
            let rec wait_choosing () =
              if Register.read choosing.(j) then wait_choosing ()
            in
            wait_choosing ();
            let rec wait_turn () =
              let t = Register.read number.(j) in
              if t <> 0 && (t, j) < (my_ticket, proc) then wait_turn ()
            in
            wait_turn ()
          end
        done;
        Mutex.Acquired
