(** The LIFO stack object type: a richer sequential specification for
    exercising the linearizability checker beyond registers. *)

type invocation = Push of int | Pop

type response = Pushed | Popped of int | Empty

include
  Slx_history.Object_type.S
    with type state = int list
     and type invocation := invocation
     and type response := response

module Self :
  Slx_history.Object_type.S
    with type state = int list
     and type invocation = invocation
     and type response = response
