(** Treiber's lock-free stack from compare-and-swap.

    Push and pop retry a CAS on the whole stack value until they win;
    a failed CAS means another operation succeeded, so the
    implementation is lock-free — (1,n)-free in (l,k) terms — and
    linearizable at the successful CAS (or the empty-read).  Used by
    the tests to exercise the linearizability checker on a deeper
    specification and by the liveness suites as another (1,n)-freedom
    witness. *)

val factory :
  unit -> (Stack_type.invocation, Stack_type.response) Slx_sim.Runner.factory
