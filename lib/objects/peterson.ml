open Slx_base_objects

(* Peterson's algorithm, verbatim:

     flag[i] := true
     turn    := j
     wait until flag[j] = false or turn = i
     ... critical section ...
     flag[i] := false *)
let factory () : _ Slx_sim.Runner.factory =
 fun ~n:_ ->
  let flag = Array.init 3 (fun _ -> Register.make false) in
  let turn = Register.make 1 in
  fun ~proc inv ->
    if proc < 1 || proc > 2 then
      invalid_arg "Peterson: a two-process lock";
    let other = 3 - proc in
    match inv with
    | Mutex.Release ->
        Register.write flag.(proc) false;
        Mutex.Released
    | Mutex.Acquire ->
        Register.write flag.(proc) true;
        Register.write turn other;
        let rec wait () =
          if Register.read flag.(other) && Register.read turn = other then
            wait ()
        in
        wait ();
        Mutex.Acquired
