open Slx_history

(* A log entry: who wants which invocation; [id] makes entries of the
   same process distinct so a process can recognize its own win. *)
type 'inv entry = { owner : Proc.t; id : int; inv : 'inv }

module Make_log (C : One_shot_consensus.S) = struct
  type 'inv t = {
    n : int;
    slots : 'inv entry C.t option array;
    allocated : int ref;  (* slots allocated so far *)
    tbl : int;  (* footprint id of the allocation table *)
  }

  let make ~n ~max_ops =
    (* The slot table is shared mutable state: fingerprint its
       allocation count (slots fill in order; the consensus objects
       inside register their own readers) and give it a footprint id
       so the lazy-allocation step reports to the sanitizer. *)
    let allocated = ref 0 in
    {
      n;
      slots = Array.make max_ops None;
      allocated;
      tbl = Slx_sim.Runtime.register_object (fun () -> !allocated);
    }

  (* Lazily allocate slot [i]; one atomic step, so the shared table
     mutation cannot be interleaved.  Kept [Opaque]: allocation runs
     the nested consensus-object constructor (registrations included),
     for which conflict-with-everything is the sound declaration —
     audits waive the resulting opaque-step lint. *)
  let slot t i =
    if i >= Array.length t.slots then
      failwith "Universal: log exhausted (raise max_ops)";
    Slx_sim.Runtime.atomic (fun () ->
        Slx_sim.Runtime.touch ~obj:t.tbl ~write:false;
        match t.slots.(i) with
        | Some c -> c
        | None ->
            let c = C.make ~n:t.n () in
            Slx_sim.Runtime.touch ~obj:t.tbl ~write:true;
            t.slots.(i) <- Some c;
            incr t.allocated;
            c)

  let decide t i ~proc entry = C.propose (slot t i) ~proc entry
end

module Cas_log = Make_log (One_shot_consensus.Cas)
module Reg_log = Make_log (One_shot_consensus.Registers)

(* Per-process replay cache: how far down the log this process has
   applied, and the object state at that point.  Purely local. *)
type 'st cursor = { mutable index : int; mutable state : 'st; mutable next_id : int }

let factory (type st inv res) ~(tp : (st, inv, res) Object_type.t) ~consensus
    ?(max_ops = 4096) () : (inv, res) Slx_sim.Runner.factory =
  let module Tp = (val tp) in
  let apply st i =
    match Tp.seq i st with
    | (st', res) :: _ -> (st', res)
    | [] -> failwith "Universal: sequential specification is not total"
  in
  fun ~n ->
    let decide =
      match consensus with
      | `Cas ->
          let log = Cas_log.make ~n ~max_ops in
          fun i ~proc entry -> Cas_log.decide log i ~proc entry
      | `Registers ->
          let log = Reg_log.make ~n ~max_ops in
          fun i ~proc entry -> Reg_log.decide log i ~proc entry
    in
    let cursors =
      Array.init (n + 1) (fun _ -> { index = 0; state = Tp.initial; next_id = 0 })
    in
    fun ~proc inv ->
      let cur = cursors.(proc) in
      let my = { owner = proc; id = cur.next_id; inv } in
      cur.next_id <- cur.next_id + 1;
      let rec race () =
        let winner = decide cur.index ~proc my in
        let state', res = apply cur.state winner.inv in
        cur.index <- cur.index + 1;
        cur.state <- state';
        if Proc.equal winner.owner proc && winner.id = my.id then res
        else race ()
      in
      race ()
