open Slx_base_objects

(* Each segment holds the written value, a strictly increasing sequence
   number, and the writer's embedded view of the whole object. *)
type 'a segment = { value : 'a; seq : int; view : 'a array }

type 'a t = { n : int; segments : 'a segment Register.t array }

let make ~n init =
  if n < 1 then invalid_arg "Snapshot_alg.make: n must be positive";
  let initial = { value = init; seq = 0; view = Array.make n init } in
  { n; segments = Array.init n (fun _ -> Register.make initial) }

let collect t = Array.map Register.read t.segments

(* The scan loop shared by [scan] and [update]'s embedded scan. *)
let scan_internal t =
  let moved = Array.make t.n 0 in
  let rec attempt () =
    let a = collect t in
    let b = collect t in
    let agree = ref true in
    Array.iteri
      (fun j sa -> if sa.seq <> b.(j).seq then agree := false)
      a;
    if !agree then Array.map (fun s -> s.value) b
    else begin
      (* Someone moved; a writer observed moving twice embedded a view
         taken entirely within our interval: borrow it. *)
      let borrowed = ref None in
      Array.iteri
        (fun j sa ->
          if sa.seq <> b.(j).seq then
            if moved.(j) >= 1 then begin
              match !borrowed with
              | None -> borrowed := Some (Array.copy b.(j).view)
              | Some _ -> ()
            end
            else moved.(j) <- moved.(j) + 1)
        a;
      match !borrowed with Some view -> view | None -> attempt ()
    end
  in
  attempt ()

let scan t = scan_internal t

let update t ~proc v =
  if proc < 1 || proc > t.n then invalid_arg "Snapshot_alg.update";
  let view = scan_internal t in
  let current = Register.read t.segments.(proc - 1) in
  Register.write
    t.segments.(proc - 1)
    { value = v; seq = current.seq + 1; view }
