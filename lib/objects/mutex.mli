(** Mutual exclusion as a shared object, with its own safety-liveness
    trade-off.

    Section 3.2 of the paper names {e starvation-freedom} — every
    correct process that tries to acquire a lock eventually succeeds —
    as the strongest liveness requirement ([Lmax]) for lock-based
    implementations.  This module makes that discussion executable:

    - the object type: [Acquire] / [Release] with [Acquired] the only
      good response (holding the lock is progress; releasing is mere
      bookkeeping);
    - {!mutual_exclusion}: the safety property — at no prefix do two
      processes hold the lock;
    - {!tas_factory}: the classical test-and-set spin lock;
    - {!workload}: a protocol-respecting driver (acquire, release,
      repeat);
    - {!starvation_adversary}: a scheduler that lets [p2] take the lock
      forever while granting [p1]'s acquire attempts only while the
      lock is held — [p1] starves, so (2,2)-freedom (and hence
      starvation-freedom) is excluded for the TAS lock, while
      (1,2)-freedom survives: the mutex row of the paper's trade-off
      table. *)

open Slx_history
open Slx_sim

type invocation = Acquire | Release

type response = Acquired | Released

val good : response -> bool
(** Only [Acquired] counts as progress. *)

val pp_invocation : Format.formatter -> invocation -> unit
val pp_response : Format.formatter -> response -> unit

type history = (invocation, response) History.t

val mutual_exclusion : history -> bool
(** No two processes simultaneously hold the lock, and only the holder
    releases.  Prefix-closed by construction (checked event by
    event). *)

val property : history Slx_safety.Property.t
(** {!mutual_exclusion} packaged, named ["mutual-exclusion"]. *)

val tas_factory : unit -> (invocation, response) Runner.factory
(** The test-and-set spin lock: [Acquire] retries a [test_and_set]
    until it wins; [Release] resets the flag.  Ensures mutual
    exclusion; deadlock-free (someone always wins) but not
    starvation-free. *)

val workload : ?procs:Proc.t list -> unit -> (invocation, response) Driver.t
(** A fair round-robin driver where every process alternates
    [Acquire] / [Release] forever. *)

val random_workload :
  ?procs:Proc.t list -> seed:int -> unit -> (invocation, response) Driver.t
(** The same protocol under a seeded random scheduler. *)

val starvation_adversary : unit -> (invocation, response) Driver.t
(** The two-process starvation scheduler described above. *)

val run_starvation :
  factory:(invocation, response) Runner.factory ->
  max_steps:int ->
  (invocation, response) Run_report.t

val acquisitions : history -> (Proc.t * int) list
(** How many times each process acquired the lock. *)
