(** Lamport's Bakery lock: a starvation-free mutex from registers.

    The counterpoint to {!Mutex.tas_factory}: for mutual exclusion the
    lock-based [Lmax] — starvation-freedom — does {e not} exclude
    safety.  The Bakery algorithm grants the lock in ticket order, so
    under any fair scheduler every acquirer eventually succeeds:
    (n,n)-freedom with [good = Acquired] holds.  The TAS starvation
    scheduler cannot produce a fair starvation of it — when it tries,
    the FIFO discipline blocks the favoured process instead and the run
    stops being fair (the tests check exactly this).

    Safety-liveness exclusion is a property of the {e object}, not of
    concurrency per se: consensus-from-registers and opaque TM have the
    trade-off, mutual exclusion does not.

    Classical caveats hold: tickets grow without bound, and the lock is
    {e blocking} — a crashed ticket-holder wedges everyone behind it
    (same failure mode as the TAS lock, tested in the failure-injection
    suite). *)

val factory :
  unit -> (Mutex.invocation, Mutex.response) Slx_sim.Runner.factory
(** A fresh Bakery lock for the run's [n] processes. *)
