type invocation = Update of int * int | Scan

type response = Ok | View of int list

let make ~n : (module Slx_history.Object_type.S
    with type state = int list
     and type invocation = invocation
     and type response = response) =
  (module struct
    type state = int list
    type nonrec invocation = invocation
    type nonrec response = response

    let name = Printf.sprintf "snapshot-%d" n
    let initial = List.init n (fun _ -> 0)

    let seq inv st =
      match inv with
      | Scan -> [ (st, View st) ]
      | Update (i, v) ->
          if i < 1 || i > n then []
          else [ (List.mapi (fun j x -> if j = i - 1 then v else x) st, Ok) ]

    let good (_ : response) = true
    let equal_state = List.equal Int.equal
    let equal_invocation (a : invocation) b = a = b
    let equal_response (a : response) b = a = b

    let pp_state fmt st =
      Format.fprintf fmt "[%s]"
        (String.concat ";" (List.map string_of_int st))

    let pp_invocation fmt = function
      | Scan -> Format.pp_print_string fmt "scan"
      | Update (i, v) -> Format.fprintf fmt "update(%d,%d)" i v

    let pp_response fmt = function
      | Ok -> Format.pp_print_string fmt "ok"
      | View st ->
          Format.fprintf fmt "view[%s]"
            (String.concat ";" (List.map string_of_int st))
  end)
