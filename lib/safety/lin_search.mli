(** The shared search engine behind the linearizability and sequential
    consistency checkers.

    Both properties ask for a legal sequential ordering of a history's
    operations; they differ only in which precedence order the
    sequential history must respect (real-time order for
    linearizability, per-process program order for sequential
    consistency).  The engine performs the classical Wing–Gong
    exhaustive search with memoization on (linearized-set, object
    state): an operation may be placed next iff every operation that
    precedes it has already been placed and the object's sequential
    specification admits its recorded response.

    Pending operations (no response in the history) may either take
    effect — with any response the specification allows — or be dropped
    entirely.

    The search represents operation sets as bitmasks in a single OCaml
    [int], so histories are limited to {!max_ops} operations.  Longer
    histories yield [Error (Too_many_ops n)] — a contract the calling
    checkers handle, not a crash. *)

open Slx_history

val max_ops : int
(** Largest operation count the bitmask search supports (62: one tagged
    OCaml [int] of set bits). *)

type error = Too_many_ops of int
    (** The history contained this many operations, more than
        {!max_ops}. *)

val pp_error : Format.formatter -> error -> unit

module Make (Tp : Object_type.S) : sig
  type op = (Tp.invocation, Tp.response) Op.t

  val search :
    precedes:(op -> op -> bool) ->
    op list ->
    ((Proc.t * Tp.invocation * Tp.response) list option, error) result
  (** [search ~precedes ops] is [Ok (Some s)] where [s] is a legal
      sequential execution of the completed operations of [ops]
      (pending ones optionally included), respecting [precedes];
      [Ok None] if none exists; or [Error (Too_many_ops n)] when [ops]
      has [n > max_ops] operations and the bitmask search cannot run.

      Precedence constraints are precomputed into one predecessor
      bitmask per operation, so the inner readiness test is two mask
      operations; [precedes] is called O(|ops|²) times total, once per
      ordered pair, not per search node.

      Complexity is O(2^|ops| · |states|) in the worst case; intended
      for the short histories produced by bounded runs. *)
end
