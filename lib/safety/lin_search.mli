(** The shared search engine behind the linearizability and sequential
    consistency checkers.

    Both properties ask for a legal sequential ordering of a history's
    operations; they differ only in which precedence order the
    sequential history must respect (real-time order for
    linearizability, per-process program order for sequential
    consistency).  The engine performs the classical Wing–Gong
    exhaustive search with memoization on (linearized-set, object
    state): an operation may be placed next iff every operation that
    precedes it has already been placed and the object's sequential
    specification admits its recorded response.

    Pending operations (no response in the history) may either take
    effect — with any response the specification allows — or be dropped
    entirely. *)

open Slx_history

module Make (Tp : Object_type.S) : sig
  type op = (Tp.invocation, Tp.response) Op.t

  val search :
    precedes:(op -> op -> bool) ->
    op list ->
    (Proc.t * Tp.invocation * Tp.response) list option
  (** [search ~precedes ops] is [Some s] where [s] is a legal
      sequential execution of the completed operations of [ops]
      (pending ones optionally included), respecting [precedes]; or
      [None] if none exists.

      Complexity is O(2^|ops| · |states|) in the worst case; intended
      for the short histories produced by bounded runs. *)
end
