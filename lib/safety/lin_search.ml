open Slx_history

module Make (Tp : Object_type.S) = struct
  type op = (Tp.invocation, Tp.response) Op.t

  let search ~precedes ops =
    let ops = Array.of_list ops in
    let count = Array.length ops in
    if count > 62 then
      invalid_arg "Lin_search: too many operations for bitmask search";
    let full_complete =
      (* Bitmask of operations that must be linearized. *)
      let mask = ref 0 in
      Array.iteri
        (fun i op -> if Op.is_complete op then mask := !mask lor (1 lsl i))
        ops;
      !mask
    in
    let visited : (int * Tp.state, unit) Hashtbl.t = Hashtbl.create 256 in
    (* An op is ready when all its predecessors are already placed. *)
    let ready placed i =
      placed land (1 lsl i) = 0
      && Array.for_all
           (fun j ->
             let dep = precedes ops.(j) ops.(i) in
             (not dep) || placed land (1 lsl j) <> 0)
           (Array.init count (fun j -> j))
    in
    let rec go placed state acc =
      if placed land full_complete = full_complete then
        (* All completed operations are placed; pending ones may be
           dropped.  Success. *)
        Some (List.rev acc)
      else if Hashtbl.mem visited (placed, state) then None
      else begin
        Hashtbl.add visited (placed, state) ();
        let try_op i =
          if not (ready placed i) then None
          else
            let op = ops.(i) in
            let candidates = Tp.seq op.Op.inv state in
            let matching =
              match op.Op.res with
              | Some res ->
                  List.filter
                    (fun (_, res') -> Tp.equal_response res res')
                    candidates
              | None -> candidates
            in
            List.find_map
              (fun (state', res) ->
                go
                  (placed lor (1 lsl i))
                  state'
                  ((op.Op.proc, op.Op.inv, res) :: acc))
              matching
        in
        List.find_map try_op (List.init count (fun i -> i))
      end
    in
    go 0 Tp.initial []
end
