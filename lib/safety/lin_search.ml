open Slx_history

let max_ops = 62

type error = Too_many_ops of int

let pp_error fmt (Too_many_ops n) =
  Format.fprintf fmt
    "history has %d operations, beyond the %d the bitmask search supports" n
    max_ops

module Make (Tp : Object_type.S) = struct
  type op = (Tp.invocation, Tp.response) Op.t

  let search ~precedes ops =
    let ops = Array.of_list ops in
    let count = Array.length ops in
    if count > max_ops then Error (Too_many_ops count)
    else begin
      let full_complete =
        (* Bitmask of operations that must be linearized. *)
        let mask = ref 0 in
        Array.iteri
          (fun i op -> if Op.is_complete op then mask := !mask lor (1 lsl i))
          ops;
        !mask
      in
      (* Precompute, once, the predecessor bitmask of each operation:
         bit [j] of [preds.(i)] iff [ops.(j)] must be placed before
         [ops.(i)].  [ready] is then two mask tests instead of an O(n)
         scan (with an O(n^2) [precedes] recomputation) per probe. *)
      let preds = Array.make count 0 in
      for i = 0 to count - 1 do
        for j = 0 to count - 1 do
          if j <> i && precedes ops.(j) ops.(i) then
            preds.(i) <- preds.(i) lor (1 lsl j)
        done
      done;
      let visited : (int * Tp.state, unit) Hashtbl.t = Hashtbl.create 256 in
      (* An op is ready when it is unplaced and all its predecessors are
         already placed. *)
      let ready placed i =
        placed land (1 lsl i) = 0 && preds.(i) land placed = preds.(i)
      in
      let rec go placed state acc =
        if placed land full_complete = full_complete then
          (* All completed operations are placed; pending ones may be
             dropped.  Success. *)
          Some (List.rev acc)
        else if Hashtbl.mem visited (placed, state) then None
        else begin
          Hashtbl.add visited (placed, state) ();
          let try_op i =
            if not (ready placed i) then None
            else
              let op = ops.(i) in
              let candidates = Tp.seq op.Op.inv state in
              let matching =
                match op.Op.res with
                | Some res ->
                    List.filter
                      (fun (_, res') -> Tp.equal_response res res')
                      candidates
                | None -> candidates
              in
              List.find_map
                (fun (state', res) ->
                  go
                    (placed lor (1 lsl i))
                    state'
                    ((op.Op.proc, op.Op.inv, res) :: acc))
                matching
          in
          let rec try_from i =
            if i >= count then None
            else match try_op i with Some _ as w -> w | None -> try_from (i + 1)
          in
          try_from 0
        end
      in
      Ok (go 0 Tp.initial [])
    end
end
