(** Linearizability (Herlihy & Wing), the canonical safety property of
    shared objects — cited in Section 3.1 of the paper as a prime
    example of a safety property.

    A history is linearizable iff its completed operations (plus,
    optionally, some pending ones) can be ordered into a legal
    sequential execution that respects real-time precedence: if [o1]
    completes before [o2] is invoked, [o1] must appear before [o2]. *)

open Slx_history

module Make (Tp : Object_type.S) : sig
  val check : (Tp.invocation, Tp.response) History.t -> bool
  (** Whether the history is linearizable w.r.t. [Tp]'s sequential
      specification.  Fails closed: a history longer than
      {!Lin_search.max_ops} operations is reported [false]. *)

  val witness :
    (Tp.invocation, Tp.response) History.t ->
    ((Proc.t * Tp.invocation * Tp.response) list option, Lin_search.error)
    result
  (** A linearization order, if one exists; [Error] when the history
      exceeds {!Lin_search.max_ops} operations. *)

  val property : (Tp.invocation, Tp.response) History.t Property.t
  (** The property as a first-class value, named
      ["linearizability(<Tp.name>)"].  Prefix-closed by the classical
      argument (removing the last event cannot invalidate a
      linearization witness). *)
end
