(** Sequential consistency: like linearizability but requiring only
    per-process program order to be preserved, not real-time order.

    Included as a test foil: histories that are sequentially consistent
    but not linearizable exercise the checkers' difference, and the
    property-based suites assert [linearizable ⊆ sequentially
    consistent]. *)

open Slx_history

module Make (Tp : Object_type.S) : sig
  val check : (Tp.invocation, Tp.response) History.t -> bool
  (** Fails closed beyond {!Lin_search.max_ops} operations. *)

  val witness :
    (Tp.invocation, Tp.response) History.t ->
    ((Proc.t * Tp.invocation * Tp.response) list option, Lin_search.error)
    result

  val property : (Tp.invocation, Tp.response) History.t Property.t
end
