open Slx_history

type 'h t = { name : string; check : 'h -> bool }

let make ~name check = { name; check }

let name s = s.name

let holds s h = s.check h

let conj ~name s1 s2 = { name; check = (fun h -> s1.check h && s2.check h) }

let restrict ~name f s = { name; check = (fun h -> s.check h && f h) }

let is_prefix_closed_on s h =
  (not (s.check h)) || List.for_all s.check (History.prefixes h)

let holds_on_all_prefixes s h = List.for_all s.check (History.prefixes h)
