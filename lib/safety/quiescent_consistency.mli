(** Quiescent consistency: the third classical consistency condition,
    completing the checker family (linearizability preserves real-time
    order, sequential consistency preserves program order, quiescent
    consistency preserves order across quiescent points).

    An operation [o1] must precede [o2] in the witness order iff [o1]
    completes before some {e quiescent point} — an instant with no
    pending operation — that itself precedes [o2]'s invocation.
    Program order is NOT preserved, so quiescent consistency and
    sequential consistency are incomparable (the test suite exhibits
    both separations). *)

open Slx_history

module Make (Tp : Object_type.S) : sig
  val check : (Tp.invocation, Tp.response) History.t -> bool
  (** Fails closed beyond {!Lin_search.max_ops} operations. *)

  val witness :
    (Tp.invocation, Tp.response) History.t ->
    ((Proc.t * Tp.invocation * Tp.response) list option, Lin_search.error)
    result

  val property : (Tp.invocation, Tp.response) History.t Property.t
end
