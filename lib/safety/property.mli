(** Safety properties as first-class values.

    Definition 3.1 of the paper: a safety property is a non-empty,
    prefix-closed and limit-closed set of well-formed histories.  On
    finite histories — the only ones a checker ever sees — a safety
    property is fully determined by its finite members, and
    limit-closure is automatic.  We therefore represent a safety
    property by a decidable membership predicate, with prefix-closure
    as a stated contract that {!is_prefix_closed_on} can test on any
    sample (the test suites do this with generated histories). *)

open Slx_history

type 'h t = private { name : string; check : 'h -> bool }
(** A property over histories of type ['h].  [check h] decides
    [h ∈ S]. *)

val make : name:string -> ('h -> bool) -> 'h t

val name : 'h t -> string

val holds : 'h t -> 'h -> bool
(** [holds s h] is [h ∈ S]. *)

val conj : name:string -> 'h t -> 'h t -> 'h t
(** Intersection of two properties (e.g. the property [S'] of Section
    5.3 is [opacity ∧ timestamp-rule]). *)

val restrict : name:string -> ('h -> bool) -> 'h t -> 'h t
(** [restrict ~name f s] is [s] strengthened by the predicate [f]. *)

val is_prefix_closed_on : ('i, 'r) History.t t -> ('i, 'r) History.t -> bool
(** [is_prefix_closed_on s h] checks the prefix-closure contract at
    sample [h]: if [h ∈ S] then every prefix of [h] is in [S].
    (Vacuously true when [h ∉ S].) *)

val holds_on_all_prefixes : ('i, 'r) History.t t -> ('i, 'r) History.t -> bool
(** [holds_on_all_prefixes s h]: every prefix of [h] (including [h])
    is in [S].  For properties defined prefix-wise — like opacity,
    whose Section 4.1 definition quantifies over “every finite prefix”
    — this is the top-level check. *)
