open Slx_history

module Make (Tp : Object_type.S) = struct
  module Search = Lin_search.Make (Tp)

  (* Program order: [o1] precedes [o2] iff they belong to the same
     process and [o1] was invoked first. *)
  let program_order o1 o2 =
    Proc.equal o1.Op.proc o2.Op.proc && o1.Op.inv_index < o2.Op.inv_index

  let witness h = Search.search ~precedes:program_order (Op.of_history h)

  (* Fail closed on over-long histories, as in [Linearizability]. *)
  let check h = match witness h with Ok w -> Option.is_some w | Error _ -> false

  let property =
    Property.make
      ~name:(Printf.sprintf "sequential-consistency(%s)" Tp.name)
      check
end
