open Slx_history

module Make (Tp : Object_type.S) = struct
  module Search = Lin_search.Make (Tp)

  let witness h = Search.search ~precedes:Op.precedes (Op.of_history h)

  let check h = Option.is_some (witness h)

  let property =
    Property.make ~name:(Printf.sprintf "linearizability(%s)" Tp.name) check
end
