open Slx_history

module Make (Tp : Object_type.S) = struct
  module Search = Lin_search.Make (Tp)

  let witness h = Search.search ~precedes:Op.precedes (Op.of_history h)

  (* Fail closed: a history too long for the search is reported as not
     linearizable rather than crashing the calling engine. *)
  let check h = match witness h with Ok w -> Option.is_some w | Error _ -> false

  let property =
    Property.make ~name:(Printf.sprintf "linearizability(%s)" Tp.name) check
end
