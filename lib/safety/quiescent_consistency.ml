open Slx_history

module Make (Tp : Object_type.S) = struct
  module Search = Lin_search.Make (Tp)

  (* Quiescent points of a history: event indices [i] such that every
     operation invoked before [i] has responded before [i].  An
     operation [o1] precedes [o2] iff some quiescent point separates
     o1's response from o2's invocation. *)
  let quiescent_points h =
    let events = History.to_list h in
    let len = List.length events in
    (* pending_before.(i) = number of operations pending just before
       event i. *)
    let points = ref [] in
    let pending = ref 0 in
    List.iteri
      (fun i e ->
        if !pending = 0 then points := i :: !points;
        (match e with
        | Event.Invocation _ -> incr pending
        | Event.Response _ -> decr pending
        | Event.Crash _ -> ()))
      events;
    if !pending = 0 then points := len :: !points;
    !points

  let precedes_via_quiescence points o1 o2 =
    match o1.Op.res_index with
    | None -> false
    | Some r1 ->
        List.exists (fun q -> r1 < q && q <= o2.Op.inv_index) points

  let witness h =
    let points = quiescent_points h in
    Search.search ~precedes:(precedes_via_quiescence points) (Op.of_history h)

  (* Fail closed on over-long histories, as in [Linearizability]. *)
  let check h = match witness h with Ok w -> Option.is_some w | Error _ -> false

  let property =
    Property.make
      ~name:(Printf.sprintf "quiescent-consistency(%s)" Tp.name)
      check
end
