open Telemetry

(* All names this exporter emits are ASCII identifiers; escaping is
   for safety only. *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One trace record.  [ts] is microseconds relative to the first
   event; Chrome accepts fractional microseconds. *)
let record buf ~name ~cat ~ph ~ts ~tid ?id ?bp ~args () =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", \"ts\": %.3f, \
        \"pid\": 1, \"tid\": %d" (escape name) cat ph ts tid);
  Option.iter (fun id -> Buffer.add_string buf (Printf.sprintf ", \"id\": %d" id)) id;
  Option.iter (fun bp -> Buffer.add_string buf (Printf.sprintf ", \"bp\": \"%s\"" bp)) bp;
  if ph = "i" then Buffer.add_string buf ", \"s\": \"t\"";
  if args <> [] then begin
    Buffer.add_string buf ", \"args\": {";
    Buffer.add_string buf
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) args));
    Buffer.add_string buf "}"
  end;
  Buffer.add_string buf "}"

let event_record buf ~t0 e =
  let ts = float_of_int (e.ev_ns - t0) /. 1e3 in
  let tid = e.ev_domain in
  let i = string_of_int in
  match e.ev_kind with
  | Node_enter ->
      record buf ~name:"node" ~cat:"explore" ~ph:"B" ~ts ~tid
        ~args:[ ("depth", i e.ev_a) ] ()
  | Node_leave ->
      record buf ~name:"node" ~cat:"explore" ~ph:"E" ~ts ~tid
        ~args:[ ("depth", i e.ev_a) ] ()
  | Pump_start ->
      record buf ~name:"pump" ~cat:"live" ~ph:"B" ~ts ~tid
        ~args:[ ("period", i e.ev_a) ] ()
  | Pump_verdict ->
      record buf ~name:"pump" ~cat:"live" ~ph:"E" ~ts ~tid
        ~args:[ ("period", i e.ev_a); ("accepted", i e.ev_b) ] ()
  | Frontier_push ->
      record buf ~name:"steal" ~cat:"frontier" ~ph:"s" ~ts ~tid ~id:e.ev_a
        ~args:[ ("item", i e.ev_a); ("depth", i e.ev_b) ] ()
  | Steal ->
      record buf ~name:"steal" ~cat:"frontier" ~ph:"f" ~ts ~tid ~id:e.ev_a
        ~bp:"e"
        ~args:[ ("item", i e.ev_a); ("owner", i e.ev_b) ] ()
  | Decision ->
      record buf ~name:"decision" ~cat:"explore" ~ph:"i" ~ts ~tid
        ~args:
          [ ("depth", i e.ev_a);
            ("decision", Printf.sprintf "\"%s\"" (Dec.pp e.ev_b)) ]
        ()
  | Run_checked ->
      record buf ~name:"run_checked" ~cat:"explore" ~ph:"i" ~ts ~tid
        ~args:[ ("depth", i e.ev_a) ] ()
  | Cache_hit ->
      record buf ~name:"cache_hit" ~cat:"cache" ~ph:"i" ~ts ~tid
        ~args:[ ("depth", i e.ev_a); ("credited_runs", i e.ev_b) ] ()
  | Cache_evict ->
      record buf ~name:"cache_evict" ~cat:"cache" ~ph:"i" ~ts ~tid
        ~args:[ ("evictions", i e.ev_a) ] ()
  | Por_sleep ->
      record buf ~name:"por_sleep" ~cat:"reduce" ~ph:"i" ~ts ~tid
        ~args:[ ("depth", i e.ev_a); ("slept", i e.ev_b) ] ()
  | Race_reversal ->
      record buf ~name:"race_reversal" ~cat:"reduce" ~ph:"i" ~ts ~tid
        ~args:[ ("depth", i e.ev_a); ("woken", i e.ev_b) ] ()
  | Proviso_wake ->
      record buf ~name:"proviso_wake" ~cat:"reduce" ~ph:"i" ~ts ~tid
        ~args:[ ("depth", i e.ev_a); ("woken", i e.ev_b) ] ()
  | Invoke_prune ->
      record buf ~name:"invoke_prune" ~cat:"reduce" ~ph:"i" ~ts ~tid
        ~args:[ ("depth", i e.ev_a); ("pruned", i e.ev_b) ] ()
  | Symmetry_prune ->
      record buf ~name:"symmetry_prune" ~cat:"reduce" ~ph:"i" ~ts ~tid
        ~args:[ ("depth", i e.ev_a); ("pruned", i e.ev_b) ] ()
  | Cycle_candidate ->
      record buf ~name:"cycle_candidate" ~cat:"live" ~ph:"i" ~ts ~tid
        ~args:[ ("period", i e.ev_a); ("fair_violating", i e.ev_b) ] ()
  | Sanitizer_violation ->
      record buf ~name:"sanitizer_violation" ~cat:"sanitize" ~ph:"i" ~ts ~tid
        ~args:[ ("obj", i e.ev_a); ("kind", i e.ev_b) ] ()
  | Hb_edge ->
      record buf ~name:"hb_edge" ~cat:"sanitize" ~ph:"i" ~ts ~tid
        ~args:[ ("obj", i e.ev_a); ("write", i e.ev_b) ] ()

let to_buffer ?(name = "slx") ~events_dropped events buf =
  let t0 =
    List.fold_left (fun acc e -> min acc e.ev_ns) max_int events
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let domains =
    List.sort_uniq compare (List.map (fun e -> e.ev_domain) events)
  in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  sep ();
  record buf ~name:"process_name" ~cat:"__metadata" ~ph:"M" ~ts:0. ~tid:0
    ~args:[ ("name", Printf.sprintf "\"%s\"" (escape name)) ]
    ();
  List.iter
    (fun d ->
      sep ();
      record buf ~name:"thread_name" ~cat:"__metadata" ~ph:"M" ~ts:0. ~tid:d
        ~args:[ ("name", Printf.sprintf "\"domain %d\"" d) ]
        ())
    domains;
  List.iter
    (fun e ->
      sep ();
      event_record buf ~t0 e)
    events;
  Buffer.add_string buf
    (Printf.sprintf
       "\n], \"displayTimeUnit\": \"ns\", \"otherData\": \
        {\"events_dropped\": %d}}\n"
       events_dropped)

let to_string ?name ~events_dropped events =
  let buf = Buffer.create 4096 in
  to_buffer ?name ~events_dropped events buf;
  Buffer.contents buf

let write oc ?name ~events_dropped events =
  let buf = Buffer.create 4096 in
  to_buffer ?name ~events_dropped events buf;
  Buffer.output_buffer oc buf

(* ------------------------------------------------------------------ *)
(* Validation.                                                         *)

type summary = {
  sm_events : int;
  sm_spans : (string * int) list;
  sm_instants : (string * int) list;
  sm_flow_starts : int;
  sm_flow_ends : int;
  sm_lanes : int;
  sm_dropped : int;
}

let span_count sm name =
  Option.value ~default:0 (List.assoc_opt name sm.sm_spans)

let instant_count sm name =
  Option.value ~default:0 (List.assoc_opt name sm.sm_instants)

let bump table key =
  Hashtbl.replace table key
    (1 + Option.value ~default:0 (Hashtbl.find_opt table key))

let validate json =
  let ( let* ) r f = Result.bind r f in
  let* events =
    match Json.member "traceEvents" json with
    | Some (Json.Arr es) -> Ok es
    | _ -> Error "no traceEvents array"
  in
  let dropped =
    Option.value ~default:0
      (Option.bind (Json.member "otherData" json) (fun o ->
           Option.bind (Json.member "events_dropped" o) Json.int))
  in
  let stacks : (int * int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack lane =
    match Hashtbl.find_opt stacks lane with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks lane s;
        s
  in
  let spans = Hashtbl.create 8 and instants = Hashtbl.create 8 in
  let flow_ids = Hashtbl.create 8 in
  let flow_starts = ref 0 and flow_ends = ref 0 in
  let count = ref 0 in
  let step idx e =
    let field k conv what =
      match Option.bind (Json.member k e) conv with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "event %d: missing %s" idx what)
    in
    let* name = field "name" Json.str "name" in
    let* ph = field "ph" Json.str "ph" in
    let* _ts = field "ts" Json.num "ts" in
    let* pid = field "pid" Json.int "pid" in
    let* tid = field "tid" Json.int "tid" in
    if ph = "M" then Ok ()
    else begin
      incr count;
      let lane = stack (pid, tid) in
      match ph with
      | "B" ->
          lane := name :: !lane;
          Ok ()
      | "E" -> begin
          match !lane with
          | top :: rest when top = name ->
              lane := rest;
              bump spans name;
              Ok ()
          | top :: _ ->
              Error
                (Printf.sprintf
                   "event %d: span end %S closes open span %S (tid %d)" idx
                   name top tid)
          | [] ->
              Error
                (Printf.sprintf "event %d: span end %S with no open span" idx
                   name)
        end
      | "s" ->
          let* id = field "id" Json.int "flow id" in
          Hashtbl.replace flow_ids id ();
          incr flow_starts;
          Ok ()
      | "f" ->
          let* id = field "id" Json.int "flow id" in
          if Hashtbl.mem flow_ids id then begin
            incr flow_ends;
            Ok ()
          end
          else Error (Printf.sprintf "event %d: flow end without start" idx)
      | "i" ->
          bump instants name;
          Ok ()
      | other -> Error (Printf.sprintf "event %d: unknown phase %S" idx other)
    end
  in
  let* () =
    List.fold_left
      (fun acc (idx, e) -> Result.bind acc (fun () -> step idx e))
      (Ok ())
      (List.mapi (fun i e -> (i, e)) events)
  in
  let* () =
    Hashtbl.fold
      (fun (_, tid) lane acc ->
        Result.bind acc (fun () ->
            if !lane = [] then Ok ()
            else
              Error
                (Printf.sprintf "%d span(s) left open on tid %d"
                   (List.length !lane) tid)))
      stacks (Ok ())
  in
  let assoc table =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])
  in
  Ok
    {
      sm_events = !count;
      sm_spans = assoc spans;
      sm_instants = assoc instants;
      sm_flow_starts = !flow_starts;
      sm_flow_ends = !flow_ends;
      sm_lanes = Hashtbl.length stacks;
      sm_dropped = dropped;
    }
