type sample = {
  s_nodes : int;
  s_runs : int;
  s_steps : int;
  s_frontier : int;
  s_cache_entries : int;
  s_cache_capacity : int;
  s_cycles : int;
  s_domain_steps : int list;
}

type state = {
  interval_ns : int;
  json : bool;
  out : out_channel;
  start_ns : int;
  mutable countdown : int;
  mutable due_ns : int;
  mutable last_ns : int;
  mutable last_nodes : int;
  mutable last_steps : int;
  mutable beats : int;
}

type t = Off | On of state

(* Clock reads are amortized: one gettimeofday per [check_every]
   ticks.  Between beats the only per-tick cost is a decrement. *)
let check_every = 64

let off = Off

let create ?(interval = 1.0) ?(json = false) ?(out = stderr) () =
  if interval < 0. then invalid_arg "Progress.create: negative interval";
  let now = Clock.now_ns () in
  On
    {
      interval_ns = int_of_float (interval *. 1e9);
      json;
      out;
      start_ns = now;
      countdown = check_every;
      due_ns = now + int_of_float (interval *. 1e9);
      last_ns = now;
      last_nodes = 0;
      last_steps = 0;
      beats = 0;
    }

let enabled = function Off -> false | On _ -> true
let beats = function Off -> 0 | On s -> s.beats

let human n =
  if n >= 10_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 10_000 then Printf.sprintf "%.1fk" (float_of_int n /. 1e3)
  else string_of_int n

let rate ~dn ~dt_ns =
  if dt_ns <= 0 then 0. else float_of_int dn /. (float_of_int dt_ns /. 1e9)

let emit s now (x : sample) =
  let elapsed_s = float_of_int (now - s.start_ns) /. 1e9 in
  let dt_ns = now - s.last_ns in
  let nodes_s = rate ~dn:(x.s_nodes - s.last_nodes) ~dt_ns in
  let steps_s = rate ~dn:(x.s_steps - s.last_steps) ~dt_ns in
  if s.json then
    Printf.fprintf s.out
      "{\"elapsed_s\": %.3f, \"nodes\": %d, \"nodes_per_s\": %.0f, \
       \"runs\": %d, \"steps\": %d, \"steps_per_s\": %.0f, \
       \"frontier\": %d, \"cache_entries\": %d, \"cache_capacity\": %d, \
       \"cycles_examined\": %d, \"per_domain_steps\": [%s]}\n"
      elapsed_s x.s_nodes nodes_s x.s_runs x.s_steps steps_s x.s_frontier
      x.s_cache_entries x.s_cache_capacity x.s_cycles
      (String.concat ", " (List.map string_of_int x.s_domain_steps))
  else begin
    let cache =
      if x.s_cache_capacity > 0 then
        Printf.sprintf "%s/%s" (human x.s_cache_entries)
          (human x.s_cache_capacity)
      else human x.s_cache_entries
    in
    let balance =
      match x.s_domain_steps with
      | [] | [ _ ] -> ""
      | ds ->
          let total = max 1 (List.fold_left ( + ) 0 ds) in
          Printf.sprintf "  dom%% [%s]"
            (String.concat " "
               (List.map
                  (fun d -> string_of_int (100 * d / total))
                  ds))
    in
    let cycles =
      if x.s_cycles > 0 then Printf.sprintf "  cycles %s" (human x.s_cycles)
      else ""
    in
    Printf.fprintf s.out
      "[slx] %6.1fs  nodes %s (%s/s)  runs %s  steps %s (%s/s)  frontier %d  \
       cache %s%s%s\n"
      elapsed_s (human x.s_nodes)
      (human (int_of_float nodes_s))
      (human x.s_runs) (human x.s_steps)
      (human (int_of_float steps_s))
      x.s_frontier cache cycles balance
  end;
  flush s.out;
  s.beats <- s.beats + 1;
  s.last_ns <- now;
  s.last_nodes <- x.s_nodes;
  s.last_steps <- x.s_steps;
  s.due_ns <- now + s.interval_ns

let[@inline] tick t sample =
  match t with
  | Off -> ()
  | On s ->
      s.countdown <- s.countdown - 1;
      if s.countdown <= 0 then begin
        s.countdown <- check_every;
        let now = Clock.now_ns () in
        if now >= s.due_ns then emit s now (sample ())
      end
