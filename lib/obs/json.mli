(** A minimal JSON reader — just enough to load a saved trace back
    (the [slx stats] replay mode, the bench smoke's trace validation,
    and the well-formedness tests), with no third-party dependency.

    The grammar is standard JSON; numbers are read as [float]
    ([\u] escapes are decoded only for the ASCII range and replaced
    with ['?'] otherwise, which the traces this library emits never
    contain). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value; trailing garbage is an error.  The error
    string includes the offending byte offset. *)

val parse_file : string -> (t, string) result

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj] ([None] on anything else or a missing key). *)

val to_list : t -> t list
(** Elements of an [Arr]; [[]] on anything else. *)

val num : t -> float option

val int : t -> int option
(** [num] truncated. *)

val str : t -> string option
