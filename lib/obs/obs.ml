type t = {
  ob_tracing : bool;
  ob_capacity : int;
  mutable ob_rings : Telemetry.ring list;
  ob_mu : Mutex.t;
  ob_progress : Progress.t;
}

let create ?(tracing = false) ?(ring_capacity = 65536) ?(progress = Progress.off)
    () =
  {
    ob_tracing = tracing;
    ob_capacity = ring_capacity;
    ob_rings = [];
    ob_mu = Mutex.create ();
    ob_progress = progress;
  }

let disabled = create ()

let tracing t = t.ob_tracing
let progress t = t.ob_progress

let sink t ~index =
  if not t.ob_tracing then Telemetry.null
  else begin
    let r = Telemetry.ring ~capacity:t.ob_capacity ~domain:index () in
    Mutex.lock t.ob_mu;
    t.ob_rings <- r :: t.ob_rings;
    Mutex.unlock t.ob_mu;
    Telemetry.sink_of_ring r
  end

let rings t =
  List.sort
    (fun a b -> compare (Telemetry.ring_domain a) (Telemetry.ring_domain b))
    t.ob_rings

(* Flow starts must precede their ends in the merged order; the clock
   has microsecond grain, so a push and its steal can tie on [ev_ns]
   across rings — break such ties in the flow's favour. *)
let flow_weight e =
  match e.Telemetry.ev_kind with Telemetry.Steal -> 1 | _ -> 0

let events t =
  rings t
  |> List.concat_map Telemetry.ring_events
  |> List.stable_sort (fun a b ->
         compare
           (a.Telemetry.ev_ns, flow_weight a)
           (b.Telemetry.ev_ns, flow_weight b))

let events_dropped t =
  List.fold_left (fun acc r -> acc + Telemetry.ring_dropped r) 0 t.ob_rings

let write_trace t path =
  Out_channel.with_open_bin path (fun oc ->
      Trace_export.write oc ~events_dropped:(events_dropped t) (events t))

let trace_string t =
  Trace_export.to_string ~events_dropped:(events_dropped t) (events t)
