type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\255' -> fail "unterminated string"
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some c when c < 128 -> Buffer.add_char b (Char.chr c)
              | Some _ -> Buffer.add_char b '?'
              | None -> fail "bad \\u escape");
              pos := !pos + 4
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while numchar (peek ()) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> Str (string_body ())
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else Arr (elements [])
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else Obj (fields [])
    | c when c = '-' || (c >= '0' && c <= '9') -> number ()
    | _ -> fail "unexpected character"
  and elements acc =
    let v = value () in
    skip_ws ();
    match peek () with
    | ',' ->
        advance ();
        elements (v :: acc)
    | ']' ->
        advance ();
        List.rev (v :: acc)
    | _ -> fail "expected ',' or ']'"
  and fields acc =
    skip_ws ();
    let k = string_body () in
    skip_ws ();
    expect ':';
    let v = value () in
    skip_ws ();
    match peek () with
    | ',' ->
        advance ();
        fields ((k, v) :: acc)
    | '}' ->
        advance ();
        List.rev ((k, v) :: acc)
    | _ -> fail "expected ',' or '}'"
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let parse_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error e -> Error e

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr xs -> xs | _ -> []
let num = function Num f -> Some f | _ -> None
let int j = Option.map int_of_float (num j)
let str = function Str s -> Some s | _ -> None
