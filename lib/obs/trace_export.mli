(** Chrome trace-event export and validation.

    {!write} serializes merged telemetry events to the Chrome
    trace-event JSON-object format, loadable in [chrome://tracing] and
    {{:https://ui.perfetto.dev}Perfetto}:

    - [Node_enter]/[Node_leave] and [Pump_start]/[Pump_verdict] become
      duration ([B]/[E]) span pairs, so every domain shows a lane with
      the nested decision-tree walk and the pump validations inside it;
    - [Frontier_push]/[Steal] become flow ([s]/[f]) pairs keyed by the
      frontier item id, rendered as arrows from the publishing domain's
      lane to the stealing domain's;
    - everything else becomes thread-scoped instant events carrying
      their payload in [args].

    Timestamps are shifted so the earliest event is at 0 and emitted in
    microseconds.  The ring-overflow count is recorded under
    [otherData.events_dropped].

    {!validate} is the inverse sanity check used by the bench smoke
    and the test suite: it re-parses an exported trace, replays the
    span discipline (every [B] is closed by a matching [E], per lane)
    and the flow pairing (every [f] has a preceding [s] with the same
    id), and returns the per-name event counts so callers can
    reconcile a trace against the {!Slx_core.Explore_stats} record of
    the run that produced it. *)

val write :
  out_channel -> ?name:string -> events_dropped:int -> Telemetry.event list ->
  unit
(** [write oc ~events_dropped events] writes one trace-event JSON
    object.  [name] (default ["slx"]) is the displayed process name.
    [events] must be in emission order per domain (as {!Obs.events}
    returns them). *)

val to_string :
  ?name:string -> events_dropped:int -> Telemetry.event list -> string

type summary = {
  sm_events : int;  (** Trace events, metadata records excluded. *)
  sm_spans : (string * int) list;  (** Completed span count per name. *)
  sm_instants : (string * int) list;  (** Instant count per name. *)
  sm_flow_starts : int;  (** Frontier pushes ([s] records). *)
  sm_flow_ends : int;  (** Steals ([f] records, each paired). *)
  sm_lanes : int;  (** Distinct (pid, tid) lanes. *)
  sm_dropped : int;  (** [otherData.events_dropped]. *)
}

val validate : Json.t -> (summary, string) result
(** Check a parsed trace: structure, span balance per lane, flow
    pairing, timestamp presence.  Returns the counts on success, a
    diagnostic on the first violation. *)

val span_count : summary -> string -> int

val instant_count : summary -> string -> int
