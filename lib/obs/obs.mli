(** The engine-facing observability bundle.

    One [Obs.t] configures one exploration: whether tracing is on
    (and each domain's ring capacity) and which progress reporter to
    tick.  Engines call {!sink} once per domain at spawn — with
    tracing off this returns {!Telemetry.null} and the whole subsystem
    costs one branch per event site — and the CLI / bench harvest the
    merged events afterwards with {!events} / {!write_trace}.

    A bundle is single-shot: rings registered by one exploration stay
    until the bundle is dropped, so create a fresh bundle per run. *)

type t

val disabled : t
(** No tracing, no progress: the default of every engine. *)

val create :
  ?tracing:bool -> ?ring_capacity:int -> ?progress:Progress.t -> unit -> t
(** [tracing] (default [false]) turns event recording on;
    [ring_capacity] (default [65536]) sizes each domain's ring;
    [progress] (default {!Progress.off}) is the heartbeat reporter. *)

val tracing : t -> bool

val progress : t -> Progress.t

val sink : t -> index:int -> Telemetry.sink
(** A sink for the domain with spawn index [index]: a fresh registered
    ring when tracing, {!Telemetry.null} otherwise.  Thread-safe. *)

val events : t -> Telemetry.event list
(** All recorded events, merged across domains and sorted by
    timestamp (stable, so each domain's emission order is kept). *)

val events_dropped : t -> int
(** Total ring-overflow drops across all domains. *)

val write_trace : t -> string -> unit
(** Export {!events} as Chrome trace-event JSON to the given path. *)

val trace_string : t -> string
