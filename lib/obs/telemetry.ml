type kind =
  | Node_enter
  | Node_leave
  | Decision
  | Run_checked
  | Cache_hit
  | Cache_evict
  | Por_sleep
  | Race_reversal
  | Proviso_wake
  | Invoke_prune
  | Symmetry_prune
  | Frontier_push
  | Steal
  | Cycle_candidate
  | Pump_start
  | Pump_verdict
  | Sanitizer_violation
  | Hb_edge

let kind_name = function
  | Node_enter -> "node_enter"
  | Node_leave -> "node_leave"
  | Decision -> "decision"
  | Run_checked -> "run_checked"
  | Cache_hit -> "cache_hit"
  | Cache_evict -> "cache_evict"
  | Por_sleep -> "por_sleep"
  | Race_reversal -> "race_reversal"
  | Proviso_wake -> "proviso_wake"
  | Invoke_prune -> "invoke_prune"
  | Symmetry_prune -> "symmetry_prune"
  | Frontier_push -> "frontier_push"
  | Steal -> "steal"
  | Cycle_candidate -> "cycle_candidate"
  | Pump_start -> "pump_start"
  | Pump_verdict -> "pump_verdict"
  | Sanitizer_violation -> "sanitizer_violation"
  | Hb_edge -> "hb_edge"

type event = {
  ev_ns : int;
  ev_domain : int;
  ev_kind : kind;
  ev_a : int;
  ev_b : int;
}

type ring = {
  r_domain : int;
  r_buf : event array;
  r_cap : int;
  mutable r_next : int;  (* total events ever written *)
  mutable r_last_ns : int;  (* monotonic clamp *)
}

type sink = Null | Ring of ring

let null = Null
let enabled = function Null -> false | Ring _ -> true

let dummy = { ev_ns = 0; ev_domain = 0; ev_kind = Decision; ev_a = 0; ev_b = 0 }

let ring ?(capacity = 65536) ~domain () =
  if capacity < 1 then invalid_arg "Telemetry.ring: capacity < 1";
  {
    r_domain = domain;
    r_buf = Array.make capacity dummy;
    r_cap = capacity;
    r_next = 0;
    r_last_ns = 0;
  }

let sink_of_ring r = Ring r
let ring_domain r = r.r_domain
let ring_written r = r.r_next
let ring_dropped r = max 0 (r.r_next - r.r_cap)

let ring_events r =
  let n = min r.r_next r.r_cap in
  List.init n (fun i -> r.r_buf.((r.r_next - n + i) mod r.r_cap))

(* The hot path: a single branch when disabled.  Arguments are ints so
   the disabled case allocates nothing. *)
let[@inline] emit sink kind a b =
  match sink with
  | Null -> ()
  | Ring r ->
      let ns = Clock.now_ns () in
      let ns = if ns < r.r_last_ns then r.r_last_ns else ns in
      r.r_last_ns <- ns;
      r.r_buf.(r.r_next mod r.r_cap) <-
        { ev_ns = ns; ev_domain = r.r_domain; ev_kind = kind; ev_a = a; ev_b = b };
      r.r_next <- r.r_next + 1

module Dec = struct
  let schedule p = p lsl 2
  let invoke p = (p lsl 2) lor 1
  let crash p = (p lsl 2) lor 2

  let pp code =
    let p = code lsr 2 in
    match code land 3 with
    | 0 -> Printf.sprintf "S%d" p
    | 1 -> Printf.sprintf "I%d" p
    | 2 -> Printf.sprintf "C%d" p
    | _ -> Printf.sprintf "?%d" p
end
