(** Typed engine events and low-overhead sinks.

    The exploration engines ({!Slx_core.Explore},
    {!Slx_core.Live_explore}) emit one {!event} per interesting action
    — node enter/leave, decision taken, cache hit/evict, POR sleep,
    symmetry prune, frontier push, steal, cycle candidate, pump
    start/verdict — into a {!sink}.  Two sinks exist:

    - {!null} — the disabled default.  [emit] on it is a single branch
      on an immediate value: no clock read, no allocation, no write.
      Every emission site passes plain [int] arguments, so a disabled
      sink costs one predictable conditional per event site.
    - a {e ring sink} ({!ring}, {!sink_of_ring}) — a preallocated
      circular buffer owned by one domain (sinks are single-writer;
      each domain of a fan-out records into its own ring and the rings
      are merged at the join).  When the ring is full the oldest
      events are overwritten and counted as {!ring_dropped}.

    Timestamps are wall-clock nanoseconds ({!Clock.now_ns}) clamped to
    be non-decreasing per ring. *)

type kind =
  | Node_enter  (** a = depth; span open, paired with [Node_leave]. *)
  | Node_leave  (** a = depth; emitted on every exit, exceptions included. *)
  | Decision  (** a = depth reached, b = {!Dec} code of the decision. *)
  | Run_checked  (** a = depth; a maximal run was checked. *)
  | Cache_hit  (** a = depth, b = runs credited from the entry. *)
  | Cache_evict  (** a = evictions so far ({!Slx_core.Clock_cache}). *)
  | Por_sleep  (** a = depth, b = decisions slept (sleep-set prune). *)
  | Race_reversal
      (** a = depth, b = sleepers woken by an observed conflict of the
          step just executed (DPOR race reversal). *)
  | Proviso_wake
      (** a = depth, b = sleepers force-woken by the bounded-ignoring
          cycle proviso ({!Slx_core.Live_explore}). *)
  | Invoke_prune
      (** a = depth, b = invocations pruned by the [invoke_order]
          reduction ({!Slx_core.Live_explore}). *)
  | Symmetry_prune  (** a = depth, b = decisions pruned. *)
  | Frontier_push  (** a = frontier item id, b = item depth. *)
  | Steal  (** a = frontier item id, b = owner domain index. *)
  | Cycle_candidate  (** a = period, b = 1 iff fair and violating. *)
  | Pump_start  (** a = period; span open, paired with [Pump_verdict]. *)
  | Pump_verdict  (** a = period, b = 1 iff the certificate pumped. *)
  | Sanitizer_violation
      (** a = offending object id, b = violation kind code (0 =
          undeclared touch, 1 = undeclared nesting, 2 = outside
          atomic). *)
  | Hb_edge  (** a = object id the edge conflicts on, b = 1 iff write. *)

val kind_name : kind -> string
(** Stable lower-snake-case name, used as the Chrome-trace event name. *)

type event = {
  ev_ns : int;  (** Timestamp, ns (non-decreasing within a ring). *)
  ev_domain : int;  (** Spawn index of the emitting domain. *)
  ev_kind : kind;
  ev_a : int;
  ev_b : int;
}

type sink

val null : sink
(** The disabled sink: [emit] is a no-op costing one branch. *)

val enabled : sink -> bool

val emit : sink -> kind -> int -> int -> unit
(** [emit sink kind a b] records an event.  Arguments are plain ints
    precisely so that call sites allocate nothing when the sink is
    disabled. *)

(** {2 Ring sinks} *)

type ring

val ring : ?capacity:int -> domain:int -> unit -> ring
(** A fresh ring for the domain with the given spawn index.
    [capacity] (default [65536]) must be >= 1; when more events are
    emitted the oldest are overwritten and counted as dropped. *)

val sink_of_ring : ring -> sink

val ring_domain : ring -> int

val ring_written : ring -> int
(** Total events ever emitted into the ring. *)

val ring_dropped : ring -> int
(** Events overwritten by wraparound ([max 0 (written - capacity)]). *)

val ring_events : ring -> event list
(** The retained events, oldest first. *)

(** {2 Decision codes} *)

(** Scheduler decisions packed into one int for the [Decision] event:
    the process id shifted left twice, or-ed with a 2-bit tag. *)
module Dec : sig
  val schedule : int -> int
  val invoke : int -> int
  val crash : int -> int

  val pp : int -> string
  (** ["S1"], ["I2"], ["C1"] — the notation of the CLI witness
      scripts. *)
end
