(** Live progress heartbeats for long explorations.

    A reporter is handed to an engine (via {!Obs.create}) and ticked
    from the hot loop; every [interval] seconds it snapshots the
    engine's counters and prints one line — human-readable to stderr
    by default, or JSON-lines with [~json:true] — so a deep search
    shows heartbeats instead of silence.

    Cost discipline: {!tick} on a disabled reporter is one branch; on
    an enabled one it decrements a countdown and only reads the clock
    every [64] calls, and only builds a {!sample} (the single
    allocation) when a beat is actually due.  Engines therefore tick
    unconditionally at every node. *)

type sample = {
  s_nodes : int;  (** Decision-tree nodes visited so far. *)
  s_runs : int;  (** Maximal runs accounted so far. *)
  s_steps : int;  (** Runtime ticks executed so far. *)
  s_frontier : int;  (** Work-stealing frontier items outstanding. *)
  s_cache_entries : int;  (** Transposition-cache entries (all domains). *)
  s_cache_capacity : int;  (** Total configured capacity; 0 = unbounded. *)
  s_cycles : int;  (** Candidate cycles examined (fair-cycle search). *)
  s_domain_steps : int list;
      (** Per-domain runtime ticks, spawn order; [[]] when
          sequential.  Read racily from sibling domains — indicative,
          not exact. *)
}

type t

val off : t
(** The disabled reporter; {!tick} is a no-op costing one branch. *)

val create : ?interval:float -> ?json:bool -> ?out:out_channel -> unit -> t
(** A live reporter emitting every [interval] seconds (default [1.];
    [0.] emits on every countdown expiry) to [out] (default [stderr]),
    as human one-liners or, with [~json:true], as JSON-lines. *)

val enabled : t -> bool

val tick : t -> (unit -> sample) -> unit
(** Tick from the hot loop; [sample] is called only when a beat is
    due. *)

val beats : t -> int
(** Heartbeats emitted so far (0 for {!off}). *)
