(** Wall-clock timestamps in integer nanoseconds.

    [now_ns] is [Unix.gettimeofday] scaled to nanoseconds — the only
    sub-second clock the standard distribution offers without C stubs.
    It is subject to NTP adjustment, so consumers that need
    monotonicity (the telemetry rings, the progress reporter) clamp it
    per stream; at the microsecond granularity of a trace the
    distinction is invisible in practice. *)

val now_ns : unit -> int
