(** Explicit I/O automata with the paper's composition.

    An I/O automaton is a 4-tuple [(states, sig, init, trans)] where
    the signature partitions actions into input, output and internal
    actions (Section 2).  This module represents the transition
    relation functionally ([delta]), which supports both finite
    enumeration (for the theorem demonstrations) and infinite-state
    automata (never enumerated beyond a depth bound).

    The composition implements the paper's simplified hiding rule:
    matched input/output pairs become internal actions. *)

type t

val make :
  name:string ->
  inputs:Action.t list ->
  outputs:Action.t list ->
  internals:Action.t list ->
  init:State.t list ->
  delta:(State.t -> (Action.t * State.t) list) ->
  t
(** [delta s] lists every enabled [(action, successor)] pair at [s].
    Actions returned by [delta] must belong to the signature.
    @raise Invalid_argument if the three action classes overlap. *)

val name : t -> string
val inputs : t -> Action.Set.t
val outputs : t -> Action.Set.t
val internals : t -> Action.Set.t

val actions : t -> Action.Set.t
(** [acts(A)]: the union of the three classes. *)

val external_actions : t -> Action.Set.t
(** Input and output actions: those visible in histories. *)

val init : t -> State.t list
val delta : t -> State.t -> (Action.t * State.t) list

val enabled : t -> State.t -> Action.t -> bool
(** Whether an action is enabled at a state. *)

val step : t -> State.t -> Action.t -> State.t list
(** Successors of a state under an action (empty if not enabled). *)

val compatible : t -> t -> bool
(** The paper's compatibility: disjoint outputs, and internals of each
    disjoint from all actions of the other. *)

val compose : t -> t -> t
(** The composition [A1 x A2].  Matched input/output pairs are hidden
    (become internal), per the paper's footnote.
    @raise Invalid_argument if the automata are incompatible. *)

val compose_all : t list -> t
(** Left fold of {!compose}.  @raise Invalid_argument on [[]]. *)

(** {1 Bounded exploration} *)

type execution = { states : State.t list; actions : Action.t list }
(** An alternating sequence [s0 a1 s1 ... ak sk]: [states] has exactly
    one more element than [actions]. *)

val executions : t -> depth:int -> execution list
(** All executions with at most [depth] actions, from every initial
    state.  Exponential; for small demonstration automata only. *)

val trace : t -> execution -> Action.t list
(** The history of an execution: its external actions, in order. *)

val traces : t -> depth:int -> Action.t list list
(** All distinct histories of executions up to [depth] actions. *)

val reachable : t -> depth:int -> State.Set.t
(** States reachable within [depth] actions. *)

val is_fair_finite : t -> execution -> bool
(** The paper's fairness for finite executions: no action other than a
    crash action is enabled in the final state. *)

val final_state : execution -> State.t
