(** Actions of explicit I/O automata.

    Actions are identified by name; composition synchronizes actions
    with equal names (Section 2).  The helpers build the naming
    convention of the paper's external actions: [inv_i], [res_i],
    [crash_i]. *)

type t = string

val invocation : proc:Slx_history.Proc.t -> string -> t
(** [invocation ~proc "propose(0)"] is ["propose(0)_1"] for [proc = 1]. *)

val response : proc:Slx_history.Proc.t -> string -> t
(** [response ~proc "0"] is ["0_1"]. *)

val crash : Slx_history.Proc.t -> t
(** [crash 2] is ["crash_2"]. *)

val is_crash : t -> bool
(** Whether the action is a crash action (by its name). *)

val proc_of : t -> Slx_history.Proc.t option
(** The process suffix of an action name, if it has one. *)

module Set : Set.S with type elt = t

val pp : Format.formatter -> t -> unit
