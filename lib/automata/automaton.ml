type t = {
  name : string;
  inputs : Action.Set.t;
  outputs : Action.Set.t;
  internals : Action.Set.t;
  init : State.t list;
  delta : State.t -> (Action.t * State.t) list;
}

let make ~name ~inputs ~outputs ~internals ~init ~delta =
  let inputs = Action.Set.of_list inputs in
  let outputs = Action.Set.of_list outputs in
  let internals = Action.Set.of_list internals in
  let overlap a b = not (Action.Set.is_empty (Action.Set.inter a b)) in
  if overlap inputs outputs || overlap inputs internals
     || overlap outputs internals
  then invalid_arg "Automaton.make: action classes must be disjoint";
  { name; inputs; outputs; internals; init; delta }

let name a = a.name
let inputs a = a.inputs
let outputs a = a.outputs
let internals a = a.internals

let actions a =
  Action.Set.union a.inputs (Action.Set.union a.outputs a.internals)

let external_actions a = Action.Set.union a.inputs a.outputs

let init a = a.init
let delta a s = a.delta s

let step a s act =
  List.filter_map
    (fun (act', s') -> if String.equal act act' then Some s' else None)
    (a.delta s)

let enabled a s act = step a s act <> []

let compatible a1 a2 =
  Action.Set.is_empty (Action.Set.inter a1.outputs a2.outputs)
  && Action.Set.is_empty (Action.Set.inter a1.internals (actions a2))
  && Action.Set.is_empty (Action.Set.inter a2.internals (actions a1))

let compose a1 a2 =
  if not (compatible a1 a2) then
    invalid_arg
      (Printf.sprintf "Automaton.compose: %s and %s are incompatible" a1.name
         a2.name);
  let acts1 = actions a1 and acts2 = actions a2 in
  (* The paper's simplified hiding: matched input/output pairs become
     internal actions of the composition. *)
  let hidden =
    Action.Set.union
      (Action.Set.inter a1.inputs a2.outputs)
      (Action.Set.inter a2.inputs a1.outputs)
  in
  let internals =
    Action.Set.union a1.internals (Action.Set.union a2.internals hidden)
  in
  let inputs =
    Action.Set.diff (Action.Set.union a1.inputs a2.inputs) internals
  in
  let outputs =
    Action.Set.diff (Action.Set.union a1.outputs a2.outputs) internals
  in
  let init =
    List.concat_map
      (fun s1 -> List.map (fun s2 -> State.pair s1 s2) a2.init)
      a1.init
  in
  let delta s =
    match s with
    | State.Pair (s1, s2) ->
        let d1 = a1.delta s1 and d2 = a2.delta s2 in
        let shared (act, s1') =
          if Action.Set.mem act acts2 then
            (* Synchronize: both components must step. *)
            List.filter_map
              (fun (act2, s2') ->
                if String.equal act act2 then
                  Some (act, State.pair s1' s2')
                else None)
              d2
          else [ (act, State.pair s1' s2) ]
        in
        let only2 (act, s2') =
          if Action.Set.mem act acts1 then
            (* Already covered by the synchronized case above. *)
            []
          else [ (act, State.pair s1 s2') ]
        in
        List.concat_map shared d1 @ List.concat_map only2 d2
    | State.Leaf _ -> invalid_arg "Automaton.compose: non-product state"
  in
  {
    name = a1.name ^ " x " ^ a2.name;
    inputs;
    outputs;
    internals;
    init;
    delta;
  }

let compose_all = function
  | [] -> invalid_arg "Automaton.compose_all: empty list"
  | a :: rest -> List.fold_left compose a rest

type execution = { states : State.t list; actions : Action.t list }

let final_state e =
  match List.rev e.states with
  | s :: _ -> s
  | [] -> invalid_arg "Automaton.final_state: empty execution"

let executions a ~depth =
  (* Breadth-first unfolding keeping whole executions.  Exponential; for
     small demonstration automata only. *)
  let extend e =
    let s = final_state e in
    List.map
      (fun (act, s') ->
        { states = e.states @ [ s' ]; actions = e.actions @ [ act ] })
      (a.delta s)
  in
  let rec go d frontier acc =
    if d = 0 then acc
    else
      let next = List.concat_map extend frontier in
      go (d - 1) next (acc @ next)
  in
  let initial = List.map (fun s -> { states = [ s ]; actions = [] }) a.init in
  go depth initial initial

let trace a e =
  let ext = external_actions a in
  List.filter (fun act -> Action.Set.mem act ext) e.actions

let traces a ~depth =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun e ->
      let tr = trace a e in
      let key = String.concat "\x00" tr in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some tr
      end)
    (executions a ~depth)

let reachable a ~depth =
  let rec go d frontier visited =
    if d = 0 || State.Set.is_empty frontier then visited
    else
      let next =
        State.Set.fold
          (fun s acc ->
            List.fold_left
              (fun acc (_, s') ->
                if State.Set.mem s' visited then acc else State.Set.add s' acc)
              acc (a.delta s))
          frontier State.Set.empty
      in
      go (d - 1) next (State.Set.union visited next)
  in
  let initial = State.Set.of_list a.init in
  go depth initial initial

let is_fair_finite a e =
  let s = final_state e in
  List.for_all (fun (act, _) -> Action.is_crash act) (a.delta s)
