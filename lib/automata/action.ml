type t = string

let invocation ~proc name = Printf.sprintf "%s_%d" name proc
let response ~proc name = Printf.sprintf "%s_%d" name proc
let crash p = Printf.sprintf "crash_%d" p

let is_crash a = String.length a > 6 && String.sub a 0 6 = "crash_"

let proc_of a =
  match String.rindex_opt a '_' with
  | None -> None
  | Some i -> int_of_string_opt (String.sub a (i + 1) (String.length a - i - 1))

module Set = Set.Make (String)

let pp = Format.pp_print_string
