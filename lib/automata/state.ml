type t = Leaf of string | Pair of t * t

let leaf s = Leaf s
let pair a b = Pair (a, b)

let rec equal a b =
  match a, b with
  | Leaf x, Leaf y -> String.equal x y
  | Pair (a1, a2), Pair (b1, b2) -> equal a1 b1 && equal a2 b2
  | (Leaf _ | Pair _), _ -> false

let rec compare a b =
  match a, b with
  | Leaf x, Leaf y -> String.compare x y
  | Leaf _, Pair _ -> -1
  | Pair _, Leaf _ -> 1
  | Pair (a1, a2), Pair (b1, b2) ->
      let c = compare a1 b1 in
      if c <> 0 then c else compare a2 b2

let rec pp fmt = function
  | Leaf s -> Format.pp_print_string fmt s
  | Pair (a, b) -> Format.fprintf fmt "(%a, %a)" pp a pp b

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
