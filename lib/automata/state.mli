(** States of explicit I/O automata.

    Composition (Section 2 of the paper) forms product states, so the
    state type is a binary tree whose leaves are named local states. *)

type t =
  | Leaf of string       (** A named local state. *)
  | Pair of t * t        (** A product state of a composition. *)

val leaf : string -> t

val pair : t -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints leaves verbatim and products as ["(s, t)"]. *)

module Set : Set.S with type elt = t
