(** Bounded fairness.

    The paper restricts liveness to {e fair} executions: a liveness
    property cannot require progress from processes that never get
    turns from the scheduler.  In the paper's I/O-automata formalism,
    fairness means every process either acts infinitely often or is
    infinitely often at states with nothing (but crash) enabled; since
    invocations are input actions and implementations are
    input-enabled, a fair execution keeps every {e correct} process
    acting forever.

    The bounded counterpart (DESIGN.md §5): a run is bounded-fair iff
    every correct process takes at least one step inside the
    observation window.  Drivers that want a process out of the active
    set must crash it — which is also how the (l,k) experiments select
    “at most k processes take infinitely many steps” scenarios.

    Liveness verdicts are meaningful only on bounded-fair runs; the
    checkers in this library expose the fairness test so callers can
    guard (and the test suites assert their drivers produce fair
    runs). *)

open Slx_sim

val is_bounded_fair : ('inv, 'res) Run_report.t -> bool
(** Every non-crashed process in [1..n] took a step inside the
    window. *)

val starved : ('inv, 'res) Run_report.t -> Slx_history.Proc.Set.t
(** The correct processes with no step in the window — the witnesses of
    unfairness, useful in error messages. *)
