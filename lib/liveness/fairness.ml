open Slx_history
open Slx_sim

let starved r =
  Proc.Set.filter
    (fun p -> Run_report.steps_in_window r p = 0)
    (Run_report.correct_procs r)

let is_bounded_fair r = Proc.Set.is_empty (starved r)
