(** Liveness properties as first-class values.

    The paper defines a liveness property as any weakening of [Lmax],
    the strongest progress requirement of the object type (Definition
    3.2), and evaluates implementations on their fair executions.  The
    bounded counterpart is a named predicate on {!Slx_sim.Run_report}s;
    an implementation ensures the property (operationally) if the
    predicate holds on every bounded-fair run we can drive it
    through. *)

open Slx_sim

type ('inv, 'res) t = private {
  name : string;
  holds : ('inv, 'res) Run_report.t -> bool;
}

val make : name:string -> (('inv, 'res) Run_report.t -> bool) -> ('inv, 'res) t

val name : ('inv, 'res) t -> string

val holds : ('inv, 'res) t -> ('inv, 'res) Run_report.t -> bool

val of_freedom : good:('res -> bool) -> Freedom.t -> ('inv, 'res) t
(** The (l,k)-freedom property as a first-class liveness property. *)

val wait_freedom : good:('res -> bool) -> n:int -> ('inv, 'res) t
(** [Lmax] for ordinary objects: every correct process makes
    progress. *)

val lock_freedom : good:('res -> bool) -> n:int -> ('inv, 'res) t

val obstruction_freedom : good:('res -> bool) -> ('inv, 'res) t

val local_progress : good:('res -> bool) -> n:int -> ('inv, 'res) t
(** The TM [Lmax] of [Bushkov–Guerraoui–Kapalka 2012]: every correct
    process eventually commits — identical to wait-freedom once [good]
    is “commit responses only”, but named as in the paper. *)

val conj :
  name:string -> ('inv, 'res) t -> ('inv, 'res) t -> ('inv, 'res) t
(** Both properties (intersection of the history sets). *)
