open Slx_history
open Slx_sim

type t = { l : int; k : int }

let make ~l ~k =
  if not (1 <= l && l <= k) then
    invalid_arg "Freedom.make: requires 1 <= l <= k";
  { l; k }

let l t = t.l
let k t = t.k

let obstruction_freedom = { l = 1; k = 1 }
let lock_freedom ~n = make ~l:1 ~k:n
let wait_freedom ~n = make ~l:n ~k:n
let l_lock_freedom ~l ~n = make ~l ~k:n
let k_obstruction_freedom ~k = make ~l:k ~k

let equal a b = a.l = b.l && a.k = b.k

let pp fmt t = Format.fprintf fmt "(%d,%d)-freedom" t.l t.k

let explain ~good r t =
  let active = Run_report.active_procs r in
  if Proc.Set.cardinal active > t.k then `Vacuous
  else begin
    let correct = Run_report.correct_procs r in
    let progressing =
      Proc.Set.filter (Run_report.makes_progress ~good r) correct
    in
    let ok =
      if Proc.Set.cardinal correct >= t.l then
        Proc.Set.cardinal progressing >= t.l
      else Proc.Set.equal progressing correct
    in
    if ok then `Holds else `Violated (Proc.Set.diff correct progressing)
  end

let holds ~good r t =
  match explain ~good r t with `Holds | `Vacuous -> true | `Violated _ -> false

let violated_on_cycle ~correct ~active ~progressed t =
  Proc.Set.cardinal active <= t.k
  &&
  let progressing = Proc.Set.inter progressed correct in
  let ok =
    if Proc.Set.cardinal correct >= t.l then
      Proc.Set.cardinal progressing >= t.l
    else Proc.Set.equal progressing correct
  in
  not ok

let stronger_equal a b = a.l >= b.l && a.k >= b.k

let comparable a b = stronger_equal a b || stronger_equal b a

let all ~n =
  List.concat_map
    (fun l -> List.filter_map
        (fun k -> if l <= k then Some { l; k } else None)
        (List.init n (fun i -> i + 1)))
    (List.init n (fun i -> i + 1))

let maximal points =
  List.filter
    (fun p ->
      not
        (List.exists
           (fun q -> (not (equal p q)) && stronger_equal q p)
           points))
    points

let minimal points =
  List.filter
    (fun p ->
      not
        (List.exists
           (fun q -> (not (equal p q)) && stronger_equal p q)
           points))
    points

let unique = function [ p ] -> Some p | [] | _ :: _ :: _ -> None
