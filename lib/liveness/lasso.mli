(** Lasso certificates: evidence that a bounded adversary run extends
    to an infinite one.

    A bounded run only {e witnesses} an infinite-execution liveness
    violation if the adversary can keep going forever.  All the
    adversaries in this repository win by driving the game into a
    cycle — the same phases repeat with fresh payloads (growing
    timestamps, incremented values).  The checkable certificate is
    {e periodicity of the abstracted event trace}: map each windowed
    event to a skeleton that erases the drifting payloads (process +
    constructor, by default) and look for a period.

    A period is a strong-but-not-airtight certificate (the hidden
    implementation state could still drift in a way that eventually
    breaks the cycle); the experiment suite therefore combines it with
    window sweeps (experiment E12).  For the deterministic adversaries
    here the abstracted traces are exactly periodic. *)

open Slx_sim

val trace_period : equal:('a -> 'a -> bool) -> 'a list -> int option
(** [trace_period ~equal xs] is the smallest [p >= 1] such that [xs] is
    periodic with period [p] ([xs.(i) = xs.(i + p)] wherever defined)
    and [p <= length xs / 2] — so at least two full repetitions are
    observed.  [None] if no such period exists or [xs] is too short. *)

val skeleton :
  ('inv, 'res) Slx_history.Event.t -> string
(** The default abstraction: process + constructor name, payloads
    erased (e.g. [Invocation (2, Write (0, 17))] becomes ["p2:inv"]).
    Coarse but sufficient for the adversaries here; callers needing a
    finer abstraction can pass their own to {!window_period}. *)

val window_period :
  ?abstract:(('inv, 'res) Slx_history.Event.t -> string) ->
  ('inv, 'res) Run_report.t ->
  int option
(** The period of the run's windowed event trace under the abstraction
    (default {!skeleton}).  [Some p] is the lasso certificate: the
    adversary repeated its cycle at least twice inside the window. *)

val certified_violation :
  good:('res -> bool) ->
  ('inv, 'res) Run_report.t ->
  Freedom.t ->
  bool
(** The full bounded claim: the run is bounded-fair, violates the
    (l,k)-freedom point, {e and} carries a lasso certificate. *)
