(** Lasso certificates: evidence that a bounded adversary run extends
    to an infinite one.

    A bounded run only {e witnesses} an infinite-execution liveness
    violation if the adversary can keep going forever.  All the
    adversaries in this repository win by driving the game into a
    cycle — the same phases repeat with fresh payloads (growing
    timestamps, incremented values).  The checkable certificate is
    {e periodicity of the abstracted event trace}: map each windowed
    event to a skeleton that erases the drifting payloads (process +
    constructor, by default) and look for a period.

    A period is a strong-but-not-airtight certificate (the hidden
    implementation state could still drift in a way that eventually
    breaks the cycle); the experiment suite therefore combines it with
    window sweeps (experiment E12).  For the deterministic adversaries
    here the abstracted traces are exactly periodic. *)

open Slx_sim

val trace_period : equal:('a -> 'a -> bool) -> 'a list -> int option
(** [trace_period ~equal xs] is the smallest [p >= 1] such that [xs] is
    periodic with period [p] ([xs.(i) = xs.(i + p)] wherever defined)
    and [p <= length xs / 2] — so at least two full repetitions are
    observed.  [None] if no such period exists or [xs] is too short. *)

val skeleton :
  ('inv, 'res) Slx_history.Event.t -> string
(** The default abstraction: process + constructor name, payloads
    erased (e.g. [Invocation (2, Write (0, 17))] becomes ["p2:inv"]).
    Coarse but sufficient for the adversaries here; callers needing a
    finer abstraction can pass their own to {!window_period}. *)

val tick_cells :
  ?abstract:(('inv, 'res) Slx_history.Event.t -> string) ->
  ('inv, 'res) Run_report.t ->
  string list list
(** The abstracted trace, one cell list per tick [0 .. total_time - 1]:
    the tick's scheduling grant (as ["pN:step"]), if any, followed by
    the events recorded at that tick under the abstraction (default
    {!skeleton}).  This is the quotient in which cycles of the
    configuration graph are detected: raw configurations never recur on
    a run (time, histories and step counts grow monotonically), but a
    run that pumps a scheduling cycle repeats its per-tick cells. *)

val window_period :
  ?abstract:(('inv, 'res) Slx_history.Event.t -> string) ->
  ('inv, 'res) Run_report.t ->
  int option
(** The period of the run's windowed event trace under the abstraction
    (default {!skeleton}).  [Some p] is the lasso certificate: the
    adversary repeated its cycle at least twice inside the window. *)

val certified_violation :
  good:('res -> bool) ->
  ('inv, 'res) Run_report.t ->
  Freedom.t ->
  bool
(** The full bounded claim: the run is bounded-fair, violates the
    (l,k)-freedom point, {e and} carries a lasso certificate. *)

(** {1 Replayable stem + cycle certificates}

    The fair-cycle search ({!Slx_core.Live_explore}) emits its witness
    in this form: a decision script that reaches the cycle (the {e
    stem}) and the cycle's decision script itself, together with the
    expected per-tick cells of one cycle repetition and a digest of the
    boundary configuration (cells + per-process status codes).  The
    certificate is {e pumpable}: replaying stem + cycle^m through a
    fresh cursor must reproduce the same cells and boundary digest on
    every repetition, for any [m] — the machine-checked evidence that
    the cycle extends to an infinite run. *)

type ('inv, 'res) cert = {
  c_n : int;  (** System size the scripts were recorded against. *)
  c_stem : ('inv, 'res) Slx_sim.Driver.decision list;
      (** Reaches the cycle's entry configuration from the initial one. *)
  c_cycle : ('inv, 'res) Slx_sim.Driver.decision list;
      (** One cycle repetition; non-empty. *)
  c_cells : string list list;
      (** Expected {!tick_cells} of one repetition (one list per tick). *)
  c_digest : int;
      (** Digest of the abstract configuration at the repetition
          boundary: the repetition's cells plus every process's status
          code.  Pumping asserts it recurs after each repetition —
          "the configuration fingerprint repeats" in the quotient that
          {e can} recur (raw fingerprints grow monotonically). *)
}

val cert_of_cursor :
  stem:('inv, 'res) Slx_sim.Driver.decision list ->
  cycle:('inv, 'res) Slx_sim.Driver.decision list ->
  cells:string list list ->
  ('inv, 'res) Runner.Cursor.t ->
  ('inv, 'res) cert
(** Build a certificate from a cursor standing at a repetition boundary
    (i.e. [stem @ cycle^k] has just been applied to it, for some
    [k >= 1]).  @raise Invalid_argument if [cycle] is empty or [cells]
    does not have one cell list per cycle tick. *)

val pump :
  factory:('inv, 'res) Runner.factory ->
  ?ticks:int ref ->
  ?repetitions:int ->
  ?abstract:(('inv, 'res) Slx_history.Event.t -> string) ->
  ('inv, 'res) cert ->
  (('inv, 'res) Run_report.t, string) result
(** [pump ~factory cert] replays [cert.c_stem] and then [repetitions]
    (default 2, minimum 2) copies of [cert.c_cycle] through a fresh
    cursor, checking after {e every} repetition that the repetition's
    {!tick_cells} equal [cert.c_cells] and that the boundary digest
    equals [cert.c_digest].  [Ok report] has its window set to exactly
    the pumped repetitions, so {!certified_violation} on it evaluates
    fairness, the freedom point and the window period over the cycle
    ticks alone.  [Error reason] reports the first inapplicable
    decision or diverging repetition — the certificate does not extend
    to an infinite run by verbatim repetition. *)
