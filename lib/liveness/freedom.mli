(** (l,k)-freedom: the paper's restricted liveness space (Section 5.1).

    Definition 5.1: a fair execution [e] ensures (l,k)-freedom if,
    whenever at most [k] processes take infinitely many steps in [e]:
    - if at least [l] processes are correct in [e], at least [l]
      processes make progress in [e];
    - if fewer than [l] processes are correct, all correct processes
      make progress.

    (l,k)-freedom is the union of [l]-lock-freedom (an independent
    minimal progress guarantee) and [k]-obstruction-freedom (a
    dependent maximal progress guarantee); the classical properties are
    special points of the grid:

    - (1,1)-freedom  = obstruction-freedom;
    - (1,n)-freedom  = lock-freedom;
    - (n,n)-freedom  = wait-freedom = [Lmax] (with [good] = all
      responses) = local progress (with [good] = commits, for TM).

    The grid is partially ordered: a point is stronger the further
    right ([k]) and the higher ([l]) it lies (Figure 1); (1,3)- and
    (2,2)-freedom are incomparable (Section 5.1). *)

open Slx_sim

type t = private { l : int; k : int }
(** An (l,k)-freedom property, [1 <= l <= k]. *)

val make : l:int -> k:int -> t
(** @raise Invalid_argument unless [1 <= l <= k]. *)

val l : t -> int
val k : t -> int

val obstruction_freedom : t
(** (1,1)-freedom. *)

val lock_freedom : n:int -> t
(** (1,n)-freedom. *)

val wait_freedom : n:int -> t
(** (n,n)-freedom — the strongest point of the grid, [Lmax]. *)

val l_lock_freedom : l:int -> n:int -> t
(** (l,n)-freedom: at least [l] correct processes make progress
    regardless of scheduling. *)

val k_obstruction_freedom : k:int -> t
(** (k,k)-freedom: progress for every member of a group of at most [k]
    processes running without outside step contention. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints ["(1,2)-freedom"]. *)

(** {1 Evaluation on bounded runs} *)

val holds : good:('res -> bool) -> ('inv, 'res) Run_report.t -> t -> bool
(** Definition 5.1 evaluated under the bounded-run interpretation
    (DESIGN.md §5): “takes infinitely many steps” = active in the
    window, “correct” = not crashed, “makes progress” = receives a
    [good] response in the window.

    Only meaningful on bounded-fair runs ({!Fairness.is_bounded_fair});
    the function itself does not check fairness. *)

val explain :
  good:('res -> bool) -> ('inv, 'res) Run_report.t -> t ->
  [ `Holds
  | `Vacuous  (** More than [k] processes active: the gate is off. *)
  | `Violated of Slx_history.Proc.Set.t
      (** The correct processes that failed to make progress. *) ]
(** Like {!holds} but with a verdict explaining why. *)

val violated_on_cycle :
  correct:Slx_history.Proc.Set.t ->
  active:Slx_history.Proc.Set.t ->
  progressed:Slx_history.Proc.Set.t ->
  t ->
  bool
(** Definition 5.1 evaluated directly on a cycle of the configuration
    graph, for the fair-cycle search ({!Slx_core.Live_explore}): an
    infinite run that pumps the cycle has [active] = the processes
    granted steps on the cycle (they take infinitely many steps, all
    others take finitely many), [correct] = the non-crashed processes,
    and [progressed] = the processes receiving a [good] response on the
    cycle (each repetition delivers another one).  [true] iff such a
    run violates the (l,k) point: the gate [|active| <= k] is on and
    the progress clause of Definition 5.1 fails for
    [progressed ∩ correct]. *)

(** {1 The strength order (Figure 1)} *)

val stronger_equal : t -> t -> bool
(** [stronger_equal a b]: every execution ensuring [a] ensures [b] —
    on the grid, [a.l >= b.l && a.k >= b.k]. *)

val comparable : t -> t -> bool

val all : n:int -> t list
(** Every grid point [(l,k)] with [1 <= l <= k <= n], in lexicographic
    order. *)

val maximal : t list -> t list
(** The maximal elements of a set of grid points under
    {!stronger_equal} — e.g. the strongest implementable properties of
    Theorems 5.2 and 5.3 are the unique maximal white points. *)

val minimal : t list -> t list
(** Dually, the minimal elements — the weakest members of a set, e.g.
    of the excluding (black) points. *)

val unique : t list -> t option
(** [Some p] iff the list contains exactly one point — the
    “there {e is} a strongest/weakest” conclusions of Theorems 5.2 and
    5.3 are [unique (maximal whites)] / [unique (minimal blacks)]. *)
