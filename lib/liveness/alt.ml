open Slx_history
open Slx_sim

module Int_set = Set.Make (Int)

module S_freedom = struct
  type t = Int_set.t

  let make = function
    | [] -> invalid_arg "S_freedom.make: empty set"
    | cards ->
        if List.exists (fun c -> c < 1) cards then
          invalid_arg "S_freedom.make: cardinalities must be positive";
        Int_set.of_list cards

  let cardinalities t = Int_set.elements t

  let holds ~good r t =
    let active = Run_report.active_procs r in
    let correct = Run_report.correct_procs r in
    if
      Proc.Set.subset active correct
      && Int_set.mem (Proc.Set.cardinal active) t
    then Proc.Set.for_all (Run_report.makes_progress ~good r) active
    else true

  let stronger_equal a b = Int_set.subset b a

  let comparable a b = stronger_equal a b || stronger_equal b a

  let singletons ~n = List.init n (fun i -> Int_set.singleton (i + 1))

  let pp fmt t =
    Format.fprintf fmt "{%a}-freedom"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
         Format.pp_print_int)
      (Int_set.elements t)
end

module Nx_liveness = struct
  type t = { n : int; x : int }

  let make ~n ~x =
    if not (0 <= x && x <= n) then
      invalid_arg "Nx_liveness.make: requires 0 <= x <= n";
    { n; x }

  let holds ~good r t =
    let active = Run_report.active_procs r in
    let correct = Run_report.correct_procs r in
    let wait_free_part =
      Proc.Set.for_all
        (fun p -> p > t.x || Run_report.makes_progress ~good r p)
        (Proc.Set.inter active correct)
    in
    let obstruction_part =
      match Proc.Set.elements active with
      | [ p ] when Proc.Set.mem p correct ->
          Run_report.makes_progress ~good r p
      | _ -> true
    in
    wait_free_part && obstruction_part

  let stronger_equal a b = a.n = b.n && a.x >= b.x

  let all ~n = List.init (n + 1) (fun x -> { n; x })

  let pp fmt t = Format.fprintf fmt "(%d,%d)-liveness" t.n t.x
end
