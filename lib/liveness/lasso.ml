open Slx_history
open Slx_sim

let trace_period ~equal xs =
  let xs = Array.of_list xs in
  let len = Array.length xs in
  let is_period p =
    let ok = ref true in
    for i = 0 to len - 1 - p do
      if not (equal xs.(i) xs.(i + p)) then ok := false
    done;
    !ok
  in
  let rec find p =
    if p > len / 2 then None else if is_period p then Some p else find (p + 1)
  in
  if len < 2 then None else find 1

let skeleton e =
  match e with
  | Event.Invocation (p, _) -> Printf.sprintf "p%d:inv" p
  | Event.Response (p, _) -> Printf.sprintf "p%d:res" p
  | Event.Crash p -> Printf.sprintf "p%d:crash" p

let window_period ?(abstract = skeleton) r =
  (* The observable activity per window tick: the scheduling grant (if
     any) followed by the external events recorded at that tick.  Runs
     whose liveness violation shows up as pure silence (no events) are
     still periodic in their grants. *)
  let events = History.to_list r.Run_report.history in
  let events_at = Hashtbl.create 64 in
  List.iteri
    (fun i e ->
      let t = r.Run_report.event_times.(i) in
      Hashtbl.replace events_at t
        (abstract e :: Option.value (Hashtbl.find_opt events_at t) ~default:[]))
    events;
  let grant_at = Hashtbl.create 64 in
  List.iter (fun (t, p) -> Hashtbl.replace grant_at t p) r.Run_report.grants;
  let tick t =
    let grant =
      match Hashtbl.find_opt grant_at t with
      | Some p -> [ Printf.sprintf "p%d:step" p ]
      | None -> []
    in
    grant @ List.rev (Option.value (Hashtbl.find_opt events_at t) ~default:[])
  in
  let trace =
    List.concat_map tick
      (List.init
         (r.Run_report.total_time - Run_report.window_start r)
         (fun i -> Run_report.window_start r + i))
  in
  trace_period ~equal:String.equal trace

let certified_violation ~good r point =
  Fairness.is_bounded_fair r
  && (not (Freedom.holds ~good r point))
  && Option.is_some (window_period r)
