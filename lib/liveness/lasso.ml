open Slx_history
open Slx_sim

let trace_period ~equal xs =
  let xs = Array.of_list xs in
  let len = Array.length xs in
  let is_period p =
    let ok = ref true in
    for i = 0 to len - 1 - p do
      if not (equal xs.(i) xs.(i + p)) then ok := false
    done;
    !ok
  in
  let rec find p =
    if p > len / 2 then None else if is_period p then Some p else find (p + 1)
  in
  if len < 2 then None else find 1

let skeleton e =
  match e with
  | Event.Invocation (p, _) -> Printf.sprintf "p%d:inv" p
  | Event.Response (p, _) -> Printf.sprintf "p%d:res" p
  | Event.Crash p -> Printf.sprintf "p%d:crash" p

let tick_cells ?(abstract = skeleton) r =
  (* The observable activity per tick, in tick order: the scheduling
     grant (if any) followed by the external events recorded at that
     tick.  Runs whose liveness violation shows up as pure silence (no
     events) are still periodic in their grants. *)
  let events = History.to_list r.Run_report.history in
  let events_at = Hashtbl.create 64 in
  List.iteri
    (fun i e ->
      let t = r.Run_report.event_times.(i) in
      Hashtbl.replace events_at t
        (abstract e :: Option.value (Hashtbl.find_opt events_at t) ~default:[]))
    events;
  let grant_at = Hashtbl.create 64 in
  List.iter (fun (t, p) -> Hashtbl.replace grant_at t p) r.Run_report.grants;
  let tick t =
    let grant =
      match Hashtbl.find_opt grant_at t with
      | Some p -> [ Printf.sprintf "p%d:step" p ]
      | None -> []
    in
    grant @ List.rev (Option.value (Hashtbl.find_opt events_at t) ~default:[])
  in
  List.init r.Run_report.total_time tick

let window_period ?abstract r =
  let cells = tick_cells ?abstract r in
  let ws = Run_report.window_start r in
  let trace = List.concat (List.filteri (fun t _ -> t >= ws) cells) in
  trace_period ~equal:String.equal trace

let certified_violation ~good r point =
  Fairness.is_bounded_fair r
  && (not (Freedom.holds ~good r point))
  && Option.is_some (window_period r)

(* ------------------------------------------------------------------ *)
(* Replayable stem + cycle certificates.                               *)

type ('inv, 'res) cert = {
  c_n : int;
  c_stem : ('inv, 'res) Driver.decision list;
  c_cycle : ('inv, 'res) Driver.decision list;
  c_cells : string list list;
  c_digest : int;
}

let status_code = function
  | Runtime.Idle -> 0
  | Runtime.Ready -> 1
  | Runtime.Crashed -> 2

let boundary_digest cursor cells =
  let view = Runner.Cursor.view cursor in
  let statuses =
    List.map
      (fun p -> status_code (view.Driver.status p))
      (Proc.all ~n:view.Driver.n)
  in
  Hashtbl.hash (cells, statuses)

let cert_of_cursor ~stem ~cycle ~cells cursor =
  if cycle = [] then invalid_arg "Lasso.cert_of_cursor: empty cycle";
  if List.length cells <> List.length cycle then
    invalid_arg "Lasso.cert_of_cursor: one cell list per cycle tick";
  {
    c_n = (Runner.Cursor.view cursor).Driver.n;
    c_stem = stem;
    c_cycle = cycle;
    c_cells = cells;
    c_digest = boundary_digest cursor cells;
  }

exception Pump_failed of string

let pump ~factory ?ticks ?(repetitions = 2) ?abstract cert =
  let period = List.length cert.c_cycle in
  if period = 0 then Error "Lasso.pump: empty cycle"
  else if repetitions < 2 then Error "Lasso.pump: need at least 2 repetitions"
  else
    try
      let cursor = Runner.Cursor.create ~n:cert.c_n ~factory ?ticks () in
      let apply d =
        try Runner.Cursor.apply cursor d
        with Invalid_argument msg ->
          raise (Pump_failed ("decision not applicable: " ^ msg))
      in
      List.iter apply cert.c_stem;
      let stem_len = List.length cert.c_stem in
      for rep = 1 to repetitions do
        List.iter apply cert.c_cycle;
        if boundary_digest cursor cert.c_cells <> cert.c_digest then
          raise
            (Pump_failed
               (Printf.sprintf
                  "configuration digest diverged on repetition %d" rep))
      done;
      (* One trace computation for the whole pumped run, then compare
         each repetition's slice — the per-repetition digest check above
         already localizes a diverging configuration. *)
      let r = Runner.Cursor.report cursor ~window:(repetitions * period) () in
      let cells = Array.of_list (tick_cells ?abstract r) in
      let expected = Array.of_list cert.c_cells in
      for rep = 1 to repetitions do
        let base = stem_len + ((rep - 1) * period) in
        for i = 0 to period - 1 do
          if cells.(base + i) <> expected.(i) then
            raise
              (Pump_failed
                 (Printf.sprintf "trace diverged on repetition %d" rep))
        done
      done;
      Ok r
    with Pump_failed msg -> Error msg
