type ('inv, 'res) t = {
  name : string;
  holds : ('inv, 'res) Slx_sim.Run_report.t -> bool;
}

let make ~name holds = { name; holds }

let name t = t.name

let holds t r = t.holds r

let of_freedom ~good f =
  { name = Format.asprintf "%a" Freedom.pp f;
    holds = (fun r -> Freedom.holds ~good r f) }

let wait_freedom ~good ~n =
  let f = Freedom.wait_freedom ~n in
  { name = "wait-freedom"; holds = (fun r -> Freedom.holds ~good r f) }

let lock_freedom ~good ~n =
  let f = Freedom.lock_freedom ~n in
  { name = "lock-freedom"; holds = (fun r -> Freedom.holds ~good r f) }

let obstruction_freedom ~good =
  let f = Freedom.obstruction_freedom in
  { name = "obstruction-freedom"; holds = (fun r -> Freedom.holds ~good r f) }

let local_progress ~good ~n =
  let f = Freedom.wait_freedom ~n in
  { name = "local-progress"; holds = (fun r -> Freedom.holds ~good r f) }

let conj ~name t1 t2 = { name; holds = (fun r -> t1.holds r && t2.holds r) }
