(** Alternative restricted liveness spaces (Section 6 of the paper).

    Section 6 discusses two other ways of restricting the liveness
    space so the safety-liveness exclusion question becomes answerable:

    - {b S-freedom} (Taubenfeld, DISC 2010): for every set [P] of
      correct processes with [|P| ∈ S], every member of [P] makes
      progress as long as it runs without step contention from outside
      [P].  Singleton S-freedoms are pairwise incomparable — so even in
      this space there is no strongest implementable consensus liveness
      property.

    - {b (n,x)-liveness} (Imbs–Raynal–Taubenfeld, PODC 2010): [x]
      processes are wait-free and the remaining [n - x] are
      obstruction-free.  These properties are totally ordered in [x],
      so the strongest implementable one exists ([x = 0]) and the
      weakest non-implementable one exists ([x = 1]). *)

open Slx_sim

(** S-freedom. *)
module S_freedom : sig
  type t
  (** An S-freedom property: a non-empty set of positive cardinalities. *)

  val make : int list -> t
  (** @raise Invalid_argument on an empty list or non-positive entry. *)

  val cardinalities : t -> int list
  (** The set [S], sorted. *)

  val holds : good:('res -> bool) -> ('inv, 'res) Run_report.t -> t -> bool
  (** Bounded reading: if the window's active processes are all correct
      and their number is in [S], each of them makes progress. *)

  val stronger_equal : t -> t -> bool
  (** [stronger_equal a b] iff [b]'s cardinality set is a subset of
      [a]'s: covering more group sizes demands more. *)

  val comparable : t -> t -> bool

  val singletons : n:int -> t list
  (** The [n] singleton properties [{1}], ..., [{n}] — exactly the
      implementable ones per Taubenfeld's characterization, and
      pairwise incomparable (the fact Section 6 uses). *)

  val pp : Format.formatter -> t -> unit
end

(** (n,x)-liveness. *)
module Nx_liveness : sig
  type t = private { n : int; x : int }
  (** [x] wait-free processes (taken to be processes [1..x]) among
      [n]. *)

  val make : n:int -> x:int -> t
  (** @raise Invalid_argument unless [0 <= x <= n]. *)

  val holds : good:('res -> bool) -> ('inv, 'res) Run_report.t -> t -> bool
  (** Bounded reading: every correct, active process [p <= x] makes
      progress; and if exactly one process is active and correct, it
      makes progress (the obstruction-free guarantee for the rest). *)

  val stronger_equal : t -> t -> bool
  (** Total order: larger [x] is stronger. *)

  val all : n:int -> t list
  (** [(n,0), ..., (n,n)] in increasing strength. *)

  val pp : Format.formatter -> t -> unit
end
