(** Executing an implementation under a driver.

    This is the composition [A_I1 x ... x A_In x A_B] of the paper made
    executable: [n] process algorithms sharing base objects, stepped
    one atomic action at a time by a driver. *)

open Slx_history

type ('inv, 'res) impl = proc:Proc.t -> 'inv -> 'res
(** An implementation: the algorithm run by process [proc] when it
    invokes [inv].  The body may call base-object primitives (which use
    {!Runtime.atomic}) any number of times, including zero, and may
    loop forever — the step budget bounds the run, not the algorithm.

    A fresh set of base objects must be created per run; implementations
    are therefore supplied as {e factories} to {!run}. *)

type ('inv, 'res) factory = n:int -> ('inv, 'res) impl
(** Creates a fresh instance of the implementation (fresh base objects,
    fresh per-process local state) for a system of [n] processes. *)

val run :
  n:int ->
  factory:('inv, 'res) factory ->
  driver:('inv, 'res) Driver.t ->
  max_steps:int ->
  ?window:int ->
  unit ->
  ('inv, 'res) Run_report.t
(** [run ~n ~factory ~driver ~max_steps ()] plays [driver] against a
    fresh instance of the implementation for at most [max_steps]
    scheduler ticks and returns the {!Run_report}.

    [window] (default [max_steps / 2]) is the observation-window length
    recorded in the report.

    Driver decisions are validated: scheduling a non-ready process,
    invoking a non-idle or crashed process, or crashing an
    already-crashed process raise [Invalid_argument] — drivers must
    consult the view. *)

val history :
  n:int ->
  factory:('inv, 'res) factory ->
  driver:('inv, 'res) Driver.t ->
  max_steps:int ->
  ('inv, 'res) History.t
(** Convenience: just the history of such a run. *)
