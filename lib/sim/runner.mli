(** Executing an implementation under a driver.

    This is the composition [A_I1 x ... x A_In x A_B] of the paper made
    executable: [n] process algorithms sharing base objects, stepped
    one atomic action at a time by a driver. *)

open Slx_history

type ('inv, 'res) impl = proc:Proc.t -> 'inv -> 'res
(** An implementation: the algorithm run by process [proc] when it
    invokes [inv].  The body may call base-object primitives (which use
    {!Runtime.atomic}) any number of times, including zero, and may
    loop forever — the step budget bounds the run, not the algorithm.

    A fresh set of base objects must be created per run; implementations
    are therefore supplied as {e factories} to {!run}. *)

type ('inv, 'res) factory = n:int -> ('inv, 'res) impl
(** Creates a fresh instance of the implementation (fresh base objects,
    fresh per-process local state) for a system of [n] processes. *)

type ('inv, 'res) fingerprint = {
  fp_time : int;  (** Decisions applied so far (= scheduler ticks). *)
  fp_history : ('inv, 'res) History.t;  (** The external history. *)
  fp_crashed : Proc.t list;  (** Crashed processes, sorted. *)
  fp_procs : (int * int * int) list;
      (** Per process [1..n]: (status code, step count, observation
          digest — see {!Runtime.obs}). *)
  fp_shared : int;  (** Digest of all base-object states. *)
}
(** A canonical fingerprint of a configuration.  Two configurations
    with equal fingerprints have (up to hash collision on the two
    digest components) identical histories, process statuses and local
    states, and base-object states — hence identical futures under
    identical subsequent decisions.  They may still differ in the {e
    timing} of past events ([Run_report.event_times] and grant times),
    which a fingerprint deliberately abstracts away; see
    {!Slx_core.Explore} for the resulting caveat.  Compare with
    structural equality ([=]). *)

(** A resumable run: the step-and-snapshot API behind the incremental
    exploration engine.  A cursor holds one live instance of the
    implementation and extends it decision by decision; [report]
    snapshots the run so far without disturbing it.  Cursors cannot be
    forked (suspended processes are one-shot effect continuations);
    explorers re-establish sibling configurations by replaying their
    decision prefix into a fresh cursor. *)
module Cursor : sig
  type ('inv, 'res) t

  val create :
    n:int ->
    factory:('inv, 'res) factory ->
    ?ticks:int ref ->
    ?shadow:Runtime.shadow ->
    ?probe:Runtime.probe ->
    ?encode:(int -> ('inv, 'res) Event.t -> int) ->
    unit ->
    ('inv, 'res) t
  (** A cursor at the initial configuration of a fresh implementation
      instance.  [ticks] (default: a private counter) is incremented on
      every applied decision — explorers share one counter across many
      cursors to measure runtime steps executed.

      [encode] arms incremental history interning: on every history
      append the cursor updates a small-int history id as
      [encode previous_id event] (initial id 0).  With an injective
      hook — e.g. hash-consing the [(previous_id, event)] pair in an
      {!Slx_core.Intern} table — the id stands in for the whole
      history in compact fingerprint keys, and two cursors fed the
      same hook have equal ids iff their histories are equal.

      [shadow] installs a sanitizer shadow ({!Runtime.make_shadow})
      around the factory call and around every {!apply}: all base-object
      cell accesses made while this cursor executes algorithm code are
      checked (and, in record mode, logged) against declared footprints.
      A raising shadow propagates {!Runtime.Shadow_violation} out of
      [apply]; the cursor must then be abandoned.

      [probe] installs a dynamic-conflict probe
      ({!Runtime.make_probe}) around every {!apply}: after a
      [Schedule] grant, the probe holds the executed step's observed
      accesses, from which the DPOR engines compute race reversals.
      Engines share one probe across all of a domain's cursors (only
      the last completed step is retained). *)

  val view : ('inv, 'res) t -> ('inv, 'res) Driver.view
  (** The driver-visible view of the current configuration. *)

  val pending : ('inv, 'res) t -> Proc.t -> Runtime.footprint option
  (** The declared access footprint of the atomic action process [p] is
      suspended at ([None] unless [p] is [Ready]).  The explorer's
      partial-order reduction grants commuting pending steps
      ({!Runtime.footprints_commute}) in only one order. *)

  val pending_mask : ('inv, 'res) t -> Proc.t -> Runtime.mask option
  (** {!pending} in bitmask form, precomputed at suspension — what the
      engines' hot commutation checks ({!Runtime.masks_commute})
      consume. *)

  val hist_id : ('inv, 'res) t -> int
  (** The interned history id maintained by the [encode] hook (0 at
      the empty history, and constantly 0 when no hook was passed to
      {!create}). *)

  val apply : ('inv, 'res) t -> ('inv, 'res) Driver.decision -> unit
  (** Extend the run by one decision (one scheduler tick).  Decisions
      are validated exactly as in {!run}; applying [Driver.Stop] raises
      [Invalid_argument]. *)

  val probe : ('inv, 'res) t -> Runtime.probe option
  (** The probe installed at creation, if any — after an {!apply} of a
      [Schedule] decision it holds that step's observation. *)

  val replay :
    n:int ->
    factory:('inv, 'res) factory ->
    ?ticks:int ref ->
    ?shadow:Runtime.shadow ->
    ?probe:Runtime.probe ->
    ?encode:(int -> ('inv, 'res) Event.t -> int) ->
    ('inv, 'res) Driver.decision list ->
    ('inv, 'res) t
  (** [replay ~n ~factory decisions] creates a fresh cursor and applies
      [decisions] in order — the cycle-replay primitive: since cursors
      cannot be forked, a configuration is re-established (and a lasso
      certificate pumped, see {!Slx_liveness.Lasso}) by replaying its
      decision script.  Raises [Invalid_argument] as {!apply} does if a
      decision is not applicable at its step. *)

  val report :
    ('inv, 'res) t ->
    ?window:int ->
    ?stopped:[ `Driver_stop | `Max_steps | `Quiescent ] ->
    unit ->
    ('inv, 'res) Run_report.t
  (** Snapshot the run so far as a {!Run_report} (default [window]:
      half the elapsed time, at least 1; default [stopped]:
      [`Max_steps]).  The cursor remains usable. *)

  val fingerprint : ('inv, 'res) t -> ('inv, 'res) fingerprint
  (** The canonical fingerprint of the current configuration. *)

  val compact_key : ('inv, 'res) t -> extra:int list -> int array
  (** The flat small-int form of {!fingerprint}, for hash-consed
      transposition keys: [[| time; hist_id; shared digest;
      (steps << 2 | status), obs digest per process 1..n; extra... |]].
      The history component is the incremental {!hist_id} — exact iff
      an injective [encode] hook is installed — and the crash set is
      carried by the per-process status codes; the two digest
      components are the very digests the structural fingerprint uses.
      Two cursors fed the same hook therefore have equal compact keys
      iff their structural fingerprints (plus [extra]) are equal.
      [extra] appends engine-specific key components (e.g. the POR
      sleep set as a bitset). *)

  val shared_digest : ('inv, 'res) t -> int
  (** The shared-state digest of the current configuration
      ({!Slx_sim.Runtime.registry_digest} of the cursor's registry):
      the incrementally maintained digest both {!fingerprint} and
      {!compact_key} embed. *)

  val shared_digest_full : ('inv, 'res) t -> int
  (** The same digest recomputed from scratch
      ({!Slx_sim.Runtime.registry_digest_full}); equals
      {!shared_digest} unless a base-object mutation bypassed the
      write-touch contract.  For audits and tests. *)
end

val run :
  n:int ->
  factory:('inv, 'res) factory ->
  driver:('inv, 'res) Driver.t ->
  max_steps:int ->
  ?window:int ->
  unit ->
  ('inv, 'res) Run_report.t
(** [run ~n ~factory ~driver ~max_steps ()] plays [driver] against a
    fresh instance of the implementation for at most [max_steps]
    scheduler ticks and returns the {!Run_report}.

    [window] (default [max_steps / 2]) is the observation-window length
    recorded in the report.

    Driver decisions are validated: scheduling a non-ready process,
    invoking a non-idle or crashed process, or crashing an
    already-crashed process raise [Invalid_argument] — drivers must
    consult the view. *)

val history :
  n:int ->
  factory:('inv, 'res) factory ->
  driver:('inv, 'res) Driver.t ->
  max_steps:int ->
  ('inv, 'res) History.t
(** Convenience: just the history of such a run. *)
