(** The cooperative shared-memory runtime.

    Implementations of shared objects (Section 2 of the paper) are sets
    of per-process algorithms that interact only through atomic
    primitives on base objects.  In this runtime an algorithm is
    ordinary OCaml code; every base-object access is wrapped in
    {!atomic}, which performs an OCaml effect.  The scheduler (the
    {!Runner}) traps the effect, suspends the process, and later
    resumes it — one base-object access per scheduling step, exactly
    the asynchronous step semantics of the paper.

    Algorithms must never share mutable state except through {!atomic};
    the base objects of {!Slx_base_objects} obey this contract. *)

val atomic : (unit -> 'a) -> 'a
(** [atomic f] performs one atomic step on shared memory: it suspends
    the calling process until the scheduler grants it a step, then runs
    [f] (which should be a single base-object primitive) and resumes
    with its result.

    Must be called from code running under {!spawn}; otherwise raises
    [Effect.Unhandled].  Called while an atomic action is already
    executing (a {e nested} atomic), it runs [f] inline instead — see
    {!atomic_access} for the footprint-composition semantics. *)

(** {1 Access footprints}

    The partial-order reduction of {!Slx_core.Explore} needs to know
    which pending steps {e commute}: two suspended atomic actions that
    touch different base objects (or both merely read the same one)
    can be granted in either order with the same resulting
    configuration.  A footprint declares, before the action runs, what
    it may touch. *)

type access = { obj : int; write : bool }
(** One declared (or physically observed) access: the base object with
    id [obj], written iff [write]. *)

(** The declared footprint of a pending atomic action. *)
type footprint =
  | Opaque
      (** Undeclared (the plain {!atomic}); conservatively conflicts
          with every other action. *)
  | Access of access
      (** Touches the base object with id [obj]; [write] says the
          action may modify it.  Object granularity: an action on a
          multi-slot object (e.g. a snapshot segment update) declares
          the whole object. *)
  | Multi of access list
      (** Touches several objects (e.g. the union of nested
          declarations).  Canonical form: one access per object,
          sorted by id — build with {!union}/{!of_accesses}, do not
          construct raw. *)

val atomic_access : obj:int -> write:bool -> (unit -> 'a) -> 'a
(** {!atomic} with a declared footprint: one atomic step on base
    object [obj], writing iff [write].  Base-object modules obtain
    [obj] from {!register_object}.

    {b Nesting.}  Called while an atomic action is already executing
    (i.e. from inside the [f] of an outer [atomic]/[atomic_access]),
    the call does not suspend again — the scheduler is mid-grant — but
    runs [f] inline as part of the same step, and its declared
    footprint is folded ({!union}) into the step's {e effective}
    footprint.  The POR-visible footprint of the step remains the
    outer ({e pending}) declaration; a shadow ({!make_shadow}) reports
    a nested declaration not {!covers}-contained in it as an
    {!Undeclared_nesting} violation, since the explorer committed to
    commutation decisions before the nested call could be known. *)

val footprints_commute : footprint -> footprint -> bool
(** Whether two pending actions with these footprints commute: both
    declared, and no object is accessed by both with at least one of
    the two accesses a write.  [Opaque] commutes with nothing (sound
    default). *)

val accesses : footprint -> access list option
(** The access list of a declared footprint in canonical form ([None]
    for [Opaque]). *)

val of_accesses : access list -> footprint
(** The declared footprint touching exactly these accesses
    (normalized: merged per object, sorted).  [of_accesses []] touches
    nothing and commutes with every declared footprint. *)

val union : footprint -> footprint -> footprint
(** Footprint join: [union a b] covers everything [a] or [b] covers.
    [Opaque] is absorbing. *)

val covers : footprint -> footprint -> bool
(** [covers outer inner]: every access [inner] may make is allowed by
    [outer] (same object declared, and writing only if [outer]
    declares the write).  [Opaque] covers everything; only [Opaque]
    covers [Opaque]. *)

val pp_footprint : Format.formatter -> footprint -> unit
(** [R3], [W7], [{R3 W7}], or [opaque]. *)

(** {2 Conflict bitmasks}

    The footprint operations above walk access lists; the exploration
    engines make millions of commutation and coverage queries, so this
    module also provides the same operations on a precomputed bitmask
    form.  Registry-issued object ids are small dense positive ints
    (and orphan ids negative), so almost every footprint fits two
    machine words of presence/write bits; ids outside [0, 61] spill
    into an access-list tail, and since the two id ranges are disjoint
    a bit-part access can never conflict with a spill-part access.
    Masks are computed once per suspension ({!pending_mask}) and the
    per-decision checks are a couple of word operations. *)

type mask = {
  m_opaque : bool;  (** [Opaque]: conflicts with everything. *)
  m_r : int;  (** Presence bits: object [i] is read or written. *)
  m_w : int;  (** Write bits: object [i] may be written. *)
  m_rest : access list;  (** Normalized accesses with ids outside [0,61]. *)
}

val empty_mask : mask
(** The footprint touching nothing ([of_accesses []]). *)

val opaque_mask : mask
(** The [Opaque] footprint. *)

val mask_of_footprint : footprint -> mask

val mask_union : mask -> mask -> mask
(** Mirrors {!union}: [Opaque] is absorbing. *)

val masks_commute : mask -> mask -> bool
(** Mirrors {!footprints_commute}: two word-ops plus a rarely-taken
    spill fallback.  [masks_commute (mask_of_footprint a)
    (mask_of_footprint b) = footprints_commute a b] for all footprints
    [a], [b]. *)

val mask_covers : mask -> obj:int -> write:bool -> bool
(** Mirrors [covers m (Access {obj; write})]. *)

val mask_conflicts_access : mask -> access -> bool
(** Whether the mask conflicts with one access: the access's object is
    present with a write on either side (or the mask is opaque). *)

(** {1 Shadow state: the conflict-soundness sanitizer}

    POR and the transposition cache trust declared footprints; a
    {e shadow} checks that trust dynamically.  Instrumented base
    objects ({!Slx_base_objects}) report every physical cell access
    through {!touch}; while a shadow is installed ({!with_shadow}),
    every touch is validated against the footprint of the atomic
    action in flight.  Validation is {e batched}: touches accumulate
    in a flat per-step buffer of packed ints and are checked once at
    step end (plus a flush at every nested atomic declaration), so
    each touch is judged against the effective footprint in force when
    it was made — the violations, their order and their [v_step]
    ordinals are those of a per-touch check, at a fraction of the
    cost:

    - a touch not covered by the effective footprint is an
      {!Undeclared_touch} violation (the under-declaration that would
      make sleep-set pruning unsound);
    - a nested atomic declaration escaping the pending footprint is an
      {!Undeclared_nesting} violation;
    - a touch with no atomic action in flight is an {!Outside_atomic}
      violation (shared mutation outside the step semantics).

    The shadow also aggregates per-object declaration statistics
    ({!shadow_decl_stats}) from which {!Slx_analysis.Audit} derives
    over-declaration lints, and (in record mode) a per-step log
    consumed by the happens-before certifier {!Slx_analysis.Hb}.

    With no shadow or probe installed, {!touch} is one domain-local
    read and two branches — engines not sanitizing pay essentially
    nothing; with one installed it is the same read plus one packed
    store into the step buffer. *)

type violation_kind =
  | Undeclared_touch
      (** A physical access outside the step's effective footprint. *)
  | Undeclared_nesting
      (** A nested atomic declaration not covered by the pending
          footprint. *)
  | Outside_atomic
      (** A physical access with no atomic action in flight. *)

type violation = {
  v_kind : violation_kind;
  v_obj : int;
      (** The offending object id ([min_int] for an
          [Undeclared_nesting] whose nested footprint is [Opaque]). *)
  v_write : bool;
  v_pending : footprint;
      (** The POR-visible declaration of the step ([Opaque] for
          [Outside_atomic]). *)
  v_step : int;  (** Shadow step ordinal (grants finalized so far). *)
}

exception Shadow_violation of violation
(** Raised out of the offending grant (at the batched validation
    point: step end or nested-declaration flush) when the shadow was
    created with [raise_on_violation]; the violation raised is the
    first one in program order.  The run cannot be resumed past it:
    abandon the cursor and replay the witness prefix. *)

val pp_violation : Format.formatter -> violation -> unit

type shadow

val make_shadow : ?record:bool -> ?raise_on_violation:bool -> unit -> shadow
(** A fresh shadow.  [record] (default [false]) keeps a per-step log
    ({!shadow_steps}) for happens-before certification;
    [raise_on_violation] (default [true]) makes the first violation
    raise {!Shadow_violation} — with it off, violations are only
    counted and listed (the mode engines use, so sanitizing changes no
    outcome). *)

val with_shadow : shadow -> (unit -> 'a) -> 'a
(** [with_shadow sh f] runs [f] with [sh] installed as the current
    (domain-local) shadow, restoring the previous one afterwards,
    exceptions included. *)

val touch : obj:int -> write:bool -> unit
(** Called by instrumented base-object primitives at every physical
    cell access.  No-op unless a shadow or a probe is installed. *)

(** {2 Dynamic-conflict probe}

    The source-set DPOR of {!Slx_core.Explore} and
    {!Slx_core.Live_explore} computes race reversals from {e observed}
    accesses — what an executed step physically touched in this
    configuration — rather than from declared footprints alone.  A
    probe records, per completed atomic step, the step's effective
    footprint and its {!touch}es; unlike the shadow it validates
    nothing and never raises.  Install one per engine (per domain)
    with {!with_probe} (or [Runner.Cursor.create ~probe]); after each
    [Schedule] grant the engine reads the last step's observation. *)

type probe

val make_probe : unit -> probe
(** A fresh probe.  Until a step completes under it,
    {!probe_last_observed} is the empty footprint and
    {!probe_steps} is 0. *)

val with_probe : probe -> (unit -> 'a) -> 'a
(** [with_probe pr f] runs [f] with [pr] installed as the current
    (domain-local) probe, restoring the previous one afterwards,
    exceptions included. *)

val probe_steps : probe -> int
(** Atomic steps completed under the probe so far — lets an engine
    check that a grant actually executed a step since it last read the
    probe. *)

val probe_last_effective : probe -> footprint
(** The effective (pending ∪ nested) declared footprint of the last
    completed step. *)

val probe_last_touched : probe -> access list
(** The physical touches of the last completed step, in program order
    (empty when the step's base objects are uninstrumented or it
    touched nothing). *)

val probe_last_observed : probe -> footprint
(** The observed footprint of the last completed step: its physical
    touches when the instrumentation reported any, otherwise its
    effective declared footprint — never weaker than what a
    declared-footprint oracle would use on a clean implementation. *)

val probe_last_observed_mask : probe -> mask
(** {!probe_last_observed} in bitmask form, precomputed at step end —
    the representation the DPOR engines race-check against pending
    masks with {!masks_commute}. *)

(** {2 Shadow reports} *)

type step_log = {
  declared : footprint;  (** The pending (POR-visible) declaration. *)
  effective : footprint;  (** [declared] ∪ nested declarations. *)
  touched : access list;  (** Physical touches, in program order. *)
}

type decl_stat = {
  decl_steps : int;
      (** Steps whose pending footprint declared the object. *)
  touched_steps : int;  (** … of which physically touched it. *)
  write_decl_steps : int;  (** Steps declaring a write of the object. *)
  wrote_steps : int;  (** … of which physically wrote it. *)
}

val shadow_violations : shadow -> violation list
(** All violations observed, in order. *)

val shadow_violation_count : shadow -> int

val shadow_steps : shadow -> step_log list
(** The per-step log, in grant order (empty unless [record]). *)

val shadow_step_count : shadow -> int
(** Grants finalized under this shadow (counted in every mode). *)

val shadow_opaque_steps : shadow -> int
(** Steps whose pending footprint was [Opaque] — invisible to the race
    detector (everything is allowed) and to POR (they commute with
    nothing), so audits report them as a lint. *)

val shadow_decl_stats : shadow -> (int * decl_stat) list
(** Per-object declaration statistics, sorted by object id.  An object
    with [touched_steps = 0] over a whole audit sweep was declared but
    never touched (over-declaration: needless conflicts cost POR
    pruning); [write_decl_steps > 0, wrote_steps = 0] likewise for
    writes. *)

exception Killed
(** Raised inside a process's computation when the process is crashed
    by the scheduler, to unwind its stack.  Algorithms must not catch
    it (a [try ... with _ ->] in algorithm code would swallow crashes;
    use specific exception handlers instead). *)

(** The scheduling status of a process. *)
type status =
  | Idle     (** No operation in progress. *)
  | Ready    (** Suspended at an atomic step, waiting for a grant. *)
  | Crashed  (** Crashed; will never take another step. *)

(** A handle on one process's suspended computation. *)
type cell

val make_cell : unit -> cell
(** A fresh cell, initially [Idle]. *)

val status : cell -> status

val spawn : cell -> (unit -> unit) -> unit
(** [spawn cell comp] starts computation [comp] for the process owning
    [cell].  [comp] runs immediately up to its first {!atomic} call (or
    to completion if it makes none); the cell becomes [Ready] (or
    [Idle] on completion).

    @raise Invalid_argument if the cell is not [Idle]. *)

val grant : cell -> unit
(** [grant cell] lets the suspended process execute its pending atomic
    action and run to its next {!atomic} call (or to completion).

    @raise Invalid_argument if the cell is not [Ready]. *)

val crash : cell -> unit
(** [crash cell] crashes the process: its computation is unwound with
    {!Killed} and the cell becomes [Crashed].  Idempotent on crashed
    cells; legal on idle cells (the process just never steps again). *)

val pending_footprint : cell -> footprint option
(** The declared footprint of the atomic action a [Ready] process is
    suspended at; [None] when the cell is [Idle] or [Crashed]. *)

val pending_mask : cell -> mask option
(** {!pending_footprint} in bitmask form, computed once when the
    process suspended — the engines' commutation checks read this
    instead of re-deriving masks per decision. *)

(** {1 Configuration fingerprinting}

    The exploration engine ({!Slx_core.Explore}) prunes schedule
    prefixes that reach the same configuration.  A configuration has
    two opaque components this module makes observable as digests:

    - the {e local state} of each process, hidden inside its suspended
      continuation.  Because algorithm code between atomic steps is
      purely local, that state is a deterministic function of the
      process's invocations (already in the history) and of the results
      of its atomic actions; each cell therefore folds the hash of
      every atomic result into an {e observation digest};
    - the {e shared state} of the base objects, hidden inside the
      closures of {!Slx_base_objects}.  Every base-object constructor
      registers a state reader with the registry in effect at
      allocation time; folding the readers digests the shared state.

    Digests are hashes: two configurations with equal digests are equal
    up to hash collision (made unlikely by {!hash_value}'s deep
    traversal), a standard model-checking trade-off. *)

val obs : cell -> int
(** The observation digest of the process: a fold of the hashes of
    every atomic-action result it has received so far. *)

type registry
(** A collection of shared-state readers, one per base object allocated
    while the registry was current. *)

val fresh_registry : unit -> registry

val with_registry : registry -> (unit -> 'a) -> 'a
(** [with_registry reg f] runs [f] with [reg] as the current registry
    (restoring the previous one afterwards, exceptions included).  The
    current registry is domain-local. *)

val register_object : (unit -> int) -> int
(** Called by base-object constructors: adds a reader returning a hash
    of the object's current state to the current registry, and returns
    the object's footprint id (for {!atomic_access}).  Ids issued by
    one registry are positive, deterministic (allocation order), and
    unique within the registry; with no registry current the reader is
    dropped and a fresh negative id is returned (plain {!Runner.run}s
    pay nothing). *)

val registry_digest : registry -> int
(** A digest of the current shared state of every base object in the
    registry: the XOR of one [combine id (reader ())] contribution per
    object, maintained {e incrementally}, Zobrist-style — a write
    reported through {!touch} marks its object dirty, and only dirty
    objects are re-read here, so the cost is O(writes since the last
    digest) rather than O(objects).  (Factories preallocate their
    object pools — the register-consensus factory allocates thousands
    of registers up front — so the full fold dominated every
    configuration fingerprint.)

    Exactness rests on the touch contract: every physical mutation of
    a registered object's state is reported via [touch ~write:true]
    with the owning object's id while its registry is current.  The
    instrumented base-object layer does this by construction — stores
    route through [Slx_base_objects.store], which reports the {e
    owning} cell even when the surrounding atomic action misdeclares
    its footprint — and the sanitizer shadow dynamically checks
    precisely this reporting.  {!registry_digest_full} is the
    cross-check. *)

val registry_digest_full : registry -> int
(** The same digest recomputed from scratch — O(objects), what
    {!registry_digest} cost before the incremental scheme.  Equal to
    {!registry_digest} unless some mutation bypassed the touch
    contract (the incremental digest would then be stale, and the
    divergence is the diagnostic); used by audits, tests and the
    before/after microbenchmarks. *)

val mix64 : int -> int
(** A 64-bit finalizing mixer (xorshift-star family, 63-bit-safe
    constants): spreads small-int keys across the whole word.  Used by
    the compact-key and bitstate machinery in {!Slx_core}. *)

val hash_value : 'a -> int
(** The deep structural hash used for every fingerprint component: an
    explicit full traversal folding every immediate, string byte and
    float bit pattern through {!mix64}.  Unlike the polymorphic
    [Hashtbl.hash] (which samples a bounded number of nodes and
    silently truncates deep values) this hash sees the whole value, so
    two configurations collide only with 64-bit-hash probability. *)
