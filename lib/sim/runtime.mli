(** The cooperative shared-memory runtime.

    Implementations of shared objects (Section 2 of the paper) are sets
    of per-process algorithms that interact only through atomic
    primitives on base objects.  In this runtime an algorithm is
    ordinary OCaml code; every base-object access is wrapped in
    {!atomic}, which performs an OCaml effect.  The scheduler (the
    {!Runner}) traps the effect, suspends the process, and later
    resumes it — one base-object access per scheduling step, exactly
    the asynchronous step semantics of the paper.

    Algorithms must never share mutable state except through {!atomic};
    the base objects of {!Slx_base_objects} obey this contract. *)

val atomic : (unit -> 'a) -> 'a
(** [atomic f] performs one atomic step on shared memory: it suspends
    the calling process until the scheduler grants it a step, then runs
    [f] (which should be a single base-object primitive) and resumes
    with its result.

    Must be called from code running under {!spawn}; otherwise raises
    [Effect.Unhandled]. *)

(** {1 Access footprints}

    The partial-order reduction of {!Slx_core.Explore} needs to know
    which pending steps {e commute}: two suspended atomic actions that
    touch different base objects (or both merely read the same one)
    can be granted in either order with the same resulting
    configuration.  A footprint declares, before the action runs, what
    it may touch. *)

(** The declared footprint of a pending atomic action. *)
type footprint =
  | Opaque
      (** Undeclared (the plain {!atomic}); conservatively conflicts
          with every other action. *)
  | Access of { obj : int; write : bool }
      (** Touches the base object with id [obj]; [write] says the
          action may modify it.  Object granularity: an action on a
          multi-slot object (e.g. a snapshot segment update) declares
          the whole object. *)

val atomic_access : obj:int -> write:bool -> (unit -> 'a) -> 'a
(** {!atomic} with a declared footprint: one atomic step on base
    object [obj], writing iff [write].  Base-object modules obtain
    [obj] from {!register_object}. *)

val footprints_commute : footprint -> footprint -> bool
(** Whether two pending actions with these footprints commute: both
    declared, and on different objects or both reads of the same
    object.  [Opaque] commutes with nothing (sound default). *)

exception Killed
(** Raised inside a process's computation when the process is crashed
    by the scheduler, to unwind its stack.  Algorithms must not catch
    it (a [try ... with _ ->] in algorithm code would swallow crashes;
    use specific exception handlers instead). *)

(** The scheduling status of a process. *)
type status =
  | Idle     (** No operation in progress. *)
  | Ready    (** Suspended at an atomic step, waiting for a grant. *)
  | Crashed  (** Crashed; will never take another step. *)

(** A handle on one process's suspended computation. *)
type cell

val make_cell : unit -> cell
(** A fresh cell, initially [Idle]. *)

val status : cell -> status

val spawn : cell -> (unit -> unit) -> unit
(** [spawn cell comp] starts computation [comp] for the process owning
    [cell].  [comp] runs immediately up to its first {!atomic} call (or
    to completion if it makes none); the cell becomes [Ready] (or
    [Idle] on completion).

    @raise Invalid_argument if the cell is not [Idle]. *)

val grant : cell -> unit
(** [grant cell] lets the suspended process execute its pending atomic
    action and run to its next {!atomic} call (or to completion).

    @raise Invalid_argument if the cell is not [Ready]. *)

val crash : cell -> unit
(** [crash cell] crashes the process: its computation is unwound with
    {!Killed} and the cell becomes [Crashed].  Idempotent on crashed
    cells; legal on idle cells (the process just never steps again). *)

val pending_footprint : cell -> footprint option
(** The declared footprint of the atomic action a [Ready] process is
    suspended at; [None] when the cell is [Idle] or [Crashed]. *)

(** {1 Configuration fingerprinting}

    The exploration engine ({!Slx_core.Explore}) prunes schedule
    prefixes that reach the same configuration.  A configuration has
    two opaque components this module makes observable as digests:

    - the {e local state} of each process, hidden inside its suspended
      continuation.  Because algorithm code between atomic steps is
      purely local, that state is a deterministic function of the
      process's invocations (already in the history) and of the results
      of its atomic actions; each cell therefore folds the hash of
      every atomic result into an {e observation digest};
    - the {e shared state} of the base objects, hidden inside the
      closures of {!Slx_base_objects}.  Every base-object constructor
      registers a state reader with the registry in effect at
      allocation time; folding the readers digests the shared state.

    Digests are hashes: two configurations with equal digests are equal
    up to hash collision (made unlikely by {!hash_value}'s deep
    traversal), a standard model-checking trade-off. *)

val obs : cell -> int
(** The observation digest of the process: a fold of the hashes of
    every atomic-action result it has received so far. *)

type registry
(** A collection of shared-state readers, one per base object allocated
    while the registry was current. *)

val fresh_registry : unit -> registry

val with_registry : registry -> (unit -> 'a) -> 'a
(** [with_registry reg f] runs [f] with [reg] as the current registry
    (restoring the previous one afterwards, exceptions included).  The
    current registry is domain-local. *)

val register_object : (unit -> int) -> int
(** Called by base-object constructors: adds a reader returning a hash
    of the object's current state to the current registry, and returns
    the object's footprint id (for {!atomic_access}).  Ids issued by
    one registry are positive, deterministic (allocation order), and
    unique within the registry; with no registry current the reader is
    dropped and a fresh negative id is returned (plain {!Runner.run}s
    pay nothing). *)

val registry_digest : registry -> int
(** Fold of all registered readers — a digest of the current shared
    state of every base object in the registry. *)

val hash_value : 'a -> int
(** The deep structural hash used for every fingerprint component
    ([Hashtbl.hash_param] with wide limits). *)
