(** Drivers: the external entity that schedules processes and chooses
    their inputs.

    The paper models scheduling by “an external entity called a
    scheduler over which processes have no control”, and its adversary
    sets (Definition 4.3) are played by “an adversary, which decides on
    a sequence of steps produced by a scheduler and on invocations sent
    to [the] implementation”.  A {!t} is exactly that entity: a
    function from the current {!view} of the run to the next
    {!decision}.  Fair schedulers, unfair schedulers and adversaries
    are all drivers; the adversaries of Sections 4 and 5 live in
    [Slx_consensus.Adversary] and [Slx_tm.Adversary]. *)

open Slx_history

(** What the driver can observe: the external history so far, process
    statuses, step counts and the clock.  Drivers cannot see base
    objects or local states — like the paper's adversary, they observe
    only external actions. *)
type ('inv, 'res) view = {
  time : int;
  n : int;
  history : ('inv, 'res) History.t;
  status : Proc.t -> Runtime.status;
  steps : Proc.t -> int;
}

type ('inv, 'res) decision =
  | Schedule of Proc.t       (** Grant one atomic step to a ready process. *)
  | Invoke of Proc.t * 'inv  (** Make an idle process invoke. *)
  | Crash of Proc.t          (** Crash a process. *)
  | Stop                     (** End the run. *)

type ('inv, 'res) t = ('inv, 'res) view -> ('inv, 'res) decision
(** A driver.  Drivers may close over mutable state (they are consulted
    once per tick, in order). *)

(** {1 Workloads} *)

type ('inv, 'res) workload = Proc.t -> int -> 'inv option
(** [workload p k] is the [k]-th invocation (0-based) process [p]
    should issue, or [None] if [p] should stop invoking. *)

val forever : (Proc.t -> 'inv) -> ('inv, 'res) workload
(** Each process repeats the same invocation indefinitely. *)

val n_times : int -> (Proc.t -> int -> 'inv) -> ('inv, 'res) workload
(** Each process issues exactly [n] invocations. *)

(** {1 Schedulers} *)

val round_robin :
  ?procs:Proc.t list -> workload:('inv, 'res) workload -> unit ->
  ('inv, 'res) t
(** A fair scheduler cycling over [procs] (default: all [1..n]): grants
    a step to the next ready process in the cycle, issuing invocations
    from [workload] when a process is idle.  Stops when no process in
    [procs] is ready or can be invoked. *)

val random :
  ?procs:Proc.t list -> seed:int -> workload:('inv, 'res) workload -> unit ->
  ('inv, 'res) t
(** A scheduler picking uniformly at random (seeded, reproducible)
    among the eligible processes of [procs]. *)

val solo :
  Proc.t -> workload:('inv, 'res) workload -> ('inv, 'res) t
(** Runs a single process alone — the schedules under which
    obstruction-freedom ((1,1)-freedom) demands progress. *)

val of_script : ('inv, 'res) decision list -> ('inv, 'res) t
(** Replays a fixed decision list, then [Stop].  Used by the
    replay-based adversaries to re-create a configuration. *)

(** {1 Combinators} *)

val with_crashes : (int * Proc.t) list -> ('inv, 'res) t -> ('inv, 'res) t
(** [with_crashes [(t1,p1);...] d] behaves like [d] but crashes [p_i]
    at time [t_i] (failure injection). *)

val stop_after : int -> ('inv, 'res) t -> ('inv, 'res) t
(** Stops the run after the given number of ticks regardless of the
    underlying driver. *)
