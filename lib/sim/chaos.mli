(** A seeded chaos driver: random scheduling, random invocation timing,
    random crash injection — the generic safety fuzzer.

    Where {!Driver.random} keeps every process busy and nobody crashes,
    the chaos driver also stalls processes for random stretches and
    crashes them with a configurable probability, producing the ugly
    schedules real systems see.  Safety properties must survive all of
    them; the test suites run every implementation in the repository
    under chaos.

    (Liveness verdicts on chaos runs are usually meaningless — the runs
    are rarely bounded-fair — which is itself exercised by the
    suites.) *)

open Slx_history

val driver :
  seed:int ->
  ?crash_probability:float ->
  ?stall_probability:float ->
  workload:('inv, 'res) Driver.workload ->
  unit ->
  ('inv, 'res) Driver.t
(** [driver ~seed ~workload ()] behaves like {!Driver.random} but, at
    each tick: with [crash_probability] (default [0.005]) crashes a
    random non-crashed process (at most [n - 1] crashes total, so
    someone always survives); with [stall_probability] (default [0.2])
    re-rolls the candidate, biasing some processes into long stalls.
    Reproducible from [seed]. *)

val survivor : ('inv, 'res) Run_report.t -> Proc.t
(** The lowest-numbered non-crashed process of a chaos run (always
    exists by the crash cap). *)
