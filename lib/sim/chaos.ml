open Slx_history

let driver ~seed ?(crash_probability = 0.005) ?(stall_probability = 0.2)
    ~workload () : _ Driver.t =
  let rng = Random.State.make [| seed |] in
  fun view ->
    let procs = Proc.all ~n:view.Driver.n in
    let alive =
      List.filter (fun p -> view.Driver.status p <> Runtime.Crashed) procs
    in
    let crashed = List.length procs - List.length alive in
    (* Crash someone, if the dice say so and a survivor remains. *)
    if
      crashed < view.Driver.n - 1
      && Random.State.float rng 1.0 < crash_probability
      && alive <> []
    then Driver.Crash (List.nth alive (Random.State.int rng (List.length alive)))
    else begin
      let eligible p =
        match view.Driver.status p with
        | Runtime.Ready -> Some (Driver.Schedule p)
        | Runtime.Idle -> begin
            let issued =
              History.length
                (History.filter
                   (fun e ->
                     Event.is_invocation e && Proc.equal (Event.proc e) p)
                   view.Driver.history)
            in
            match workload p issued with
            | Some inv -> Some (Driver.Invoke (p, inv))
            | None -> None
          end
        | Runtime.Crashed -> None
      in
      let candidates = List.filter_map eligible procs in
      match candidates with
      | [] -> Driver.Stop
      | _ :: _ ->
          (* Pick a candidate; with stall probability, re-roll once or
             twice to bias the distribution away from uniformity. *)
          let pick () =
            List.nth candidates (Random.State.int rng (List.length candidates))
          in
          let d = pick () in
          if Random.State.float rng 1.0 < stall_probability then pick ()
          else d
    end

let survivor r =
  match
    List.find_opt
      (fun p -> not (Proc.Set.mem p r.Run_report.crashed))
      (Proc.all ~n:r.Run_report.n)
  with
  | Some p -> p
  | None -> invalid_arg "Chaos.survivor: everyone crashed"
