open Slx_history

type ('inv, 'res) impl = proc:Proc.t -> 'inv -> 'res
type ('inv, 'res) factory = n:int -> ('inv, 'res) impl

let run ~n ~factory ~driver ~max_steps ?window () =
  let window = Option.value window ~default:(max_steps / 2) in
  let impl = factory ~n in
  let cells = Array.init (n + 1) (fun _ -> Runtime.make_cell ()) in
  let cell p =
    if not (Proc.is_valid ~n p) then invalid_arg "Runner: bad process id";
    cells.(p)
  in
  let history = ref History.empty in
  let rev_event_times = ref [] in
  let time = ref 0 in
  let record e =
    history := History.append !history e;
    rev_event_times := !time :: !rev_event_times
  in
  let rev_grants = ref [] in
  let step_counts = Array.make (n + 1) 0 in
  let crashed = ref Proc.Set.empty in
  let view () : _ Driver.view =
    {
      Driver.time = !time;
      n;
      history = !history;
      status = (fun p -> Runtime.status (cell p));
      steps = (fun p -> step_counts.(p));
    }
  in
  let apply = function
    | Driver.Schedule p ->
        rev_grants := (!time, p) :: !rev_grants;
        step_counts.(p) <- step_counts.(p) + 1;
        Runtime.grant (cell p)
    | Driver.Invoke (p, inv) ->
        record (Event.Invocation (p, inv));
        Runtime.spawn (cell p) (fun () ->
            let res = impl ~proc:p inv in
            record (Event.Response (p, res)))
    | Driver.Crash p ->
        if Proc.Set.mem p !crashed then
          invalid_arg "Runner: crashing a crashed process";
        crashed := Proc.Set.add p !crashed;
        record (Event.Crash p);
        Runtime.crash (cell p)
    | Driver.Stop -> assert false
  in
  let stopped = ref `Max_steps in
  (try
     while !time < max_steps do
       match driver (view ()) with
       | Driver.Stop ->
           let quiescent =
             List.for_all
               (fun p -> Runtime.status (cell p) <> Runtime.Ready)
               (Proc.all ~n)
           in
           stopped := (if quiescent then `Quiescent else `Driver_stop);
           raise Exit
       | d ->
           apply d;
           incr time
     done
   with Exit -> ());
  {
    Run_report.n;
    history = !history;
    event_times = Array.of_list (List.rev !rev_event_times);
    grants = List.rev !rev_grants;
    crashed = !crashed;
    total_time = !time;
    window;
    stopped = !stopped;
  }

let history ~n ~factory ~driver ~max_steps =
  (run ~n ~factory ~driver ~max_steps ()).Run_report.history
