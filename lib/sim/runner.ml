open Slx_history

type ('inv, 'res) impl = proc:Proc.t -> 'inv -> 'res
type ('inv, 'res) factory = n:int -> ('inv, 'res) impl

type ('inv, 'res) fingerprint = {
  fp_time : int;
  fp_history : ('inv, 'res) History.t;
  fp_crashed : Proc.t list;
  fp_procs : (int * int * int) list;
  fp_shared : int;
}

module Cursor = struct
  type ('inv, 'res) t = {
    n : int;
    impl : ('inv, 'res) impl;
    registry : Runtime.registry;
    cells : Runtime.cell array;
    mutable history : ('inv, 'res) History.t;
    mutable rev_event_times : int list;
    mutable time : int;
    mutable rev_grants : (int * Proc.t) list;
    step_counts : int array;
    mutable crashed : Proc.Set.t;
    ticks : int ref;
    shadow : Runtime.shadow option;
    probe : Runtime.probe option;
    encode : (int -> ('inv, 'res) Event.t -> int) option;
    mutable hist_id : int;
  }

  let create ~n ~factory ?(ticks = ref 0) ?shadow ?probe ?encode () =
    let registry = Runtime.fresh_registry () in
    let with_shadow f =
      match shadow with None -> f () | Some sh -> Runtime.with_shadow sh f
    in
    (* The factory runs under the shadow too: constructors that touch
       shared cells outside any atomic action should be caught. *)
    let impl =
      with_shadow (fun () -> Runtime.with_registry registry (fun () -> factory ~n))
    in
    {
      n;
      impl;
      registry;
      cells = Array.init (n + 1) (fun _ -> Runtime.make_cell ());
      history = History.empty;
      rev_event_times = [];
      time = 0;
      rev_grants = [];
      step_counts = Array.make (n + 1) 0;
      crashed = Proc.Set.empty;
      ticks;
      shadow;
      probe;
      encode;
      hist_id = 0;
    }

  let cell c p =
    if not (Proc.is_valid ~n:c.n p) then invalid_arg "Runner: bad process id";
    c.cells.(p)

  let view c : _ Driver.view =
    {
      Driver.time = c.time;
      n = c.n;
      history = c.history;
      status = (fun p -> Runtime.status (cell c p));
      steps = (fun p -> c.step_counts.(p));
    }

  let pending c p = Runtime.pending_footprint (cell c p)
  let pending_mask c p = Runtime.pending_mask (cell c p)

  let record c e =
    c.history <- History.append c.history e;
    c.rev_event_times <- c.time :: c.rev_event_times;
    (* Incremental history interning: with an [encode] hook installed
       the cursor maintains a single small-int stand-in for the whole
       history — each append maps (previous id, event) to a fresh or
       cached id, so compact fingerprint keys never re-hash the
       history.  Replays fed the same hook reproduce the same id. *)
    match c.encode with
    | None -> ()
    | Some enc -> c.hist_id <- enc c.hist_id e

  let hist_id c = c.hist_id

  let apply_body c d =
    (* Implementations may allocate base objects lazily, mid-run; keep
       the cursor's registry current while algorithm code executes so
       such objects are fingerprinted too. *)
    Runtime.with_registry c.registry (fun () ->
        (match d with
        | Driver.Schedule p ->
            c.rev_grants <- (c.time, p) :: c.rev_grants;
            c.step_counts.(p) <- c.step_counts.(p) + 1;
            Runtime.grant (cell c p)
        | Driver.Invoke (p, inv) ->
            record c (Event.Invocation (p, inv));
            Runtime.spawn (cell c p) (fun () ->
                let res = c.impl ~proc:p inv in
                record c (Event.Response (p, res)))
        | Driver.Crash p ->
            if Proc.Set.mem p c.crashed then
              invalid_arg "Runner: crashing a crashed process";
            c.crashed <- Proc.Set.add p c.crashed;
            record c (Event.Crash p);
            Runtime.crash (cell c p)
        | Driver.Stop -> invalid_arg "Runner: cannot apply Stop");
        c.time <- c.time + 1;
        incr c.ticks)

  let apply c d =
    let body () =
      match c.shadow with
      | None -> apply_body c d
      | Some sh -> Runtime.with_shadow sh (fun () -> apply_body c d)
    in
    match c.probe with
    | None -> body ()
    | Some pr -> Runtime.with_probe pr body

  let probe c = c.probe

  let replay ~n ~factory ?ticks ?shadow ?probe ?encode decisions =
    let c = create ~n ~factory ?ticks ?shadow ?probe ?encode () in
    List.iter (apply c) decisions;
    c

  let report c ?window ?(stopped = `Max_steps) () =
    let window = Option.value window ~default:(max 1 (c.time / 2)) in
    {
      Run_report.n = c.n;
      history = c.history;
      event_times = Array.of_list (List.rev c.rev_event_times);
      grants = List.rev c.rev_grants;
      crashed = c.crashed;
      total_time = c.time;
      window;
      stopped;
    }

  let status_code = function
    | Runtime.Idle -> 0
    | Runtime.Ready -> 1
    | Runtime.Crashed -> 2

  let fingerprint c =
    {
      fp_time = c.time;
      fp_history = c.history;
      fp_crashed = Proc.Set.elements c.crashed;
      fp_procs =
        List.map
          (fun p ->
            let cell = c.cells.(p) in
            (status_code (Runtime.status cell), c.step_counts.(p),
             Runtime.obs cell))
          (Proc.all ~n:c.n);
      fp_shared = Runtime.registry_digest c.registry;
    }

  (* The flat-int-array form of [fingerprint], for interning: the
     history is represented by the incremental [hist_id] (exact under
     an injective [encode] hook), the crash set by the per-process
     status codes (a process is crashed iff its status is), and the
     two digest components are the same digests the structural
     fingerprint carries — so equality of compact keys coincides with
     equality of structural fingerprints up to the digests' existing
     collision bound.  [extra] lets callers append engine-specific key
     components (sleep sets, trace-suffix ids). *)
  let compact_key c ~extra =
    let n = c.n in
    let a = Array.make (3 + (2 * n) + List.length extra) 0 in
    a.(0) <- c.time;
    a.(1) <- c.hist_id;
    a.(2) <- Runtime.registry_digest c.registry;
    for p = 1 to n do
      let cell = c.cells.(p) in
      a.(1 + (2 * p)) <-
        (c.step_counts.(p) lsl 2) lor status_code (Runtime.status cell);
      a.(2 + (2 * p)) <- Runtime.obs cell
    done;
    List.iteri (fun i v -> a.(3 + (2 * n) + i) <- v) extra;
    a

  let shared_digest c = Runtime.registry_digest c.registry
  let shared_digest_full c = Runtime.registry_digest_full c.registry
end

let run ~n ~factory ~driver ~max_steps ?window () =
  let window = Option.value window ~default:(max_steps / 2) in
  let c = Cursor.create ~n ~factory () in
  let stopped = ref `Max_steps in
  (try
     while c.Cursor.time < max_steps do
       match driver (Cursor.view c) with
       | Driver.Stop ->
           let quiescent =
             List.for_all
               (fun p -> Runtime.status (Cursor.cell c p) <> Runtime.Ready)
               (Proc.all ~n)
           in
           stopped := (if quiescent then `Quiescent else `Driver_stop);
           raise Exit
       | d -> Cursor.apply c d
     done
   with Exit -> ());
  Cursor.report c ~window ~stopped:!stopped ()

let history ~n ~factory ~driver ~max_steps =
  (run ~n ~factory ~driver ~max_steps ()).Run_report.history
