open Effect
open Effect.Deep

(* The access footprint of a pending atomic action: which base object
   it touches and whether it may write it.  [Opaque] (the legacy
   [atomic]) conflicts with everything; base objects declare precise
   footprints so the exploration engine can recognize commuting steps
   (partial-order reduction). *)
type footprint = Opaque | Access of { obj : int; write : bool }

type _ Effect.t += Atomic : footprint * (unit -> 'a) -> 'a Effect.t

let atomic f = perform (Atomic (Opaque, f))
let atomic_access ~obj ~write f = perform (Atomic (Access { obj; write }, f))

let footprints_commute a b =
  match (a, b) with
  | Access { obj = o1; write = w1 }, Access { obj = o2; write = w2 } ->
      o1 <> o2 || ((not w1) && not w2)
  | Opaque, _ | _, Opaque -> false

exception Killed

type status = Idle | Ready | Crashed

(* Deep-ish structural hash used for all fingerprint components: the
   default [Hashtbl.hash] only looks at 10 meaningful nodes, far too
   shallow to distinguish configurations. *)
let hash_value v = Hashtbl.hash_param 256 512 v

(* FNV-style combination; commutative only by accident of inputs, so
   callers must fold in a fixed order. *)
let combine h v = (h * 0x01000193) lxor (v land max_int)

(* ------------------------------------------------------------------ *)
(* Shared-state fingerprint registry.

   Base objects cannot be inspected from outside (their state lives in
   closures), so each constructor registers a reader that digests its
   current state.  The registry in effect while an implementation
   instance is alive collects the readers of every base object that
   instance allocates; the explorer folds them into configuration
   fingerprints.  The "current registry" is domain-local so parallel
   explorers do not observe each other's allocations. *)

type registry = {
  mutable readers : (unit -> int) list;  (* reverse registration order *)
  mutable next_id : int;
}

let current_registry : registry option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let fresh_registry () : registry = { readers = []; next_id = 1 }

(* Fallback id source for objects allocated with no registry current
   (plain [Runner.run]s); footprint ids only ever need to be distinct
   within one implementation instance, and negative ids cannot collide
   with registry-issued positive ones. *)
let orphan_ids : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let register_object reader =
  match !(Domain.DLS.get current_registry) with
  | None ->
      let c = Domain.DLS.get orphan_ids in
      decr c;
      !c
  | Some reg ->
      reg.readers <- reader :: reg.readers;
      let id = reg.next_id in
      reg.next_id <- id + 1;
      id

let with_registry reg f =
  let slot = Domain.DLS.get current_registry in
  let saved = !slot in
  slot := Some reg;
  match f () with
  | x ->
      slot := saved;
      x
  | exception e ->
      slot := saved;
      raise e

let registry_digest (reg : registry) =
  (* Readers are stored in reverse registration order; any fixed order
     works as long as two instances of the same factory agree, which
     they do (allocation order is deterministic). *)
  List.fold_left (fun acc reader -> combine acc (reader ())) 0x811c9dc5
    reg.readers

(* ------------------------------------------------------------------ *)
(* Cells.                                                              *)

(* A suspended process is a pair of one-shot closures sharing a [used]
   flag: [resume] executes the pending atomic action and runs to the
   next suspension point; [kill] unwinds the computation with
   [Killed]. *)
type suspended = {
  resume : unit -> unit;
  kill : unit -> unit;
  pending : footprint;  (* of the atomic action awaiting its grant *)
}

type slot = S_idle | S_ready of suspended | S_crashed

type cell = { mutable slot : slot; mutable obs : int }

let make_cell () = { slot = S_idle; obs = 0x811c9dc5 }

let status cell =
  match cell.slot with
  | S_idle -> Idle
  | S_ready _ -> Ready
  | S_crashed -> Crashed

let pending_footprint cell =
  match cell.slot with S_ready s -> Some s.pending | S_idle | S_crashed -> None

let obs cell = cell.obs

let handler cell =
  {
    retc = (fun () -> cell.slot <- S_idle);
    exnc =
      (fun e ->
        match e with Killed -> cell.slot <- S_crashed | e -> raise e);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Atomic (fp, f) ->
            Some
              (fun (k : (b, unit) continuation) ->
                let used = ref false in
                let resume () =
                  if !used then invalid_arg "Runtime: continuation reused";
                  used := true;
                  let v = f () in
                  (* The local state of the process after this step is a
                     deterministic function of its invocations (recorded
                     in the history) and the results of its atomic
                     actions; folding the result hashes gives an
                     observation digest that stands in for the opaque
                     continuation when fingerprinting configurations. *)
                  cell.obs <- combine cell.obs (hash_value v);
                  continue k v
                in
                let kill () =
                  if not !used then begin
                    used := true;
                    try discontinue k Killed with Killed -> ()
                  end
                in
                cell.slot <- S_ready { resume; kill; pending = fp })
        | _ -> None);
  }

let spawn cell comp =
  match cell.slot with
  | S_idle -> match_with comp () (handler cell)
  | S_ready _ | S_crashed -> invalid_arg "Runtime.spawn: process not idle"

let grant cell =
  match cell.slot with
  | S_ready s ->
      (* The suspension will be replaced by the handler when the
         computation next suspends (or by [retc]/[exnc] when it
         finishes), so clear it first to catch reentrancy bugs. *)
      cell.slot <- S_idle;
      s.resume ()
  | S_idle | S_crashed -> invalid_arg "Runtime.grant: process not ready"

let crash cell =
  match cell.slot with
  | S_ready s ->
      cell.slot <- S_crashed;
      s.kill ()
  | S_idle -> cell.slot <- S_crashed
  | S_crashed -> ()
