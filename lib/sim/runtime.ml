open Effect
open Effect.Deep

type _ Effect.t += Atomic : (unit -> 'a) -> 'a Effect.t

let atomic f = perform (Atomic f)

exception Killed

type status = Idle | Ready | Crashed

(* A suspended process is a pair of one-shot closures sharing a [used]
   flag: [resume] executes the pending atomic action and runs to the
   next suspension point; [kill] unwinds the computation with
   [Killed]. *)
type suspended = { resume : unit -> unit; kill : unit -> unit }

type slot = S_idle | S_ready of suspended | S_crashed

type cell = { mutable slot : slot }

let make_cell () = { slot = S_idle }

let status cell =
  match cell.slot with
  | S_idle -> Idle
  | S_ready _ -> Ready
  | S_crashed -> Crashed

let handler cell =
  {
    retc = (fun () -> cell.slot <- S_idle);
    exnc =
      (fun e ->
        match e with Killed -> cell.slot <- S_crashed | e -> raise e);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Atomic f ->
            Some
              (fun (k : (b, unit) continuation) ->
                let used = ref false in
                let resume () =
                  if !used then invalid_arg "Runtime: continuation reused";
                  used := true;
                  continue k (f ())
                in
                let kill () =
                  if not !used then begin
                    used := true;
                    try discontinue k Killed with Killed -> ()
                  end
                in
                cell.slot <- S_ready { resume; kill })
        | _ -> None);
  }

let spawn cell comp =
  match cell.slot with
  | S_idle -> match_with comp () (handler cell)
  | S_ready _ | S_crashed -> invalid_arg "Runtime.spawn: process not idle"

let grant cell =
  match cell.slot with
  | S_ready s ->
      (* The suspension will be replaced by the handler when the
         computation next suspends (or by [retc]/[exnc] when it
         finishes), so clear it first to catch reentrancy bugs. *)
      cell.slot <- S_idle;
      s.resume ()
  | S_idle | S_crashed -> invalid_arg "Runtime.grant: process not ready"

let crash cell =
  match cell.slot with
  | S_ready s ->
      cell.slot <- S_crashed;
      s.kill ()
  | S_idle -> cell.slot <- S_crashed
  | S_crashed -> ()
