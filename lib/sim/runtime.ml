open Effect
open Effect.Deep

(* One declared (or observed) access to a base object: which object and
   whether it may be (was) written. *)
type access = { obj : int; write : bool }

(* The access footprint of a pending atomic action: which base objects
   it touches and whether it may write them.  [Opaque] (the legacy
   [atomic]) conflicts with everything; base objects declare precise
   footprints so the exploration engine can recognize commuting steps
   (partial-order reduction). *)
type footprint = Opaque | Access of access | Multi of access list

(* Canonical access-list form: one entry per object (write = the OR of
   the merged entries), sorted by object id. *)
let normalize accs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun a ->
      match Hashtbl.find_opt tbl a.obj with
      | None -> Hashtbl.add tbl a.obj a.write
      | Some w -> Hashtbl.replace tbl a.obj (w || a.write))
    accs;
  Hashtbl.fold (fun obj write acc -> { obj; write } :: acc) tbl []
  |> List.sort (fun a b -> compare a.obj b.obj)

let accesses = function
  | Opaque -> None
  | Access a -> Some [ a ]
  | Multi accs -> Some accs

let of_accesses accs =
  match normalize accs with [ a ] -> Access a | accs -> Multi accs

let union a b =
  match (a, b) with
  | Opaque, _ | _, Opaque -> Opaque
  | a, b ->
      (* [accesses] is total on non-Opaque footprints. *)
      of_accesses (Option.get (accesses a) @ Option.get (accesses b))

let conflict a b = a.obj = b.obj && (a.write || b.write)

let footprints_commute a b =
  match (accesses a, accesses b) with
  | Some la, Some lb ->
      not (List.exists (fun x -> List.exists (conflict x) lb) la)
  | None, _ | _, None -> false

let covers outer inner =
  match (accesses outer, accesses inner) with
  | None, _ -> true (* Opaque claims everything *)
  | Some _, None -> false (* only Opaque covers Opaque *)
  | Some lo, Some li ->
      List.for_all
        (fun a ->
          List.exists (fun b -> b.obj = a.obj && (b.write || not a.write)) lo)
        li

let pp_access fmt a =
  Format.fprintf fmt "%c%d" (if a.write then 'W' else 'R') a.obj

let pp_footprint fmt = function
  | Opaque -> Format.pp_print_string fmt "opaque"
  | Access a -> pp_access fmt a
  | Multi accs ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           pp_access)
        accs

type _ Effect.t += Atomic : footprint * (unit -> 'a) -> 'a Effect.t

exception Killed

type status = Idle | Ready | Crashed

(* Deep-ish structural hash used for all fingerprint components: the
   default [Hashtbl.hash] only looks at 10 meaningful nodes, far too
   shallow to distinguish configurations. *)
let hash_value v = Hashtbl.hash_param 256 512 v

(* FNV-style combination; commutative only by accident of inputs, so
   callers must fold in a fixed order. *)
let combine h v = (h * 0x01000193) lxor (v land max_int)

(* ------------------------------------------------------------------ *)
(* Shared-state fingerprint registry.

   Base objects cannot be inspected from outside (their state lives in
   closures), so each constructor registers a reader that digests its
   current state.  The registry in effect while an implementation
   instance is alive collects the readers of every base object that
   instance allocates; the explorer folds them into configuration
   fingerprints.  The "current registry" is domain-local so parallel
   explorers do not observe each other's allocations. *)

type registry = {
  mutable readers : (unit -> int) list;  (* reverse registration order *)
  mutable next_id : int;
}

let current_registry : registry option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let fresh_registry () : registry = { readers = []; next_id = 1 }

(* Fallback id source for objects allocated with no registry current
   (plain [Runner.run]s); footprint ids only ever need to be distinct
   within one implementation instance, and negative ids cannot collide
   with registry-issued positive ones. *)
let orphan_ids : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let register_object reader =
  match !(Domain.DLS.get current_registry) with
  | None ->
      let c = Domain.DLS.get orphan_ids in
      decr c;
      !c
  | Some reg ->
      reg.readers <- reader :: reg.readers;
      let id = reg.next_id in
      reg.next_id <- id + 1;
      id

let with_registry reg f =
  let slot = Domain.DLS.get current_registry in
  let saved = !slot in
  slot := Some reg;
  match f () with
  | x ->
      slot := saved;
      x
  | exception e ->
      slot := saved;
      raise e

let registry_digest (reg : registry) =
  (* Readers are stored in reverse registration order; any fixed order
     works as long as two instances of the same factory agree, which
     they do (allocation order is deterministic). *)
  List.fold_left (fun acc reader -> combine acc (reader ())) 0x811c9dc5
    reg.readers

(* ------------------------------------------------------------------ *)
(* Shadow state: the conflict-soundness sanitizer.

   POR trusts each pending action's declared footprint; the sanitizer
   checks that trust dynamically.  Instrumented base objects report
   every physical cell access through [touch]; the domain-local frame
   tracks the footprint of the atomic action in flight, and an
   installed shadow records/validates the touches against it.

   The frame is maintained even with no shadow installed, because it
   also implements nested-atomic composition: an [atomic]/
   [atomic_access] call made while an atomic action is already
   executing runs inline (it cannot suspend again — the scheduler is
   mid-grant) and its declared footprint is folded into the step's
   effective footprint. *)

type frame = {
  mutable fr_depth : int;  (* nesting depth of in-flight atomic code *)
  mutable fr_pending : footprint;  (* declared at suspension (POR-visible) *)
  mutable fr_eff : footprint;  (* pending ∪ nested declarations *)
  mutable fr_touched : access list;  (* physical touches, reverse order *)
}

let frame_key : frame Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { fr_depth = 0; fr_pending = Opaque; fr_eff = Opaque; fr_touched = [] })

type violation_kind = Undeclared_touch | Undeclared_nesting | Outside_atomic

type violation = {
  v_kind : violation_kind;
  v_obj : int;
  v_write : bool;
  v_pending : footprint;
  v_step : int;
}

exception Shadow_violation of violation

let pp_violation fmt v =
  match v.v_kind with
  | Undeclared_touch ->
      Format.fprintf fmt
        "undeclared %s of object %d at shadow step %d (declared: %a)"
        (if v.v_write then "write" else "read")
        v.v_obj v.v_step pp_footprint v.v_pending
  | Undeclared_nesting ->
      Format.fprintf fmt
        "nested declaration escapes the pending footprint at shadow step %d \
         (escaping: %s object %d, declared: %a)"
        v.v_step
        (if v.v_write then "write" else "read")
        v.v_obj pp_footprint v.v_pending
  | Outside_atomic ->
      Format.fprintf fmt
        "%s of object %d outside any atomic action (shadow step %d)"
        (if v.v_write then "write" else "read")
        v.v_obj v.v_step

type decl_stat = {
  decl_steps : int;
  touched_steps : int;
  write_decl_steps : int;
  wrote_steps : int;
}

(* Internal mutable accumulator behind [decl_stat]. *)
type mstat = {
  mutable ms_decl : int;
  mutable ms_touched : int;
  mutable ms_wdecl : int;
  mutable ms_wrote : int;
}

type step_log = {
  declared : footprint;
  effective : footprint;
  touched : access list;
}

type shadow = {
  sh_record : bool;
  sh_raise : bool;
  mutable sh_steps : int;
  mutable sh_log : step_log list;  (* reverse order *)
  mutable sh_violations : violation list;  (* reverse order *)
  sh_decls : (int, mstat) Hashtbl.t;
  mutable sh_opaque : int;
}

let make_shadow ?(record = false) ?(raise_on_violation = true) () =
  {
    sh_record = record;
    sh_raise = raise_on_violation;
    sh_steps = 0;
    sh_log = [];
    sh_violations = [];
    sh_decls = Hashtbl.create 16;
    sh_opaque = 0;
  }

let current_shadow : shadow option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_shadow sh f =
  let slot = Domain.DLS.get current_shadow in
  let saved = !slot in
  slot := Some sh;
  match f () with
  | x ->
      slot := saved;
      x
  | exception e ->
      slot := saved;
      raise e

(* ------------------------------------------------------------------ *)
(* Dynamic-conflict probe: the DPOR observed-access recorder.

   Where the shadow {e validates} touches against declarations, the
   probe merely {e records} what the last completed atomic step
   physically touched (plus its effective footprint), so the
   exploration engines can compute race reversals from dynamic
   conflicts — what a step actually did in this configuration — instead
   of declared footprints alone.  One probe per engine (per domain),
   installed around [Runner.Cursor.apply] exactly like the shadow; with
   no probe installed, [touch] stays one domain-local read and a
   branch. *)

type probe = {
  mutable pr_steps : int;  (* atomic steps completed under this probe *)
  mutable pr_eff : footprint;  (* effective footprint of the last step *)
  mutable pr_touched : access list;  (* its physical touches, in order *)
}

let make_probe () =
  { pr_steps = 0; pr_eff = of_accesses []; pr_touched = [] }

let current_probe : probe option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_probe pr f =
  let slot = Domain.DLS.get current_probe in
  let saved = !slot in
  slot := Some pr;
  match f () with
  | x ->
      slot := saved;
      x
  | exception e ->
      slot := saved;
      raise e

let probe_steps pr = pr.pr_steps
let probe_last_effective pr = pr.pr_eff
let probe_last_touched pr = pr.pr_touched

let probe_last_observed pr =
  match pr.pr_touched with
  | [] -> pr.pr_eff  (* uninstrumented or touch-free: trust the declaration *)
  | touched -> of_accesses touched

let shadow_violations sh = List.rev sh.sh_violations
let shadow_violation_count sh = List.length sh.sh_violations
let shadow_steps sh = List.rev sh.sh_log
let shadow_step_count sh = sh.sh_steps
let shadow_opaque_steps sh = sh.sh_opaque

let shadow_decl_stats sh =
  Hashtbl.fold
    (fun obj ms acc ->
      ( obj,
        {
          decl_steps = ms.ms_decl;
          touched_steps = ms.ms_touched;
          write_decl_steps = ms.ms_wdecl;
          wrote_steps = ms.ms_wrote;
        } )
      :: acc)
    sh.sh_decls []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let violate sh v =
  sh.sh_violations <- v :: sh.sh_violations;
  if sh.sh_raise then raise (Shadow_violation v)

let touch ~obj ~write =
  let shadow = !(Domain.DLS.get current_shadow) in
  if shadow <> None || !(Domain.DLS.get current_probe) <> None then begin
    let fr = Domain.DLS.get frame_key in
    if fr.fr_depth = 0 then (
      (* Outside any atomic action: a violation when a shadow judges;
         with only a probe installed there is no step to attribute the
         touch to, so it is dropped (the sanitizer is the layer that
         reports this contract breach). *)
      match shadow with
      | Some sh ->
          violate sh
            {
              v_kind = Outside_atomic;
              v_obj = obj;
              v_write = write;
              v_pending = Opaque;
              v_step = sh.sh_steps;
            }
      | None -> ())
    else begin
      fr.fr_touched <- { obj; write } :: fr.fr_touched;
      match shadow with
      | Some sh ->
          if not (covers fr.fr_eff (Access { obj; write })) then
            violate sh
              {
                v_kind = Undeclared_touch;
                v_obj = obj;
                v_write = write;
                v_pending = fr.fr_pending;
                v_step = sh.sh_steps;
              }
      | None -> ()
    end
  end

(* Step bracketing: [enter_step] as a grant begins executing its
   pending action, [leave_step] when the action's body returns (or
   raises) — crucially {e before} the continuation is resumed, because
   the continuation runs up to the process's next suspension inside
   the same dynamic extent. *)
let enter_step fr fp =
  fr.fr_depth <- 1;
  fr.fr_pending <- fp;
  fr.fr_eff <- fp;
  fr.fr_touched <- []

let leave_step fr =
  fr.fr_depth <- 0;
  (match !(Domain.DLS.get current_probe) with
  | None -> ()
  | Some pr ->
      pr.pr_steps <- pr.pr_steps + 1;
      pr.pr_eff <- fr.fr_eff;
      pr.pr_touched <- List.rev fr.fr_touched);
  (match !(Domain.DLS.get current_shadow) with
  | None -> ()
  | Some sh ->
      let touched = List.rev fr.fr_touched in
      (match accesses fr.fr_pending with
      | None -> sh.sh_opaque <- sh.sh_opaque + 1
      | Some decl ->
          List.iter
            (fun (a : access) ->
              let ms =
                match Hashtbl.find_opt sh.sh_decls a.obj with
                | Some ms -> ms
                | None ->
                    let ms =
                      { ms_decl = 0; ms_touched = 0; ms_wdecl = 0; ms_wrote = 0 }
                    in
                    Hashtbl.add sh.sh_decls a.obj ms;
                    ms
              in
              ms.ms_decl <- ms.ms_decl + 1;
              if List.exists (fun (t : access) -> t.obj = a.obj) touched then
                ms.ms_touched <- ms.ms_touched + 1;
              if a.write then begin
                ms.ms_wdecl <- ms.ms_wdecl + 1;
                if
                  List.exists
                    (fun (t : access) -> t.obj = a.obj && t.write)
                    touched
                then ms.ms_wrote <- ms.ms_wrote + 1
              end)
            decl);
      if sh.sh_record then
        sh.sh_log <-
          { declared = fr.fr_pending; effective = fr.fr_eff; touched }
          :: sh.sh_log;
      sh.sh_steps <- sh.sh_steps + 1);
  fr.fr_touched <- []

(* A nested atomic call: runs inline, folds its declaration into the
   effective footprint, and — under a shadow — checks that the nested
   declaration does not escape the POR-visible pending footprint (the
   explorer decided commutation before the nested call could be
   known). *)
let enter_nested fr fp =
  (match !(Domain.DLS.get current_shadow) with
  | None -> ()
  | Some sh ->
      if not (covers fr.fr_pending fp) then begin
        let v_obj, v_write =
          match accesses fp with
          | None -> (min_int, true)  (* a nested [atomic]: opaque *)
          | Some accs -> (
              match
                List.find_opt
                  (fun a -> not (covers fr.fr_pending (Access a)))
                  accs
              with
              | Some a -> (a.obj, a.write)
              | None -> (min_int, true))
        in
        violate sh
          {
            v_kind = Undeclared_nesting;
            v_obj;
            v_write;
            v_pending = fr.fr_pending;
            v_step = sh.sh_steps;
          }
      end);
  fr.fr_eff <- union fr.fr_eff fp;
  fr.fr_depth <- fr.fr_depth + 1

let atomic_with fp f =
  let fr = Domain.DLS.get frame_key in
  if fr.fr_depth > 0 then begin
    enter_nested fr fp;
    match f () with
    | v ->
        fr.fr_depth <- fr.fr_depth - 1;
        v
    | exception e ->
        fr.fr_depth <- fr.fr_depth - 1;
        raise e
  end
  else perform (Atomic (fp, f))

let atomic f = atomic_with Opaque f
let atomic_access ~obj ~write f = atomic_with (Access { obj; write }) f

(* ------------------------------------------------------------------ *)
(* Cells.                                                              *)

(* A suspended process is a pair of one-shot closures sharing a [used]
   flag: [resume] executes the pending atomic action and runs to the
   next suspension point; [kill] unwinds the computation with
   [Killed]. *)
type suspended = {
  resume : unit -> unit;
  kill : unit -> unit;
  pending : footprint;  (* of the atomic action awaiting its grant *)
}

type slot = S_idle | S_ready of suspended | S_crashed

type cell = { mutable slot : slot; mutable obs : int }

let make_cell () = { slot = S_idle; obs = 0x811c9dc5 }

let status cell =
  match cell.slot with
  | S_idle -> Idle
  | S_ready _ -> Ready
  | S_crashed -> Crashed

let pending_footprint cell =
  match cell.slot with S_ready s -> Some s.pending | S_idle | S_crashed -> None

let obs cell = cell.obs

let handler cell =
  {
    retc = (fun () -> cell.slot <- S_idle);
    exnc =
      (fun e ->
        match e with Killed -> cell.slot <- S_crashed | e -> raise e);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Atomic (fp, f) ->
            Some
              (fun (k : (b, unit) continuation) ->
                let used = ref false in
                let resume () =
                  if !used then invalid_arg "Runtime: continuation reused";
                  used := true;
                  (* Bracket the action body — not the continuation:
                     [continue k v] below runs the process up to its
                     next suspension inside this call, and that code
                     is between atomic steps (local by contract). *)
                  let fr = Domain.DLS.get frame_key in
                  enter_step fr fp;
                  let v =
                    match f () with
                    | v ->
                        leave_step fr;
                        v
                    | exception e ->
                        leave_step fr;
                        raise e
                  in
                  (* The local state of the process after this step is a
                     deterministic function of its invocations (recorded
                     in the history) and the results of its atomic
                     actions; folding the result hashes gives an
                     observation digest that stands in for the opaque
                     continuation when fingerprinting configurations. *)
                  cell.obs <- combine cell.obs (hash_value v);
                  continue k v
                in
                let kill () =
                  if not !used then begin
                    used := true;
                    try discontinue k Killed with Killed -> ()
                  end
                in
                cell.slot <- S_ready { resume; kill; pending = fp })
        | _ -> None);
  }

let spawn cell comp =
  match cell.slot with
  | S_idle -> match_with comp () (handler cell)
  | S_ready _ | S_crashed -> invalid_arg "Runtime.spawn: process not idle"

let grant cell =
  match cell.slot with
  | S_ready s ->
      (* The suspension will be replaced by the handler when the
         computation next suspends (or by [retc]/[exnc] when it
         finishes), so clear it first to catch reentrancy bugs. *)
      cell.slot <- S_idle;
      s.resume ()
  | S_idle | S_crashed -> invalid_arg "Runtime.grant: process not ready"

let crash cell =
  match cell.slot with
  | S_ready s ->
      cell.slot <- S_crashed;
      s.kill ()
  | S_idle -> cell.slot <- S_crashed
  | S_crashed -> ()
