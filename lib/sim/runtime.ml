open Effect
open Effect.Deep

type _ Effect.t += Atomic : (unit -> 'a) -> 'a Effect.t

let atomic f = perform (Atomic f)

exception Killed

type status = Idle | Ready | Crashed

(* Deep-ish structural hash used for all fingerprint components: the
   default [Hashtbl.hash] only looks at 10 meaningful nodes, far too
   shallow to distinguish configurations. *)
let hash_value v = Hashtbl.hash_param 256 512 v

(* FNV-style combination; commutative only by accident of inputs, so
   callers must fold in a fixed order. *)
let combine h v = (h * 0x01000193) lxor (v land max_int)

(* ------------------------------------------------------------------ *)
(* Shared-state fingerprint registry.

   Base objects cannot be inspected from outside (their state lives in
   closures), so each constructor registers a reader that digests its
   current state.  The registry in effect while an implementation
   instance is alive collects the readers of every base object that
   instance allocates; the explorer folds them into configuration
   fingerprints.  The "current registry" is domain-local so parallel
   explorers do not observe each other's allocations. *)

type registry = (unit -> int) list ref

let current_registry : registry option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let fresh_registry () : registry = ref []

let register_object reader =
  match !(Domain.DLS.get current_registry) with
  | None -> ()
  | Some reg -> reg := reader :: !reg

let with_registry reg f =
  let slot = Domain.DLS.get current_registry in
  let saved = !slot in
  slot := Some reg;
  match f () with
  | x ->
      slot := saved;
      x
  | exception e ->
      slot := saved;
      raise e

let registry_digest (reg : registry) =
  (* Readers are stored in reverse registration order; any fixed order
     works as long as two instances of the same factory agree, which
     they do (allocation order is deterministic). *)
  List.fold_left (fun acc reader -> combine acc (reader ())) 0x811c9dc5 !reg

(* ------------------------------------------------------------------ *)
(* Cells.                                                              *)

(* A suspended process is a pair of one-shot closures sharing a [used]
   flag: [resume] executes the pending atomic action and runs to the
   next suspension point; [kill] unwinds the computation with
   [Killed]. *)
type suspended = { resume : unit -> unit; kill : unit -> unit }

type slot = S_idle | S_ready of suspended | S_crashed

type cell = { mutable slot : slot; mutable obs : int }

let make_cell () = { slot = S_idle; obs = 0x811c9dc5 }

let status cell =
  match cell.slot with
  | S_idle -> Idle
  | S_ready _ -> Ready
  | S_crashed -> Crashed

let obs cell = cell.obs

let handler cell =
  {
    retc = (fun () -> cell.slot <- S_idle);
    exnc =
      (fun e ->
        match e with Killed -> cell.slot <- S_crashed | e -> raise e);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Atomic f ->
            Some
              (fun (k : (b, unit) continuation) ->
                let used = ref false in
                let resume () =
                  if !used then invalid_arg "Runtime: continuation reused";
                  used := true;
                  let v = f () in
                  (* The local state of the process after this step is a
                     deterministic function of its invocations (recorded
                     in the history) and the results of its atomic
                     actions; folding the result hashes gives an
                     observation digest that stands in for the opaque
                     continuation when fingerprinting configurations. *)
                  cell.obs <- combine cell.obs (hash_value v);
                  continue k v
                in
                let kill () =
                  if not !used then begin
                    used := true;
                    try discontinue k Killed with Killed -> ()
                  end
                in
                cell.slot <- S_ready { resume; kill })
        | _ -> None);
  }

let spawn cell comp =
  match cell.slot with
  | S_idle -> match_with comp () (handler cell)
  | S_ready _ | S_crashed -> invalid_arg "Runtime.spawn: process not idle"

let grant cell =
  match cell.slot with
  | S_ready s ->
      (* The suspension will be replaced by the handler when the
         computation next suspends (or by [retc]/[exnc] when it
         finishes), so clear it first to catch reentrancy bugs. *)
      cell.slot <- S_idle;
      s.resume ()
  | S_idle | S_crashed -> invalid_arg "Runtime.grant: process not ready"

let crash cell =
  match cell.slot with
  | S_ready s ->
      cell.slot <- S_crashed;
      s.kill ()
  | S_idle -> cell.slot <- S_crashed
  | S_crashed -> ()
