open Effect
open Effect.Deep

(* One declared (or observed) access to a base object: which object and
   whether it may be (was) written. *)
type access = { obj : int; write : bool }

(* The access footprint of a pending atomic action: which base objects
   it touches and whether it may write them.  [Opaque] (the legacy
   [atomic]) conflicts with everything; base objects declare precise
   footprints so the exploration engine can recognize commuting steps
   (partial-order reduction). *)
type footprint = Opaque | Access of access | Multi of access list

(* Canonical access-list form: one entry per object (write = the OR of
   the merged entries), sorted by object id. *)
let normalize accs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun a ->
      match Hashtbl.find_opt tbl a.obj with
      | None -> Hashtbl.add tbl a.obj a.write
      | Some w -> Hashtbl.replace tbl a.obj (w || a.write))
    accs;
  Hashtbl.fold (fun obj write acc -> { obj; write } :: acc) tbl []
  |> List.sort (fun a b -> compare a.obj b.obj)

let accesses = function
  | Opaque -> None
  | Access a -> Some [ a ]
  | Multi accs -> Some accs

let of_accesses accs =
  match normalize accs with [ a ] -> Access a | accs -> Multi accs

let union a b =
  match (a, b) with
  | Opaque, _ | _, Opaque -> Opaque
  | a, b ->
      (* [accesses] is total on non-Opaque footprints. *)
      of_accesses (Option.get (accesses a) @ Option.get (accesses b))

let conflict a b = a.obj = b.obj && (a.write || b.write)

let footprints_commute a b =
  match (accesses a, accesses b) with
  | Some la, Some lb ->
      not (List.exists (fun x -> List.exists (conflict x) lb) la)
  | None, _ | _, None -> false

let covers outer inner =
  match (accesses outer, accesses inner) with
  | None, _ -> true (* Opaque claims everything *)
  | Some _, None -> false (* only Opaque covers Opaque *)
  | Some lo, Some li ->
      List.for_all
        (fun a ->
          List.exists (fun b -> b.obj = a.obj && (b.write || not a.write)) lo)
        li

let pp_access fmt a =
  Format.fprintf fmt "%c%d" (if a.write then 'W' else 'R') a.obj

let pp_footprint fmt = function
  | Opaque -> Format.pp_print_string fmt "opaque"
  | Access a -> pp_access fmt a
  | Multi accs ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           pp_access)
        accs

(* ------------------------------------------------------------------ *)
(* Conflict bitmasks: the footprint operations above, precomputed.

   Registry-issued object ids are small positive ints (dense from 1)
   and orphan ids are negative, so almost every footprint seen by the
   exploration engines fits two machine words: [m_r] has bit [i] set
   iff object [i] is accessed at all, [m_w] iff it may be written
   (0 <= i < mask_width).  Ids outside that range spill into [m_rest],
   and since the bit range and the spill range are disjoint, a bit-part
   access can never conflict with a rest-part access — the commutation
   check is two ANDs plus a rarely-taken list fallback.  Masks are
   computed once per suspension (and once per nested declaration), so
   the per-decision hot paths — [masks_commute] in the POR/DPOR sleep
   logic, [mask_covers] in the sanitizer — never walk access lists. *)

let mask_width = 62

type mask = {
  m_opaque : bool;
  m_r : int;  (* presence bits: object i is read or written *)
  m_w : int;  (* write bits: object i may be written *)
  m_rest : access list;  (* normalized accesses with ids outside [0,61] *)
}

let empty_mask = { m_opaque = false; m_r = 0; m_w = 0; m_rest = [] }
let opaque_mask = { m_opaque = true; m_r = 0; m_w = 0; m_rest = [] }

let mask_of_footprint = function
  | Opaque -> opaque_mask
  | fp ->
      let r = ref 0 and w = ref 0 and rest = ref [] in
      List.iter
        (fun a ->
          if a.obj >= 0 && a.obj < mask_width then begin
            let bit = 1 lsl a.obj in
            r := !r lor bit;
            if a.write then w := !w lor bit
          end
          else rest := a :: !rest)
        (Option.get (accesses fp));
      {
        m_opaque = false;
        m_r = !r;
        m_w = !w;
        m_rest = (match !rest with [] -> [] | rs -> normalize rs);
      }

let mask_union a b =
  if a.m_opaque || b.m_opaque then opaque_mask
  else
    {
      m_opaque = false;
      m_r = a.m_r lor b.m_r;
      m_w = a.m_w lor b.m_w;
      m_rest =
        (match (a.m_rest, b.m_rest) with
        | [], r | r, [] -> r
        | ra, rb -> normalize (ra @ rb));
    }

(* Mirrors [footprints_commute]: Opaque commutes with nothing. *)
let masks_commute a b =
  (not (a.m_opaque || b.m_opaque))
  && (a.m_w land b.m_r) lor (b.m_w land a.m_r) = 0
  && (match (a.m_rest, b.m_rest) with
     | [], _ | _, [] -> true
     | ra, rb -> not (List.exists (fun x -> List.exists (conflict x) rb) ra))

(* Mirrors [covers outer (Access {obj; write})]. *)
let mask_covers m ~obj ~write =
  m.m_opaque
  ||
  if obj >= 0 && obj < mask_width then
    let bit = 1 lsl obj in
    if write then m.m_w land bit <> 0 else m.m_r land bit <> 0
  else
    List.exists (fun b -> b.obj = obj && (b.write || not write)) m.m_rest

let mask_conflicts_access m (a : access) =
  m.m_opaque
  ||
  if a.obj >= 0 && a.obj < mask_width then
    let bit = 1 lsl a.obj in
    if a.write then m.m_r land bit <> 0 else m.m_w land bit <> 0
  else List.exists (fun b -> conflict a b) m.m_rest

type _ Effect.t += Atomic : footprint * (unit -> 'a) -> 'a Effect.t

exception Killed

type status = Idle | Ready | Crashed

(* 64-bit finalizer in the splitmix/xorshift-star family.  OCaml int
   literals must fit 63 bits, so the multipliers are the xorshift64*
   constant and the FNV-64 prime rather than the classic murmur ones
   (0xff51afd7ed558ccd does not fit). *)
let mix64 h =
  let h = h lxor (h lsr 29) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 32) in
  let h = h * 0x100000001b3 in
  h lxor (h lsr 29)

(* FNV-style combination with a 64-bit finish; not commutative, so
   callers must fold in a fixed order. *)
let combine h v = mix64 ((h * 0x100000001b3) lxor v)

(* Deep structural hash over the whole value: an explicit traversal
   that folds every immediate, every string byte and every float's bit
   pattern through the 64-bit mixer.  The previous
   [Hashtbl.hash_param 256 512] silently truncated values deeper than
   its node budget, a latent collision bug for long histories; this
   fold only stops at the (generous) node budget below, far beyond any
   depth-bounded exploration's history.  Tags above the last
   constructor tag (closures, objects, lazy, custom, abstract blocks)
   are not traversed — their layout is not plain fields — and fall back
   to the polymorphic hash; fingerprint components never contain
   them. *)
let hash_value v =
  let budget = ref 1_000_000 in
  let rec go h r =
    decr budget;
    if !budget < 0 then h
    else if Obj.is_int r then combine h (Obj.obj r : int)
    else
      let t = Obj.tag r in
      if t <= Obj.last_non_constant_constructor_tag then begin
        let n = Obj.size r in
        let h = ref (combine h ((t lsl 16) lxor n)) in
        for i = 0 to n - 1 do
          h := go !h (Obj.field r i)
        done;
        !h
      end
      else if t = Obj.string_tag then begin
        let s : string = Obj.obj r in
        let acc = ref (combine h (String.length s)) in
        String.iter
          (fun c -> acc := (!acc * 0x100000001b3) lxor Char.code c)
          s;
        mix64 !acc
      end
      else if t = Obj.double_tag then
        combine h (Int64.to_int (Int64.bits_of_float (Obj.obj r : float)))
      else if t = Obj.double_array_tag then begin
        let a : float array = Obj.obj r in
        Array.fold_left
          (fun h f -> combine h (Int64.to_int (Int64.bits_of_float f)))
          (combine h (Array.length a))
          a
      end
      else combine h (Hashtbl.hash r)
  in
  mix64 (go 0x811c9dc5 (Obj.repr v))

(* ------------------------------------------------------------------ *)
(* Shared-state fingerprint registry.

   Base objects cannot be inspected from outside (their state lives in
   closures), so each constructor registers a reader that digests its
   current state.  The registry in effect while an implementation
   instance is alive collects the readers of every base object that
   instance allocates; the explorer folds them into configuration
   fingerprints.  The "current registry" is domain-local so parallel
   explorers do not observe each other's allocations.

   The digest is maintained {e incrementally}, Zobrist-style: each
   object contributes [combine id (reader ())], the registry digest is
   the XOR of all contributions, and a write reported through [touch]
   marks its object dirty so only touched objects are re-read at the
   next [registry_digest] call.  A full fold would be O(objects) per
   configuration — factories preallocate their object pools (the
   register-consensus factory allocates 4096 rounds of registers up
   front), so the fold dominated every fingerprint; the incremental
   digest is O(writes since the last digest) instead.  XOR makes the
   combination order-free (contributions carry the object's own id, so
   equal multisets of (id, state) pairs — i.e. equal shared states of
   two instances of one deterministic factory — digest equally).

   Exactness rests on the touch contract: every physical mutation of a
   registered object's state is reported via [touch ~write:true] with
   the owning object's id while its registry is current.  The
   instrumented base-object layer establishes this by construction
   (stores route through [Slx_base_objects.store], which touches the
   {e owning} cell even when the surrounding atomic action misdeclares
   its footprint), and the sanitizer shadow is the dynamic check of
   precisely this reporting. *)

type registry = {
  mutable readers : (unit -> int) array;  (* slot [id - 1] *)
  mutable contrib : int array;  (* last XOR contribution per object *)
  mutable dirty : int list;  (* ids re-read at the next digest *)
  mutable dirty_flag : Bytes.t;  (* dedup for [dirty]; slot [id - 1] *)
  mutable digest : int;  (* XOR of [contrib.(0 .. next_id - 2)] *)
  mutable next_id : int;
}

let current_registry : registry option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let no_reader : unit -> int = fun () -> 0

let fresh_registry () : registry =
  {
    readers = Array.make 16 no_reader;
    contrib = Array.make 16 0;
    dirty = [];
    dirty_flag = Bytes.make 16 '\000';
    digest = 0x811c9dc5;
    next_id = 1;
  }

(* Fallback id source for objects allocated with no registry current
   (plain [Runner.run]s); footprint ids only ever need to be distinct
   within one implementation instance, and negative ids cannot collide
   with registry-issued positive ones. *)
let orphan_ids : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let register_object reader =
  match !(Domain.DLS.get current_registry) with
  | None ->
      let c = Domain.DLS.get orphan_ids in
      decr c;
      !c
  | Some reg ->
      let id = reg.next_id in
      reg.next_id <- id + 1;
      let cap = Array.length reg.readers in
      if id > cap then begin
        let readers = Array.make (2 * cap) no_reader in
        Array.blit reg.readers 0 readers 0 cap;
        reg.readers <- readers;
        let contrib = Array.make (2 * cap) 0 in
        Array.blit reg.contrib 0 contrib 0 cap;
        reg.contrib <- contrib;
        let flags = Bytes.make (2 * cap) '\000' in
        Bytes.blit reg.dirty_flag 0 flags 0 cap;
        reg.dirty_flag <- flags
      end;
      reg.readers.(id - 1) <- reader;
      (* The reader is callable at registration: constructors register
         after initializing the state the reader closes over. *)
      let c = combine id (reader ()) in
      reg.contrib.(id - 1) <- c;
      reg.digest <- reg.digest lxor c;
      id

(* Called (unconditionally) on every write-touch: queue the object for
   re-reading at the next digest.  Ids outside the current registry —
   orphans (negative) or a fixture touching an id it never registered —
   have no contribution to invalidate and are skipped. *)
let mark_written obj =
  match !(Domain.DLS.get current_registry) with
  | Some reg
    when obj >= 1
         && obj < reg.next_id
         && Bytes.unsafe_get reg.dirty_flag (obj - 1) = '\000' ->
      Bytes.unsafe_set reg.dirty_flag (obj - 1) '\001';
      reg.dirty <- obj :: reg.dirty
  | _ -> ()

let with_registry reg f =
  let slot = Domain.DLS.get current_registry in
  let saved = !slot in
  slot := Some reg;
  match f () with
  | x ->
      slot := saved;
      x
  | exception e ->
      slot := saved;
      raise e

let registry_digest (reg : registry) =
  (match reg.dirty with
  | [] -> ()
  | dirty ->
      reg.dirty <- [];
      List.iter
        (fun id ->
          Bytes.unsafe_set reg.dirty_flag (id - 1) '\000';
          let c = combine id (reg.readers.(id - 1) ()) in
          reg.digest <- reg.digest lxor reg.contrib.(id - 1) lxor c;
          reg.contrib.(id - 1) <- c)
        dirty);
  reg.digest

(* O(objects) recomputation from scratch — what [registry_digest] cost
   at every configuration before the incremental scheme, kept as the
   audit cross-check: it differs from [registry_digest] only if some
   mutation bypassed the touch contract (in which case the incremental
   digest is stale and the divergence is the diagnostic). *)
let registry_digest_full (reg : registry) =
  let d = ref 0x811c9dc5 in
  for id = 1 to reg.next_id - 1 do
    d := !d lxor combine id (reg.readers.(id - 1) ())
  done;
  !d

(* ------------------------------------------------------------------ *)
(* Shadow state: the conflict-soundness sanitizer.

   POR trusts each pending action's declared footprint; the sanitizer
   checks that trust dynamically.  Instrumented base objects report
   every physical cell access through [touch]; the domain-local frame
   tracks the footprint of the atomic action in flight, and an
   installed shadow records/validates the touches against it.

   The frame is maintained even with no shadow installed, because it
   also implements nested-atomic composition: an [atomic]/
   [atomic_access] call made while an atomic action is already
   executing runs inline (it cannot suspend again — the scheduler is
   mid-grant) and its declared footprint is folded into the step's
   effective footprint. *)

(* The touch buffer is a flat array of packed ints — [(obj lsl 1) lor
   write] — appended to with no allocation; [asr]/[land] recover the
   access (the encoding is sign-correct for negative orphan ids).
   Validation against the effective footprint is batched: once at step
   end, plus a flush at each nested declaration so every buffered touch
   is judged against the effective footprint in force when it was made
   (identical verdicts to the old per-touch check, at a fraction of the
   cost).  The shadow and probe are read from their domain-local slots
   once per step ([enter_step]) and cached in the frame, so [touch]
   itself is one domain-local read, two branches and a store. *)
type frame = {
  mutable fr_depth : int;  (* nesting depth of in-flight atomic code *)
  mutable fr_pending : footprint;  (* declared at suspension (POR-visible) *)
  mutable fr_eff : footprint;  (* pending ∪ nested declarations *)
  mutable fr_eff_mask : mask;  (* bitmask form of [fr_eff] *)
  mutable fr_buf : int array;  (* packed touches, program order *)
  mutable fr_len : int;  (* touches buffered this step *)
  mutable fr_checked : int;  (* validation watermark into [fr_buf] *)
  mutable fr_shadow : shadow option;  (* cached for the step in flight *)
  mutable fr_probe : probe option;  (* cached for the step in flight *)
  mutable fr_active : bool;  (* shadow or probe installed *)
}

and shadow = {
  sh_record : bool;
  sh_raise : bool;
  mutable sh_steps : int;
  mutable sh_log : step_log list;  (* reverse order *)
  mutable sh_violations : violation list;  (* reverse order *)
  sh_decls : (int, mstat) Hashtbl.t;
  mutable sh_opaque : int;
}

and step_log = {
  declared : footprint;
  effective : footprint;
  touched : access list;
}

and violation = {
  v_kind : violation_kind;
  v_obj : int;
  v_write : bool;
  v_pending : footprint;
  v_step : int;
}

and violation_kind = Undeclared_touch | Undeclared_nesting | Outside_atomic

and mstat = {
  mutable ms_decl : int;
  mutable ms_touched : int;
  mutable ms_wdecl : int;
  mutable ms_wrote : int;
}

and probe = {
  mutable pr_steps : int;  (* atomic steps completed under this probe *)
  mutable pr_eff : footprint;  (* effective footprint of the last step *)
  mutable pr_touched : access list;  (* its physical touches, in order *)
  mutable pr_mask : mask;  (* observed mask of the last step *)
}

let frame_key : frame Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        fr_depth = 0;
        fr_pending = Opaque;
        fr_eff = Opaque;
        fr_eff_mask = opaque_mask;
        fr_buf = Array.make 64 0;
        fr_len = 0;
        fr_checked = 0;
        fr_shadow = None;
        fr_probe = None;
        fr_active = false;
      })

exception Shadow_violation of violation

let pp_violation fmt v =
  match v.v_kind with
  | Undeclared_touch ->
      Format.fprintf fmt
        "undeclared %s of object %d at shadow step %d (declared: %a)"
        (if v.v_write then "write" else "read")
        v.v_obj v.v_step pp_footprint v.v_pending
  | Undeclared_nesting ->
      Format.fprintf fmt
        "nested declaration escapes the pending footprint at shadow step %d \
         (escaping: %s object %d, declared: %a)"
        v.v_step
        (if v.v_write then "write" else "read")
        v.v_obj pp_footprint v.v_pending
  | Outside_atomic ->
      Format.fprintf fmt
        "%s of object %d outside any atomic action (shadow step %d)"
        (if v.v_write then "write" else "read")
        v.v_obj v.v_step

type decl_stat = {
  decl_steps : int;
  touched_steps : int;
  write_decl_steps : int;
  wrote_steps : int;
}

let make_shadow ?(record = false) ?(raise_on_violation = true) () =
  {
    sh_record = record;
    sh_raise = raise_on_violation;
    sh_steps = 0;
    sh_log = [];
    sh_violations = [];
    sh_decls = Hashtbl.create 16;
    sh_opaque = 0;
  }

let current_shadow : shadow option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_shadow sh f =
  let slot = Domain.DLS.get current_shadow in
  let saved = !slot in
  slot := Some sh;
  match f () with
  | x ->
      slot := saved;
      x
  | exception e ->
      slot := saved;
      raise e

(* ------------------------------------------------------------------ *)
(* Dynamic-conflict probe: the DPOR observed-access recorder.

   Where the shadow {e validates} touches against declarations, the
   probe merely {e records} what the last completed atomic step
   physically touched (plus its effective footprint), so the
   exploration engines can compute race reversals from dynamic
   conflicts — what a step actually did in this configuration — instead
   of declared footprints alone.  One probe per engine (per domain),
   installed around [Runner.Cursor.apply] exactly like the shadow; with
   no probe installed, [touch] stays one domain-local read and a
   branch. *)

let make_probe () =
  { pr_steps = 0; pr_eff = of_accesses []; pr_touched = []; pr_mask = empty_mask }

let current_probe : probe option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_probe pr f =
  let slot = Domain.DLS.get current_probe in
  let saved = !slot in
  slot := Some pr;
  match f () with
  | x ->
      slot := saved;
      x
  | exception e ->
      slot := saved;
      raise e

let probe_steps pr = pr.pr_steps
let probe_last_effective pr = pr.pr_eff
let probe_last_touched pr = pr.pr_touched

let probe_last_observed pr =
  match pr.pr_touched with
  | [] -> pr.pr_eff  (* uninstrumented or touch-free: trust the declaration *)
  | touched -> of_accesses touched

(* Same policy as [probe_last_observed], precomputed at step end. *)
let probe_last_observed_mask pr = pr.pr_mask

let shadow_violations sh = List.rev sh.sh_violations
let shadow_violation_count sh = List.length sh.sh_violations
let shadow_steps sh = List.rev sh.sh_log
let shadow_step_count sh = sh.sh_steps
let shadow_opaque_steps sh = sh.sh_opaque

let shadow_decl_stats sh =
  Hashtbl.fold
    (fun obj ms acc ->
      ( obj,
        {
          decl_steps = ms.ms_decl;
          touched_steps = ms.ms_touched;
          write_decl_steps = ms.ms_wdecl;
          wrote_steps = ms.ms_wrote;
        } )
      :: acc)
    sh.sh_decls []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let violate sh v =
  sh.sh_violations <- v :: sh.sh_violations;
  if sh.sh_raise then raise (Shadow_violation v)

(* The hot path: one domain-local read, a depth test, an activity test
   and a packed store.  No allocation, no footprint walk — validation
   happens in batch at [leave_step] (and at nested-declaration
   boundaries, which preserve the temporal precision of the old
   per-touch check). *)
let touch ~obj ~write =
  (* Keep the registry's incremental digest exact: every physical
     write invalidates the written object's cached contribution, with
     or without a shadow installed. *)
  if write then mark_written obj;
  let fr = Domain.DLS.get frame_key in
  if fr.fr_depth = 0 then (
    (* Outside any atomic action: a violation when a shadow judges;
       with only a probe installed there is no step to attribute the
       touch to, so it is dropped (the sanitizer is the layer that
       reports this contract breach). *)
    match !(Domain.DLS.get current_shadow) with
    | Some sh ->
        violate sh
          {
            v_kind = Outside_atomic;
            v_obj = obj;
            v_write = write;
            v_pending = Opaque;
            v_step = sh.sh_steps;
          }
    | None -> ())
  else if fr.fr_active then begin
    if fr.fr_len = Array.length fr.fr_buf then begin
      let bigger = Array.make (2 * fr.fr_len) 0 in
      Array.blit fr.fr_buf 0 bigger 0 fr.fr_len;
      fr.fr_buf <- bigger
    end;
    fr.fr_buf.(fr.fr_len) <- (obj lsl 1) lor (if write then 1 else 0);
    fr.fr_len <- fr.fr_len + 1
  end

(* Rebuild the buffered touches as an access list in program order
   (cold path: probe hand-off and record-mode logs only). *)
let buffered_touches fr =
  let rec build i acc =
    if i < 0 then acc
    else
      let p = fr.fr_buf.(i) in
      build (i - 1) ({ obj = p asr 1; write = p land 1 <> 0 } :: acc)
  in
  build (fr.fr_len - 1) []

(* Validate every touch buffered since the last watermark against the
   effective footprint currently in force.  Called at step end and
   before each nested declaration widens the footprint, so each touch
   is judged exactly as the old per-touch check judged it.  Under a
   raising shadow the first undeclared touch (in program order)
   raises, as before. *)
let validate_buffer fr sh =
  if fr.fr_checked < fr.fr_len then begin
    let m = fr.fr_eff_mask in
    for i = fr.fr_checked to fr.fr_len - 1 do
      let p = fr.fr_buf.(i) in
      let obj = p asr 1 and write = p land 1 <> 0 in
      if not (mask_covers m ~obj ~write) then
        violate sh
          {
            v_kind = Undeclared_touch;
            v_obj = obj;
            v_write = write;
            v_pending = fr.fr_pending;
            v_step = sh.sh_steps;
          }
    done;
    fr.fr_checked <- fr.fr_len
  end

(* The observed mask of the buffered touches; the empty buffer defers
   to the effective mask (uninstrumented or touch-free step: trust the
   declaration), mirroring [probe_last_observed]. *)
let observed_mask_of_buffer fr =
  if fr.fr_len = 0 then fr.fr_eff_mask
  else begin
    let r = ref 0 and w = ref 0 and rest = ref [] in
    for i = 0 to fr.fr_len - 1 do
      let p = fr.fr_buf.(i) in
      let obj = p asr 1 and write = p land 1 <> 0 in
      if obj >= 0 && obj < mask_width then begin
        let bit = 1 lsl obj in
        r := !r lor bit;
        if write then w := !w lor bit
      end
      else rest := { obj; write } :: !rest
    done;
    {
      m_opaque = false;
      m_r = !r;
      m_w = !w;
      m_rest = (match !rest with [] -> [] | rs -> normalize rs);
    }
  end

(* Step bracketing: [enter_step] as a grant begins executing its
   pending action, [leave_step] when the action's body returns (or
   raises) — crucially {e before} the continuation is resumed, because
   the continuation runs up to the process's next suspension inside
   the same dynamic extent.  The shadow and probe slots are read once
   here and cached in the frame for the step's duration. *)
let enter_step fr fp fp_mask =
  let sh = !(Domain.DLS.get current_shadow) in
  let pr = !(Domain.DLS.get current_probe) in
  fr.fr_shadow <- sh;
  fr.fr_probe <- pr;
  fr.fr_active <- (sh != None || pr != None);
  fr.fr_depth <- 1;
  fr.fr_pending <- fp;
  fr.fr_eff <- fp;
  fr.fr_eff_mask <- fp_mask;
  fr.fr_len <- 0;
  fr.fr_checked <- 0

let leave_step fr =
  fr.fr_depth <- 0;
  (match fr.fr_probe with
  | None -> ()
  | Some pr ->
      pr.pr_steps <- pr.pr_steps + 1;
      pr.pr_eff <- fr.fr_eff;
      pr.pr_touched <- buffered_touches fr;
      pr.pr_mask <- observed_mask_of_buffer fr);
  (match fr.fr_shadow with
  | None -> ()
  | Some sh ->
      (* Per-object declaration stats from the touched masks: one pair
         of bit tests per declared access instead of two list walks. *)
      let obs = observed_mask_of_buffer fr in
      let touched_r = (if fr.fr_len = 0 then 0 else obs.m_r)
      and touched_w = (if fr.fr_len = 0 then 0 else obs.m_w)
      and touched_rest = if fr.fr_len = 0 then [] else obs.m_rest in
      (match accesses fr.fr_pending with
      | None -> sh.sh_opaque <- sh.sh_opaque + 1
      | Some decl ->
          List.iter
            (fun (a : access) ->
              let ms =
                match Hashtbl.find_opt sh.sh_decls a.obj with
                | Some ms -> ms
                | None ->
                    let ms =
                      { ms_decl = 0; ms_touched = 0; ms_wdecl = 0; ms_wrote = 0 }
                    in
                    Hashtbl.add sh.sh_decls a.obj ms;
                    ms
              in
              let was_touched, was_written =
                if a.obj >= 0 && a.obj < mask_width then
                  let bit = 1 lsl a.obj in
                  (touched_r land bit <> 0, touched_w land bit <> 0)
                else
                  ( List.exists
                      (fun (t : access) -> t.obj = a.obj)
                      touched_rest,
                    List.exists
                      (fun (t : access) -> t.obj = a.obj && t.write)
                      touched_rest )
              in
              ms.ms_decl <- ms.ms_decl + 1;
              if was_touched then ms.ms_touched <- ms.ms_touched + 1;
              if a.write then begin
                ms.ms_wdecl <- ms.ms_wdecl + 1;
                if was_written then ms.ms_wrote <- ms.ms_wrote + 1
              end)
            decl);
      if sh.sh_record then
        sh.sh_log <-
          {
            declared = fr.fr_pending;
            effective = fr.fr_eff;
            touched = buffered_touches fr;
          }
          :: sh.sh_log;
      (* Batched validation, before the step counter advances so a
         violation's [v_step] is the ordinal of the step it occurred
         in — exactly what the old per-touch check recorded.  The
         counter still advances when a raising shadow aborts the step,
         as it did when the raise unwound through this bracket. *)
      let deferred =
        match validate_buffer fr sh with
        | () -> None
        | exception e -> Some e
      in
      sh.sh_steps <- sh.sh_steps + 1;
      (match deferred with
      | None -> ()
      | Some e ->
          fr.fr_len <- 0;
          fr.fr_checked <- 0;
          fr.fr_shadow <- None;
          fr.fr_probe <- None;
          fr.fr_active <- false;
          raise e));
  fr.fr_len <- 0;
  fr.fr_checked <- 0;
  fr.fr_shadow <- None;
  fr.fr_probe <- None;
  fr.fr_active <- false

(* A nested atomic call: runs inline, folds its declaration into the
   effective footprint, and — under a shadow — checks that the nested
   declaration does not escape the POR-visible pending footprint (the
   explorer decided commutation before the nested call could be
   known).  Touches buffered so far are validated first, against the
   effective footprint they were made under — widening it below must
   not retroactively legitimize them. *)
let enter_nested fr fp =
  (match fr.fr_shadow with
  | None -> ()
  | Some sh ->
      validate_buffer fr sh;
      if not (covers fr.fr_pending fp) then begin
        let v_obj, v_write =
          match accesses fp with
          | None -> (min_int, true)  (* a nested [atomic]: opaque *)
          | Some accs -> (
              match
                List.find_opt
                  (fun a -> not (covers fr.fr_pending (Access a)))
                  accs
              with
              | Some a -> (a.obj, a.write)
              | None -> (min_int, true))
        in
        violate sh
          {
            v_kind = Undeclared_nesting;
            v_obj;
            v_write;
            v_pending = fr.fr_pending;
            v_step = sh.sh_steps;
          }
      end);
  fr.fr_eff <- union fr.fr_eff fp;
  fr.fr_eff_mask <- mask_union fr.fr_eff_mask (mask_of_footprint fp);
  fr.fr_depth <- fr.fr_depth + 1

let atomic_with fp f =
  let fr = Domain.DLS.get frame_key in
  if fr.fr_depth > 0 then begin
    enter_nested fr fp;
    match f () with
    | v ->
        fr.fr_depth <- fr.fr_depth - 1;
        v
    | exception e ->
        fr.fr_depth <- fr.fr_depth - 1;
        raise e
  end
  else perform (Atomic (fp, f))

let atomic f = atomic_with Opaque f
let atomic_access ~obj ~write f = atomic_with (Access { obj; write }) f

(* ------------------------------------------------------------------ *)
(* Cells.                                                              *)

(* A suspended process is a pair of one-shot closures sharing a [used]
   flag: [resume] executes the pending atomic action and runs to the
   next suspension point; [kill] unwinds the computation with
   [Killed]. *)
type suspended = {
  resume : unit -> unit;
  kill : unit -> unit;
  pending : footprint;  (* of the atomic action awaiting its grant *)
  pending_mask : mask;  (* its bitmask, computed once at suspension *)
}

type slot = S_idle | S_ready of suspended | S_crashed

type cell = { mutable slot : slot; mutable obs : int }

let make_cell () = { slot = S_idle; obs = 0x811c9dc5 }

let status cell =
  match cell.slot with
  | S_idle -> Idle
  | S_ready _ -> Ready
  | S_crashed -> Crashed

let pending_footprint cell =
  match cell.slot with S_ready s -> Some s.pending | S_idle | S_crashed -> None

let pending_mask cell =
  match cell.slot with
  | S_ready s -> Some s.pending_mask
  | S_idle | S_crashed -> None

let obs cell = cell.obs

let handler cell =
  {
    retc = (fun () -> cell.slot <- S_idle);
    exnc =
      (fun e ->
        match e with Killed -> cell.slot <- S_crashed | e -> raise e);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Atomic (fp, f) ->
            Some
              (fun (k : (b, unit) continuation) ->
                let used = ref false in
                let fp_mask = mask_of_footprint fp in
                let resume () =
                  if !used then invalid_arg "Runtime: continuation reused";
                  used := true;
                  (* Bracket the action body — not the continuation:
                     [continue k v] below runs the process up to its
                     next suspension inside this call, and that code
                     is between atomic steps (local by contract). *)
                  let fr = Domain.DLS.get frame_key in
                  enter_step fr fp fp_mask;
                  let v =
                    match f () with
                    | v ->
                        leave_step fr;
                        v
                    | exception e ->
                        leave_step fr;
                        raise e
                  in
                  (* The local state of the process after this step is a
                     deterministic function of its invocations (recorded
                     in the history) and the results of its atomic
                     actions; folding the result hashes gives an
                     observation digest that stands in for the opaque
                     continuation when fingerprinting configurations. *)
                  cell.obs <- combine cell.obs (hash_value v);
                  continue k v
                in
                let kill () =
                  if not !used then begin
                    used := true;
                    try discontinue k Killed with Killed -> ()
                  end
                in
                cell.slot <-
                  S_ready { resume; kill; pending = fp; pending_mask = fp_mask })
        | _ -> None);
  }

let spawn cell comp =
  match cell.slot with
  | S_idle -> match_with comp () (handler cell)
  | S_ready _ | S_crashed -> invalid_arg "Runtime.spawn: process not idle"

let grant cell =
  match cell.slot with
  | S_ready s ->
      (* The suspension will be replaced by the handler when the
         computation next suspends (or by [retc]/[exnc] when it
         finishes), so clear it first to catch reentrancy bugs. *)
      cell.slot <- S_idle;
      s.resume ()
  | S_idle | S_crashed -> invalid_arg "Runtime.grant: process not ready"

let crash cell =
  match cell.slot with
  | S_ready s ->
      cell.slot <- S_crashed;
      s.kill ()
  | S_idle -> cell.slot <- S_crashed
  | S_crashed -> ()
