open Slx_history

type ('inv, 'res) view = {
  time : int;
  n : int;
  history : ('inv, 'res) History.t;
  status : Proc.t -> Runtime.status;
  steps : Proc.t -> int;
}

type ('inv, 'res) decision =
  | Schedule of Proc.t
  | Invoke of Proc.t * 'inv
  | Crash of Proc.t
  | Stop

type ('inv, 'res) t = ('inv, 'res) view -> ('inv, 'res) decision

type ('inv, 'res) workload = Proc.t -> int -> 'inv option

let forever f : _ workload = fun p _ -> Some (f p)

let n_times n f : _ workload = fun p k -> if k < n then Some (f p k) else None

(* How many invocations process [p] has issued so far in the run. *)
let invocation_count view p =
  History.length
    (History.filter
       (fun e -> Event.is_invocation e && Proc.equal (Event.proc e) p)
       view.history)

(* The decision for one candidate process, if any: step it if ready,
   invoke it if idle and the workload has more work. *)
let eligible workload view p =
  match view.status p with
  | Runtime.Ready -> Some (Schedule p)
  | Runtime.Idle -> begin
      match workload p (invocation_count view p) with
      | Some inv -> Some (Invoke (p, inv))
      | None -> None
    end
  | Runtime.Crashed -> None

let round_robin ?procs ~workload () : _ t =
  let cursor = ref 0 in
  fun view ->
    let procs = Option.value procs ~default:(Proc.all ~n:view.n) in
    let len = List.length procs in
    let rec try_from k =
      if k >= len then Stop
      else
        let p = List.nth procs ((!cursor + k) mod len) in
        match eligible workload view p with
        | Some d ->
            cursor := (!cursor + k + 1) mod len;
            d
        | None -> try_from (k + 1)
    in
    try_from 0

let random ?procs ~seed ~workload () : _ t =
  let rng = Random.State.make [| seed |] in
  fun view ->
    let procs = Option.value procs ~default:(Proc.all ~n:view.n) in
    let candidates = List.filter_map (eligible workload view) procs in
    match candidates with
    | [] -> Stop
    | _ :: _ ->
        List.nth candidates (Random.State.int rng (List.length candidates))

let solo p ~workload : _ t =
 fun view ->
  match eligible workload view p with Some d -> d | None -> Stop

let of_script decisions : _ t =
  let remaining = ref decisions in
  fun _view ->
    match !remaining with
    | [] -> Stop
    | d :: rest ->
        remaining := rest;
        d

let with_crashes crashes d : _ t =
  let pending = ref crashes in
  fun view ->
    match List.find_opt (fun (t, _) -> t <= view.time) !pending with
    | Some ((_, p) as c) when view.status p <> Runtime.Crashed ->
        pending := List.filter (fun c' -> c' <> c) !pending;
        Crash p
    | Some ((_, _) as c) ->
        (* Already crashed by other means; drop the injection. *)
        pending := List.filter (fun c' -> c' <> c) !pending;
        d view
    | None -> d view

let stop_after limit d : _ t =
 fun view -> if view.time >= limit then Stop else d view
