(** The outcome of a bounded run: the data liveness checkers consume.

    The paper's liveness properties quantify over infinite fair
    executions.  This repository finitizes them (DESIGN.md, Section 5):
    a bounded run carries an {e observation window} — its final
    segment — and the infinite-execution notions are interpreted as:

    - “takes infinitely many steps”  ⇝  takes a step inside the window;
    - “correct”                      ⇝  not crashed;
    - “makes progress”               ⇝  receives a good response inside
                                         the window.

    A report records the full history, the time of every event, and the
    time of every scheduling grant, so those interpretations (and any
    alternative one) can be evaluated after the fact. *)

open Slx_history

type ('inv, 'res) t = {
  n : int;  (** Number of processes in the system. *)
  history : ('inv, 'res) History.t;  (** The external history. *)
  event_times : int array;
      (** [event_times.(i)] is the time (scheduler tick) at which the
          [i]-th event of [history] occurred. *)
  grants : (int * Proc.t) list;
      (** Each scheduling grant as [(time, process)], in order. *)
  crashed : Proc.Set.t;  (** Processes crashed during the run. *)
  total_time : int;  (** Number of scheduler ticks consumed. *)
  window : int;
      (** Length of the observation window; the window covers times
          [t] with [total_time - window <= t < total_time]. *)
  stopped : [ `Driver_stop | `Max_steps | `Quiescent ];
      (** Why the run ended: the driver said [Stop]; the step budget
          ran out; or no process was runnable and the driver had no
          invocation to issue. *)
}

val window_start : ('inv, 'res) t -> int
(** First time unit inside the window ([max 0 (total_time - window)]). *)

val in_window : ('inv, 'res) t -> int -> bool
(** [in_window r t] iff time [t] lies inside the window. *)

val steps_total : ('inv, 'res) t -> Proc.t -> int
(** Total scheduling grants received by a process. *)

val steps_in_window : ('inv, 'res) t -> Proc.t -> int
(** Grants received by a process inside the window. *)

val active_procs : ('inv, 'res) t -> Proc.Set.t
(** Processes taking at least one step inside the window — the bounded
    reading of “processes that take infinitely many steps”. *)

val correct_procs : ('inv, 'res) t -> Proc.Set.t
(** Non-crashed processes, among [1..n]. *)

val responses_in_window : ('inv, 'res) t -> Proc.t -> 'res list
(** Responses received by a process at times inside the window. *)

val makes_progress : good:('res -> bool) -> ('inv, 'res) t -> Proc.t -> bool
(** [makes_progress ~good r p] iff [p] receives at least one response
    satisfying [good] inside the window — the bounded reading of the
    paper's “process [p] makes progress” (Section 5.1). *)

val pp :
  pp_inv:(Format.formatter -> 'inv -> unit) ->
  pp_res:(Format.formatter -> 'res -> unit) ->
  Format.formatter ->
  ('inv, 'res) t ->
  unit
(** A human-readable summary (history, per-process steps, window). *)
