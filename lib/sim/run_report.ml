open Slx_history

type ('inv, 'res) t = {
  n : int;
  history : ('inv, 'res) History.t;
  event_times : int array;
  grants : (int * Proc.t) list;
  crashed : Proc.Set.t;
  total_time : int;
  window : int;
  stopped : [ `Driver_stop | `Max_steps | `Quiescent ];
}

let window_start r = max 0 (r.total_time - r.window)

let in_window r t = t >= window_start r && t < r.total_time

let steps_total r p =
  List.fold_left
    (fun acc (_, q) -> if Proc.equal p q then acc + 1 else acc)
    0 r.grants

let steps_in_window r p =
  List.fold_left
    (fun acc (t, q) ->
      if Proc.equal p q && in_window r t then acc + 1 else acc)
    0 r.grants

let active_procs r =
  List.fold_left
    (fun acc (t, q) -> if in_window r t then Proc.Set.add q acc else acc)
    Proc.Set.empty r.grants

let correct_procs r =
  Proc.Set.diff (Proc.Set.of_list (Proc.all ~n:r.n)) r.crashed

let responses_in_window r p =
  let events = History.to_list r.history in
  List.filteri (fun i _ -> in_window r r.event_times.(i)) events
  |> List.filter_map (fun e ->
         if Proc.equal (Event.proc e) p then Event.response e else None)

let makes_progress ~good r p =
  List.exists good (responses_in_window r p)

let pp ~pp_inv ~pp_res fmt r =
  let pp_steps fmt p =
    Format.fprintf fmt "%a:%d/%d" Proc.pp p (steps_in_window r p)
      (steps_total r p)
  in
  Format.fprintf fmt
    "@[<v>history: %a@,steps (window/total): %a@,crashed: %a@,time: %d  \
     window: %d  stopped: %s@]"
    (History.pp ~pp_inv ~pp_res)
    r.history
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "  ")
       pp_steps)
    (Proc.all ~n:r.n) Proc.pp_set r.crashed r.total_time r.window
    (match r.stopped with
    | `Driver_stop -> "driver"
    | `Max_steps -> "budget"
    | `Quiescent -> "quiescent")
