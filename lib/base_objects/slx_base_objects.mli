(** Base objects: the atomic hardware primitives of the paper's model.

    “Base objects are shared objects, like read/write registers,
    test-and-set, compare-and-swap and etc., which are usually provided
    by the hardware and which are used to implement higher level shared
    objects.” (Section 2.)

    Every primitive here counts as exactly one atomic step of the
    calling process: it is implemented with {!Slx_sim.Runtime.atomic}
    and therefore suspends the caller until the scheduler grants it a
    step.  Base objects must only be used from algorithm code running
    under the {!Slx_sim.Runner}.

    The paper's results about consensus depend on {e which} base
    objects an implementation uses (registers only vs. stronger
    primitives); keeping each primitive in its own module makes that
    restriction syntactically visible in implementation code.

    Every constructor additionally registers a state reader with the
    current {!Slx_sim.Runtime} fingerprint registry (a no-op outside
    the exploration engine), so that the shared state of a
    configuration can be digested for transposition pruning. *)

(** Atomic read/write registers — the only base object permitted to the
    consensus implementations of Theorems 5.2 and Corollaries 4.5,
    4.10. *)
module Register : sig
  type 'a t

  val make : 'a -> 'a t
  (** A fresh register holding the given initial value.  Allocation is
      not a step (it happens at implementation-construction time). *)

  val read : 'a t -> 'a
  (** Atomic read: one step. *)

  val write : 'a t -> 'a -> unit
  (** Atomic write: one step. *)
end

(** Compare-and-swap objects — used by the TM Algorithm 1 ([I(1,2)])
    for its versioned value object [C]. *)
module Cas : sig
  type 'a t

  val make : 'a -> 'a t

  val read : 'a t -> 'a
  (** Atomic read: one step. *)

  val compare_and_swap : 'a t -> expected:'a -> desired:'a -> bool
  (** Atomically: if the current value is structurally equal to
      [expected], install [desired] and return [true]; otherwise return
      [false].  One step. *)
end

(** Test-and-set objects. *)
module Test_and_set : sig
  type t

  val make : unit -> t

  val test_and_set : t -> bool
  (** Atomically sets the flag; returns [true] iff the caller was the
      first to set it.  One step. *)

  val reset : t -> unit
  (** Atomically clears the flag (the primitive test-and-set locks use
      to release).  One step. *)

  val read : t -> bool
end

(** Fetch-and-add counters. *)
module Fetch_and_add : sig
  type t

  val make : int -> t

  val fetch_and_add : t -> int -> int
  (** [fetch_and_add c d] atomically adds [d] and returns the previous
      value.  One step. *)

  val read : t -> int
end

(** Atomic FIFO queues — the classical consensus-number-2 base object
    (Herlihy 1991).  Used by {!Slx_consensus.Queue_consensus} to build
    wait-free 2-process consensus, and by the explorer experiments to
    find, automatically, where the construction breaks at three
    processes. *)
module Queue : sig
  type 'a t

  val make : 'a list -> 'a t
  (** A fresh queue holding the given items, front first. *)

  val enqueue : 'a t -> 'a -> unit
  (** One step. *)

  val dequeue : 'a t -> 'a option
  (** [None] on empty.  One step. *)
end

(** Atomic-snapshot objects of [n] single-writer segments — the object
    [R[1..n]] of Algorithm 1.  [scan] returns all segments in one
    atomic step, as the paper's algorithm assumes ([snapshot <-
    R.scan()]). *)
module Snapshot : sig
  type 'a t

  val make : n:int -> 'a -> 'a t
  (** [make ~n init] is a snapshot object with segments [1..n], all
      initialized to [init]. *)

  val update : 'a t -> Slx_history.Proc.t -> 'a -> unit
  (** [update s p v] writes [v] into segment [p].  One step. *)

  val scan : 'a t -> 'a array
  (** All segments, indexed [0 .. n-1] (segment of process [p] at index
      [p - 1]).  One step. *)
end
