(* Every constructor registers a state reader with the fingerprint
   registry currently in effect (a no-op outside the explorer), so the
   exploration engine can digest the shared state of a configuration.
   Registration also yields the object's footprint id: every primitive
   declares, via [atomic_access], which object it touches and whether
   it writes, so the explorer's partial-order reduction can recognize
   commuting steps.  See Runtime's "Configuration fingerprinting" and
   "Access footprints" sections.

   Primitives route every physical cell access through [load]/[store],
   which report the access to the sanitizer shadow (Runtime.touch, a
   no-op unless a shadow is installed).  The report is attached to the
   cell, not to the declaring wrapper, so a primitive whose declared
   footprint disagrees with what it physically does is caught by the
   race detector rather than trusted. *)
let fingerprinted state read =
  Slx_sim.Runtime.register_object (fun () ->
      Slx_sim.Runtime.hash_value (read state))

let reads ~obj f = Slx_sim.Runtime.atomic_access ~obj ~write:false f
let writes ~obj f = Slx_sim.Runtime.atomic_access ~obj ~write:true f

(* Shadow-reported ref-cell accesses.  [obj] is the id of the base
   object owning the cell. *)
let load ~obj st =
  Slx_sim.Runtime.touch ~obj ~write:false;
  !st

let store ~obj st v =
  Slx_sim.Runtime.touch ~obj ~write:true;
  st := v

module Register = struct
  type 'a t = { st : 'a ref; obj : int }

  let make v =
    let st = ref v in
    { st; obj = fingerprinted st ( ! ) }

  let read r = reads ~obj:r.obj (fun () -> load ~obj:r.obj r.st)
  let write r v = writes ~obj:r.obj (fun () -> store ~obj:r.obj r.st v)
end

module Cas = struct
  type 'a t = { st : 'a ref; obj : int }

  let make v =
    let st = ref v in
    { st; obj = fingerprinted st ( ! ) }

  let read r = reads ~obj:r.obj (fun () -> load ~obj:r.obj r.st)

  let compare_and_swap r ~expected ~desired =
    writes ~obj:r.obj (fun () ->
        if load ~obj:r.obj r.st = expected then begin
          store ~obj:r.obj r.st desired;
          true
        end
        else false)
end

module Test_and_set = struct
  type t = { st : bool ref; obj : int }

  let make () =
    let st = ref false in
    { st; obj = fingerprinted st ( ! ) }

  let test_and_set r =
    writes ~obj:r.obj (fun () ->
        if load ~obj:r.obj r.st then false
        else begin
          store ~obj:r.obj r.st true;
          true
        end)

  let reset r = writes ~obj:r.obj (fun () -> store ~obj:r.obj r.st false)

  let read r = reads ~obj:r.obj (fun () -> load ~obj:r.obj r.st)
end

module Fetch_and_add = struct
  type t = { st : int ref; obj : int }

  let make v =
    let st = ref v in
    { st; obj = fingerprinted st ( ! ) }

  let fetch_and_add r d =
    writes ~obj:r.obj (fun () ->
        let old = load ~obj:r.obj r.st in
        store ~obj:r.obj r.st (old + d);
        old)

  let read r = reads ~obj:r.obj (fun () -> load ~obj:r.obj r.st)
end

module Queue = struct
  type 'a t = { st : 'a list ref; obj : int }  (* front of the queue first *)

  let make items =
    let st = ref items in
    { st; obj = fingerprinted st ( ! ) }

  let enqueue q v =
    writes ~obj:q.obj (fun () ->
        store ~obj:q.obj q.st (load ~obj:q.obj q.st @ [ v ]))

  let dequeue q =
    writes ~obj:q.obj (fun () ->
        match load ~obj:q.obj q.st with
        | [] -> None
        | x :: rest ->
            store ~obj:q.obj q.st rest;
            Some x)
end

module Snapshot = struct
  type 'a t = { st : 'a array; obj : int }

  let make ~n init =
    if n < 1 then invalid_arg "Snapshot.make: n must be positive";
    let st = Array.make n init in
    { st; obj = fingerprinted st (fun s -> Array.to_list s) }

  (* Object-granularity footprints: updates of different segments are
     declared on the same object and therefore not commuted by the
     explorer — sound, merely conservative.  Touches are likewise
     object-granular. *)
  let update s p v =
    if p < 1 || p > Array.length s.st then invalid_arg "Snapshot.update";
    writes ~obj:s.obj (fun () ->
        Slx_sim.Runtime.touch ~obj:s.obj ~write:true;
        s.st.(p - 1) <- v)

  let scan s =
    reads ~obj:s.obj (fun () ->
        Slx_sim.Runtime.touch ~obj:s.obj ~write:false;
        Array.copy s.st)
end
