let atomic = Slx_sim.Runtime.atomic

(* Every constructor registers a state reader with the fingerprint
   registry currently in effect (a no-op outside the explorer), so the
   exploration engine can digest the shared state of a configuration.
   See Runtime's "Configuration fingerprinting" section. *)
let fingerprinted state read =
  Slx_sim.Runtime.register_object (fun () ->
      Slx_sim.Runtime.hash_value (read state));
  state

module Register = struct
  type 'a t = 'a ref

  let make v = fingerprinted (ref v) ( ! )
  let read r = atomic (fun () -> !r)
  let write r v = atomic (fun () -> r := v)
end

module Cas = struct
  type 'a t = 'a ref

  let make v = fingerprinted (ref v) ( ! )
  let read r = atomic (fun () -> !r)

  let compare_and_swap r ~expected ~desired =
    atomic (fun () ->
        if !r = expected then begin
          r := desired;
          true
        end
        else false)
end

module Test_and_set = struct
  type t = bool ref

  let make () = fingerprinted (ref false) ( ! )

  let test_and_set r =
    atomic (fun () ->
        if !r then false
        else begin
          r := true;
          true
        end)

  let reset r = atomic (fun () -> r := false)

  let read r = atomic (fun () -> !r)
end

module Fetch_and_add = struct
  type t = int ref

  let make v = fingerprinted (ref v) ( ! )

  let fetch_and_add r d =
    atomic (fun () ->
        let old = !r in
        r := old + d;
        old)

  let read r = atomic (fun () -> !r)
end

module Queue = struct
  type 'a t = 'a list ref  (* front of the queue first *)

  let make items = fingerprinted (ref items) ( ! )

  let enqueue q v = atomic (fun () -> q := !q @ [ v ])

  let dequeue q =
    atomic (fun () ->
        match !q with
        | [] -> None
        | x :: rest ->
            q := rest;
            Some x)
end

module Snapshot = struct
  type 'a t = 'a array

  let make ~n init =
    if n < 1 then invalid_arg "Snapshot.make: n must be positive";
    fingerprinted (Array.make n init) (fun s -> Array.to_list s)

  let update s p v =
    if p < 1 || p > Array.length s then invalid_arg "Snapshot.update";
    atomic (fun () -> s.(p - 1) <- v)

  let scan s = atomic (fun () -> Array.copy s)
end
