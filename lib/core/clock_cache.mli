(** A hash table with an optional capacity bound, evicting by the
    clock (second-chance) policy — the transposition-cache store of
    {!Explore}.

    Lookups set a per-entry reference bit; when an insertion finds the
    cache full, a clock hand sweeps the entry ring, clearing reference
    bits, and evicts the first entry found unreferenced.  Recently hit
    entries thus survive one full sweep — a constant-overhead
    approximation of LRU, good enough to keep hot transpositions while
    bounding memory on long explorations.  Without a capacity the
    table is unbounded and behaves like a plain [Hashtbl] (no ring
    bookkeeping at all).

    Keys are hashed polymorphically, so their shape is the dominant
    per-lookup cost: the explorers key this cache by hash-consed
    {!Intern} ids (small-int tuples) when compact encodings are on,
    and fall back to structural fingerprints under [--no-compact] —
    both hash to the same buckets consistently, but only the former is
    O(1) per probe regardless of history depth.

    Not thread-safe; the explorer gives each domain its own cache. *)

type ('k, 'v) t

val create :
  ?capacity:int -> ?sink:Slx_obs.Telemetry.sink -> unit -> ('k, 'v) t
(** [create ~capacity ()] holds at most [capacity] entries (unbounded
    without it).  [sink] (default {!Slx_obs.Telemetry.null}) receives
    a [Cache_evict] event per eviction.
    @raise Invalid_argument if [capacity < 1]. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Lookup; marks the entry as recently referenced. *)

val replace : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or update, evicting one victim first if at capacity. *)

val length : ('k, 'v) t -> int
(** Current number of entries. *)

val evictions : ('k, 'v) t -> int
(** Total entries evicted so far. *)

val capacity : ('k, 'v) t -> int option
(** The configured bound ([None] when unbounded). *)
