(** SPIN/TLC-style hash compaction: a flat 2^bits-bit table storing two
    hash-derived bit positions per visited configuration, used by
    {!Explore} as a bounded-memory stand-in for the exact transposition
    cache ([--bitstate BITS]).

    Membership is one-sided: {!test_and_set} returning [false]
    guarantees the configuration was never inserted; returning [true]
    may be a hash collision, so bitstate pruning can skip genuinely new
    states and a clean verdict means "no violation found in the states
    examined" — not exhaustiveness.  The table quantifies its own
    unreliability: {!collision_probability} is the Bloom bound
    [(1 - e^(-kn/m))^k] with [k = 2] probes, [m = 2^bits] bits and
    [n] insert attempts, reported in {!Explore_stats} so an undersized
    table reads as the approximation it is.

    Safety-side only: {!Live_explore} keeps its exact suffix cache,
    because a false hit there would silently truncate the fair-cycle
    search and [No_fair_cycle] is an exhaustiveness claim — see
    doc/model.md §10. *)

type t

val create : bits:int -> t
(** A fresh all-zero table of [2^bits] bits ([2^(bits-3)] bytes).
    @raise Invalid_argument unless [4 <= bits <= 30]. *)

val test_and_set : t -> int -> bool
(** [test_and_set t h] queries-and-inserts the configuration whose
    64-bit fingerprint hash is [h]: [true] if both probe positions
    were already set (seen before, up to collision), [false] (and the
    bits are set) if it is definitely new. *)

val bits : t -> int
val adds : t -> int
(** Insert attempts so far (the [n] of the collision bound). *)

val hits : t -> int
(** Queries that returned [true]. *)

val marks : t -> int
(** Bits actually set (table occupancy: [marks / 2^bits]). *)

val collision_probability : bits:int -> adds:int -> float
(** The Bloom bound [(1 - e^(-2n/m))^2], [m = 2^bits]: the probability
    that a fresh configuration false-positives against a table that
    absorbed [adds] attempts. *)
