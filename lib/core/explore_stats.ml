type t = {
  nodes : int;
  runs : int;
  runs_checked : int;
  steps_executed : int;
  steps_replayed : int;
  replays_avoided : int;
  cache_hits : int;
  cache_entries : int;
  cache_evictions : int;
  por_prunes : int;
  race_reversals : int;
  invoke_order_prunes : int;
  proviso_wakes : int;
  symmetry_pruned : int;
  cycles_examined : int;
  fair_cycles : int;
  domains_used : int;
  steals : int;
  hb_edges : int;
  commutation_checks : int;
  footprint_violations : int;
  bitstate_bits : int;
  bitstate_adds : int;
  bitstate_hits : int;
  bitstate_marks : int;
  per_domain_runs : (int * int) list;
  per_domain_steps : (int * int) list;
  elapsed_ns : int;
  events_dropped : int;
  history_digest : int;
}

let zero =
  {
    nodes = 0;
    runs = 0;
    runs_checked = 0;
    steps_executed = 0;
    steps_replayed = 0;
    replays_avoided = 0;
    cache_hits = 0;
    cache_entries = 0;
    cache_evictions = 0;
    por_prunes = 0;
    race_reversals = 0;
    invoke_order_prunes = 0;
    proviso_wakes = 0;
    symmetry_pruned = 0;
    cycles_examined = 0;
    fair_cycles = 0;
    domains_used = 0;
    steals = 0;
    hb_edges = 0;
    commutation_checks = 0;
    footprint_violations = 0;
    bitstate_bits = 0;
    bitstate_adds = 0;
    bitstate_hits = 0;
    bitstate_marks = 0;
    per_domain_runs = [];
    per_domain_steps = [];
    elapsed_ns = 0;
    events_dropped = 0;
    history_digest = 0;
  }

(* Per-domain rows are keyed by spawn index so a merge of partial
   stats lands in spawn order no matter the order the partials arrive
   in — the trace's per-domain lanes and [per_domain_steps] then name
   the same domains.  The sort is stable: when merging stats of
   separate explorations (which reuse spawn indices) each
   exploration's rows keep their relative order. *)
let by_index rows = List.stable_sort (fun (a, _) (b, _) -> compare a b) rows

let merge a b =
  {
    nodes = a.nodes + b.nodes;
    runs = a.runs + b.runs;
    runs_checked = a.runs_checked + b.runs_checked;
    steps_executed = a.steps_executed + b.steps_executed;
    steps_replayed = a.steps_replayed + b.steps_replayed;
    replays_avoided = a.replays_avoided + b.replays_avoided;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_entries = a.cache_entries + b.cache_entries;
    cache_evictions = a.cache_evictions + b.cache_evictions;
    por_prunes = a.por_prunes + b.por_prunes;
    race_reversals = a.race_reversals + b.race_reversals;
    invoke_order_prunes = a.invoke_order_prunes + b.invoke_order_prunes;
    proviso_wakes = a.proviso_wakes + b.proviso_wakes;
    symmetry_pruned = a.symmetry_pruned + b.symmetry_pruned;
    cycles_examined = a.cycles_examined + b.cycles_examined;
    fair_cycles = a.fair_cycles + b.fair_cycles;
    domains_used = max a.domains_used b.domains_used;
    steals = a.steals + b.steals;
    hb_edges = a.hb_edges + b.hb_edges;
    commutation_checks = a.commutation_checks + b.commutation_checks;
    footprint_violations = a.footprint_violations + b.footprint_violations;
    (* Every bitstate domain uses the same table size, so [max] keeps
       it; the collision bound is then computed per 2^bits table from
       the summed attempt count — conservative (as if one table
       absorbed every attempt), never optimistic. *)
    bitstate_bits = max a.bitstate_bits b.bitstate_bits;
    bitstate_adds = a.bitstate_adds + b.bitstate_adds;
    bitstate_hits = a.bitstate_hits + b.bitstate_hits;
    bitstate_marks = a.bitstate_marks + b.bitstate_marks;
    per_domain_runs = by_index (a.per_domain_runs @ b.per_domain_runs);
    per_domain_steps = by_index (a.per_domain_steps @ b.per_domain_steps);
    elapsed_ns = a.elapsed_ns + b.elapsed_ns;
    events_dropped = a.events_dropped + b.events_dropped;
    history_digest = a.history_digest + b.history_digest;
  }

let values rows = List.map snd rows

(* The Bloom bound for the bitstate table (k = 2 probes), computed
   from the recorded table size and attempt count so every consumer
   (pp, JSON, gates) reports the same number. *)
let bitstate_collision_probability s =
  if s.bitstate_bits = 0 then 0.0
  else Bitstate.collision_probability ~bits:s.bitstate_bits ~adds:s.bitstate_adds

let pp_int_list rs = String.concat ", " (List.map string_of_int rs)

let pp_elapsed fmt ns =
  if ns >= 1_000_000_000 then
    Format.fprintf fmt "%.2f s" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then
    Format.fprintf fmt "%.2f ms" (float_of_int ns /. 1e6)
  else Format.fprintf fmt "%.1f us" (float_of_int ns /. 1e3)

let pp fmt s =
  Format.fprintf fmt
    "@[<v>nodes visited:    %d@,maximal runs:     %d (checked: %d)@,\
     steps executed:   %d (replayed: %d)@,replays avoided:  %d@,\
     cache:            %d hits / %d entries / %d evictions@,\
     reductions:       %d pruned (POR), %d pruned (symmetry)@,\
     domains:          %d (%d steals)@,elapsed:          %a"
    s.nodes s.runs s.runs_checked s.steps_executed s.steps_replayed
    s.replays_avoided s.cache_hits s.cache_entries s.cache_evictions
    s.por_prunes s.symmetry_pruned s.domains_used s.steals pp_elapsed
    s.elapsed_ns;
  if s.race_reversals > 0 || s.invoke_order_prunes > 0 || s.proviso_wakes > 0
  then
    Format.fprintf fmt
      "@,dpor:             %d race reversals, %d proviso wakes, %d \
       invoke-order prunes"
      s.race_reversals s.proviso_wakes s.invoke_order_prunes;
  if s.cycles_examined > 0 || s.fair_cycles > 0 then
    Format.fprintf fmt "@,cycles:           %d examined, %d fair violating"
      s.cycles_examined s.fair_cycles;
  if s.hb_edges > 0 || s.commutation_checks > 0 || s.footprint_violations > 0
  then
    Format.fprintf fmt
      "@,sanitizer:        %d violations, %d hb edges, %d commutation checks"
      s.footprint_violations s.hb_edges s.commutation_checks;
  if s.bitstate_bits > 0 then
    Format.fprintf fmt
      "@,bitstate:         2^%d bits, %d marked, %d attempts, %d hits, \
       collision probability %.2e (NOT exhaustive)"
      s.bitstate_bits s.bitstate_marks s.bitstate_adds s.bitstate_hits
      (bitstate_collision_probability s);
  if s.events_dropped > 0 then
    Format.fprintf fmt "@,telemetry:        %d events dropped (ring overflow)"
      s.events_dropped;
  (match s.per_domain_runs with
  | [] | [ _ ] -> ()
  | rs -> Format.fprintf fmt "@,runs per domain:  %s" (pp_int_list (values rs)));
  (match s.per_domain_steps with
  | [] | [ _ ] -> ()
  | rs ->
      Format.fprintf fmt "@,steps per domain: %s" (pp_int_list (values rs)));
  Format.fprintf fmt "@]"

let json_pair_list rs =
  "["
  ^ String.concat ", "
      (List.map (fun (d, v) -> Printf.sprintf "[%d, %d]" d v) rs)
  ^ "]"

let to_json s =
  Printf.sprintf
    "{\"nodes\": %d, \"runs\": %d, \"runs_checked\": %d, \
     \"steps_executed\": %d, \"steps_replayed\": %d, \
     \"replays_avoided\": %d, \"cache_hits\": %d, \"cache_entries\": %d, \
     \"cache_evictions\": %d, \"por_prunes\": %d, \"race_reversals\": %d, \
     \"invoke_order_prunes\": %d, \"proviso_wakes\": %d, \
     \"symmetry_pruned\": %d, \
     \"cycles_examined\": %d, \"fair_cycles\": %d, \
     \"domains_used\": %d, \"steals\": %d, \"hb_edges\": %d, \
     \"commutation_checks\": %d, \"footprint_violations\": %d, \
     \"bitstate_bits\": %d, \"bitstate_adds\": %d, \"bitstate_hits\": %d, \
     \"bitstate_marks\": %d, \"bitstate_collision_probability\": %g, \
     \"per_domain_runs\": %s, \
     \"per_domain_steps\": %s, \"elapsed_ns\": %d, \"events_dropped\": %d, \
     \"history_digest\": %d}"
    s.nodes s.runs s.runs_checked s.steps_executed s.steps_replayed
    s.replays_avoided s.cache_hits s.cache_entries s.cache_evictions
    s.por_prunes s.race_reversals s.invoke_order_prunes s.proviso_wakes
    s.symmetry_pruned s.cycles_examined s.fair_cycles
    s.domains_used s.steals s.hb_edges s.commutation_checks
    s.footprint_violations s.bitstate_bits s.bitstate_adds s.bitstate_hits
    s.bitstate_marks
    (bitstate_collision_probability s)
    (json_pair_list s.per_domain_runs)
    (json_pair_list s.per_domain_steps)
    s.elapsed_ns s.events_dropped s.history_digest
