type t = {
  nodes : int;
  runs : int;
  runs_checked : int;
  steps_executed : int;
  steps_replayed : int;
  replays_avoided : int;
  cache_hits : int;
  cache_entries : int;
  cache_evictions : int;
  por_sleeps : int;
  symmetry_pruned : int;
  cycles_examined : int;
  fair_cycles : int;
  domains_used : int;
  steals : int;
  per_domain_runs : int list;
  per_domain_steps : int list;
  history_digest : int;
}

let zero =
  {
    nodes = 0;
    runs = 0;
    runs_checked = 0;
    steps_executed = 0;
    steps_replayed = 0;
    replays_avoided = 0;
    cache_hits = 0;
    cache_entries = 0;
    cache_evictions = 0;
    por_sleeps = 0;
    symmetry_pruned = 0;
    cycles_examined = 0;
    fair_cycles = 0;
    domains_used = 0;
    steals = 0;
    per_domain_runs = [];
    per_domain_steps = [];
    history_digest = 0;
  }

let merge a b =
  {
    nodes = a.nodes + b.nodes;
    runs = a.runs + b.runs;
    runs_checked = a.runs_checked + b.runs_checked;
    steps_executed = a.steps_executed + b.steps_executed;
    steps_replayed = a.steps_replayed + b.steps_replayed;
    replays_avoided = a.replays_avoided + b.replays_avoided;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_entries = a.cache_entries + b.cache_entries;
    cache_evictions = a.cache_evictions + b.cache_evictions;
    por_sleeps = a.por_sleeps + b.por_sleeps;
    symmetry_pruned = a.symmetry_pruned + b.symmetry_pruned;
    cycles_examined = a.cycles_examined + b.cycles_examined;
    fair_cycles = a.fair_cycles + b.fair_cycles;
    domains_used = max a.domains_used b.domains_used;
    steals = a.steals + b.steals;
    per_domain_runs = a.per_domain_runs @ b.per_domain_runs;
    per_domain_steps = a.per_domain_steps @ b.per_domain_steps;
    history_digest = a.history_digest + b.history_digest;
  }

let pp_int_list rs = String.concat ", " (List.map string_of_int rs)

let pp fmt s =
  Format.fprintf fmt
    "@[<v>nodes visited:    %d@,maximal runs:     %d (checked: %d)@,\
     steps executed:   %d (replayed: %d)@,replays avoided:  %d@,\
     cache:            %d hits / %d entries / %d evictions@,\
     reductions:       %d slept (POR), %d pruned (symmetry)@,\
     domains:          %d (%d steals)"
    s.nodes s.runs s.runs_checked s.steps_executed s.steps_replayed
    s.replays_avoided s.cache_hits s.cache_entries s.cache_evictions
    s.por_sleeps s.symmetry_pruned s.domains_used s.steals;
  if s.cycles_examined > 0 || s.fair_cycles > 0 then
    Format.fprintf fmt "@,cycles:           %d examined, %d fair violating"
      s.cycles_examined s.fair_cycles;
  (match s.per_domain_runs with
  | [] | [ _ ] -> ()
  | rs -> Format.fprintf fmt "@,runs per domain:  %s" (pp_int_list rs));
  (match s.per_domain_steps with
  | [] | [ _ ] -> ()
  | rs -> Format.fprintf fmt "@,steps per domain: %s" (pp_int_list rs));
  Format.fprintf fmt "@]"

let json_int_list rs =
  "[" ^ String.concat ", " (List.map string_of_int rs) ^ "]"

let to_json s =
  Printf.sprintf
    "{\"nodes\": %d, \"runs\": %d, \"runs_checked\": %d, \
     \"steps_executed\": %d, \"steps_replayed\": %d, \
     \"replays_avoided\": %d, \"cache_hits\": %d, \"cache_entries\": %d, \
     \"cache_evictions\": %d, \"por_sleeps\": %d, \"symmetry_pruned\": %d, \
     \"cycles_examined\": %d, \"fair_cycles\": %d, \
     \"domains_used\": %d, \"steals\": %d, \"per_domain_runs\": %s, \
     \"per_domain_steps\": %s, \"history_digest\": %d}"
    s.nodes s.runs s.runs_checked s.steps_executed s.steps_replayed
    s.replays_avoided s.cache_hits s.cache_entries s.cache_evictions
    s.por_sleeps s.symmetry_pruned s.cycles_examined s.fair_cycles
    s.domains_used s.steals
    (json_int_list s.per_domain_runs)
    (json_int_list s.per_domain_steps)
    s.history_digest
