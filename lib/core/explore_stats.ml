type t = {
  nodes : int;
  runs : int;
  runs_checked : int;
  steps_executed : int;
  steps_replayed : int;
  replays_avoided : int;
  cache_hits : int;
  cache_entries : int;
  domains_used : int;
  per_domain_runs : int list;
  history_digest : int;
}

let zero =
  {
    nodes = 0;
    runs = 0;
    runs_checked = 0;
    steps_executed = 0;
    steps_replayed = 0;
    replays_avoided = 0;
    cache_hits = 0;
    cache_entries = 0;
    domains_used = 0;
    per_domain_runs = [];
    history_digest = 0;
  }

let merge a b =
  {
    nodes = a.nodes + b.nodes;
    runs = a.runs + b.runs;
    runs_checked = a.runs_checked + b.runs_checked;
    steps_executed = a.steps_executed + b.steps_executed;
    steps_replayed = a.steps_replayed + b.steps_replayed;
    replays_avoided = a.replays_avoided + b.replays_avoided;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_entries = a.cache_entries + b.cache_entries;
    domains_used = max a.domains_used b.domains_used;
    per_domain_runs = a.per_domain_runs @ b.per_domain_runs;
    history_digest = a.history_digest + b.history_digest;
  }

let pp fmt s =
  Format.fprintf fmt
    "@[<v>nodes visited:    %d@,maximal runs:     %d (checked: %d)@,\
     steps executed:   %d (replayed: %d)@,replays avoided:  %d@,\
     cache:            %d hits / %d entries@,domains:          %d%s@]"
    s.nodes s.runs s.runs_checked s.steps_executed s.steps_replayed
    s.replays_avoided s.cache_hits s.cache_entries s.domains_used
    (match s.per_domain_runs with
    | [] | [ _ ] -> ""
    | rs ->
        Printf.sprintf "  (runs per domain: %s)"
          (String.concat ", " (List.map string_of_int rs)))

let to_json s =
  Printf.sprintf
    "{\"nodes\": %d, \"runs\": %d, \"runs_checked\": %d, \
     \"steps_executed\": %d, \"steps_replayed\": %d, \
     \"replays_avoided\": %d, \"cache_hits\": %d, \"cache_entries\": %d, \
     \"domains_used\": %d}"
    s.nodes s.runs s.runs_checked s.steps_executed s.steps_replayed
    s.replays_avoided s.cache_hits s.cache_entries s.domains_used
