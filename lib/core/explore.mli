(** Exhaustive bounded exploration: check a property on {e every}
    schedule, not a sample.

    The paper's statements quantify over all executions; the random and
    adversarial drivers only sample them.  For small systems and short
    horizons the schedule space is enumerable: at every tick the
    scheduler chooses among the ready processes (one atomic step) and
    the idle processes with pending work (an invocation), with an
    optional crash branch.  Implementations are deterministic, so a
    decision prefix determines the configuration it reaches.

    Two engines walk this tree:

    - {!explore} — the incremental engine.  A node's configuration is a
      live {!Slx_sim.Runner.Cursor}; the first child {e extends it in
      place} (one runtime step) and only later siblings replay their
      prefix.  A {e transposition cache} keyed on the canonical
      configuration fingerprint ({!Slx_sim.Runner.fingerprint}: history,
      crash set, per-process status/step-count/observation digests,
      shared base-object digest) prunes schedule prefixes that reach an
      already-explored configuration, crediting the cached subtree's run
      count instead of descending.  Root branches can be fanned out
      across OCaml 5 domains.
    - {!explore_naive} — the retained reference: replays every prefix
      from scratch at every node.  The differential suite proves both
      engines visit the identical set of maximal runs; the bench smoke
      compares their [steps_executed].

    Soundness fine print for the cache: fingerprint equality implies
    identical futures (same decision menus, same suffix histories, same
    run counts) up to hash collision on the two digest components, and
    identical maximal-run reports {e except for the timing of prefix
    events} ([event_times], grant times) which the canonical fingerprint
    abstracts away.  [check] is therefore invoked once per configuration
    class, not once per run — pass [~cache:false] if a check depends on
    fine-grained event timing rather than on the history, crash set,
    totals and window.  Every check in this repository is of the latter
    kind.

    The test suites use exploration to promote sampled claims to
    exhaustive ones — e.g. {e agreement and validity hold for CAS
    consensus on every schedule of two processes and ten steps}. *)

open Slx_history
open Slx_sim

type ('inv, 'res) outcome =
  | Ok of int
      (** Every maximal bounded run satisfied the check.  The payload
          counts the {e maximal} runs explored — interior nodes of the
          decision tree (proper prefixes) are not counted; see
          {!Explore_stats.t.nodes} for those. *)
  | Counterexample of ('inv, 'res) Run_report.t
      (** The failing run with the lexicographically least decision
          script (in the menu order: steps/invocations of processes
          1..n, then crashes of processes 1..n) — deterministic, for
          any engine configuration, cache or not, one domain or many. *)

type ('inv, 'res) exploration = {
  outcome : ('inv, 'res) outcome;
  stats : Explore_stats.t;  (** Work counters; see {!Explore_stats}. *)
  witness_script : ('inv, 'res) Driver.decision list option;
      (** The decision script of the counterexample, when there is one:
          replaying it through [Driver.of_script] reproduces the
          failing run exactly. *)
}

val explore :
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  depth:int ->
  ?max_crashes:int ->
  ?cache:bool ->
  ?domains:int ->
  check:(('inv, 'res) Run_report.t -> bool) ->
  unit ->
  ('inv, 'res) exploration
(** [explore ~n ~factory ~invoke ~depth ~check ()] explores every
    decision sequence of at most [depth] ticks with the incremental
    engine.  [factory] must return a {e fresh} implementation instance
    on each call (one per live cursor).  [invoke view p] supplies the
    invocation an idle process would issue, or [None] if it has no more
    work.  [max_crashes] (default 0) additionally branches on crashing
    each not-yet-crashed process.  [cache] (default [true]) enables the
    transposition cache.  [domains] (default 1) fans the top-level
    branches across up to that many OCaml 5 domains (clamped to the
    number of root decisions); with [domains > 1], [factory], [invoke]
    and [check] run concurrently in several domains and must not share
    unsynchronized mutable state.

    The check runs on maximal runs only (depth reached or no decision
    available); the report's window is the whole run.  When a
    counterexample is found the remaining exploration is abandoned, so
    [stats] then reflects the work done up to (and while concurrently
    racing past) the discovery. *)

val explore_naive :
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  depth:int ->
  ?max_crashes:int ->
  check:(('inv, 'res) Run_report.t -> bool) ->
  unit ->
  ('inv, 'res) exploration
(** The replay-from-scratch reference engine: same tree, same order,
    same outcome and witness as {!explore}, but every node re-runs its
    whole decision prefix on a fresh instance (and [check] runs on
    every maximal run).  O(depth) runtime steps per node — kept as the
    differential-testing baseline. *)

val forall_schedules :
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  depth:int ->
  ?max_crashes:int ->
  check:(('inv, 'res) Run_report.t -> bool) ->
  unit ->
  ('inv, 'res) outcome
(** [explore] with the default engine configuration (cache on, one
    domain), returning just the outcome.  [Ok runs] counts {e maximal}
    runs only. *)

val workload_invoke :
  ('inv, 'res) Driver.workload ->
  ('inv, 'res) Driver.view ->
  Proc.t ->
  'inv option
(** Adapt a counting workload to the [invoke] interface. *)
