(** Exhaustive bounded exploration: check a property on {e every}
    schedule, not a sample.

    The paper's statements quantify over all executions; the random
    and adversarial drivers only sample them.  For small systems and
    short horizons the schedule space is enumerable: at every tick the
    scheduler chooses among the ready processes (one atomic step) and
    the idle processes with pending work (an invocation), with an
    optional crash branch.  This module walks the whole tree,
    re-running the implementation from scratch down each branch
    (implementations are deterministic, so a decision prefix determines
    the run), and reports the first counterexample or the number of
    maximal runs checked.

    The test suites use it to promote sampled claims to exhaustive
    ones — e.g. {e agreement and validity hold for CAS consensus on
    every schedule of two processes and ten steps}, and {e final-state
    opacity holds for AGP on every schedule of two one-op
    transactions}. *)

open Slx_history
open Slx_sim

type ('inv, 'res) outcome =
  | Ok of int
      (** Every maximal bounded run satisfied the check; the payload is
          how many runs were explored. *)
  | Counterexample of ('inv, 'res) Run_report.t
      (** The first failing run, for diagnosis. *)

val forall_schedules :
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  depth:int ->
  ?max_crashes:int ->
  check:(('inv, 'res) Run_report.t -> bool) ->
  unit ->
  ('inv, 'res) outcome
(** [forall_schedules ~n ~factory ~invoke ~depth ~check ()] explores
    every decision sequence of at most [depth] ticks.  [factory] must
    return a {e fresh} implementation instance on each call (one per
    explored branch).  [invoke view p] supplies the invocation an idle
    process would issue, or [None] if it has no more work — protocol-
    aware workloads (e.g. {!Slx_tm.Tm_workload.next_invocation}) fit
    directly.  [max_crashes] (default 0) additionally branches on
    crashing each not-yet-crashed process.

    The check runs on maximal runs only (depth reached or no decision
    available); the window is the whole run. *)

val workload_invoke :
  ('inv, 'res) Driver.workload ->
  ('inv, 'res) Driver.view ->
  Proc.t ->
  'inv option
(** Adapt a counting workload to the [invoke] interface. *)
