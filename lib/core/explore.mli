(** Exhaustive bounded exploration: check a property on {e every}
    schedule, not a sample.

    The paper's statements quantify over all executions; the random and
    adversarial drivers only sample them.  For small systems and short
    horizons the schedule space is enumerable: at every tick the
    scheduler chooses among the ready processes (one atomic step) and
    the idle processes with pending work (an invocation), with an
    optional crash branch.  Implementations are deterministic, so a
    decision prefix determines the configuration it reaches.

    Two engines walk this tree:

    - {!explore} — the incremental engine.  A node's configuration is a
      live {!Slx_sim.Runner.Cursor}; the first child {e extends it in
      place} (one runtime step) and only later siblings replay their
      prefix.  A {e transposition cache} keyed on the canonical
      configuration fingerprint ({!Slx_sim.Runner.fingerprint}: history,
      crash set, per-process status/step-count/observation digests,
      shared base-object digest) prunes schedule prefixes that reach an
      already-explored configuration, crediting the cached subtree's run
      count instead of descending; [~cache_capacity] bounds its memory
      with clock (second-chance) eviction.  Three further multipliers
      are opt-in: {e partial-order reduction} ([~por], sleep sets over
      declared base-object access footprints), {e symmetry reduction}
      ([~symmetry], orbit pruning of interchangeable untouched
      processes), and {e work-stealing fan-out} ([~domains], a shared
      lock-free queue of frontier items drained by OCaml 5 domains).
    - {!explore_naive} — the retained reference: replays every prefix
      from scratch at every node, no cache, no reductions.  The
      differential suite proves the unreduced engines visit the
      identical set of maximal runs, and the reduced engines the same
      check verdicts and counterexamples; the bench smoke compares
      their [steps_executed].

    Soundness fine print — what each switch assumes of [check]:

    - {e cache} (default on): fingerprint equality implies identical
      futures (same decision menus, same suffix histories, same run
      counts) up to hash collision on the digest components, and
      identical maximal-run reports {e except for the timing of prefix
      events} ([event_times], grant times) which the canonical
      fingerprint abstracts away.  [check] is therefore invoked once
      per configuration class — pass [~cache:false] if a check depends
      on fine-grained event timing rather than on the history, crash
      set, totals and window.
    - {e por} (default off): two pending steps with commuting declared
      footprints ({!Slx_sim.Runtime.footprints_commute}) reach the same
      configuration in either order; sleep sets explore one
      representative interleaving per such commutation class.  The
      representative's history can differ from a pruned run's by swaps
      of adjacent response events of different processes, so [check]
      must be invariant under that (every history-level check in this
      repository is).
    - {e symmetry} (default off): requires the instance to be
      process-symmetric — all processes run the same [invoke] program
      and [check] is invariant under renaming processes (composed with
      whatever the workload derives from the process id, e.g. distinct
      proposal values).  Untouched processes are then interchangeable
      and only the least-numbered one is activated or crashed.

    With reductions on, [Ok runs] counts the explored {e
    representatives} (one per equivalence class reached), not all
    interleavings; see {!Explore_stats} for the reduction counters.

    The test suites use exploration to promote sampled claims to
    exhaustive ones — e.g. {e agreement and validity hold for CAS
    consensus on every schedule of two processes and ten steps}. *)

open Slx_history
open Slx_sim

type ('inv, 'res) outcome =
  | Ok of int
      (** Every maximal bounded run satisfied the check.  The payload
          counts the {e maximal} runs explored (equivalence-class
          representatives when POR/symmetry are on) — interior nodes of
          the decision tree (proper prefixes) are not counted; see
          {!Explore_stats.t.nodes} for those. *)
  | Counterexample of ('inv, 'res) Run_report.t
      (** The failing run with the lexicographically least decision
          script among those the engine explores (in the menu order:
          steps/invocations of processes 1..n, then crashes of
          processes 1..n) — deterministic for any engine configuration:
          cache or not, bounded or not, one domain or many.  With
          POR/symmetry on, "explored" means the reduced tree: the
          witness is then the least {e representative} of the least
          failing equivalence class, identical across domain counts but
          possibly a commutation/renaming of the unreduced engines'
          witness. *)

type frontier_seed = {
  seed_script : int list;
      (** The coded decision prefix ({!code_of_decision}) reaching the
          cut leaf, root-first. *)
  seed_sleep : int;  (** The leaf's settled POR sleep set, as a bitset. *)
}
(** One {e cut leaf} of a depth-bounded exploration: a maximal run
    that ended only because the depth bound fell, recorded compactly
    enough to re-establish via {!Slx_sim.Runner.Cursor.replay} and
    deepen later. *)

type frontier = {
  fr_depth : int;  (** The depth bound the frontier was cut at. *)
  fr_base_runs : int;
      (** Maximal runs final at {e any} depth (the [Ok] payload minus
          the cut leaves) — the base a deeper resume starts from. *)
  fr_base_digest : int;
      (** [history_digest] restricted to those final runs. *)
  fr_seeds : frontier_seed list;  (** Cut leaves, in first-visit order. *)
}
(** The resumable residue of a counterexample-free exploration: replay
    each seed and explore only its subtree at the greater depth, and
    the totals — runs, digest, witness — come out byte-identical to a
    cold run at that depth (see doc/model.md §11). *)

type ('inv, 'res) exploration = {
  outcome : ('inv, 'res) outcome;
  stats : Explore_stats.t;  (** Work counters; see {!Explore_stats}. *)
  witness_script : ('inv, 'res) Driver.decision list option;
      (** The decision script of the counterexample, when there is one:
          replaying it through [Driver.of_script] reproduces the
          failing run exactly. *)
  frontier : frontier option;
      (** Under [~persist:true] (and its gates) on an [Ok] outcome:
          the cut frontier a deeper [~resume] run can start from. *)
}

exception Interrupted of Explore_stats.t
(** Raised (from {!explore} and {!Live_explore.search}) when the
    [?cancel] poll came back true: the exploration was abandoned
    mid-walk and the payload carries the partial counters accumulated
    so far.  No verdict is implied. *)

val explore :
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  depth:int ->
  ?max_crashes:int ->
  ?cache:bool ->
  ?cache_capacity:int ->
  ?por:bool ->
  ?dpor:bool ->
  ?symmetry:bool ->
  ?domains:int ->
  ?obs:Slx_obs.Obs.t ->
  ?sanitize:bool ->
  ?compact:bool ->
  ?bitstate:int ->
  ?persist:bool ->
  ?resume:frontier ->
  ?cancel:(unit -> bool) ->
  check:(('inv, 'res) Run_report.t -> bool) ->
  unit ->
  ('inv, 'res) exploration
(** [explore ~n ~factory ~invoke ~depth ~check ()] explores every
    decision sequence of at most [depth] ticks with the incremental
    engine.  [factory] must return a {e fresh} implementation instance
    on each call (one per live cursor).  [invoke view p] supplies the
    invocation an idle process would issue, or [None] if it has no more
    work.  [max_crashes] (default 0) additionally branches on crashing
    each not-yet-crashed process.

    [cache] (default [true]) enables the transposition cache;
    [cache_capacity] bounds each domain's cache to that many entries,
    evicted second-chance (unbounded without it).  [por] (default
    [false]) enables sleep-set partial-order reduction over the
    base-object access footprints of pending steps.  [dpor] (default
    [false]) enables the {e dynamic} variant ({!Dpor}): each cursor
    carries an observed-access probe
    ({!Slx_sim.Runtime.make_probe}), children inherit the whole sleep
    set as a candidate, and after each edge executes the sleepers
    whose pending footprints race with the accesses the step {e
    actually performed} are woken (a {e race reversal},
    {!Explore_stats.t.race_reversals}).  Observed accesses refine
    declared footprints, so DPOR prunes at least as much as [por] on
    any implementation whose declarations over-approximate; both
    soundness caveats of [por] apply unchanged.  [por] and [dpor]
    compose as "either on" with the DPOR oracle winning.  [symmetry]
    (default [false]) declares the instance process-symmetric and
    enables orbit pruning of untouched processes; see the soundness
    notes above.  [domains] (default 1) fans the exploration across up
    to that many OCaml 5 domains with work-stealing over a shared
    frontier queue; [factory], [invoke] and [check] then run
    concurrently in several domains and must not share unsynchronized
    mutable state.

    [obs] (default {!Slx_obs.Obs.disabled}) attaches the observability
    bundle: with tracing on, each domain records typed events (node
    spans, decisions, cache hits/evicts, reductions, frontier
    pushes/steals) into its own ring for Chrome-trace export, and the
    bundle's progress reporter is ticked from the hot loop.  With the
    default bundle every event site costs one branch; verdicts,
    counters (other than [elapsed_ns]/[events_dropped]) and witnesses
    are identical with tracing on or off.  Bundles are single-shot:
    pass a fresh one to each exploration.

    The check runs on maximal runs only (depth reached or no decision
    available); the report's window is the whole run.  When a
    counterexample is found the remaining exploration is abandoned
    (work-stealing domains finish rank-lesser frontier items first, so
    the reported witness is still deterministic), so [stats] then
    reflects the work done up to (and while concurrently racing past)
    the discovery.

    [sanitize] (default [false]) installs a per-domain sanitizer
    shadow ({!Slx_sim.Runtime.make_shadow}) on every cursor: physical
    base-object accesses are checked against declared footprints and
    mismatches counted into [stats.footprint_violations].  The shadow
    neither raises nor records, so a sanitized exploration applies
    exactly the decisions — and returns exactly the outcome, stats
    (beyond [footprint_violations]) and witness — of an unsanitized
    one.  For raising shadows with replayable witnesses use
    {!Slx_analysis.Audit} instead.

    [compact] (default [true]) keys the transposition cache on
    hash-consed encodings: every cursor carries an incremental interned
    history id, and cache keys become dense small ints
    ({!Slx_sim.Runner.Cursor.compact_key}, {!Intern}) instead of deep
    structural terms.  Interning is injective, so verdicts, stats and
    witnesses are identical to [~compact:false] up to the digest
    collisions the structural fingerprint already accepts (the
    differential suite in test/test_compact.ml checks this on the full
    audit registry); pass [~compact:false] to retain the structural
    keys.  Compact mode is silently ignored when the cache is off,
    when bitstate mode is on, or when [n >= 62] (the sleep bitset
    would overflow a word).

    [bitstate] switches the transposition store to SPIN-style hash
    compaction ({!Bitstate}): a [2^bitstate]-bit table of fingerprint
    hashes replaces the exact cache, bounding memory at
    [2^(bitstate-3)] bytes per domain.  Membership is one-sided — a
    hit may be a hash collision, so pruned subtrees may contain
    unexplored states: [Ok] then means {e no violation found}, not
    exhaustiveness, and the stats report the Bloom collision bound
    ({!Explore_stats.bitstate_collision_probability}) quantifying the
    risk.  Counterexamples remain sound (a found violation is real and
    replayable).  Hits credit no cached run counts, so [runs] counts
    only runs actually checked.  Safety-side only by design: the
    fair-cycle search keeps its exact cache ({!Live_explore}).

    [persist] (default [false]) records the {e cut frontier}: every
    maximal run that ended only at the depth bound becomes a
    {!frontier_seed}, and on an [Ok] outcome the result carries a
    {!frontier}.  To keep the seed log exact, subtrees containing cut
    leaves are not written to the transposition cache (hits on them
    would hide seed occurrences); this costs extra frontier-adjacent
    work but changes no verdict, witness, run count or digest.
    Silently ignored — no frontier is produced — under [~domains > 1],
    [~bitstate], or [n >= 62].

    [resume] starts from a previously recorded frontier instead of the
    root: each seed's script is decoded and replayed ([Invoke]
    payloads re-derived through [invoke] — pass the same workload),
    and only the seed subtrees are explored, on top of the stored base
    counts.  The outcome, witness and [Ok]/digest totals are
    byte-identical to a cold run at [depth] with the same flags —
    callers must guarantee the instance, workload, flags and check
    match the stored run's ({!Slx_store.Persist} binds all of these
    into the store key).  Ignored under [~domains > 1] or
    [~bitstate]; composes with [persist] (chained deepening).

    [cancel] is polled once per visited node; when it returns [true]
    the walk stops and {!Interrupted} carries the partial stats.  The
    poll must be cheap and domain-safe (a [ref] or [Atomic] read).
    @raise Interrupted when [cancel] fired.
    @raise Invalid_argument if [resume.fr_depth >= depth], and unless
    [4 <= bitstate <= 30]. *)

val code_of_decision : ('inv, 'res) Driver.decision -> int
(** The persistent int form of a menu decision:
    [(p lsl 2) lor tag] with tag 0 = [Schedule], 1 = [Invoke],
    2 = [Crash].  [Invoke] payloads are not encoded — they are
    re-derived at decode time through the workload's [invoke], which
    is how every engine constructed them in the first place.
    @raise Invalid_argument on [Stop]. *)

val codes_of_script : ('inv, 'res) Driver.decision list -> int list

val decision_of_code :
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  ('inv, 'res) Driver.view ->
  int ->
  ('inv, 'res) Driver.decision
(** Decode one coded decision against the view it is about to be
    applied to.  @raise Invalid_argument if the code is stale (e.g. an
    [Invoke] whose process has no pending invocation — a sign the
    stored entry came from a different workload). *)

val run_of_codes :
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  int list ->
  ('inv, 'res) Driver.decision list * ('inv, 'res) Run_report.t
(** Replay a coded script on a fresh instance: the typed decisions
    applied and the resulting maximal-run report (window = run length,
    as the engines report maximal runs).  This is how stored
    counterexample witnesses are re-validated before being trusted. *)

val explore_naive :
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  depth:int ->
  ?max_crashes:int ->
  check:(('inv, 'res) Run_report.t -> bool) ->
  unit ->
  ('inv, 'res) exploration
(** The replay-from-scratch reference engine: same tree, same order,
    same outcome and witness as {!explore} with reductions off, but
    every node re-runs its whole decision prefix on a fresh instance
    (and [check] runs on every maximal run).  O(depth) runtime steps
    per node — kept as the differential-testing baseline. *)

val forall_schedules :
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  depth:int ->
  ?max_crashes:int ->
  check:(('inv, 'res) Run_report.t -> bool) ->
  unit ->
  ('inv, 'res) outcome
(** [explore] with the default engine configuration (cache on, no
    reductions, one domain), returning just the outcome.  [Ok runs]
    counts {e maximal} runs only. *)

val workload_invoke :
  ('inv, 'res) Driver.workload ->
  ('inv, 'res) Driver.view ->
  Proc.t ->
  'inv option
(** Adapt a counting workload to the [invoke] interface. *)
