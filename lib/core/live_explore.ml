open Slx_history
open Slx_sim
open Slx_liveness
module Telemetry = Slx_obs.Telemetry
module Progress = Slx_obs.Progress
module Obs = Slx_obs.Obs
module Clock = Slx_obs.Clock

type ('inv, 'res) outcome =
  | Lasso of ('inv, 'res) Lasso.cert
  | No_fair_cycle

type live_seed = { ls_script : int list; ls_sleep : int list }

type live_frontier = {
  lf_depth : int;
  lf_max_period : int;
  lf_pump_ticks : int;
  lf_base_runs : int;
  lf_seeds : live_seed list;
}

type ('inv, 'res) result = {
  outcome : ('inv, 'res) outcome;
  stats : Explore_stats.t;
  frontier : live_frontier option;
}

exception Found_lasso

(* Internal: the [?cancel] poll fired; converted to
   [Explore.Interrupted] at the top level. *)
exception Cancelled

(* Transposition keys pair the raw configuration fingerprint with the
   last [2 * max_period] abstract trace cells: every candidate cycle
   examined at or below a node is a function of the configuration (the
   fingerprint, which embeds the full history and hence all response
   payloads) and of at most that much trace suffix, so two prefixes
   agreeing on both have identical candidate sets below — an entry is
   written only for completed lasso-free subtrees.  Under DPOR the
   reduced subtree additionally depends on the sleep set and on each
   sleeper's ignoring streak (the proviso counter), so [k_sleep] joins
   the key; with DPOR off it is always [] and keys degenerate to the
   old shape. *)
(* As in {!Explore}, two verdict-identical representations: the
   structural form, and the hash-consed compact form (default) where
   the fingerprint is the cursor's [compact_key] array, each abstract
   trace cell is an interned id (the walk interns cells as it emits
   them, so the suffix is already a small-int list), and each sleeper
   is one packed [(streak << 8) | proc] int — the whole key then
   interns to a single dense id.  No bitstate variant here, ever: a
   false hit would silently truncate the fair-cycle search, and
   [No_fair_cycle] is an exhaustiveness claim (doc/model.md §10). *)
type ('inv, 'res) key =
  | K_struct of {
      k_fp : ('inv, 'res) Runner.fingerprint;
      k_cells : string list list;
      k_sleep : (Proc.t * int) list;
    }
  | K_compact of int

type ('inv, 'res) state = {
  sink : Telemetry.sink;
  progress : Progress.t;
  mutable sample : unit -> Progress.sample;
  mutable nodes : int;
  mutable runs : int;
  mutable replayed : int;
  mutable avoided : int;
  mutable hits : int;
  mutable invoke_pruned : int;
  mutable por_pruned : int;
  mutable reversals : int;
  mutable proviso : int;
  mutable cycles : int;
  mutable fair : int;
  mutable found : ('inv, 'res) Lasso.cert option;
  mutable fr_cuts : int;
      (* Persist mode: cut leaves recorded as frontier seeds; suffix
         cache entries are vetoed for subtrees containing any, as in
         {!Explore}. *)
  mutable fr_rev_seeds : live_seed list;
  ticks : int ref;
  table : (('inv, 'res) key, unit) Clock_cache.t;
  shadow : Runtime.shadow option;  (* non-raising: counts only *)
  probe : Runtime.probe option;
      (* DPOR observed-access probe shared by all cursors of this
         (sequential) search; recording only. *)
  encode : (int -> ('inv, 'res) Event.t -> int) option;
      (* Compact-key mode: the hash-consing hook every cursor is
         created with (see {!Explore}). *)
  cells_pool : string list Intern.t;
      (* Compact-key mode: interns abstract trace cells, so the key's
         trace suffix is a list of small ints. *)
  keys : Intern.Ints.t;
      (* Compact-key pool: interns the flat key arrays into the dense
         ids the suffix cache is keyed on. *)
}

let zero_sample =
  {
    Progress.s_nodes = 0;
    s_runs = 0;
    s_steps = 0;
    s_frontier = 0;
    s_cache_entries = 0;
    s_cache_capacity = 0;
    s_cycles = 0;
    s_domain_steps = [];
  }

let new_state ?capacity ?(sink = Telemetry.null) ?(progress = Progress.off)
    ?(sanitize = false) ?(dpor = false) ?(compact = false) () =
  let encode =
    if not compact then None
    else begin
      let events = Intern.create () in
      let conses = Intern.create () in
      Some
        (fun parent e ->
          Intern.intern conses (parent, Intern.intern events e))
    end
  in
  {
    sink;
    progress;
    sample = (fun () -> zero_sample);
    nodes = 0;
    runs = 0;
    replayed = 0;
    avoided = 0;
    hits = 0;
    invoke_pruned = 0;
    por_pruned = 0;
    reversals = 0;
    proviso = 0;
    cycles = 0;
    fair = 0;
    found = None;
    fr_cuts = 0;
    fr_rev_seeds = [];
    ticks = ref 0;
    table = Clock_cache.create ?capacity ~sink ();
    shadow =
      (if sanitize then
         Some (Runtime.make_shadow ~record:false ~raise_on_violation:false ())
       else None);
    probe = (if dpor then Some (Runtime.make_probe ()) else None);
    encode;
    cells_pool = Intern.create ();
    keys = Intern.Ints.create ();
  }

(* Install the progress sample: the live search is sequential, so the
   snapshot is a plain read of the single state's counters. *)
let wire_progress st =
  if Progress.enabled st.progress then
    st.sample <-
      (fun () ->
        {
          Progress.s_nodes = st.nodes;
          s_runs = st.runs;
          s_steps = !(st.ticks);
          s_frontier = 0;
          s_cache_entries = Clock_cache.length st.table;
          s_cache_capacity =
            Option.value ~default:0 (Clock_cache.capacity st.table);
          s_cycles = st.cycles;
          s_domain_steps = [];
        })

(* The packed int the [Decision] telemetry event carries. *)
let dec_code = function
  | Driver.Schedule p -> Telemetry.Dec.schedule (Proc.hash p)
  | Driver.Invoke (p, _) -> Telemetry.Dec.invoke (Proc.hash p)
  | Driver.Crash p -> Telemetry.Dec.crash (Proc.hash p)
  | Driver.Stop -> Telemetry.Dec.schedule 0  (* never in a menu *)

let stats_of_state ~elapsed_ns ~events_dropped st : Explore_stats.t =
  {
    Explore_stats.zero with
    Explore_stats.nodes = st.nodes;
    runs = st.runs;
    steps_executed = !(st.ticks);
    steps_replayed = st.replayed;
    replays_avoided = st.avoided;
    cache_hits = st.hits;
    cache_entries = Clock_cache.length st.table;
    cache_evictions = Clock_cache.evictions st.table;
    por_prunes = st.por_pruned;
    race_reversals = st.reversals;
    invoke_order_prunes = st.invoke_pruned;
    proviso_wakes = st.proviso;
    cycles_examined = st.cycles;
    fair_cycles = st.fair;
    domains_used = 1;
    footprint_violations =
      (match st.shadow with
      | Some sh -> Runtime.shadow_violation_count sh
      | None -> 0);
    elapsed_ns;
    events_dropped;
  }

let rec take k xs =
  if k <= 0 then []
  else match xs with [] -> [] | x :: tl -> x :: take (k - 1) tl

let rec drop k xs =
  if k <= 0 then xs else match xs with [] -> [] | _ :: tl -> drop (k - 1) tl

(* The abstract cell of the tick that applied [d] and appended the
   events [fresh]: exactly what {!Lasso.tick_cells} reports for that
   tick, so certificates built from these cells replay-compare
   directly. *)
let cell_of d fresh =
  (match d with
  | Driver.Schedule p -> [ Printf.sprintf "p%d:step" p ]
  | _ -> [])
  @ List.map Lasso.skeleton fresh

let goods_of ~good fresh =
  List.fold_left
    (fun acc e ->
      match Event.response e with
      | Some res when good res -> Proc.Set.add (Event.proc e) acc
      | _ -> acc)
    Proc.Set.empty fresh

(* Evaluate every candidate cycle anchored at the current node: for
   each period [p <= max_period], the suffix of the last [2p] ticks
   whose per-tick cells are [p]-periodic (two full repetitions
   observed).  A candidate is a fair cycle when every correct,
   non-blocked process takes a grant on it; it violates [point] per
   {!Freedom.violated_on_cycle}; and it is accepted only if its
   certificate {e pumps}: replaying stem + cycle^reps through a fresh
   instance reproduces the cells and boundary digest on every
   repetition and the pumped window carries the standard bounded
   violation.  Raises {!Found_lasso} with [st.found] set on the first
   accepted candidate (shortest period first). *)
let eval_candidates st ~factory ~good ~point ~max_period ~pump_ticks ~blocked
    cursor rev_script rev_cells rev_goods len =
  if len >= 2 then begin
    let view = Runner.Cursor.view cursor in
    let correct =
      Proc.Set.of_list
        (List.filter
           (fun p -> view.Driver.status p <> Runtime.Crashed)
           (Proc.all ~n:view.Driver.n))
    in
    let pmax = min max_period (len / 2) in
    let cells = Array.of_list (take (2 * pmax) rev_cells) in
    let periodic p =
      let ok = ref (Array.length cells >= 2 * p) in
      for i = 0 to p - 1 do
        if !ok && cells.(i) <> cells.(i + p) then ok := false
      done;
      !ok
    in
    for p = 1 to pmax do
      if st.found = None && periodic p then begin
        st.cycles <- st.cycles + 1;
        let cycle_rev = take p rev_script in
        let granted =
          List.fold_left
            (fun acc d ->
              match d with
              | Driver.Schedule q -> Proc.Set.add q acc
              | _ -> acc)
            Proc.Set.empty cycle_rev
        in
        let fair_cycle =
          Proc.Set.subset (Proc.Set.diff correct blocked) granted
        in
        let progressed =
          List.fold_left Proc.Set.union Proc.Set.empty (take p rev_goods)
        in
        let fair_violating =
          fair_cycle
          && Freedom.violated_on_cycle ~correct ~active:granted ~progressed
               point
        in
        Telemetry.emit st.sink Telemetry.Cycle_candidate p
          (if fair_violating then 1 else 0);
        if fair_violating then begin
          st.fair <- st.fair + 1;
          let cert =
            Lasso.cert_of_cursor
              ~stem:(List.rev (drop p rev_script))
              ~cycle:(List.rev cycle_rev)
              ~cells:(List.rev (take p rev_cells))
              cursor
          in
          let reps = max 2 ((pump_ticks + p - 1) / p) in
          (* The pump span closes with its verdict on every path —
             rejected, refuted, or accepted — before [Found_lasso] can
             unwind, so traces stay balanced. *)
          Telemetry.emit st.sink Telemetry.Pump_start p 0;
          match
            Lasso.pump ~factory:(factory ()) ~ticks:st.ticks ~repetitions:reps
              cert
          with
          | Error _ -> Telemetry.emit st.sink Telemetry.Pump_verdict p 0
          | Ok rep ->
              let certified =
                Proc.Set.subset (Fairness.starved rep) blocked
                && (not (Freedom.holds ~good rep point))
                && Option.is_some (Lasso.window_period rep)
              in
              Telemetry.emit st.sink Telemetry.Pump_verdict p
                (if certified then 1 else 0);
              if certified then begin
                st.found <- Some cert;
                raise Found_lasso
              end
        end
      end
    done
  end

let search ~n ~factory ~invoke ~good ~point ~depth ?(max_crashes = 0)
    ?max_period ?pump_ticks ?(invoke_order = false) ?(dpor = false)
    ?proviso_bound ?(cache = true) ?cache_capacity ?(obs = Obs.disabled)
    ?(sanitize = false) ?(compact = true) ?(persist = false) ?resume ?cancel
    () =
  let t0 = Clock.now_ns () in
  let cancel = match cancel with Some f -> f | None -> fun () -> false in
  (match resume with
  | Some f when f.lf_depth >= depth ->
      invalid_arg "Live_explore.search: resume frontier not shallower"
  | _ -> ());
  (* Default period bound: ceil(depth / 2), the largest period for
     which two full repetitions fit in a depth-bounded suffix at {e
     some} node of the walk (detection at a node of length [len] needs
     [2p <= len]; the deepest nodes have [len = depth]).  A plain
     [depth / 2] floor is equivalent for detection — an odd depth's
     last tick cannot complete a second repetition — but ceil keeps
     the documented bound honest at odd depths and costs nothing. *)
  let max_period = Option.value max_period ~default:(max 1 ((depth + 1) / 2)) in
  let pump_ticks = Option.value pump_ticks ~default:(4 * depth) in
  (* Bounded-ignoring proviso: a process may stay asleep through at
     most this many consecutive edges of the walk before being
     force-woken, so on any retained cycle of period >= the bound
     every slept process gets re-enabled within one repetition — the
     cycle proviso that keeps the sleep-set reduction sound for
     fair-cycle detection.  Default 2, the minimal nontrivial period:
     period-1 fair cycles need no protection (a sleeper is Ready and
     correct, so a cycle that never grants it is not fair in the full
     graph either), and larger bounds can ignore a transition across a
     whole short cycle and silently miss its lasso. *)
  let proviso_bound = Option.value proviso_bound ~default:2 in
  (* Compact keys need the cache to be live and every packed
     [(streak << 8) | proc] sleeper entry to be unambiguous. *)
  let compact = compact && cache && n < 62 in
  let st =
    new_state ?capacity:cache_capacity
      ~sink:(Obs.sink obs ~index:0)
      ~progress:(Obs.progress obs) ~sanitize ~dpor ~compact ()
  in
  wire_progress st;
  let all_procs = Proc.all ~n in
  (* The decision menu, in the same canonical order as {!Explore}:
     step/invoke process 1..n, then (under the crash budget) crash
     process 1..n — so the emitted certificate is the
     lexicographically least in that order.  [invoke_order] is the one
     reduction sound for cycle detection: when several idle processes
     could be invoked, offer only the least one's invocation
     (invocations commute with everything, and the normalization is
     configuration-local, so it maps periodic runs to periodic runs —
     unlike the safety engine's path-dependent sleep sets). *)
  let menu view len crashes =
    if len >= depth then []
    else begin
      let seen_invoke = ref false in
      let steps =
        List.concat_map
          (fun p ->
            match view.Driver.status p with
            | Runtime.Ready -> [ Driver.Schedule p ]
            | Runtime.Idle -> begin
                match invoke view p with
                | Some inv ->
                    if invoke_order && !seen_invoke then begin
                      st.invoke_pruned <- st.invoke_pruned + 1;
                      Telemetry.emit st.sink Telemetry.Invoke_prune len 1;
                      []
                    end
                    else begin
                      seen_invoke := true;
                      [ Driver.Invoke (p, inv) ]
                    end
                | None -> []
              end
            | Runtime.Crashed -> [])
          all_procs
      in
      let crash_branches =
        if crashes < max_crashes then
          List.filter_map
            (fun p ->
              if view.Driver.status p = Runtime.Crashed then None
              else Some (Driver.Crash p))
            all_procs
        else []
      in
      steps @ crash_branches
    end
  in
  let blocked_at view =
    Proc.Set.of_list
      (List.filter
         (fun p ->
           view.Driver.status p = Runtime.Idle
           && Option.is_none (invoke view p))
         all_procs)
  in
  (* Cut-leaf test, as in {!Explore.explore}: would the menu be
     nonempty with the depth guard lifted?  ([invoke_order] never
     empties a nonempty raw menu — the least invocation survives.) *)
  let has_future view crashes =
    List.exists
      (fun p ->
        match view.Driver.status p with
        | Runtime.Ready -> true
        | Runtime.Idle -> invoke view p <> None
        | Runtime.Crashed -> false)
      all_procs
    || crashes < max_crashes
       && List.exists
            (fun p -> view.Driver.status p <> Runtime.Crashed)
            all_procs
  in
  (* Settle a child's candidate sleep set once its edge [d] has
     executed (DPOR only).  Three filters, in order: (1) race
     reversal — wake every sleeper whose pending footprint conflicts
     with the accesses [d] actually performed; (2) the decision kind —
     crashes wake everyone (handled by the caller passing [] as the
     candidate), invocations are process-local and keep everyone;
     (3) the bounded-ignoring proviso — bump each survivor's streak
     and force-wake those that reach [proviso_bound]. *)
  let settle_sleep child d candidate len =
    let advanced =
      match d with
      | Driver.Schedule _ ->
          let observed =
            Dpor.observed_step_mask ~probe:st.probe ~declared:None
          in
          let keep, woken =
            List.partition
              (fun (z, _) ->
                not
                  (Dpor.wakes_mask ~observed
                     ~pending:(Runner.Cursor.pending_mask child z)))
              candidate
          in
          if woken <> [] then begin
            st.reversals <- st.reversals + List.length woken;
            Telemetry.emit st.sink Telemetry.Race_reversal len
              (List.length woken)
          end;
          keep
      | _ -> candidate
    in
    let kept, expired =
      List.partition (fun (_, streak) -> streak + 1 < proviso_bound) advanced
    in
    if expired <> [] then begin
      st.proviso <- st.proviso + List.length expired;
      Telemetry.emit st.sink Telemetry.Proviso_wake len (List.length expired)
    end;
    List.map (fun (z, streak) -> (z, streak + 1)) kept
  in
  (* As in {!Explore}: [visit] wraps [visit_body] in the node span,
     closed on every exit ([Found_lasso] unwinds included).  [sleep]
     carries each slept process with its ignoring streak; [] with DPOR
     off. *)
  let rec visit cursor rev_script rev_cells rev_cids rev_goods len crashes
      sleep =
    st.nodes <- st.nodes + 1;
    Progress.tick st.progress st.sample;
    if Telemetry.enabled st.sink then begin
      Telemetry.emit st.sink Telemetry.Node_enter len 0;
      Fun.protect
        ~finally:(fun () ->
          Telemetry.emit st.sink Telemetry.Node_leave len 0)
        (fun () ->
          visit_body cursor rev_script rev_cells rev_cids rev_goods len
            crashes sleep)
    end
    else
      visit_body cursor rev_script rev_cells rev_cids rev_goods len crashes
        sleep
  and visit_body cursor rev_script rev_cells rev_cids rev_goods len crashes
      sleep =
    if cancel () then raise Cancelled;
    let key =
      if not cache then None
      else if compact then
        (* The interned-cell suffix is length-prefixed so the cell ids
           and the packed sleeper entries cannot alias each other in
           the flat array. *)
        let cids = take (2 * max_period) rev_cids in
        Some
          (K_compact
             (Intern.Ints.intern st.keys
                (Runner.Cursor.compact_key cursor
                   ~extra:
                     ((List.length cids :: cids)
                     @ List.map (fun (z, s) -> (s lsl 8) lor z) sleep))))
      else
        Some
          (K_struct
             {
               k_fp = Runner.Cursor.fingerprint cursor;
               k_cells = take (2 * max_period) rev_cells;
               k_sleep = sleep;
             })
    in
    match Option.bind key (Clock_cache.find_opt st.table) with
    | Some () ->
        st.hits <- st.hits + 1;
        Telemetry.emit st.sink Telemetry.Cache_hit len 0
    | None ->
        let cuts0 = st.fr_cuts in
        let view = Runner.Cursor.view cursor in
        eval_candidates st ~factory ~good ~point ~max_period ~pump_ticks
          ~blocked:(blocked_at view) cursor rev_script rev_cells rev_goods len;
        (match menu view len crashes with
        | [] ->
            st.runs <- st.runs + 1;
            if persist && has_future view crashes then begin
              (* A cut leaf: record the coded script and the sleep set
                 with its proviso streaks (packed, as in the compact
                 key) so a deeper resume re-settles nothing. *)
              st.fr_cuts <- st.fr_cuts + 1;
              st.fr_rev_seeds <-
                {
                  ls_script = List.rev_map Explore.code_of_decision rev_script;
                  ls_sleep = List.map (fun (z, s) -> (s lsl 8) lor z) sleep;
                }
                :: st.fr_rev_seeds
            end
        | decisions ->
            (* Sleep-set filter, guarded by the cycle proviso.  A slept
               process's step commutes with everything executed since
               it went to sleep, so granting it here only step-swaps a
               run an earlier sibling explores — {e for safety}.  For
               cycle detection two extra wakes keep the reduction
               sound: a path is never truncated outright (if every
               enabled decision is asleep, all sleepers are
               force-woken), and no process sleeps through more than
               [proviso_bound] consecutive edges ([settle_sleep]), so
               every pruned transition is re-enabled within that many
               ticks on any retained cycle. *)
            let asleep, active =
              if dpor && sleep <> [] then
                List.partition
                  (fun d ->
                    match d with
                    | Driver.Schedule p -> List.mem_assoc p sleep
                    | _ -> false)
                  decisions
              else ([], decisions)
            in
            let asleep, active, sleep =
              if active = [] && asleep <> [] then begin
                st.proviso <- st.proviso + List.length asleep;
                Telemetry.emit st.sink Telemetry.Proviso_wake len
                  (List.length asleep);
                ([], decisions, [])
              end
              else (asleep, active, sleep)
            in
            st.por_pruned <- st.por_pruned + List.length asleep;
            if asleep <> [] then
              Telemetry.emit st.sink Telemetry.Por_sleep len
                (List.length asleep);
            (* Children with their candidate sleep sets: each explored
               sibling falls asleep (streak 0) for the siblings after
               it; crashes wake everyone. *)
            let children =
              if not dpor then List.mapi (fun i d -> (i, d, [])) active
              else
                List.mapi (fun i d -> (i, d)) active
                |> List.fold_left
                     (fun (acc, prev) (i, d) ->
                       let child_sleep =
                         match d with Driver.Crash _ -> [] | _ -> prev
                       in
                       let prev' =
                         match d with
                         | Driver.Schedule p ->
                             (p, 0) :: List.remove_assoc p prev
                         | _ -> prev
                       in
                       ((i, d, child_sleep) :: acc, prev'))
                     ([], sleep)
                |> fst |> List.rev
            in
            let before = History.length view.Driver.history in
            List.iter
              (fun (i, d, child_sleep) ->
                let crashes' =
                  match d with Driver.Crash _ -> crashes + 1 | _ -> crashes
                in
                let child =
                  if i = 0 then begin
                    st.avoided <- st.avoided + 1;
                    cursor
                  end
                  else begin
                    let c =
                      Runner.Cursor.replay ~n ~factory:(factory ())
                        ~ticks:st.ticks ?shadow:st.shadow ?probe:st.probe
                        ?encode:st.encode
                        (List.rev rev_script)
                    in
                    st.replayed <- st.replayed + len;
                    c
                  end
                in
                Telemetry.emit st.sink Telemetry.Decision (len + 1)
                  (dec_code d);
                Runner.Cursor.apply child d;
                let settled =
                  if dpor then settle_sleep child d child_sleep (len + 1)
                  else []
                in
                let fresh =
                  drop before
                    (History.to_list
                       (Runner.Cursor.view child).Driver.history)
                in
                let cell = cell_of d fresh in
                let rev_cids' =
                  if compact then
                    Intern.intern st.cells_pool cell :: rev_cids
                  else rev_cids
                in
                visit child (d :: rev_script) (cell :: rev_cells) rev_cids'
                  (goods_of ~good fresh :: rev_goods)
                  (len + 1) crashes' settled)
              children);
        (* Persist mode: as in {!Explore}, never cache a subtree
           holding cut leaves — a hit would hide their occurrences
           from the seed log. *)
        if st.fr_cuts = cuts0 || not persist then
          Option.iter (fun k -> Clock_cache.replace st.table k ()) key
  in
  let make_cursor () =
    Runner.Cursor.create ~n ~factory:(factory ()) ~ticks:st.ticks
      ?shadow:st.shadow ?probe:st.probe ?encode:st.encode ()
  in
  (* Resuming: replay each stored seed decision by decision, rebuilding
     the abstract cells / good-response sets / interned cell ids the
     walk would have carried (the {!certify_run} pattern), then visit
     only the seed subtrees on top of the stored base run count. *)
  let walk () =
    match resume with
    | None -> visit (make_cursor ()) [] [] [] [] 0 0 []
    | Some f ->
        st.runs <- f.lf_base_runs;
        List.iter
          (fun seed ->
            let c = make_cursor () in
            let rec go codes rev_script rev_cells rev_cids rev_goods len
                crashes =
              match codes with
              | [] -> (rev_script, rev_cells, rev_cids, rev_goods, len, crashes)
              | code :: tl ->
                  let view = Runner.Cursor.view c in
                  let d = Explore.decision_of_code ~invoke view code in
                  let before = History.length view.Driver.history in
                  Runner.Cursor.apply c d;
                  let fresh =
                    drop before
                      (History.to_list (Runner.Cursor.view c).Driver.history)
                  in
                  let cell = cell_of d fresh in
                  let rev_cids' =
                    if compact then
                      Intern.intern st.cells_pool cell :: rev_cids
                    else rev_cids
                  in
                  go tl (d :: rev_script) (cell :: rev_cells) rev_cids'
                    (goods_of ~good fresh :: rev_goods)
                    (len + 1)
                    (match d with
                    | Driver.Crash _ -> crashes + 1
                    | _ -> crashes)
            in
            let rev_script, rev_cells, rev_cids, rev_goods, len, crashes =
              go seed.ls_script [] [] [] [] 0 0
            in
            st.replayed <- st.replayed + len;
            let sleep =
              List.map (fun c -> (c land 0xff, c asr 8)) seed.ls_sleep
            in
            visit c rev_script rev_cells rev_cids rev_goods len crashes sleep)
          f.lf_seeds
  in
  let outcome =
    match walk () with
    | () -> No_fair_cycle
    | exception Found_lasso -> Lasso (Option.get st.found)
    | exception Cancelled ->
        raise
          (Explore.Interrupted
             (stats_of_state
                ~elapsed_ns:(Clock.now_ns () - t0)
                ~events_dropped:(Obs.events_dropped obs)
                st))
  in
  let frontier =
    match outcome with
    | No_fair_cycle when persist ->
        Some
          {
            lf_depth = depth;
            lf_max_period = max_period;
            lf_pump_ticks = pump_ticks;
            lf_base_runs = st.runs - st.fr_cuts;
            lf_seeds = List.rev st.fr_rev_seeds;
          }
    | _ -> None
  in
  {
    outcome;
    frontier;
    stats =
      stats_of_state
        ~elapsed_ns:(Clock.now_ns () - t0)
        ~events_dropped:(Obs.events_dropped obs)
        st;
  }

let certify_run ~n ~factory ~driver ~good ~point ~max_steps ?max_period
    ?pump_ticks () =
  let t0 = Clock.now_ns () in
  let max_period = Option.value max_period ~default:(max 1 (max_steps / 4)) in
  let pump_ticks = Option.value pump_ticks ~default:(max 64 (2 * max_period)) in
  let st = new_state () in
  let cursor = Runner.Cursor.create ~n ~factory:(factory ()) ~ticks:st.ticks () in
  let rec go rev_script rev_cells rev_goods len =
    if len >= max_steps then (rev_script, rev_cells, rev_goods, len)
    else
      let view = Runner.Cursor.view cursor in
      match driver view with
      | Driver.Stop -> (rev_script, rev_cells, rev_goods, len)
      | d ->
          let before = History.length view.Driver.history in
          Runner.Cursor.apply cursor d;
          let fresh =
            drop before
              (History.to_list (Runner.Cursor.view cursor).Driver.history)
          in
          go (d :: rev_script)
            (cell_of d fresh :: rev_cells)
            (goods_of ~good fresh :: rev_goods)
            (len + 1)
  in
  let rev_script, rev_cells, rev_goods, len = go [] [] [] 0 in
  st.nodes <- len;
  st.runs <- 1;
  let outcome =
    match
      eval_candidates st ~factory ~good ~point ~max_period ~pump_ticks
        ~blocked:Proc.Set.empty cursor rev_script rev_cells rev_goods len
    with
    | () -> No_fair_cycle
    | exception Found_lasso -> Lasso (Option.get st.found)
  in
  {
    outcome;
    frontier = None;
    stats =
      stats_of_state ~elapsed_ns:(Clock.now_ns () - t0) ~events_dropped:0 st;
  }

let validate_cert_codes ~n ~factory ~invoke ~good ~point ~pump_ticks ~stem
    ~cycle () =
  let p = List.length cycle in
  if p = 0 then None
  else
    let ticks = ref 0 in
    let cursor = Runner.Cursor.create ~n ~factory:(factory ()) ~ticks () in
    let apply_codes codes =
      List.map
        (fun code ->
          let view = Runner.Cursor.view cursor in
          let d = Explore.decision_of_code ~invoke view code in
          let before = History.length view.Driver.history in
          Runner.Cursor.apply cursor d;
          let fresh =
            drop before
              (History.to_list (Runner.Cursor.view cursor).Driver.history)
          in
          (d, cell_of d fresh))
        codes
    in
    match
      let stem_ds = apply_codes stem in
      let cycle_ds = apply_codes cycle in
      (stem_ds, cycle_ds)
    with
    | exception _ -> None
    | stem_ds, cycle_ds ->
        let view = Runner.Cursor.view cursor in
        let blocked =
          Proc.Set.of_list
            (List.filter
               (fun q ->
                 view.Driver.status q = Runtime.Idle
                 && Option.is_none (invoke view q))
               (Proc.all ~n))
        in
        let cert =
          Lasso.cert_of_cursor
            ~stem:(List.map fst stem_ds)
            ~cycle:(List.map fst cycle_ds)
            ~cells:(List.map snd cycle_ds)
            cursor
        in
        let reps = max 2 ((pump_ticks + p - 1) / p) in
        (match Lasso.pump ~factory:(factory ()) ~ticks ~repetitions:reps cert with
        | Error _ -> None
        | Ok rep ->
            if
              Proc.Set.subset (Fairness.starved rep) blocked
              && (not (Freedom.holds ~good rep point))
              && Option.is_some (Lasso.window_period rep)
            then Some cert
            else None)
