(** Adversary sets and the [Gmax] intersection (Definition 4.3 and
    Theorem 4.4).

    An adversary set w.r.t. [L] and [S] is a set [F] of histories with
    (1) [F ⊆ S], (2) [F ⊆ complement of L], and (3) every
    implementation ensuring [S] has a fair history in [F].  Theorem
    4.4: a weakest liveness property excluding [S] exists iff [Gmax],
    the intersection of all adversary sets w.r.t. [Lmax] and [S], is
    itself an adversary set.

    This module works with {e finite} adversary sets — the paper's own
    corollaries only need finite witnesses (the six-history sets [F1],
    [F2] of Corollary 4.5, the strategy-generated families of
    Corollary 4.6) — and with the bounded-universe model checker of
    {!Theorem_4_4}, where all quantifiers are finite. *)

type 'h t = { name : string; histories : 'h list }
(** A finite adversary set (or a finite fragment of one). *)

val make : name:string -> 'h list -> 'h t
(** @raise Invalid_argument on an empty list (Definition 4.3 requires
    non-emptiness). *)

val subset_of_safety : 'h Slx_safety.Property.t -> 'h t -> bool
(** Condition (1): every history of the set satisfies [S]. *)

val avoids_liveness : violates:('h -> bool) -> 'h t -> bool
(** Condition (2): every history of the set violates [L] (the caller
    supplies the bounded reading of “[h ∉ L]”). *)

val intersect : equal:('h -> 'h -> bool) -> 'h t -> 'h t -> 'h list
(** The common histories of two sets. *)

val intersect_all : equal:('h -> 'h -> bool) -> 'h t list -> 'h list
(** [⋂] of finitely many sets.  @raise Invalid_argument on []. *)

val disjoint : equal:('h -> 'h -> bool) -> 'h t -> 'h t -> bool
(** [intersect] is empty — the paper's route to [Gmax = ∅]: “it is
    possible to find two adversary sets [F1] and [F2] … such that
    [F1 ∩ F2 = ∅], and consequently [Gmax ∉ F(Lmax)]”. *)
