(** Liveness model checking: exhaustive search for fair,
    progress-free cycles (lassos) in the bounded configuration graph.

    The paper's negative results (Theorems 5.2/5.3) assert that an
    adversary can drive an implementation into an infinite {e fair} run
    with no progress.  The adversary games sample such runs; this
    module {e searches} for them: it walks the same bounded decision
    tree as {!Explore} (nodes are {!Slx_sim.Runner.Cursor}
    configurations, edges scheduler decisions) looking for a reachable
    cycle that is

    - {b fair} — every non-crashed process that is not {e blocked}
      (idle with no further work from [invoke]) takes a scheduling
      grant on the cycle, the finitization contract of doc/model.md §2;
    - {b progress-free} — pumping the cycle forever violates the
      pluggable (l,k)-freedom predicate
      ({!Slx_liveness.Freedom.violated_on_cycle}): the processes
      granted on the cycle are the ones taking infinitely many steps,
      and the [good] responses on the cycle are the ones delivered
      infinitely often.

    {b The cycle quotient.}  Raw configurations never recur along a
    run — time, histories and step counts grow monotonically, and
    implementations allocate fresh base objects (the register
    consensus allocates per-round registers) — so cycles are detected
    in the abstract-trace quotient of {!Slx_liveness.Lasso}: a node
    closes a candidate cycle of period [p] when the per-tick cells
    ({!Slx_liveness.Lasso.tick_cells}: grant skeleton + event
    skeletons) of its last [2p] ticks are [p]-periodic, i.e. two full
    repetitions are observed, exactly the existing lasso-certificate
    criterion.  A candidate only becomes a verdict after {e
    certificate validation}: the stem + cycle scripts are replayed
    through a fresh instance with the cycle pumped until at least
    [pump_ticks] extra ticks are covered
    ({!Slx_liveness.Lasso.pump}), which must reproduce the cells and
    the boundary configuration digest on every repetition and yield a
    report satisfying the standard bounded violation
    ({!Slx_liveness.Lasso.certified_violation}).  Pumping is what
    rejects the spurious periodic suffixes of runs that merely {e
    pass through} a repetitive phase before responding (e.g. a solo
    register-consensus process mid-round, which decides within a
    bounded number of further grants); see doc/model.md §7 for the
    soundness argument and its honest limits.

    The walk is depth-first in the canonical menu order of {!Explore},
    so the emitted certificate is deterministic: the lex-least
    stem+cycle script among the validated candidates, independent of
    caching.  The transposition cache is keyed on the configuration
    fingerprint {e plus} the last [2 * max_period] abstract cells —
    the context that determines every candidate in a subtree — and
    stores only completed lasso-free subtrees, so hits can never mask
    the least witness.

    {b Reductions.}  Naive sleep sets are unsound for cycle detection
    — sleep sets are path-dependent, and pruning by them can defer a
    transition forever around a cycle (the classic "ignoring
    problem"), dropping every representative of a periodic run.  The
    [dpor] reduction closes that gap with a {e bounded-ignoring cycle
    proviso}: the DPOR sleep-set walk of {!Explore} (dynamic
    observed-access race reversal, {!Dpor}) runs under two extra wake
    rules — a node whose every enabled decision is asleep force-wakes
    them all instead of truncating the path, and no process stays
    asleep through more than [proviso_bound] consecutive edges.
    Together these guarantee that on every retained cycle each pruned
    transition is re-enabled within [proviso_bound] ticks, so a fair
    periodic run cannot be ignored out of the reduced tree; the
    transposition key carries the sleep set and the per-sleeper
    ignoring streaks so distinct reduced subtrees never share an
    entry.  Certificate validation (pumping) remains the unconditional
    backstop against false positives.  The other reduction offered is
    [invoke_order]. *)

open Slx_history
open Slx_sim
open Slx_liveness

type ('inv, 'res) outcome =
  | Lasso of ('inv, 'res) Lasso.cert
      (** A fair, progress-free, pump-validated cycle was found; the
          certificate replays through {!Slx_liveness.Lasso.pump}. *)
  | No_fair_cycle
      (** No candidate survived validation anywhere in the bounded
          tree: every fair cycle of the instance (within [depth],
          [max_period], the crash budget) makes progress. *)

type live_seed = {
  ls_script : int list;
      (** Coded decision prefix ({!Explore.code_of_decision}),
          root-first. *)
  ls_sleep : int list;
      (** The leaf's sleep set with proviso streaks, each packed as
          [(streak lsl 8) lor proc]. *)
}
(** A cut leaf of a depth-bounded fair-cycle search — as
    {!Explore.frontier_seed}, plus the ignoring streaks the liveness
    sleep sets carry. *)

type live_frontier = {
  lf_depth : int;
  lf_max_period : int;
      (** The period bound the stored search ran under.  A resume at
          depth [d] is exact iff this is at least
          [min new_max_period (lf_depth / 2)] — every candidate the
          deeper walk would examine at a node the stored walk visited
          was already examined (and, the verdict being
          [No_fair_cycle], rejected). *)
  lf_pump_ticks : int;
      (** The validation budget of the stored search.  Resume requires
          the {e same} budget: a bigger pump can flip a rejected
          candidate at an already-visited node, which a resumed walk
          would never re-pump ({!Slx_store.Persist} enforces this). *)
  lf_base_runs : int;
  lf_seeds : live_seed list;
}

type ('inv, 'res) result = {
  outcome : ('inv, 'res) outcome;
  stats : Explore_stats.t;
      (** Work counters.  [cycles_examined]/[fair_cycles] count the
          periodic candidates and the fair violating ones;
          [invoke_order_prunes] counts invocations pruned by
          [invoke_order]; [por_prunes]/[race_reversals]/
          [proviso_wakes] count the [dpor] reduction's prunes and
          wakes; pump replays are included in [steps_executed]. *)
  frontier : live_frontier option;
      (** Under [~persist:true] on a [No_fair_cycle] outcome: the cut
          frontier a deeper [~resume] search can start from. *)
}

val search :
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  good:('res -> bool) ->
  point:Freedom.t ->
  depth:int ->
  ?max_crashes:int ->
  ?max_period:int ->
  ?pump_ticks:int ->
  ?invoke_order:bool ->
  ?dpor:bool ->
  ?proviso_bound:int ->
  ?cache:bool ->
  ?cache_capacity:int ->
  ?obs:Slx_obs.Obs.t ->
  ?sanitize:bool ->
  ?compact:bool ->
  ?persist:bool ->
  ?resume:live_frontier ->
  ?cancel:(unit -> bool) ->
  unit ->
  ('inv, 'res) result
(** [search ~n ~factory ~invoke ~good ~point ~depth ()] explores every
    decision sequence of at most [depth] ticks (menu and parameters as
    in {!Explore.explore}; [max_crashes] defaults to 0 — pass at least
    [n - 1] to give obstruction-style points their solo windows) and
    returns the first validated fair progress-free lasso, or
    [No_fair_cycle] after exhausting the tree.

    [max_period] (default ceil([depth / 2]), the largest period with
    two full repetitions observable within the depth bound — detection
    at a node of length [len] needs [2 * period <= len]) bounds the
    candidate cycle length in ticks.  [pump_ticks] (default
    [4 * depth]) is the validation budget: every candidate's cycle is
    pumped until at least that many extra ticks are covered before it
    is believed — it must exceed the implementation's longest
    good-response latency or a pre-response phase can masquerade as a
    cycle.  [invoke_order] (default [false]) prunes all but the least
    idle process's invocation at each node (sound for cycles, see
    module doc); [dpor] (default [false]) enables the
    cycle-proviso-guarded DPOR sleep-set reduction (see module doc),
    with [proviso_bound] (default [2]) the bounded-ignoring limit: a
    transition stays protected on every retained cycle of period at
    least the bound, so the default — the minimal nontrivial period —
    protects them all (period-1 fair cycles need none: a sleeper is
    Ready and correct, so a cycle never granting it is unfair in the
    full graph too).  Larger bounds prune more but can ignore a
    transition across a whole shorter cycle and silently miss its
    lasso; [cache]/[cache_capacity] control the suffix-keyed
    transposition cache.

    [obs] (default {!Slx_obs.Obs.disabled}) attaches the observability
    bundle, as in {!Explore.explore}: node spans, decisions, cache
    hits, [invoke_order] prunes, one [Cycle_candidate] instant per
    candidate (tagged fair-and-violating or not) and one pump span per
    validation attempt, closed with its verdict on every path.
    Verdicts and counters (other than [elapsed_ns]/[events_dropped])
    are identical with tracing on or off.

    [sanitize] (default [false]) installs a non-raising sanitizer
    shadow on every search cursor (as in {!Explore.explore}):
    footprint mismatches are counted into
    [stats.footprint_violations] without changing any decision or
    verdict.  Pump validation runs outside the shadow — it re-executes
    an already-sanitized script on a fresh instance.

    [compact] (default [true]) keys the suffix cache on hash-consed
    encodings, exactly as in {!Explore.explore}: interned incremental
    history ids, interned abstract-trace cells, packed sleeper
    entries — one dense int per key.  Verdict- and
    certificate-identical to [~compact:false] (differentially tested);
    ignored when the cache is off or [n >= 62].  There is deliberately
    no bitstate variant here: hash compaction's false hits would
    silently truncate the search, and [No_fair_cycle] is an
    exhaustiveness claim — the liveness side keeps exact keys
    (doc/model.md §10).

    [persist]/[resume]/[cancel] behave as in {!Explore.explore}: cut
    leaves become {!live_seed}s (suffix-cache entries are vetoed for
    subtrees containing them), [resume] replays the stored seeds —
    rebuilding their abstract-cell suffixes — and searches only their
    subtrees, and [cancel] is polled per node, aborting with
    {!Explore.Interrupted} carrying partial stats.  A resumed search
    is certificate-identical to a cold one at the same depth provided
    the stored run's [max_period]/[pump_ticks] satisfy the
    compatibility bounds documented on {!live_frontier} — enforced by
    {!Slx_store.Persist}, which also pins the flags, workload and
    instance via the store key.  Liveness frontiers are additionally
    {e per query}: the suffix cells a seed carries are a function of
    the property's [good]/[point], so seeds are never shared across
    properties (doc/model.md §11).
    @raise Explore.Interrupted when [cancel] fired.
    @raise Invalid_argument if [resume.lf_depth >= depth]. *)

val validate_cert_codes :
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  invoke:(('inv, 'res) Driver.view -> Proc.t -> 'inv option) ->
  good:('res -> bool) ->
  point:Freedom.t ->
  pump_ticks:int ->
  stem:int list ->
  cycle:int list ->
  unit ->
  ('inv, 'res) Lasso.cert option
(** Re-validate a stored lasso witness from its coded stem and cycle
    scripts ({!Explore.code_of_decision}): replay them on a fresh
    instance, rebuild the certificate's abstract cells, and run the
    exact acceptance test of the exhaustive search — pump the cycle
    for [max 2 (ceil (pump_ticks / period))] repetitions, then require
    the starved set to be blocked, the freedom predicate violated, and
    a periodic window present.  [Some cert] is the rebuilt,
    pump-validated certificate; [None] means the stored witness does
    not reproduce (stale codes, changed workload, or a forged store)
    and must not be served — {!Slx_store.Persist} then falls back to a
    cold search. *)

val certify_run :
  n:int ->
  factory:(unit -> ('inv, 'res) Runner.factory) ->
  driver:('inv, 'res) Driver.t ->
  good:('res -> bool) ->
  point:Freedom.t ->
  max_steps:int ->
  ?max_period:int ->
  ?pump_ticks:int ->
  unit ->
  ('inv, 'res) result
(** Cross-validation bridge for instances too deep to search
    exhaustively (a TM transaction cycle spans tens of ticks): play a
    single driver — typically one of the paper's adversaries — for
    [max_steps] ticks, then run the {e same} candidate detection and
    certificate validation on the recorded run's trace suffix.
    [Lasso cert] means the adversary's sampled win has been promoted
    to a replayable, pumpable certificate of the same form the
    exhaustive search emits (with blocked processes conservatively
    assumed absent: every correct process must be granted on the
    cycle).  Defaults: [max_period = max_steps / 4],
    [pump_ticks = max 64 (2 * max_period)]. *)
