open Slx_history

type invocation = Ping
type response = Ack

type history = (invocation, response) History.t

type instance = {
  name : string;
  universe : history list;
  impl_traps : (string * history list) list;
}

let equal_history = History.equal ~inv:( = ) ~res:( = )

(* Enumerate the maximal fair histories of the quota policy: each
   process may be invoked (quota + 1) times; the implementation
   responds to the first (quota) invocations and blocks on the last.
   The environment chooses every interleaving of invocations and of the
   (eventually mandatory, by fairness) responses. *)
let traps ~n ~quotas =
  let quotas = Array.of_list quotas in
  if Array.length quotas <> n then invalid_arg "Theorem_4_4.traps";
  (* Per-process state: invocations left, responses left, pending? *)
  let results = ref [] in
  let rec go h invs_left resp_left pending =
    let moves =
      List.concat_map
        (fun p ->
          let i = p - 1 in
          let invoke =
            if (not pending.(i)) && invs_left.(i) > 0 then
              [
                (fun () ->
                  let invs_left = Array.copy invs_left in
                  let pending = Array.copy pending in
                  invs_left.(i) <- invs_left.(i) - 1;
                  pending.(i) <- true;
                  go
                    (History.append h (Event.Invocation (p, Ping)))
                    invs_left resp_left pending);
              ]
            else []
          in
          let respond =
            if pending.(i) && resp_left.(i) > 0 then
              [
                (fun () ->
                  let resp_left = Array.copy resp_left in
                  let pending = Array.copy pending in
                  resp_left.(i) <- resp_left.(i) - 1;
                  pending.(i) <- false;
                  go
                    (History.append h (Event.Response (p, Ack)))
                    invs_left resp_left pending);
              ]
            else []
          in
          invoke @ respond)
        (Proc.all ~n)
    in
    match moves with
    | [] ->
        (* Maximal: every process is blocked pending (fair: the
           implementation enables nothing further). *)
        if not (List.exists (fun h' -> equal_history h h') !results) then
          results := h :: !results
    | _ :: _ -> List.iter (fun move -> move ()) moves
  in
  go History.empty
    (Array.map (fun q -> q + 1) quotas)
    (Array.copy quotas)
    (Array.make n false);
  List.rev !results

let instance_of ~n ~quota_sets =
  let universe =
    List.fold_left
      (fun acc quotas ->
        List.fold_left
          (fun acc h ->
            if List.exists (equal_history h) acc then acc else h :: acc)
          acc (traps ~n ~quotas))
      [] quota_sets
    |> List.rev
  in
  {
    name = Printf.sprintf "%d-process custom instance" n;
    universe;
    impl_traps =
      List.map
        (fun quotas ->
          ( Printf.sprintf "I(%s)"
              (String.concat "," (List.map string_of_int quotas)),
            traps ~n ~quotas ))
        quota_sets;
  }

let positive () =
  {
    name = "1-process, S = at-most-one-response";
    universe = traps ~n:1 ~quotas:[ 0 ] @ traps ~n:1 ~quotas:[ 1 ];
    impl_traps =
      [
        ("I0: never respond", traps ~n:1 ~quotas:[ 0 ]);
        ("I1: respond once", traps ~n:1 ~quotas:[ 1 ]);
      ];
  }

let negative () =
  (* The [1;1] policy is omitted to keep the universe small enough for
     [verify_by_enumeration]; the conclusion (no singleton traps, so
     Gmax = 0) is unchanged by adding implementations. *)
  let quota_sets = [ [ 0; 0 ]; [ 1; 0 ]; [ 0; 1 ] ] in
  let universe =
    List.fold_left
      (fun acc quotas ->
        List.fold_left
          (fun acc h ->
            if List.exists (equal_history h) acc then acc else h :: acc)
          acc
          (traps ~n:2 ~quotas))
      [] quota_sets
    |> List.rev
  in
  {
    name = "2-process symmetric, S = at-most-one-response-per-process";
    universe;
    impl_traps =
      List.map
        (fun quotas ->
          ( Printf.sprintf "I(%s)"
              (String.concat "," (List.map string_of_int quotas)),
            traps ~n:2 ~quotas ))
        quota_sets;
  }

(* A set of histories covers the instance if it intersects every
   implementation's trap set. *)
let covers inst set =
  List.for_all
    (fun (_, trap) ->
      List.exists (fun h -> List.exists (equal_history h) set) trap)
    inst.impl_traps

let gmax inst =
  List.filter
    (fun h ->
      List.exists
        (fun (_, trap) ->
          match trap with [ h' ] -> equal_history h h' | [] | _ :: _ -> false)
        inst.impl_traps)
    inst.universe

let gmax_is_adversary_set inst =
  let g = gmax inst in
  g <> [] && covers inst g

let weakest_excluding_exists = gmax_is_adversary_set

let verify_by_enumeration inst =
  let u = Array.of_list inst.universe in
  let size = Array.length u in
  if size > 20 then invalid_arg "Theorem_4_4.verify_by_enumeration: too large";
  (* Intersect all covering subsets of the universe. *)
  let in_all_covering = Array.make size true in
  for mask = 0 to (1 lsl size) - 1 do
    let subset =
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) inst.universe
    in
    if subset <> [] && covers inst subset then
      Array.iteri
        (fun i keep ->
          if keep && mask land (1 lsl i) = 0 then in_all_covering.(i) <- false)
        in_all_covering
  done;
  let brute =
    List.filteri (fun i _ -> in_all_covering.(i)) inst.universe
  in
  let fast = gmax inst in
  List.length brute = List.length fast
  && List.for_all (fun h -> List.exists (equal_history h) fast) brute
