type 'h t = { name : string; histories : 'h list }

let make ~name = function
  | [] -> invalid_arg "Gmax.make: an adversary set is non-empty"
  | histories -> { name; histories }

let subset_of_safety s t =
  List.for_all (Slx_safety.Property.holds s) t.histories

let avoids_liveness ~violates t = List.for_all violates t.histories

let intersect ~equal t1 t2 =
  List.filter (fun h -> List.exists (equal h) t2.histories) t1.histories

let intersect_all ~equal = function
  | [] -> invalid_arg "Gmax.intersect_all: empty family"
  | t :: rest ->
      List.fold_left
        (fun acc t' ->
          List.filter (fun h -> List.exists (equal h) t'.histories) acc)
        t.histories rest

let disjoint ~equal t1 t2 = intersect ~equal t1 t2 = []
