(** Experimental regeneration of Figure 1 (and its Section 5.3
    sibling): classifying every (l,k)-freedom point as excluding or not
    excluding a safety property.

    The classification is run, not hard-coded: for each object we
    field
    - {e adversary runs}: bounded-fair, safety-respecting runs produced
      by the paper's adversaries against our best implementation — a
      point is {b Excluded} (black) when some adversary run violates
      it;
    - {e positive runs}: bounded-fair runs of the surviving
      implementation under solo, crashed-subset and random schedules —
      a point is {b Not_excluded} (white) when no run (adversary or
      positive) violates it.

    A point violated only by a positive run is {b Unknown} — it means
    our implementation is too weak for that point and our adversaries
    too weak to rule it out; the paper's theorems predict no Unknowns,
    and the test suite asserts none appear.

    Expected shapes (the tests and EXPERIMENTS.md check these):
    - {!consensus} (Figure 1a): white exactly at (1,1) — Theorem 5.2;
    - {!tm} (Figure 1b): white exactly at the bottom row l = 1 —
      Theorem 5.3;
    - {!s_prime} (Section 5.3): white at (1,1) and (1,2); minimal black
      points (2,2) {e and} (1,3) — two incomparable minimal excluders,
      so no weakest excluding (l,k)-freedom exists. *)

open Slx_liveness

type color = Not_excluded | Excluded | Unknown

type grid = {
  name : string;
  n : int;
  cells : (Freedom.t * color) list;
  adversary_runs : int;  (** How many adversary runs were fielded. *)
  positive_runs : int;   (** How many positive runs were fielded. *)
}

val classify :
  good:('res -> bool) ->
  n:int ->
  adversary:('inv, 'res) Slx_sim.Run_report.t list ->
  positive:('inv, 'res) Slx_sim.Run_report.t list ->
  (Freedom.t * color) list
(** The generic classifier over prepared runs (unfair runs are
    ignored). *)

val consensus : ?n:int -> ?max_steps:int -> ?seeds:int list -> unit -> grid
(** Figure 1a: agreement-and-validity, register consensus, lockstep
    adversary.  Defaults: [n = 3], [max_steps = 1200], three seeds. *)

val consensus_exhaustive : ?n:int -> ?depth:int -> unit -> grid
(** Figure 1a again, but by {e exhaustive fair-cycle search}
    ({!Live_explore.search}) instead of sampled adversary games: a
    point is {b Excluded} iff the bounded configuration graph contains
    a validated fair progress-free lasso for it (with up to [n - 1]
    crashes, so obstruction-style points get their solo windows), and
    {b Not_excluded} otherwise — no [Unknown] is possible.  Defaults
    [n = 2], [depth = 10]: big enough for Theorem 5.2's split, small
    enough to exhaust.  Experiment E20 cross-checks this grid
    cell-by-cell against {!consensus}. *)

val tm : ?n:int -> ?max_steps:int -> ?seeds:int list -> unit -> grid
(** Figure 1b: opacity, the AGP TM, the Section 4.1 adversary. *)

val s_prime : ?n:int -> ?max_steps:int -> ?seeds:int list -> unit -> grid
(** The Section 5.3 grid: [S'], the [I(1,2)] TM, both TM adversaries. *)

val mutex : ?n:int -> ?max_steps:int -> ?seeds:int list -> unit -> grid
(** The counterpoint grid: mutual exclusion with the Bakery lock.  The
    starvation scheduler cannot produce a bounded-fair violation, and
    the fair runs satisfy every point — the whole grid is white:
    mutual exclusion has no safety-liveness trade-off at any
    (l,k)-freedom point, because its [Lmax] (starvation-freedom) is
    implementable. *)

val color_at : grid -> l:int -> k:int -> color option
(** The color of a grid point, if the point exists. *)

val strongest_not_excluded : grid -> Freedom.t list
(** Maximal white points; Theorems 5.2 / 5.3 predict a singleton for
    consensus and TM. *)

val weakest_excluded : grid -> Freedom.t list
(** Minimal black points; a singleton for consensus ((1,2)) and TM
    ((2,2)), and a {e pair} for [S'] ((2,2) and (1,3)). *)

val render : grid -> string
(** An ASCII rendering in the layout of Figure 1: rows are [l]
    (decreasing), columns [k]; [o] = white (does not exclude),
    [#] = black (excludes), [?] = unknown. *)

val to_json : grid -> string
(** One-line JSON object of the grid ([cells] as an array of
    [{"l": _, "k": _, "color": "not_excluded" | "excluded" |
    "unknown"}]), in the machine-readable style of the explore
    [--json] stats records; consumed by the E20 cross-validation
    bench and [slx figure1 --json]. *)
