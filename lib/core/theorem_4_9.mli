(** The constructions of Theorem 4.9, machine-checked on finite
    automata.

    Theorem 4.9: {e if a strongest liveness property that does not
    exclude [S] exists, it must be [Lmax]}.  The proof plays candidate
    “strongest” properties against two trivial implementations:

    - [It] — the implementation that never responds: by
      input-enabledness every history of any [S]-ensuring
      implementation restricted to invocations is also a history of
      [It], so [It] ensures [S]; its fair histories are the blocked
      ones;
    - [Ib] — the implementation that responds exactly once (to the
      first invocation) and then blocks.

    On the micro object type (one process, [ping]/[ack], [S] = all
    well-formed histories) this module builds both as explicit
    {!Slx_automata.Automaton} values and checks the proof's moves:

    + both ensure [S] (every bounded trace is well-formed and in [S]);
    + [h = ping] is a fair trace of [It] but {e not} of [Ib] (at [Ib]'s
      post-invocation state the response is enabled, so stopping there
      is unfair);
    + [h' = ping · ack · ping] is a fair trace of [Ib] but not of
      [It];
    + neither [h] nor [h'] is in the bounded [Lmax] (both end with a
      correct pending process);
    + hence [Lt = Lmax ∪ fair(It)] and [Lb = Lmax ∪ fair(Ib)] — the
      strongest properties ensured by [It] and [Ib] (Lemma 4.8) — are
      {e incomparable}, and no strongest non-excluding liveness
      property below [Lmax] can exist.

    The [result] record exposes every intermediate fact so the bench
    can print the reasoning chain and the tests can assert it. *)

open Slx_automata

type result = {
  it : Automaton.t;              (** The never-respond automaton. *)
  ib : Automaton.t;              (** The respond-once automaton. *)
  it_traces : Action.t list list;  (** Bounded traces of [It]. *)
  ib_traces : Action.t list list;  (** Bounded traces of [Ib]. *)
  it_fair_traces : Action.t list list;
  ib_fair_traces : Action.t list list;
  both_ensure_s : bool;          (** Check 1. *)
  h_separates : bool;            (** Check 2: [h ∈ fair(It) \ fair(Ib)]. *)
  h'_separates : bool;           (** Check 3: [h' ∈ fair(Ib) \ fair(It)]. *)
  h_outside_lmax : bool;         (** Check 4. *)
  incomparable : bool;           (** Check 5: the conclusion. *)
}

val it : unit -> Automaton.t
(** The never-responding automaton ([n = 1], crash-augmented). *)

val ib : unit -> Automaton.t
(** The respond-once automaton. *)

val run : depth:int -> result
(** Execute all checks with the given exploration depth (>= 4 for the
    separating histories to appear). *)

val holds : result -> bool
(** All five checks passed. *)

val lemma_4_8 : depth:int -> bool
(** Lemma 4.8 machine-checked on the bounded trace universe: for each
    of [It] and [Ib], enumerate {e every} liveness property over the
    universe (every superset of the bounded [Lmax]), keep the ones the
    implementation ensures ([fair(A_I) ⊆ L]), and verify their
    intersection — the strongest ensured property — is exactly
    [Lmax ∪ fair(A_I)].  Exponential in the universe size; [depth <= 7]
    keeps it instant. *)
