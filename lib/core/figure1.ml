open Slx_history
open Slx_sim
open Slx_liveness

type color = Not_excluded | Excluded | Unknown

type grid = {
  name : string;
  n : int;
  cells : (Freedom.t * color) list;
  adversary_runs : int;
  positive_runs : int;
}

let classify ~good ~n ~adversary ~positive =
  let fair = List.filter Fairness.is_bounded_fair in
  let adversary = fair adversary and positive = fair positive in
  let color point =
    let violates r = not (Freedom.holds ~good r point) in
    if List.exists violates adversary then Excluded
    else if List.exists violates positive then Unknown
    else Not_excluded
  in
  List.map (fun point -> (point, color point)) (Freedom.all ~n)

(* Crash every process outside [active] at time 0, then run [driver]
   over the survivors. *)
let crash_others ~n ~active driver =
  let victims =
    List.filter (fun p -> not (List.mem p active)) (Proc.all ~n)
  in
  Driver.with_crashes (List.map (fun p -> (0, p)) victims) driver

(* ------------------------------------------------------------------ *)
(* Figure 1a: consensus from registers vs agreement-and-validity.      *)

let consensus ?(n = 3) ?(max_steps = 1200) ?(seeds = [ 1; 2; 3 ]) () =
  let open Slx_consensus in
  let factory = Register_consensus.factory () in
  let workload =
    Driver.forever (fun p -> Consensus_type.Propose (p - 1))
  in
  let adversary =
    (* The lockstep adversary over processes 1 and 2, the rest
       crashed. *)
    [
      Runner.run ~n ~factory
        ~driver:(crash_others ~n ~active:[ 1; 2 ] (Consensus_adversary.lockstep ()))
        ~max_steps ();
    ]
  in
  let positive =
    (* Every active-subset size, several seeds. *)
    List.concat_map
      (fun m ->
        let active = List.init m (fun i -> i + 1) in
        List.map
          (fun seed ->
            Runner.run ~n ~factory
              ~driver:
                (crash_others ~n ~active
                   (Driver.random ~procs:active ~seed ~workload ()))
              ~max_steps:(max_steps / 2) ())
          seeds)
      (List.init n (fun i -> i + 1))
  in
  (* Adversary runs only count when the implementation kept its safety
     side of the bargain. *)
  let safe r =
    Consensus_safety.check r.Run_report.history
  in
  let adversary = List.filter safe adversary in
  {
    name = "Figure 1a: consensus (agreement and validity)";
    n;
    cells =
      classify
        ~good:(fun (_ : Consensus_type.response) -> true)
        ~n ~adversary ~positive;
    adversary_runs = List.length adversary;
    positive_runs = List.length positive;
  }

(* The same grid by exhaustive fair-cycle search instead of sampled
   adversary games: every (l,k) point is classified by whether
   {!Live_explore.search} finds a validated fair progress-free lasso in
   the bounded configuration graph.  [max_crashes = n - 1] gives the
   obstruction-style points their solo windows (a blocked-forever
   lockstep partner is unfair unless crashed); [max_rounds] is kept just
   above the rounds reachable at [depth] so configuration fingerprints
   stay cheap. *)
let consensus_exhaustive ?(n = 2) ?(depth = 10) () =
  let open Slx_consensus in
  let factory () = Register_consensus.factory ~max_rounds:(max 8 depth) () in
  let invoke =
    Explore.workload_invoke
      (Driver.forever (fun p -> Consensus_type.Propose (p - 1)))
  in
  let good (_ : Consensus_type.response) = true in
  let cells =
    List.map
      (fun point ->
        let r =
          Live_explore.search ~n ~factory ~invoke ~good ~point ~depth
            ~max_crashes:(n - 1) ()
        in
        let color =
          match r.Live_explore.outcome with
          | Live_explore.Lasso _ -> Excluded
          | Live_explore.No_fair_cycle -> Not_excluded
        in
        (point, color))
      (Freedom.all ~n)
  in
  {
    name = "Figure 1a (exhaustive): consensus, fair-cycle search";
    n;
    cells;
    adversary_runs = 0;
    positive_runs = 0;
  }

(* ------------------------------------------------------------------ *)
(* Figure 1b: TM vs opacity.                                           *)

let tm ?(n = 3) ?(max_steps = 900) ?(seeds = [ 1; 2; 3 ]) () =
  let open Slx_tm in
  let factory = Agp_tm.factory ~vars:1 in
  let adversary =
    [
      Runner.run ~n ~factory
        ~driver:
          (crash_others ~n ~active:[ 1; 2 ]
             (Tm_adversary.local_progress_adversary ()))
        ~max_steps ();
    ]
  in
  let positive =
    List.concat_map
      (fun m ->
        let active = List.init m (fun i -> i + 1) in
        List.map
          (fun seed ->
            Runner.run ~n ~factory
              ~driver:
                (crash_others ~n ~active
                   (Tm_workload.random ~procs:active ~seed ()))
              ~max_steps:(max_steps / 2) ())
          seeds)
      (List.init n (fun i -> i + 1))
    @
    (* The three-way adversary does NOT defeat AGP: its runs are
       positive evidence for the opacity grid. *)
    if n >= 3 then
      [
        Runner.run ~n ~factory
          ~driver:(crash_others ~n ~active:[ 1; 2; 3 ] (Tm_adversary.three_way_adversary ()))
          ~max_steps:(max_steps / 2) ();
      ]
    else []
  in
  let safe r = Opacity.check_final r.Run_report.history in
  let adversary = List.filter safe adversary in
  {
    name = "Figure 1b: TM (opacity)";
    n;
    cells = classify ~good:Tm_type.good ~n ~adversary ~positive;
    adversary_runs = List.length adversary;
    positive_runs = List.length positive;
  }

(* ------------------------------------------------------------------ *)
(* The Section 5.3 grid: TM vs S'.                                     *)

let s_prime ?(n = 3) ?(max_steps = 900) ?(seeds = [ 1; 2 ]) () =
  let open Slx_tm in
  let factory = I12.factory ~vars:1 in
  let adversary =
    [
      (* Violates the l >= 2 points. *)
      Runner.run ~n ~factory
        ~driver:
          (crash_others ~n ~active:[ 1; 2 ]
             (Tm_adversary.local_progress_adversary ()))
        ~max_steps ();
    ]
    @
    (* Violates the (1, k >= 3) points: the timestamp rule of S'
       forces I(1,2) to abort all three forever. *)
    (if n >= 3 then
       [
         Runner.run ~n ~factory
           ~driver:
             (crash_others ~n ~active:[ 1; 2; 3 ]
                (Tm_adversary.three_way_adversary ()))
           ~max_steps ();
       ]
     else [])
  in
  let positive =
    List.concat_map
      (fun m ->
        let active = List.init m (fun i -> i + 1) in
        List.map
          (fun seed ->
            Runner.run ~n ~factory
              ~driver:
                (crash_others ~n ~active
                   (Tm_workload.random ~procs:active ~seed ()))
              ~max_steps:(max_steps / 2) ())
          seeds)
      [ 1; 2 ]
  in
  let safe r = S_prime.check_final r.Run_report.history in
  let adversary = List.filter safe adversary in
  {
    name = "Section 5.3: TM (S')";
    n;
    cells = classify ~good:Tm_type.good ~n ~adversary ~positive;
    adversary_runs = List.length adversary;
    positive_runs = List.length positive;
  }

(* ------------------------------------------------------------------ *)
(* The mutex grid: the no-trade-off counterpoint.                      *)

let mutex ?(n = 3) ?(max_steps = 1200) ?(seeds = [ 1; 2; 3 ]) () =
  let open Slx_objects in
  let factory = Bakery.factory () in
  let adversary =
    (* The starvation scheduler, the best lock adversary we have: the
       classifier keeps only its bounded-fair runs, and against the
       Bakery lock it cannot produce one that starves anybody. *)
    [ Mutex.run_starvation ~factory ~max_steps ]
  in
  let positive =
    List.concat_map
      (fun m ->
        let active = List.init m (fun i -> i + 1) in
        List.map
          (fun seed ->
            Runner.run ~n ~factory
              ~driver:
                (crash_others ~n ~active
                   (Mutex.random_workload ~procs:active ~seed ()))
              ~max_steps:(max_steps / 2) ())
          seeds)
      (List.init n (fun i -> i + 1))
  in
  let safe r = Mutex.mutual_exclusion r.Run_report.history in
  let adversary = List.filter safe adversary in
  {
    name = "Mutex (mutual exclusion, Bakery lock)";
    n;
    cells = classify ~good:Mutex.good ~n ~adversary ~positive;
    adversary_runs = List.length adversary;
    positive_runs = List.length positive;
  }

(* ------------------------------------------------------------------ *)
(* Analysis and rendering.                                             *)

let color_at grid ~l ~k =
  List.find_map
    (fun (p, c) ->
      if Freedom.l p = l && Freedom.k p = k then Some c else None)
    grid.cells

let whites grid =
  List.filter_map
    (fun (p, c) -> if c = Not_excluded then Some p else None)
    grid.cells

let blacks grid =
  List.filter_map
    (fun (p, c) -> if c = Excluded then Some p else None)
    grid.cells

let strongest_not_excluded grid = Freedom.maximal (whites grid)

let weakest_excluded grid = Freedom.minimal (blacks grid)

let render grid =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (grid.name ^ "\n");
  Buffer.add_string buf "  l\\k";
  for k = 1 to grid.n do
    Buffer.add_string buf (Printf.sprintf " %d" k)
  done;
  Buffer.add_char buf '\n';
  for l = grid.n downto 1 do
    Buffer.add_string buf (Printf.sprintf "  %d  " l);
    for k = 1 to grid.n do
      let cell =
        match color_at grid ~l ~k with
        | Some Not_excluded -> " o"
        | Some Excluded -> " #"
        | Some Unknown -> " ?"
        | None -> "  "
      in
      Buffer.add_string buf cell
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "  (o = does not exclude, # = excludes)\n";
  Buffer.contents buf

let color_name = function
  | Not_excluded -> "not_excluded"
  | Excluded -> "excluded"
  | Unknown -> "unknown"

let to_json grid =
  let cell (p, c) =
    Printf.sprintf "{\"l\": %d, \"k\": %d, \"color\": \"%s\"}" (Freedom.l p)
      (Freedom.k p) (color_name c)
  in
  Printf.sprintf
    "{\"name\": %S, \"n\": %d, \"adversary_runs\": %d, \"positive_runs\": %d, \
     \"cells\": [%s]}"
    grid.name grid.n grid.adversary_runs grid.positive_runs
    (String.concat ", " (List.map cell grid.cells))
