open Slx_sim
open Slx_liveness

type ('inv, 'res) verdict = {
  report : ('inv, 'res) Run_report.t;
  fair : bool;
  safety_holds : bool;
  liveness_holds : bool;
}

let adversary_wins v = v.fair && v.safety_holds && not v.liveness_holds

let implementation_survives v = v.safety_holds && (v.liveness_holds || not v.fair)

let play ~n ~factory ~adversary ~safety ~liveness ~max_steps =
  let report = Runner.run ~n ~factory ~driver:adversary ~max_steps () in
  {
    report;
    fair = Fairness.is_bounded_fair report;
    safety_holds = Slx_safety.Property.holds safety report.Run_report.history;
    liveness_holds = Live_property.holds liveness report;
  }

let sweep ~n ~factory ~adversaries ~safety ~liveness ~max_steps =
  List.map
    (fun adversary -> play ~n ~factory ~adversary ~safety ~liveness ~max_steps)
    adversaries
