(** A bounded-universe model checker for Theorem 4.4.

    Theorem 4.4: {e there exists a weakest liveness property that
    excludes [S] iff [Gmax] (the intersection of all adversary sets
    w.r.t. [Lmax] and [S]) is itself an adversary set.}

    All quantifiers in the theorem — over implementations, histories
    and adversary sets — become finite in a micro-universe: a tiny
    object type (one invocation [ping], one response [ack]), a finite
    family of implementations, and histories bounded by invocation
    budgets.  In that setting an adversary set is exactly a
    {e covering} subset of [U = S ∩ ¬Lmax ∩ (⋃ fair histories)]: a set
    hitting every implementation's fair-history trap set.  Two facts
    make [Gmax] computable:

    - [Gmax = { h | some implementation's trap set is exactly {h} }]
      (the intersection of all covering sets keeps exactly the
      histories that are some implementation's {e only} fair escape);
    - [Gmax] is an adversary set iff it still covers every
      implementation.

    {!verify_by_enumeration} cross-checks the characterization against
    brute-force enumeration of all covering subsets.

    Instances: {!positive} is a 1-process universe with the asymmetric
    safety property “at most one response ever” — every implementation
    has a unique fair trap, so [Gmax] covers and a weakest excluding
    liveness property exists.  {!negative} is the 2-process symmetric
    analogue — every implementation can be trapped along [ping_1]-first
    {e or} [ping_2]-first histories (the two disjoint adversary sets of
    the corollaries), no trap is a singleton, [Gmax = ∅], and no
    weakest excluding liveness property exists. *)

open Slx_history

type invocation = Ping
type response = Ack

type history = (invocation, response) History.t

(** A micro-universe instance. *)
type instance = {
  name : string;
  universe : history list;  (** [U]: the candidate adversary histories. *)
  impl_traps : (string * history list) list;
      (** Per implementation [I] ensuring [S]: [fair(A_I) ∩ U]. *)
}

val equal_history : history -> history -> bool

val traps : n:int -> quotas:int list -> history list
(** The maximal fair crash-free histories of the “respond to the first
    [quotas.(i)] invocations of process [i+1], then block” policy
    implementation, enumerated over all environment interleavings.
    Every such history leaves every process pending — the bounded
    violation of [Lmax]. *)

val instance_of : n:int -> quota_sets:int list list -> instance
(** A custom micro-universe: one quota-policy implementation per
    element of [quota_sets] (each a list of [n] per-process response
    quotas), universe = the union of their traps.  The property-based
    tests use this to validate the [Gmax] characterization against
    brute force on randomly generated instances. *)

val positive : unit -> instance
(** The 1-process universe: implementations [I0] (never respond) and
    [I1] (respond once), safety “at most one response”. *)

val negative : unit -> instance
(** The 2-process symmetric universe: implementations never/once
    responding per process, safety “at most one response per
    process”. *)

val gmax : instance -> history list
(** The singleton-trap characterization of [Gmax]. *)

val gmax_is_adversary_set : instance -> bool
(** Does [Gmax] still cover every implementation?  By Theorem 4.4 this
    decides {!weakest_excluding_exists}. *)

val weakest_excluding_exists : instance -> bool
(** = {!gmax_is_adversary_set}. *)

val verify_by_enumeration : instance -> bool
(** Brute force: enumerate every subset of [universe], keep the
    covering ones (the adversary sets), intersect them all, and check
    the result equals {!gmax} — validating the characterization on this
    instance.  Exponential in [|universe|]; intended for the micro
    instances only. *)
