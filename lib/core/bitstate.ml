(* SPIN/TLC-style hash compaction ("bitstate hashing", Holzmann '87):
   when the exact transposition cache cannot fit, store only k = 2
   hash-derived bit positions per visited configuration in a flat
   2^bits-bit table.  Membership is approximate in one direction only:
   a miss is definitely a new configuration, a hit may be a collision
   — so bitstate pruning can silently skip unexplored states and the
   verdict becomes "no violation found in the states examined", not a
   proof.  The table reports its own saturation honestly:
   [collision_probability] is the standard Bloom-filter bound
   (1 - e^(-kn/m))^k for n insert attempts into m bits with k probes,
   surfaced in [Explore_stats] and the CLI so a saturated table reads
   as the approximation it is. *)

type t = {
  bits : int;
  data : Bytes.t;
  index_mask : int;
  mutable adds : int;  (* membership queries = states attempted *)
  mutable hits : int;  (* both probe bits already set *)
  mutable marks : int;  (* bits actually set *)
}

let create ~bits =
  if bits < 4 || bits > 30 then
    invalid_arg "Bitstate.create: bits must be in [4, 30]";
  {
    bits;
    data = Bytes.make (1 lsl (bits - 3)) '\000';
    index_mask = (1 lsl bits) - 1;
    adds = 0;
    hits = 0;
    marks = 0;
  }

let bits t = t.bits
let adds t = t.adds
let hits t = t.hits
let marks t = t.marks

let probe_get t i =
  Char.code (Bytes.unsafe_get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let probe_set t i =
  let byte = i lsr 3 in
  let b = Char.code (Bytes.unsafe_get t.data byte) in
  let b' = b lor (1 lsl (i land 7)) in
  if b' <> b then begin
    Bytes.unsafe_set t.data byte (Char.unsafe_chr b');
    t.marks <- t.marks + 1
  end

(* Two probe positions from independent slices of the (remixed) 64-bit
   key: the classic double-hashing scheme with k = 2. *)
let test_and_set t h =
  t.adds <- t.adds + 1;
  let h1 = h land t.index_mask in
  let h2 = Slx_sim.Runtime.mix64 (h lxor 0x9E3779B97F4A7C1) land t.index_mask in
  if probe_get t h1 && probe_get t h2 then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    probe_set t h1;
    probe_set t h2;
    false
  end

let collision_probability ~bits ~adds =
  if adds <= 0 then 0.0
  else
    let m = float_of_int (1 lsl bits) in
    let n = float_of_int adds in
    let p = 1.0 -. exp (-2.0 *. n /. m) in
    p *. p
