(* A hash table with an optional capacity bound enforced by the clock
   (second-chance) policy: entries live in a circular ring; a hit sets
   the entry's reference bit; on insertion into a full cache the clock
   hand sweeps the ring, clearing reference bits until it finds an
   unreferenced victim to evict.  One sweep visits at most 2x capacity
   slots (the first pass can only clear bits), so insertion is O(1)
   amortized.  Unbounded when no capacity is given. *)

type ('k, 'v) entry = {
  key : 'k;
  mutable value : 'v;
  mutable referenced : bool;
}

type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) entry) Hashtbl.t;
  ring : ('k, 'v) entry option array;  (* [||] when unbounded *)
  mutable hand : int;
  mutable size : int;
  mutable evictions : int;
  sink : Slx_obs.Telemetry.sink;  (* eviction telemetry; null by default *)
}

let create ?capacity ?(sink = Slx_obs.Telemetry.null) () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Clock_cache.create: capacity < 1"
  | _ -> ());
  {
    tbl = Hashtbl.create 512;
    ring = (match capacity with None -> [||] | Some c -> Array.make c None);
    hand = 0;
    size = 0;
    evictions = 0;
    sink;
  }

let length t = Hashtbl.length t.tbl

let evictions t = t.evictions

let capacity t =
  match Array.length t.ring with 0 -> None | c -> Some c

let find_opt t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some e ->
      e.referenced <- true;
      Some e.value

(* The next free ring slot, evicting a victim if the ring is full. *)
let claim_slot t =
  let cap = Array.length t.ring in
  if t.size < cap then
    (* Slots fill in order and an eviction's slot is refilled by the
       same insertion, so below capacity slot [size] is always free. *)
    t.size
  else begin
    let rec sweep () =
      match t.ring.(t.hand) with
      | Some e when e.referenced ->
          e.referenced <- false;
          t.hand <- (t.hand + 1) mod cap;
          sweep ()
      | Some e ->
          let slot = t.hand in
          Hashtbl.remove t.tbl e.key;
          t.ring.(slot) <- None;
          t.size <- t.size - 1;
          t.evictions <- t.evictions + 1;
          Slx_obs.Telemetry.emit t.sink Slx_obs.Telemetry.Cache_evict
            t.evictions 0;
          t.hand <- (slot + 1) mod cap;
          slot
      | None ->
          t.hand <- (t.hand + 1) mod cap;
          sweep ()
    in
    sweep ()
  end

let replace t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some e -> e.value <- v
  | None ->
      if Array.length t.ring = 0 then
        Hashtbl.replace t.tbl k { key = k; value = v; referenced = false }
      else begin
        let slot = claim_slot t in
        let e = { key = k; value = v; referenced = false } in
        t.ring.(slot) <- Some e;
        t.size <- t.size + 1;
        Hashtbl.replace t.tbl k e
      end
