open Slx_automata

let ping = Action.invocation ~proc:1 "ping"
let ack = Action.response ~proc:1 "ack"
let crash = Action.crash 1

let idle = State.leaf "idle"
let pending = State.leaf "pending"
let crashed = State.leaf "crashed"

let it () =
  Automaton.make ~name:"It" ~inputs:[ ping; crash ] ~outputs:[ ack ]
    ~internals:[] ~init:[ idle ]
    ~delta:(fun s ->
      if State.equal s idle then [ (ping, pending); (crash, crashed) ]
      else if State.equal s pending then [ (crash, crashed) ]
      else [])

let s_responding = State.leaf "responding"
let enabled_again = State.leaf "enabled-again"
let dead = State.leaf "dead"

let ib () =
  Automaton.make ~name:"Ib" ~inputs:[ ping; crash ] ~outputs:[ ack ]
    ~internals:[] ~init:[ idle ]
    ~delta:(fun s ->
      if State.equal s idle then [ (ping, s_responding); (crash, crashed) ]
      else if State.equal s s_responding then
        [ (ack, enabled_again); (crash, crashed) ]
      else if State.equal s enabled_again then
        [ (ping, dead); (crash, crashed) ]
      else if State.equal s dead then [ (crash, crashed) ]
      else [])

(* S on the micro object: well-formed, crash-respecting histories of
   ping/ack actions. *)
let well_formed trace =
  let rec go is_pending crashed = function
    | [] -> true
    | a :: rest ->
        if crashed then false
        else if String.equal a ping then
          (not is_pending) && go true crashed rest
        else if String.equal a ack then is_pending && go false crashed rest
        else if String.equal a crash then go is_pending true rest
        else false
  in
  go false false trace

(* Bounded Lmax: every correct pending process eventually gets its
   response — a finite history violates it when it ends with a correct
   process still pending. *)
let in_lmax trace =
  let rec go is_pending crashed = function
    | [] -> (not is_pending) || crashed
    | a :: rest ->
        if String.equal a ping then go true crashed rest
        else if String.equal a ack then go false crashed rest
        else if String.equal a crash then go is_pending true rest
        else go is_pending crashed rest
  in
  go false false trace

let equal_trace t1 t2 =
  List.length t1 = List.length t2 && List.for_all2 String.equal t1 t2

let fair_traces automaton ~depth =
  let seen = Hashtbl.create 32 in
  List.filter_map
    (fun e ->
      if Automaton.is_fair_finite automaton e then begin
        let tr = Automaton.trace automaton e in
        let key = String.concat "|" tr in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some tr
        end
      end
      else None)
    (Automaton.executions automaton ~depth)


(* ------------------------------------------------------------------ *)
(* Lemma 4.8 on the bounded universe.                                  *)

(* All well-formed crash-free traces over ping/ack up to [depth]
   events: the bounded trace universe. *)
let universe ~depth =
  let rec extend trace len is_pending acc =
    let acc = trace :: acc in
    if len = depth then acc
    else if is_pending then extend (trace @ [ ack ]) (len + 1) false acc
    else extend (trace @ [ ping ]) (len + 1) true acc
  in
  extend [] 0 false []

let lemma_4_8 ~depth =
  let u = universe ~depth in
  let size = List.length u in
  if size > 20 then invalid_arg "Theorem_4_9.lemma_4_8: universe too large";
  let u = Array.of_list u in
  let lmax_mask =
    (* Bounded Lmax within the universe. *)
    let mask = ref 0 in
    Array.iteri (fun i tr -> if in_lmax tr then mask := !mask lor (1 lsl i)) u;
    !mask
  in
  let mask_of traces =
    let mask = ref 0 in
    Array.iteri
      (fun i tr -> if List.exists (equal_trace tr) traces then mask := !mask lor (1 lsl i))
      u;
    !mask
  in
  let check_impl fair_traces =
    let fair_mask = mask_of fair_traces in
    let expected = lmax_mask lor fair_mask in
    (* Enumerate every liveness property over the universe (supersets
       of Lmax), keep those the implementation ensures (fair subset),
       and intersect them: Lemma 4.8 says the result is exactly
       Lmax + fair(A_I). *)
    let meet = ref ((1 lsl size) - 1) in
    for m = 0 to (1 lsl size) - 1 do
      let l = m lor lmax_mask in
      if fair_mask land l = fair_mask then meet := !meet land l
    done;
    !meet = expected
  in
  let it = it () and ib = ib () in
  check_impl (fair_traces it ~depth) && check_impl (fair_traces ib ~depth)

type result = {
  it : Automaton.t;
  ib : Automaton.t;
  it_traces : Action.t list list;
  ib_traces : Action.t list list;
  it_fair_traces : Action.t list list;
  ib_fair_traces : Action.t list list;
  both_ensure_s : bool;
  h_separates : bool;
  h'_separates : bool;
  h_outside_lmax : bool;
  incomparable : bool;
}

let run ~depth =
  let it = it () and ib = ib () in
  let it_traces = Automaton.traces it ~depth in
  let ib_traces = Automaton.traces ib ~depth in
  let it_fair_traces = fair_traces it ~depth in
  let ib_fair_traces = fair_traces ib ~depth in
  let mem tr set = List.exists (equal_trace tr) set in
  let h = [ ping ] in
  let h' = [ ping; ack; ping ] in
  let both_ensure_s =
    List.for_all well_formed it_traces && List.for_all well_formed ib_traces
  in
  let h_separates = mem h it_fair_traces && not (mem h ib_fair_traces) in
  let h'_separates = mem h' ib_fair_traces && not (mem h' it_fair_traces) in
  let h_outside_lmax = (not (in_lmax h)) && not (in_lmax h') in
  let incomparable = h_separates && h'_separates && h_outside_lmax in
  {
    it;
    ib;
    it_traces;
    ib_traces;
    it_fair_traces;
    ib_fair_traces;
    both_ensure_s;
    h_separates;
    h'_separates;
    h_outside_lmax;
    incomparable;
  }

let holds r =
  r.both_ensure_s && r.h_separates && r.h'_separates && r.h_outside_lmax
  && r.incomparable
