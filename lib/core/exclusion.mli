(** Safety–liveness exclusion as an executable game (Definition 4.1).

    “Liveness property [L] excludes safety property [S] if there is no
    implementation [I] of an object of type [Tp] such that [I] ensures
    both [S] and [L].”

    Operationally, exclusion shows up as a game between an adversary
    (a {!Slx_sim.Driver.t} that picks schedules and invocations) and an
    implementation: the adversary wins a run if the run is bounded-fair,
    the history satisfies [S] (the implementation is playing by the
    safety rules), and the liveness property fails on the run.  A
    black grid point of Figure 1 is one where the adversary wins
    against every implementation we field; a white one is where some
    implementation survives every driver we field. *)

open Slx_sim
open Slx_liveness

(** The outcome of one game. *)
type ('inv, 'res) verdict = {
  report : ('inv, 'res) Run_report.t;
  fair : bool;                 (** Bounded fairness of the run. *)
  safety_holds : bool;         (** [S] on the run's history. *)
  liveness_holds : bool;       (** [L] on the run. *)
}

val adversary_wins : ('inv, 'res) verdict -> bool
(** Fair ∧ safe ∧ liveness violated: a genuine exclusion witness. *)

val implementation_survives : ('inv, 'res) verdict -> bool
(** Safe ∧ (liveness holds ∨ the run was unfair — an unfair run
    proves nothing against the implementation). *)

val play :
  n:int ->
  factory:('inv, 'res) Runner.factory ->
  adversary:('inv, 'res) Driver.t ->
  safety:('inv, 'res) Slx_history.History.t Slx_safety.Property.t ->
  liveness:('inv, 'res) Live_property.t ->
  max_steps:int ->
  ('inv, 'res) verdict
(** Run one game and judge it. *)

val sweep :
  n:int ->
  factory:('inv, 'res) Runner.factory ->
  adversaries:('inv, 'res) Driver.t list ->
  safety:('inv, 'res) Slx_history.History.t Slx_safety.Property.t ->
  liveness:('inv, 'res) Live_property.t ->
  max_steps:int ->
  ('inv, 'res) verdict list
(** One game per adversary (each against a fresh implementation
    instance). *)
