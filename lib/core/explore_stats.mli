(** Counters produced by the exploration engine ({!Explore}), so that
    the incremental/cached/reduced/parallel engine's speedup over naive
    replay is measured, not asserted.  Surfaced by
    [bench/experiments.ml] (E16), the bench smoke target, and the
    [slx explore] subcommand (as JSON under [--json]). *)

type t = {
  nodes : int;
      (** Decision-tree nodes visited, transposition hits included. *)
  runs : int;
      (** Maximal runs accounted for, cache-credited subtrees included.
          With reductions off this equals the count a naive enumeration
          reports; with POR/symmetry on it counts the representative
          runs actually explored (each standing for an equivalence
          class of runs under commutation/renaming). *)
  runs_checked : int;
      (** Maximal runs on which [check] actually executed ([runs] minus
          runs credited from the transposition cache). *)
  steps_executed : int;
      (** Runtime ticks actually applied across all cursors — the
          engine's unit of work, and the quantity the incremental
          engine and the reductions minimize. *)
  steps_replayed : int;
      (** The subset of [steps_executed] spent re-establishing a
          configuration by replaying a decision prefix (backtracking to
          a sibling, or replaying a stolen frontier item). *)
  replays_avoided : int;
      (** Nodes entered by extending the parent's cursor in place — each
          saved a full prefix replay the naive engine performs. *)
  cache_hits : int;  (** Subtrees pruned by the transposition cache. *)
  cache_entries : int;  (** Final size of the transposition cache(s). *)
  cache_evictions : int;
      (** Entries evicted by the clock policy under [~cache_capacity]
          (0 when the cache is unbounded). *)
  por_prunes : int;
      (** Scheduling decisions skipped because the process was in the
          sleep set — each cuts a redundant interleaving of commuting
          steps (partial-order reduction, declared or DPOR).  Counted
          by both engines; the liveness search's [invoke_order]
          reduction has its own counter ([invoke_order_prunes]). *)
  race_reversals : int;
      (** DPOR only: sleeping processes woken because an executed
          step's {e observed} accesses raced with their pending action
          ({!Dpor.advance}) — each forces the reversed order of a
          dynamic conflict to be explored. *)
  invoke_order_prunes : int;
      (** Fair-cycle search ({!Live_explore}) only: invocations pruned
          by the [invoke_order] reduction (offer only the least idle
          process's invocation).  Previously folded into the POR
          counter; split so the two reductions are attributable. *)
  proviso_wakes : int;
      (** Fair-cycle search only: sleeping processes force-woken by
          the bounded-ignoring cycle proviso (slept through too many
          consecutive ticks), keeping the reduction cycle-sound. *)
  symmetry_pruned : int;
      (** Decisions pruned as symmetric to a lower-numbered untouched
          process's decision (symmetry reduction orbit pruning). *)
  cycles_examined : int;
      (** Fair-cycle search ({!Live_explore}) only: candidate cycles
          examined — periodic suffixes of the abstract trace found
          during the walk (0 for the safety engines). *)
  fair_cycles : int;
      (** Fair-cycle search only: candidates that were fair and
          progress-violating before certificate validation; the search
          stops at the first one whose certificate also pumps. *)
  domains_used : int;  (** Domains the exploration actually fanned over. *)
  steals : int;
      (** Frontier items executed by a domain other than the one that
          pushed them (work-stealing fan-out; 0 when sequential). *)
  hb_edges : int;
      (** Happens-before certifier ({!Slx_analysis.Hb}) only:
          non-redundant conflict edges derived from observed accesses
          across certified runs (0 unless an audit ran the
          certifier). *)
  commutation_checks : int;
      (** Commutation oracle only: pending-step pairs the explorer
          would treat as commuting that were differentially executed
          in both orders (0 unless the oracle ran). *)
  footprint_violations : int;
      (** Sanitizer violations observed ({!Runtime.shadow_violations}):
          undeclared touches, escaping nested declarations, or
          touches outside any atomic action.  Always 0 for a clean
          implementation; engines running with [~sanitize:true] count
          without raising. *)
  bitstate_bits : int;
      (** Table size exponent of the bitstate/hash-compaction mode
          ({!Bitstate}): 0 when the exact transposition cache was used
          (the default), else the [--bitstate BITS] value. *)
  bitstate_adds : int;
      (** Bitstate insert attempts (the [n] of the collision bound). *)
  bitstate_hits : int;
      (** Bitstate queries answered "seen" — subtrees pruned on a
          compacted hash, each possibly a collision. *)
  bitstate_marks : int;
      (** Bits set in the bitstate table (occupancy numerator). *)
  per_domain_runs : (int * int) list;
      (** Maximal runs accounted per domain, as
          [(spawn index, runs)] pairs sorted by spawn index (empty for
          sequential exploration).  Keying by spawn index — not list
          position — is what lets {!merge} combine partial stats
          arriving in any order without scrambling which domain a row
          describes.  Informational: the split depends on domain
          scheduling; every non-[per_domain_*] counter except
          [steps_executed]/[steps_replayed] does not. *)
  per_domain_steps : (int * int) list;
      (** Runtime ticks executed per domain, as [(spawn index, steps)]
          pairs sorted by spawn index — the honest load-balance report:
          with work-stealing these should be close to uniform even when
          the decision tree is skewed. *)
  elapsed_ns : int;
      (** Wall-clock nanoseconds of the exploration, measured inside
          the engine (entry to join).  {!merge} sums, so a merged value
          is total exploration time, not a wall-clock span. *)
  events_dropped : int;
      (** Telemetry events lost to ring-buffer overflow while tracing
          (0 when tracing is off or every ring kept up).  Non-zero
          means the exported trace under-reports — grow the ring. *)
  history_digest : int;
      (** Order-insensitive digest (wrapping integer sum of deep hashes)
          of the final histories of all maximal runs.  Two engines that
          explore the same run set agree on [runs] and this digest; the
          differential suite uses it to compare engines through the
          cache, which never materializes pruned runs.  Engines with
          POR/symmetry on explore a subset of representatives, so their
          digest is compared only against engines with the same
          reductions. *)
}

val zero : t

val merge : t -> t -> t
(** Pointwise sum (max for [domains_used]; the [per_domain_*] pair
    lists are concatenated and stably re-sorted by spawn index, so the
    result is in spawn order no matter the order the partials are
    merged in). *)

val values : (int * int) list -> int list
(** Drop the spawn indices of a [per_domain_*] list, keeping the
    values in spawn order. *)

val bitstate_collision_probability : t -> float
(** The Bloom bound [(1 - e^(-2n/m))^2] of the recorded bitstate table
    ([m = 2^bitstate_bits], [n = bitstate_adds]); 0 when bitstate mode
    was off.  Reported in {!pp} and {!to_json}
    ([bitstate_collision_probability]) so a bitstate verdict carries
    its own error bar. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One-line JSON object of the full record ([per_domain_*] as arrays
    of [[index, value]] pairs). *)
