(** Counters produced by the exploration engine ({!Explore}), so that
    the incremental/cached/parallel engine's speedup over naive replay
    is measured, not asserted.  Surfaced by [bench/experiments.ml]
    (E16), the bench smoke target, and the [slx explore] subcommand. *)

type t = {
  nodes : int;
      (** Decision-tree nodes visited, transposition hits included. *)
  runs : int;
      (** Maximal runs accounted for — equals the count a naive
          enumeration reports, cache-credited subtrees included. *)
  runs_checked : int;
      (** Maximal runs on which [check] actually executed ([runs] minus
          runs credited from the transposition cache). *)
  steps_executed : int;
      (** Runtime ticks actually applied across all cursors — the
          engine's unit of work, and the quantity the incremental
          engine minimizes. *)
  steps_replayed : int;
      (** The subset of [steps_executed] spent re-establishing a
          configuration by replaying a decision prefix (backtracking to
          a sibling); the rest extended a live cursor. *)
  replays_avoided : int;
      (** Nodes entered by extending the parent's cursor in place — each
          saved a full prefix replay the naive engine performs. *)
  cache_hits : int;  (** Subtrees pruned by the transposition cache. *)
  cache_entries : int;  (** Final size of the transposition cache(s). *)
  domains_used : int;  (** Domains the exploration actually fanned over. *)
  per_domain_runs : int list;
      (** Maximal runs accounted per domain (work-list order; empty for
          sequential exploration).  Informational: the split depends on
          domain scheduling, everything else in [t] does not. *)
  history_digest : int;
      (** Order-insensitive digest (wrapping integer sum of deep hashes)
          of the final histories of all maximal runs.  Two engines that
          explore the same run set agree on [runs] and this digest; the
          differential suite uses it to compare engines through the
          cache, which never materializes pruned runs. *)
}

val zero : t

val merge : t -> t -> t
(** Pointwise sum (max for [domains_used], concatenation for
    [per_domain_runs]). *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One-line JSON object of the scalar counters. *)
