open Slx_history
open Slx_sim

type ('inv, 'res) outcome =
  | Ok of int
  | Counterexample of ('inv, 'res) Run_report.t

type ('inv, 'res) exploration = {
  outcome : ('inv, 'res) outcome;
  stats : Explore_stats.t;
  witness_script : ('inv, 'res) Driver.decision list option;
}

exception Found_counterexample

let workload_invoke workload view p =
  let issued =
    History.length
      (History.filter
         (fun e -> Event.is_invocation e && Proc.equal (Event.proc e) p)
         view.Driver.history)
  in
  workload p issued

(* The decision menu of a configuration, in the canonical order that
   defines "lexicographically least script": for each process 1..n, its
   step or invocation; then, if the crash budget allows, for each
   process 1..n, its crash. *)
let decision_menu ~n ~invoke ~depth ~max_crashes view len crashes =
  if len >= depth then []
  else
    List.concat_map
      (fun p ->
        match view.Driver.status p with
        | Runtime.Ready -> [ Driver.Schedule p ]
        | Runtime.Idle -> begin
            match invoke view p with
            | Some inv -> [ Driver.Invoke (p, inv) ]
            | None -> []
          end
        | Runtime.Crashed -> [])
      (Proc.all ~n)
    @
    if crashes < max_crashes then
      List.filter_map
        (fun p ->
          if view.Driver.status p = Runtime.Crashed then None
          else Some (Driver.Crash p))
        (Proc.all ~n)
    else []

(* Per-engine (and, under fan-out, per-domain) mutable exploration
   state.  Domains share nothing mutable: each has its own cursors,
   transposition table and counters, which keeps the engine
   deterministic and lock-free. *)
type ('inv, 'res) dstate = {
  mutable nodes : int;
  mutable runs : int;
  mutable checked : int;
  mutable replayed : int;
  mutable avoided : int;
  mutable hits : int;
  mutable digest : int;
  mutable found :
    (('inv, 'res) Driver.decision list * ('inv, 'res) Run_report.t) option;
  ticks : int ref;
  table : (('inv, 'res) Runner.fingerprint, entry) Hashtbl.t;
}

and entry = { e_runs : int; e_digest : int }

let new_state () =
  {
    nodes = 0;
    runs = 0;
    checked = 0;
    replayed = 0;
    avoided = 0;
    hits = 0;
    digest = 0;
    found = None;
    ticks = ref 0;
    table = Hashtbl.create 512;
  }

let stats_of_states ~domains_used ~per_domain_runs states : Explore_stats.t =
  List.fold_left
    (fun (acc : Explore_stats.t) st ->
      {
        acc with
        Explore_stats.nodes = acc.Explore_stats.nodes + st.nodes;
        runs = acc.runs + st.runs;
        runs_checked = acc.runs_checked + st.checked;
        steps_executed = acc.steps_executed + !(st.ticks);
        steps_replayed = acc.steps_replayed + st.replayed;
        replays_avoided = acc.replays_avoided + st.avoided;
        cache_hits = acc.cache_hits + st.hits;
        cache_entries = acc.cache_entries + Hashtbl.length st.table;
        history_digest = acc.history_digest + st.digest;
      })
    { Explore_stats.zero with domains_used; per_domain_runs }
    states

let explore ~n ~factory ~invoke ~depth ?(max_crashes = 0) ?(cache = true)
    ?(domains = 1) ~check () =
  let menu = decision_menu ~n ~invoke ~depth ~max_crashes in
  let make_cursor st = Runner.Cursor.create ~n ~factory:(factory ()) ~ticks:st.ticks () in
  (* Walk the subtree rooted at the configuration [cursor] sits on.
     The first child extends the cursor in place (the incremental step
     the naive engine lacks); each later sibling re-establishes the
     configuration by replaying the decision prefix into a fresh
     cursor.  Raises [Found_counterexample] with [st.found] set on the
     first failing maximal run, which under this in-order walk is the
     lexicographically least one of the subtree. *)
  let rec visit st cursor rev_script len crashes =
    st.nodes <- st.nodes + 1;
    let fp = if cache then Some (Runner.Cursor.fingerprint cursor) else None in
    match Option.bind fp (Hashtbl.find_opt st.table) with
    | Some e ->
        (* Transposition: an already-explored configuration.  Its
           subtree was counterexample-free (failing subtrees abort the
           walk before an entry is written), so credit its runs and
           final-history digest without descending. *)
        st.hits <- st.hits + 1;
        st.runs <- st.runs + e.e_runs;
        st.digest <- st.digest + e.e_digest
    | None -> begin
        match menu (Runner.Cursor.view cursor) len crashes with
        | [] ->
            (* A maximal run: check it. *)
            let r = Runner.Cursor.report cursor ~window:(max len 1) () in
            st.runs <- st.runs + 1;
            st.checked <- st.checked + 1;
            let dh = Runtime.hash_value r.Run_report.history in
            st.digest <- st.digest + dh;
            Option.iter
              (fun f -> Hashtbl.replace st.table f { e_runs = 1; e_digest = dh })
              fp;
            if not (check r) then begin
              st.found <- Some (List.rev rev_script, r);
              raise Found_counterexample
            end
        | decisions ->
            let runs0 = st.runs and digest0 = st.digest in
            List.iteri
              (fun i d ->
                let crashes' =
                  match d with Driver.Crash _ -> crashes + 1 | _ -> crashes
                in
                let child =
                  if i = 0 then begin
                    st.avoided <- st.avoided + 1;
                    cursor
                  end
                  else begin
                    let c = make_cursor st in
                    List.iter (Runner.Cursor.apply c) (List.rev rev_script);
                    st.replayed <- st.replayed + len;
                    c
                  end
                in
                Runner.Cursor.apply child d;
                visit st child (d :: rev_script) (len + 1) crashes')
              decisions;
            Option.iter
              (fun f ->
                Hashtbl.replace st.table f
                  { e_runs = st.runs - runs0; e_digest = st.digest - digest0 })
              fp
      end
  in
  let finish ~domains_used ~per_domain_runs states witness =
    let stats = stats_of_states ~domains_used ~per_domain_runs states in
    match witness with
    | None -> { outcome = Ok stats.Explore_stats.runs; stats; witness_script = None }
    | Some (script, r) ->
        { outcome = Counterexample r; stats; witness_script = Some script }
  in
  let st0 = new_state () in
  let root = make_cursor st0 in
  let roots = menu (Runner.Cursor.view root) 0 0 in
  let fan_out = max 1 (min domains (List.length roots)) in
  if fan_out = 1 then begin
    (* Sequential: one walk from the root configuration. *)
    let witness =
      match visit st0 root [] 0 0 with
      | () -> None
      | exception Found_counterexample -> st0.found
    in
    finish ~domains_used:1 ~per_domain_runs:[] [ st0 ] witness
  end
  else begin
    (* Fan the root decisions across domains: one domain per root up to
       [domains], a work list for the rest.  Each domain owns its
       cursors, cache and counters; per-root witnesses land in a slot
       array (one writer per slot), and the least failing root index
       gives the lexicographically least counterexample overall. *)
    st0.nodes <- 1;
    let roots_arr = Array.of_list roots in
    let nroots = Array.length roots_arr in
    let next = Atomic.make 0 in
    let failed_at = Atomic.make max_int in
    let witnesses = Array.make nroots None in
    let worker () =
      let st = new_state () in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < nroots then begin
          (* Roots beyond an already-failed one cannot yield the least
             witness; skip them (their run counts are moot once any
             counterexample exists). *)
          if i <= Atomic.get failed_at then begin
            let d = roots_arr.(i) in
            let crashes = match d with Driver.Crash _ -> 1 | _ -> 0 in
            let c = make_cursor st in
            Runner.Cursor.apply c d;
            (match visit st c [ d ] 1 crashes with
            | () -> ()
            | exception Found_counterexample ->
                witnesses.(i) <- st.found;
                st.found <- None;
                let rec lower () =
                  let cur = Atomic.get failed_at in
                  if i < cur && not (Atomic.compare_and_set failed_at cur i)
                  then lower ()
                in
                lower ())
          end;
          loop ()
        end
      in
      loop ();
      st
    in
    let handles =
      List.init (fan_out - 1) (fun _ -> Domain.spawn worker)
    in
    let states = worker () :: List.map Domain.join handles in
    let witness =
      let best = Atomic.get failed_at in
      if best = max_int then None else witnesses.(best)
    in
    finish ~domains_used:fan_out
      ~per_domain_runs:(List.map (fun st -> st.runs) states)
      (st0 :: states) witness
  end

let explore_naive ~n ~factory ~invoke ~depth ?(max_crashes = 0) ~check () =
  let menu = decision_menu ~n ~invoke ~depth ~max_crashes in
  let st = new_state () in
  (* The retained reference engine: re-run the decision prefix from a
     fresh implementation instance at every node of the tree, exactly
     as the original explorer did.  Kept for differential testing and
     as the baseline the incremental engine's counters are measured
     against. *)
  let replay rev_script =
    let c = Runner.Cursor.create ~n ~factory:(factory ()) ~ticks:st.ticks () in
    List.iter (Runner.Cursor.apply c) (List.rev rev_script);
    c
  in
  let rec walk rev_script len crashes =
    st.nodes <- st.nodes + 1;
    let cursor = replay rev_script in
    st.replayed <- st.replayed + len;
    match menu (Runner.Cursor.view cursor) len crashes with
    | [] ->
        let r = Runner.Cursor.report cursor ~window:(max len 1) () in
        st.runs <- st.runs + 1;
        st.checked <- st.checked + 1;
        st.digest <- st.digest + Runtime.hash_value r.Run_report.history;
        if not (check r) then begin
          st.found <- Some (List.rev rev_script, r);
          raise Found_counterexample
        end
    | decisions ->
        List.iter
          (fun d ->
            let crashes' =
              match d with Driver.Crash _ -> crashes + 1 | _ -> crashes
            in
            walk (d :: rev_script) (len + 1) crashes')
          decisions
  in
  let witness =
    match walk [] 0 0 with
    | () -> None
    | exception Found_counterexample -> st.found
  in
  let stats = stats_of_states ~domains_used:1 ~per_domain_runs:[] [ st ] in
  match witness with
  | None -> { outcome = Ok stats.Explore_stats.runs; stats; witness_script = None }
  | Some (script, r) ->
      { outcome = Counterexample r; stats; witness_script = Some script }

let forall_schedules ~n ~factory ~invoke ~depth ?(max_crashes = 0) ~check () =
  (explore ~n ~factory ~invoke ~depth ~max_crashes ~check ()).outcome
