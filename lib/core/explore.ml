open Slx_history
open Slx_sim

type ('inv, 'res) outcome =
  | Ok of int
  | Counterexample of ('inv, 'res) Run_report.t

exception Found_counterexample

let workload_invoke workload view p =
  let issued =
    History.length
      (History.filter
         (fun e -> Event.is_invocation e && Proc.equal (Event.proc e) p)
         view.Driver.history)
  in
  workload p issued

(* Reconstruct a driver view from a finished replay, so [invoke] and
   the decision enumeration can inspect the configuration. *)
let view_of_report (r : _ Run_report.t) : _ Driver.view =
  let status p =
    if Proc.Set.mem p r.Run_report.crashed then Runtime.Crashed
    else if Option.is_some (History.pending r.Run_report.history p) then
      Runtime.Ready
    else Runtime.Idle
  in
  {
    Driver.time = r.Run_report.total_time;
    n = r.Run_report.n;
    history = r.Run_report.history;
    status;
    steps = (fun p -> Run_report.steps_total r p);
  }

let forall_schedules ~n ~factory ~invoke ~depth ?(max_crashes = 0) ~check () =
  let runs = ref 0 in
  let witness = ref None in
  let replay script =
    let len = List.length script in
    Runner.run ~n ~factory:(factory ())
      ~driver:(Driver.of_script (List.rev script))
      ~max_steps:len ~window:(max len 1) ()
  in
  let rec explore rev_script len crashes =
    let report = replay rev_script in
    let view = view_of_report report in
    let decisions =
      if len >= depth then []
      else
        List.concat_map
          (fun p ->
            match view.Driver.status p with
            | Runtime.Ready -> [ Driver.Schedule p ]
            | Runtime.Idle -> begin
                match invoke view p with
                | Some inv -> [ Driver.Invoke (p, inv) ]
                | None -> []
              end
            | Runtime.Crashed -> [])
          (Proc.all ~n)
        @
        if crashes < max_crashes then
          List.filter_map
            (fun p ->
              if view.Driver.status p = Runtime.Crashed then None
              else Some (Driver.Crash p))
            (Proc.all ~n)
        else []
    in
    match decisions with
    | [] ->
        (* A maximal run: check it. *)
        incr runs;
        if not (check report) then begin
          witness := Some report;
          raise Found_counterexample
        end
    | _ :: _ ->
        List.iter
          (fun d ->
            let crashes' =
              match d with Driver.Crash _ -> crashes + 1 | _ -> crashes
            in
            explore (d :: rev_script) (len + 1) crashes')
          decisions
  in
  match explore [] 0 0 with
  | () -> Ok !runs
  | exception Found_counterexample -> begin
      match !witness with
      | Some r -> Counterexample r
      | None -> assert false
    end
