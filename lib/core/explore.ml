open Slx_history
open Slx_sim
module Telemetry = Slx_obs.Telemetry
module Progress = Slx_obs.Progress
module Obs = Slx_obs.Obs
module Clock = Slx_obs.Clock

type ('inv, 'res) outcome =
  | Ok of int
  | Counterexample of ('inv, 'res) Run_report.t

type frontier_seed = { seed_script : int list; seed_sleep : int }

type frontier = {
  fr_depth : int;
  fr_base_runs : int;
  fr_base_digest : int;
  fr_seeds : frontier_seed list;
}

type ('inv, 'res) exploration = {
  outcome : ('inv, 'res) outcome;
  stats : Explore_stats.t;
  witness_script : ('inv, 'res) Driver.decision list option;
  frontier : frontier option;
}

exception Found_counterexample
exception Interrupted of Explore_stats.t

(* Internal: a [?cancel] poll came back true mid-walk; converted to
   [Interrupted] (with the partial stats attached) at the top level. *)
exception Cancelled

(* ------------------------------------------------------------------ *)
(* Type-agnostic decision coding.                                      *)

(* A decision as a small int — the persistent form frontier seeds and
   stored witness scripts use.  [Invoke] payloads are deliberately not
   encoded: every engine constructs an invocation as [invoke view p],
   so a decoder holding the same [invoke] re-derives the identical
   payload from the view at the point of application.  [Stop] never
   appears in a menu. *)
let code_of_decision = function
  | Driver.Schedule p -> p lsl 2
  | Driver.Invoke (p, _) -> (p lsl 2) lor 1
  | Driver.Crash p -> (p lsl 2) lor 2
  | Driver.Stop -> invalid_arg "Explore.code_of_decision: Stop"

let codes_of_script ds = List.map code_of_decision ds

let decision_of_code ~invoke view code =
  let p = code lsr 2 in
  match code land 3 with
  | 0 -> Driver.Schedule p
  | 2 -> Driver.Crash p
  | 1 -> (
      match invoke view p with
      | Some inv -> Driver.Invoke (p, inv)
      | None ->
          invalid_arg "Explore.decision_of_code: no pending invocation")
  | _ -> invalid_arg "Explore.decision_of_code: bad tag"

(* Decode-and-apply a coded script against a live cursor, returning
   the typed decisions actually applied (root-first). *)
let apply_codes ~invoke cursor codes =
  List.map
    (fun code ->
      let d = decision_of_code ~invoke (Runner.Cursor.view cursor) code in
      Runner.Cursor.apply cursor d;
      d)
    codes

let run_of_codes ~n ~factory ~invoke codes =
  let cursor = Runner.Cursor.create ~n ~factory:(factory ()) () in
  let ds = apply_codes ~invoke cursor codes in
  let len = List.length ds in
  (ds, Runner.Cursor.report cursor ~window:(max len 1) ())

let workload_invoke workload view p =
  let issued =
    History.length
      (History.filter
         (fun e -> Event.is_invocation e && Proc.equal (Event.proc e) p)
         view.Driver.history)
  in
  workload p issued

(* The packed int the [Decision] telemetry event carries. *)
let dec_code = function
  | Driver.Schedule p -> Telemetry.Dec.schedule (Proc.hash p)
  | Driver.Invoke (p, _) -> Telemetry.Dec.invoke (Proc.hash p)
  | Driver.Crash p -> Telemetry.Dec.crash (Proc.hash p)
  | Driver.Stop -> Telemetry.Dec.schedule 0  (* never in a menu *)

(* ------------------------------------------------------------------ *)
(* The decision menu.                                                  *)

(* The decision menu of a configuration, in the canonical order that
   defines "lexicographically least script": for each process 1..n, its
   step or invocation; then, if the crash budget allows, for each
   process 1..n, its crash.

   Under [~symmetry], untouched processes (no event in the history:
   never invoked, never crashed — hence idle with zero steps and
   initial local state) are interchangeable up to renaming, so only the
   least untouched process is offered an invocation (resp. a crash);
   the pruned decisions' subtrees are renamings of the representative's.
   The second component counts the decisions pruned this way. *)
let decision_menu ~n ~invoke ~depth ~max_crashes ~symmetry view len crashes =
  if len >= depth then ([], 0)
  else begin
    let pruned = ref 0 in
    let untouched p =
      History.length
        (History.filter
           (fun e -> Proc.equal (Event.proc e) p)
           view.Driver.history)
      = 0
    in
    let rep_invoke =
      if not symmetry then None
      else
        List.find_opt
          (fun p ->
            view.Driver.status p = Runtime.Idle
            && untouched p
            && invoke view p <> None)
          (Proc.all ~n)
    in
    let rep_crash =
      if not symmetry then None else List.find_opt untouched (Proc.all ~n)
    in
    let steps =
      List.concat_map
        (fun p ->
          match view.Driver.status p with
          | Runtime.Ready -> [ Driver.Schedule p ]
          | Runtime.Idle -> begin
              match invoke view p with
              | Some inv ->
                  if symmetry && untouched p && rep_invoke <> Some p then begin
                    incr pruned;
                    []
                  end
                  else [ Driver.Invoke (p, inv) ]
              | None -> []
            end
          | Runtime.Crashed -> [])
        (Proc.all ~n)
    in
    let crash_branches =
      if crashes < max_crashes then
        List.filter_map
          (fun p ->
            if view.Driver.status p = Runtime.Crashed then None
            else if symmetry && untouched p && rep_crash <> Some p then begin
              incr pruned;
              None
            end
            else Some (Driver.Crash p))
          (Proc.all ~n)
      else []
    in
    (steps @ crash_branches, !pruned)
  end

(* ------------------------------------------------------------------ *)
(* Per-domain state.                                                   *)

(* Transposition keys pair the configuration fingerprint with the POR
   sleep set: the same configuration reached with different sleep sets
   explores different reduced subtrees, so they must not share an
   entry.  With POR off the sleep set is always [] and keys degenerate
   to plain fingerprints.

   Two representations, verdict-identical (the differential suite in
   test/test_compact.ml checks runs, digests and witnesses agree):

   - [K_struct]: the structural form — deep fingerprint record plus
     sleep list, hashed and compared structurally on every lookup.
   - [K_compact]: the hash-consed form (the default) — the cursor's
     [compact_key] int array (incrementally interned history id,
     digests, packed per-process state) with the sleep set appended as
     a bitset, interned into a dense id ({!Intern.Ints}), so cache
     lookups hash one immediate int instead of a deep term.  Equality
     of compact keys coincides with equality of structural keys up to
     the digest collisions the structural form already accepts
     (interning is injective; QCheck-tested). *)
type ('inv, 'res) key =
  | K_struct of {
      k_fp : ('inv, 'res) Runner.fingerprint;
      k_sleep : Proc.t list;
    }
  | K_compact of int

(* Sleep sets as bitsets for the compact key: sound only when every
   process id fits a word, which the engine checks before electing
   compact mode ([n < 62]). *)
let sleep_bits sleep = List.fold_left (fun acc p -> acc lor (1 lsl p)) 0 sleep

(* Inverse of [sleep_bits], ascending — the order the engine's
   [sort_uniq]-maintained sleep lists are in. *)
let procs_of_bits bits =
  let rec go p acc =
    if p < 0 then acc
    else go (p - 1) (if bits land (1 lsl p) <> 0 then p :: acc else acc)
  in
  go 61 []

(* A counterexample as first found: decision-tree rank (root-first
   child indices in the reduced menus — the tie-breaker that makes the
   parallel engine deterministic), decision script, failing report. *)
type ('inv, 'res) witness =
  int list * ('inv, 'res) Driver.decision list * ('inv, 'res) Run_report.t

(* Per-engine (and, under fan-out, per-domain) mutable exploration
   state.  Domains share nothing mutable except the work queue and the
   witness slot: each has its own cursors, transposition table,
   telemetry ring and counters, which keeps the engine deterministic
   and lock-free.  [index] is the spawn index (0 = the calling
   domain); it keys the per-domain stats rows and the trace lanes.
   [sample] is installed once all sibling states exist — only the
   index-0 state ticks the progress reporter, reading sibling counters
   racily (they are immediates, so a stale read is the worst case). *)
type ('inv, 'res) dstate = {
  index : int;
  sink : Telemetry.sink;
  progress : Progress.t;
  mutable sample : unit -> Progress.sample;
  mutable nodes : int;
  mutable runs : int;
  mutable checked : int;
  mutable replayed : int;
  mutable avoided : int;
  mutable hits : int;
  mutable sleeps : int;
  mutable reversals : int;
  mutable sym_pruned : int;
  mutable steals : int;
  mutable digest : int;
  mutable found : ('inv, 'res) witness option;
  mutable fr_cuts : int;
      (* Persist mode: cut leaves seen — maximal runs at the depth
         bound whose menu would be nonempty at a greater depth.  Each
         is recorded as a frontier seed, and a transposition entry is
         written only for subtrees containing none of them, so a later
         resumed walk sees every cut leaf exactly once. *)
  mutable fr_cut_digest : int;
  mutable fr_rev_seeds : frontier_seed list;
  ticks : int ref;
  table : (('inv, 'res) key, entry) Clock_cache.t;
  shadow : Runtime.shadow option;
      (* Sanitizer shadow shared by all this domain's cursors:
         non-raising, non-recording — it only counts violations, so a
         sanitized exploration takes exactly the decisions an
         unsanitized one does. *)
  probe : Runtime.probe option;
      (* DPOR observed-access probe, likewise shared by the domain's
         cursors: records what each executed step physically touched,
         from which the dynamic sleep-set filter computes race
         reversals.  Recording only — decisions are unchanged. *)
  encode : (int -> ('inv, 'res) Event.t -> int) option;
      (* Compact-key mode: the hash-consing hook every cursor of this
         domain is created with.  It interns each appended event, then
         the (previous history id, event id) pair, so the cursor's
         [hist_id] stands in for its whole history — per-domain pools,
         like the cache, so domains stay share-nothing. *)
  keys : Intern.Ints.t;
      (* Compact-key pool: interns the flat [compact_key] arrays into
         the dense ids the transposition cache is keyed on. *)
  bitstate : Bitstate.t option;
      (* Hash-compaction mode: replaces the exact transposition cache
         with a 2^bits-bit table of fingerprint hashes.  One-sided —
         a hit may be a collision, so the mode trades exhaustiveness
         for bounded memory and reports its own collision bound. *)
}

and entry = { e_runs : int; e_digest : int }

let zero_sample =
  {
    Progress.s_nodes = 0;
    s_runs = 0;
    s_steps = 0;
    s_frontier = 0;
    s_cache_entries = 0;
    s_cache_capacity = 0;
    s_cycles = 0;
    s_domain_steps = [];
  }

let new_state ~index ?capacity ~sink ?(progress = Progress.off)
    ?(sanitize = false) ?(dpor = false) ?(compact = false) ?bitstate () =
  let encode =
    if not compact then None
    else begin
      let events = Intern.create () in
      let conses = Intern.create () in
      Some
        (fun parent e ->
          Intern.intern conses (parent, Intern.intern events e))
    end
  in
  {
    index;
    sink;
    progress;
    sample = (fun () -> zero_sample);
    nodes = 0;
    runs = 0;
    checked = 0;
    replayed = 0;
    avoided = 0;
    hits = 0;
    sleeps = 0;
    reversals = 0;
    sym_pruned = 0;
    steals = 0;
    digest = 0;
    found = None;
    fr_cuts = 0;
    fr_cut_digest = 0;
    fr_rev_seeds = [];
    ticks = ref 0;
    table = Clock_cache.create ?capacity ~sink ();
    shadow =
      (if sanitize then
         Some (Runtime.make_shadow ~record:false ~raise_on_violation:false ())
       else None);
    probe = (if dpor then Some (Runtime.make_probe ()) else None);
    encode;
    keys = Intern.Ints.create ();
    bitstate = Option.map (fun bits -> Bitstate.create ~bits) bitstate;
  }

let stats_of_states ~domains_used ~elapsed_ns ~events_dropped states :
    Explore_stats.t =
  let per_domain f =
    if domains_used > 1 then List.map (fun st -> (st.index, f st)) states
    else []
  in
  List.fold_left
    (fun (acc : Explore_stats.t) st ->
      {
        acc with
        Explore_stats.nodes = acc.Explore_stats.nodes + st.nodes;
        runs = acc.runs + st.runs;
        runs_checked = acc.runs_checked + st.checked;
        steps_executed = acc.steps_executed + !(st.ticks);
        steps_replayed = acc.steps_replayed + st.replayed;
        replays_avoided = acc.replays_avoided + st.avoided;
        cache_hits = acc.cache_hits + st.hits;
        cache_entries = acc.cache_entries + Clock_cache.length st.table;
        cache_evictions = acc.cache_evictions + Clock_cache.evictions st.table;
        por_prunes = acc.por_prunes + st.sleeps;
        race_reversals = acc.race_reversals + st.reversals;
        symmetry_pruned = acc.symmetry_pruned + st.sym_pruned;
        steals = acc.steals + st.steals;
        footprint_violations =
          (acc.Explore_stats.footprint_violations
          +
          match st.shadow with
          | Some sh -> Runtime.shadow_violation_count sh
          | None -> 0);
        bitstate_bits =
          (match st.bitstate with
          | Some bs -> max acc.Explore_stats.bitstate_bits (Bitstate.bits bs)
          | None -> acc.Explore_stats.bitstate_bits);
        bitstate_adds =
          (acc.Explore_stats.bitstate_adds
          + match st.bitstate with Some bs -> Bitstate.adds bs | None -> 0);
        bitstate_hits =
          (acc.Explore_stats.bitstate_hits
          + match st.bitstate with Some bs -> Bitstate.hits bs | None -> 0);
        bitstate_marks =
          (acc.Explore_stats.bitstate_marks
          + match st.bitstate with Some bs -> Bitstate.marks bs | None -> 0);
        history_digest = acc.history_digest + st.digest;
      })
    {
      Explore_stats.zero with
      domains_used;
      elapsed_ns;
      events_dropped;
      per_domain_runs = per_domain (fun st -> st.runs);
      per_domain_steps = per_domain (fun st -> !(st.ticks));
    }
    states

(* Install the progress sample on the index-0 state: totals over all
   sibling states (racy reads of immediates), the frontier count, and
   the per-domain step split. *)
let wire_progress obs states frontier =
  let progress = Obs.progress obs in
  if Progress.enabled progress then begin
    let cap_total =
      Array.fold_left
        (fun acc st ->
          match Clock_cache.capacity st.table with
          | None -> acc
          | Some c -> acc + c)
        0 states
    in
    let sample () =
      let nodes = ref 0
      and runs = ref 0
      and steps = ref 0
      and entries = ref 0 in
      Array.iter
        (fun st ->
          nodes := !nodes + st.nodes;
          runs := !runs + st.runs;
          steps := !steps + !(st.ticks);
          entries := !entries + Clock_cache.length st.table)
        states;
      {
        Progress.s_nodes = !nodes;
        s_runs = !runs;
        s_steps = !steps;
        s_frontier = frontier ();
        s_cache_entries = !entries;
        s_cache_capacity = cap_total;
        s_cycles = 0;
        s_domain_steps =
          (if Array.length states > 1 then
             Array.to_list (Array.map (fun st -> !(st.ticks)) states)
           else []);
      }
    in
    states.(0).sample <- sample
  end

(* ------------------------------------------------------------------ *)
(* Work-stealing fan-out.                                              *)

(* A frontier item: a configuration (as the decision prefix that
   reaches it — cursors hold one-shot continuations and cannot
   migrate, so thieves replay) plus the POR sleep set and the tree
   rank it carries.  [it_id] is the publication serial (the flow id of
   the trace's steal arrows); [it_owner] the publisher's spawn
   index. *)
type ('inv, 'res) item = {
  it_id : int;
  it_owner : int;
  it_script : ('inv, 'res) Driver.decision list;  (* reversed *)
  it_len : int;
  it_crashes : int;
  it_sleep : Proc.t list;
  it_rank : int list;  (* root-first *)
}

(* Shared state of a fan-out: a lock-free Treiber stack of frontier
   items (LIFO keeps thieves near the leaves their victim just left,
   so stolen replays are short), the count of queued-or-running items
   for termination detection, the publication serial counter, and the
   least-rank witness slot. *)
type ('inv, 'res) shared = {
  queue : ('inv, 'res) item list Atomic.t;
  outstanding : int Atomic.t;
  spawn_bound : int;
  next_item : int Atomic.t;
  best : ('inv, 'res) witness option Atomic.t;
}

let push shared it =
  Atomic.incr shared.outstanding;
  let rec go () =
    let cur = Atomic.get shared.queue in
    if not (Atomic.compare_and_set shared.queue cur (it :: cur)) then go ()
  in
  go ()

let pop shared =
  let rec go () =
    match Atomic.get shared.queue with
    | [] -> None
    | (it :: rest) as cur ->
        if Atomic.compare_and_set shared.queue cur rest then Some it else go ()
  in
  go ()

(* Ranks are compared lexicographically; [compare] on int lists is
   exactly that (a proper prefix is smaller). *)
let record_witness shared ((rank, _, _) as w) =
  let rec go () =
    let cur = Atomic.get shared.best in
    match cur with
    | Some (r, _, _) when compare r rank <= 0 -> ()
    | _ -> if not (Atomic.compare_and_set shared.best cur (Some w)) then go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The incremental reduced engine.                                     *)

let explore ~n ~factory ~invoke ~depth ?(max_crashes = 0) ?(cache = true)
    ?cache_capacity ?(por = false) ?(dpor = false) ?(symmetry = false)
    ?(domains = 1) ?(obs = Obs.disabled) ?(sanitize = false) ?(compact = true)
    ?bitstate ?(persist = false) ?resume ?cancel ~check () =
  let t0 = Clock.now_ns () in
  let cancel = match cancel with Some f -> f | None -> fun () -> false in
  (* Persist/resume are sequential-exact modes: frontier seeds must be
     discovered (and replayed) in first-visit order for the resumed
     witness to stay the lex-least one, and bitstate hits could prune
     a subtree holding unrecorded cut leaves.  Both are therefore
     silently ignored under fan-out or hash compaction; the sleep
     bitset additionally needs every process id to fit a word. *)
  let persist = persist && domains <= 1 && bitstate = None && n < 62 in
  let resume =
    match resume with
    | Some f when domains <= 1 && bitstate = None ->
        if f.fr_depth >= depth then
          invalid_arg "Explore.explore: resume frontier not shallower";
        Some f
    | _ -> None
  in
  (* [reduce]: the sleep-set walk runs; [dpor] selects the dynamic
     observed-access oracle over the declared-footprint one. *)
  let reduce = por || dpor in
  (* Compact keys only matter when the exact cache is live: bitstate
     mode hashes the structural fingerprint directly (interning every
     visited configuration would defeat its bounded-memory point), and
     the sleep bitset needs every process id to fit a word. *)
  let compact = compact && cache && bitstate = None && n < 62 in
  let menu = decision_menu ~n ~invoke ~depth ~max_crashes ~symmetry in
  (* Would the menu be nonempty with the depth guard lifted?  Exactly
     when some process can still step, invoke or crash — neither
     symmetry nor invoke pruning ever empties a nonempty raw menu, so
     this decides whether a maximal node is a {e cut} leaf (interior
     at a greater depth, hence a frontier seed) or terminated (final
     at any depth). *)
  let has_future view crashes =
    List.exists
      (fun p ->
        match view.Driver.status p with
        | Runtime.Ready -> true
        | Runtime.Idle -> invoke view p <> None
        | Runtime.Crashed -> false)
      (Proc.all ~n)
    || crashes < max_crashes
       && List.exists
            (fun p -> view.Driver.status p <> Runtime.Crashed)
            (Proc.all ~n)
  in
  let make_cursor st =
    Runner.Cursor.create ~n ~factory:(factory ()) ~ticks:st.ticks
      ?shadow:st.shadow ?probe:st.probe ?encode:st.encode ()
  in
  (* Under DPOR, a child's sleep set is only a {e candidate} until its
     edge executes: the dynamic filter then wakes the sleepers whose
     pending actions raced with the step's observed accesses.  Returns
     the settled sleep set. *)
  let settle_sleep st cursor d candidate len =
    if not dpor then candidate
    else begin
      let observed = Dpor.observed_step_mask ~probe:st.probe ~declared:None in
      let keep, woken =
        Dpor.advance_mask ~observed
          ~pending:(fun z -> Runner.Cursor.pending_mask cursor z)
          candidate d
      in
      (match woken with
      | [] -> ()
      | _ -> (
          match d with
          | Driver.Schedule _ ->
              st.reversals <- st.reversals + List.length woken;
              Telemetry.emit st.sink Telemetry.Race_reversal len
                (List.length woken)
          | _ -> ()));
      keep
    end
  in
  (* Walk the subtree rooted at the configuration [cursor] sits on.
     The first child extends the cursor in place (the incremental step
     the naive engine lacks); each later sibling re-establishes the
     configuration by replaying the decision prefix into a fresh
     cursor — unless the subtree is farmed out to the shared queue for
     another domain to steal.  Returns [true] iff the subtree was
     fully explored locally (so its transposition entry is exact and
     may be written).  Raises [Found_counterexample] with [st.found]
     set on the first failing maximal run, which under this in-order
     walk is the rank-least one of the subtree.

     [visit] wraps [visit_body] in the telemetry node span; the span
     closes on every exit, [Found_counterexample] unwinds included, so
     traces stay balanced.  With the sink disabled the wrapper costs
     two branches and no [Fun.protect] frame. *)
  let rec visit sh st cursor rev_script rev_rank len crashes sleep =
    st.nodes <- st.nodes + 1;
    Progress.tick st.progress st.sample;
    if Telemetry.enabled st.sink then begin
      Telemetry.emit st.sink Telemetry.Node_enter len 0;
      Fun.protect
        ~finally:(fun () ->
          Telemetry.emit st.sink Telemetry.Node_leave len 0)
        (fun () ->
          visit_body sh st cursor rev_script rev_rank len crashes sleep)
    end
    else visit_body sh st cursor rev_script rev_rank len crashes sleep
  and visit_body sh st cursor rev_script rev_rank len crashes sleep =
    if cancel () then raise Cancelled;
    match st.bitstate with
    | Some bs
      when Bitstate.test_and_set bs
             (Runtime.hash_value
                (K_struct
                   { k_fp = Runner.Cursor.fingerprint cursor; k_sleep = sleep }))
      ->
        (* Bitstate hit: the configuration's compacted hash was seen
           before — prune without crediting anything (the table stores
           no subtree data, and the hit may be a collision; the stats
           carry the Bloom bound that quantifies how often). *)
        st.hits <- st.hits + 1;
        Telemetry.emit st.sink Telemetry.Cache_hit len 0;
        true
    | _ ->
    let key =
      if not cache || st.bitstate <> None then None
      else if compact then
        Some
          (K_compact
             (Intern.Ints.intern st.keys
                (Runner.Cursor.compact_key cursor ~extra:[ sleep_bits sleep ])))
      else
        Some (K_struct { k_fp = Runner.Cursor.fingerprint cursor; k_sleep = sleep })
    in
    match Option.bind key (Clock_cache.find_opt st.table) with
    | Some e ->
        (* Transposition: an already-explored configuration (with the
           same sleep set).  Its subtree was counterexample-free
           (failing subtrees abort the walk before an entry is
           written), so credit its runs and final-history digest
           without descending. *)
        st.hits <- st.hits + 1;
        st.runs <- st.runs + e.e_runs;
        st.digest <- st.digest + e.e_digest;
        Telemetry.emit st.sink Telemetry.Cache_hit len e.e_runs;
        true
    | None -> begin
        let decisions, sym_pruned =
          menu (Runner.Cursor.view cursor) len crashes
        in
        st.sym_pruned <- st.sym_pruned + sym_pruned;
        if sym_pruned > 0 then
          Telemetry.emit st.sink Telemetry.Symmetry_prune len sym_pruned;
        match decisions with
        | [] ->
            (* A maximal run: check it. *)
            let r = Runner.Cursor.report cursor ~window:(max len 1) () in
            st.runs <- st.runs + 1;
            st.checked <- st.checked + 1;
            Telemetry.emit st.sink Telemetry.Run_checked len 0;
            let dh = Runtime.hash_value r.Run_report.history in
            st.digest <- st.digest + dh;
            let cut =
              persist && has_future (Runner.Cursor.view cursor) crashes
            in
            if cut then begin
              (* A cut leaf: maximal only because of the depth bound.
                 Record its coded script + settled sleep set as a
                 frontier seed (in first-visit = lex order) and write
                 no transposition entry, so no later hit can hide an
                 occurrence of this class from the seed log. *)
              st.fr_cuts <- st.fr_cuts + 1;
              st.fr_cut_digest <- st.fr_cut_digest + dh;
              st.fr_rev_seeds <-
                {
                  seed_script = List.rev_map code_of_decision rev_script;
                  seed_sleep = sleep_bits sleep;
                }
                :: st.fr_rev_seeds
            end
            else
              Option.iter
                (fun k ->
                  Clock_cache.replace st.table k { e_runs = 1; e_digest = dh })
                key;
            if not (check r) then begin
              st.found <- Some (List.rev rev_rank, List.rev rev_script, r);
              raise Found_counterexample
            end;
            true
        | _ -> begin
            (* Sleep-set filter: a slept process's pending step
               commutes with every step taken since it went to sleep,
               so granting it here would reproduce, step-swapped, a run
               already explored from an earlier sibling. *)
            let asleep, active =
              if reduce && sleep <> [] then
                List.partition
                  (fun d ->
                    match d with
                    | Driver.Schedule p -> List.mem p sleep
                    | _ -> false)
                  decisions
              else ([], decisions)
            in
            st.sleeps <- st.sleeps + List.length asleep;
            if asleep <> [] then
              Telemetry.emit st.sink Telemetry.Por_sleep len
                (List.length asleep);
            match active with
            | [] ->
                (* Everything enabled is asleep: every extension is a
                   reordering of an explored run.  Not a maximal run —
                   nothing to check, nothing to credit. *)
                Option.iter
                  (fun k ->
                    Clock_cache.replace st.table k
                      { e_runs = 0; e_digest = 0 })
                  key;
                true
            | _ ->
                let runs0 = st.runs and digest0 = st.digest in
                let cuts0 = st.fr_cuts in
                let pend p = Runner.Cursor.pending_mask cursor p in
                let commutes z d =
                  match d with
                  | Driver.Schedule q when not (Proc.equal q z) -> begin
                      (* Precomputed conflict masks: the commutation
                         check is two word ANDs ([masks_commute]),
                         verdict-identical to [footprints_commute] on
                         the declared footprints. *)
                      match (pend z, pend q) with
                      | Some a, Some b -> Runtime.masks_commute a b
                      | _ -> false
                    end
                  | Driver.Invoke (q, _) when not (Proc.equal q z) ->
                      (* Invoking [q] touches only [q]-local state (and
                         appends [q]'s invocation event), so it commutes
                         with any pending step of [z] — whatever objects
                         that step accesses.  Requires [invoke] to derive
                         its invocation from [q]'s own projection of the
                         history, which every counting workload does. *)
                      true
                  | _ -> false
                in
                (* Children, each with its sleep set: a process stays
                   (or, as an explored earlier sibling, falls) asleep
                   across child [d] iff its pending step commutes with
                   [d].  Declared POR decides commutation here, from
                   static footprints; DPOR instead carries the whole
                   set as a candidate and lets [settle_sleep] wake
                   racers from the accesses [d] actually performed
                   (crashes conservatively wake everyone — a crash
                   perturbs every process's view of the crashed one). *)
                let children =
                  if not reduce then
                    List.mapi (fun i d -> (i, d, [])) active
                  else
                    List.mapi (fun i d -> (i, d)) active
                    |> List.fold_left
                         (fun (acc, prev) (i, d) ->
                           let child_sleep =
                             if dpor then
                               match d with
                               | Driver.Crash _ -> []
                               | _ -> prev
                             else List.filter (fun z -> commutes z d) prev
                           in
                           let prev' =
                             match d with
                             | Driver.Schedule p ->
                                 List.sort_uniq Proc.compare (p :: prev)
                             | _ -> prev
                           in
                           ((i, d, child_sleep) :: acc, prev'))
                         ([], sleep)
                    |> fst |> List.rev
                in
                let farm_out =
                  match sh with
                  | Some sh ->
                      List.length children > 1
                      && Atomic.get sh.outstanding < sh.spawn_bound
                  | None -> false
                in
                let complete = ref (not farm_out) in
                List.iter
                  (fun (i, d, child_sleep) ->
                    let crashes' =
                      match d with
                      | Driver.Crash _ -> crashes + 1
                      | _ -> crashes
                    in
                    if farm_out && i > 0 then begin
                      (* Publish the sibling as a stealable frontier
                         item; whoever pops it replays the prefix. *)
                      let sh = Option.get sh in
                      let id = Atomic.fetch_and_add sh.next_item 1 in
                      Telemetry.emit st.sink Telemetry.Frontier_push id
                        (len + 1);
                      push sh
                        {
                          it_id = id;
                          it_owner = st.index;
                          it_script = d :: rev_script;
                          it_len = len + 1;
                          it_crashes = crashes';
                          it_sleep = child_sleep;
                          it_rank = List.rev (i :: rev_rank);
                        }
                    end
                    else begin
                      let child =
                        if i = 0 then begin
                          st.avoided <- st.avoided + 1;
                          cursor
                        end
                        else begin
                          let c = make_cursor st in
                          List.iter (Runner.Cursor.apply c)
                            (List.rev rev_script);
                          st.replayed <- st.replayed + len;
                          c
                        end
                      in
                      Telemetry.emit st.sink Telemetry.Decision (len + 1)
                        (dec_code d);
                      Runner.Cursor.apply child d;
                      let settled =
                        settle_sleep st child d child_sleep (len + 1)
                      in
                      if
                        not
                          (visit sh st child (d :: rev_script)
                             (i :: rev_rank) (len + 1) crashes' settled)
                      then complete := false
                    end)
                  children;
                (* Persist mode: never cache a subtree containing cut
                   leaves — a hit on it would credit runs without
                   re-recording the seeds it holds, so the frontier
                   would under-count.  (Verdict-neutral: a hit credits
                   exactly what re-exploration counts.) *)
                if !complete && (st.fr_cuts = cuts0 || not persist) then
                  Option.iter
                    (fun k ->
                      Clock_cache.replace st.table k
                        {
                          e_runs = st.runs - runs0;
                          e_digest = st.digest - digest0;
                        })
                    key;
                !complete
          end
      end
  in
  let finish ~domains_used states witness =
    let stats =
      stats_of_states ~domains_used
        ~elapsed_ns:(Clock.now_ns () - t0)
        ~events_dropped:(Obs.events_dropped obs)
        states
    in
    match witness with
    | None ->
        let frontier =
          match states with
          | [ st ] when persist ->
              (* [fr_base_*] = the runs/digest final at this depth:
                 the totals minus every cut leaf's contribution.  A
                 deeper resume starts from these and explores only the
                 seed subtrees. *)
              Some
                {
                  fr_depth = depth;
                  fr_base_runs = stats.Explore_stats.runs - st.fr_cuts;
                  fr_base_digest =
                    stats.Explore_stats.history_digest - st.fr_cut_digest;
                  fr_seeds = List.rev st.fr_rev_seeds;
                }
          | _ -> None
        in
        {
          outcome = Ok stats.Explore_stats.runs;
          stats;
          witness_script = None;
          frontier;
        }
    | Some (_, script, r) ->
        {
          outcome = Counterexample r;
          stats;
          witness_script = Some script;
          frontier = None;
        }
  in
  if domains <= 1 then begin
    (* Sequential: one in-order walk from the root configuration — or,
       resuming, one walk per stored frontier seed, in the stored
       (first-visit, hence lex) order, on top of the stored base
       counts.  Cut leaves terminated at the stored depth stay final
       at any depth, so the seed subtrees are exactly the delta. *)
    let st =
      new_state ~index:0 ?capacity:cache_capacity
        ~sink:(Obs.sink obs ~index:0) ~progress:(Obs.progress obs) ~sanitize
        ~dpor ~compact ?bitstate ()
    in
    wire_progress obs [| st |] (fun () -> 0);
    let walk () =
      match resume with
      | None -> ignore (visit None st (make_cursor st) [] [] 0 0 [] : bool)
      | Some f ->
          st.runs <- f.fr_base_runs;
          st.digest <- f.fr_base_digest;
          List.iter
            (fun seed ->
              let c = make_cursor st in
              let ds = apply_codes ~invoke c seed.seed_script in
              let len = List.length ds in
              st.replayed <- st.replayed + len;
              let crashes =
                List.fold_left
                  (fun a d ->
                    match d with Driver.Crash _ -> a + 1 | _ -> a)
                  0 ds
              in
              ignore
                (visit None st c (List.rev ds) [] len crashes
                   (procs_of_bits seed.seed_sleep)
                  : bool))
            f.fr_seeds
    in
    let witness =
      match walk () with
      | () -> None
      | exception Found_counterexample -> st.found
      | exception Cancelled ->
          raise
            (Interrupted
               (stats_of_states ~domains_used:1
                  ~elapsed_ns:(Clock.now_ns () - t0)
                  ~events_dropped:(Obs.events_dropped obs)
                  [ st ]))
    in
    finish ~domains_used:1 [ st ] witness
  end
  else begin
    (* Work-stealing fan-out: domains drain a shared lock-free stack of
       frontier items, and a busy domain publishes sibling subtrees
       whenever the stack runs low, so domains stay busy at every
       depth (not just across root branches).  The rank-least witness
       is selected at the join, so the counterexample is deterministic
       regardless of the steal schedule. *)
    let fan_out = domains in
    let shared =
      {
        queue = Atomic.make [];
        outstanding = Atomic.make 0;
        spawn_bound = 4 * fan_out;
        next_item = Atomic.make 0;
        best = Atomic.make None;
      }
    in
    let progress = Obs.progress obs in
    let states =
      Array.init fan_out (fun i ->
          new_state ~index:i ?capacity:cache_capacity
            ~sink:(Obs.sink obs ~index:i)
            ~progress:(if i = 0 then progress else Progress.off)
            ~sanitize ~dpor ~compact ?bitstate ())
    in
    wire_progress obs states (fun () -> Atomic.get shared.outstanding);
    let root_id = Atomic.fetch_and_add shared.next_item 1 in
    Telemetry.emit states.(0).sink Telemetry.Frontier_push root_id 0;
    push shared
      {
        it_id = root_id;
        it_owner = 0;
        it_script = [];
        it_len = 0;
        it_crashes = 0;
        it_sleep = [];
        it_rank = [];
      };
    let cancelled = Atomic.make false in
    let worker i () =
      let st = states.(i) in
      let rec loop () =
        if Atomic.get cancelled then ()
        else
        match pop shared with
        | Some it ->
            let skip =
              (* An item rank-greater than the best witness cannot
                 contain the least one; drop it. *)
              match Atomic.get shared.best with
              | Some (r, _, _) -> compare r it.it_rank <= 0
              | None -> false
            in
            if not skip then begin
              if it.it_owner <> st.index then begin
                st.steals <- st.steals + 1;
                Telemetry.emit st.sink Telemetry.Steal it.it_id it.it_owner
              end;
              let c = make_cursor st in
              List.iter (Runner.Cursor.apply c) (List.rev it.it_script);
              st.replayed <- st.replayed + it.it_len;
              (* A stolen item carries the publisher's {e candidate}
                 sleep set; the probe now holds the accesses of the
                 item's last decision (the final step of the replay),
                 so settle it here — exactly the filter the inline
                 path would have applied. *)
              let sleep =
                match it.it_script with
                | d :: _ -> settle_sleep st c d it.it_sleep it.it_len
                | [] -> it.it_sleep
              in
              (match
                 visit (Some shared) st c it.it_script
                   (List.rev it.it_rank) it.it_len it.it_crashes sleep
               with
              | (_ : bool) -> ()
              | exception Cancelled -> Atomic.set cancelled true
              | exception Found_counterexample -> (
                  match st.found with
                  | Some w ->
                      record_witness shared w;
                      st.found <- None
                  | None -> ()))
            end;
            Atomic.decr shared.outstanding;
            loop ()
        | None ->
            if Atomic.get shared.outstanding > 0 then begin
              Domain.cpu_relax ();
              loop ()
            end
      in
      loop ()
    in
    let handles =
      List.init (fan_out - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    List.iter Domain.join handles;
    if Atomic.get cancelled then
      raise
        (Interrupted
           (stats_of_states ~domains_used:fan_out
              ~elapsed_ns:(Clock.now_ns () - t0)
              ~events_dropped:(Obs.events_dropped obs)
              (Array.to_list states)));
    finish ~domains_used:fan_out (Array.to_list states)
      (Atomic.get shared.best)
  end

(* ------------------------------------------------------------------ *)
(* The naive reference engine.                                         *)

let explore_naive ~n ~factory ~invoke ~depth ?(max_crashes = 0) ~check () =
  let t0 = Clock.now_ns () in
  let menu =
    decision_menu ~n ~invoke ~depth ~max_crashes ~symmetry:false
  in
  let st = new_state ~index:0 ~sink:Telemetry.null () in
  (* The retained reference engine: re-run the decision prefix from a
     fresh implementation instance at every node of the tree, exactly
     as the original explorer did.  Kept for differential testing and
     as the baseline the incremental/reduced engines' counters are
     measured against. *)
  let replay rev_script =
    let c = Runner.Cursor.create ~n ~factory:(factory ()) ~ticks:st.ticks () in
    List.iter (Runner.Cursor.apply c) (List.rev rev_script);
    c
  in
  let rec walk rev_script len crashes =
    st.nodes <- st.nodes + 1;
    let cursor = replay rev_script in
    st.replayed <- st.replayed + len;
    match fst (menu (Runner.Cursor.view cursor) len crashes) with
    | [] ->
        let r = Runner.Cursor.report cursor ~window:(max len 1) () in
        st.runs <- st.runs + 1;
        st.checked <- st.checked + 1;
        st.digest <- st.digest + Runtime.hash_value r.Run_report.history;
        if not (check r) then begin
          st.found <- Some ([], List.rev rev_script, r);
          raise Found_counterexample
        end
    | decisions ->
        List.iter
          (fun d ->
            let crashes' =
              match d with Driver.Crash _ -> crashes + 1 | _ -> crashes
            in
            walk (d :: rev_script) (len + 1) crashes')
          decisions
  in
  let witness =
    match walk [] 0 0 with
    | () -> None
    | exception Found_counterexample -> st.found
  in
  let stats =
    stats_of_states ~domains_used:1
      ~elapsed_ns:(Clock.now_ns () - t0)
      ~events_dropped:0 [ st ]
  in
  match witness with
  | None ->
      {
        outcome = Ok stats.Explore_stats.runs;
        stats;
        witness_script = None;
        frontier = None;
      }
  | Some (_, script, r) ->
      {
        outcome = Counterexample r;
        stats;
        witness_script = Some script;
        frontier = None;
      }

let forall_schedules ~n ~factory ~invoke ~depth ?(max_crashes = 0) ~check () =
  (explore ~n ~factory ~invoke ~depth ~max_crashes ~check ()).outcome
