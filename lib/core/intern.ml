(* Hash-consing tables for compact configuration encodings.

   The exploration engines replace deep structural values (histories,
   fingerprints, suffix keys) with dense small-int ids: equal values
   get equal ids and distinct values distinct ids, so the transposition
   caches hash and compare single ints instead of re-traversing the
   value on every visit.  Two flavors:

   - ['a t]: a generic interner over structural equality (used for
     history events and abstract cell encodings, which are small);
   - [Ints]: a specialized interner over int arrays with an explicit
     full-array FNV/mix fold — the polymorphic [Hashtbl.hash] samples
     only ~10 nodes, which on a key array would reintroduce exactly
     the truncation bug the compact encodings exist to kill.

   Interners are single-domain by construction: each engine domain
   owns its own pools, matching its own per-domain transposition
   cache, so ids never cross domains. *)

type 'a t = { tbl : ('a, int) Hashtbl.t; mutable next : int }

let create ?(initial = 256) () = { tbl = Hashtbl.create initial; next = 0 }

let intern t x =
  match Hashtbl.find_opt t.tbl x with
  | Some id -> id
  | None ->
      let id = t.next in
      t.next <- id + 1;
      Hashtbl.add t.tbl x id;
      id

let count t = t.next

module Ints = struct
  module Tbl = Hashtbl.Make (struct
    type t = int array

    let equal (a : int array) b =
      let la = Array.length a in
      la = Array.length b
      &&
      let rec eq i = i >= la || (a.(i) = b.(i) && eq (i + 1)) in
      eq 0

    (* Full fold over every element — no sampling. *)
    let hash a =
      Array.fold_left
        (fun h v -> Slx_sim.Runtime.mix64 ((h * 0x100000001b3) lxor v))
        0x811c9dc5 a
      land max_int
  end)

  type t = { tbl : int Tbl.t; mutable next : int }

  let create ?(initial = 1024) () = { tbl = Tbl.create initial; next = 0 }

  let intern t a =
    match Tbl.find_opt t.tbl a with
    | Some id -> id
    | None ->
        let id = t.next in
        t.next <- id + 1;
        Tbl.add t.tbl a id;
        id

  let count t = t.next
end
