open Slx_sim

(* The observed-access conflict oracle, generalized out of the
   happens-before certifier (lib/analysis/hb.ml) so both exploration
   engines can consult it: two accesses conflict iff they touch the
   same base object and at least one writes it. *)
let observed_conflict (a : Runtime.access) (b : Runtime.access) =
  a.Runtime.obj = b.Runtime.obj && (a.Runtime.write || b.Runtime.write)

let footprint_of_touches touched = Runtime.of_accesses touched

let observed_commute obs pending = Runtime.footprints_commute obs pending

(* The observed footprint of the step the engine just executed: the
   probe's physical touches when instrumentation reported any,
   otherwise its effective declared footprint; with no probe (the
   legacy declared-footprint oracle), the declared pending footprint
   the step was suspended at. *)
let observed_step ~probe ~declared =
  match probe with
  | Some pr -> Runtime.probe_last_observed pr
  | None -> Option.value declared ~default:Runtime.Opaque

(* Whether the sleeping process [z] must be woken (a race reversal) by
   the executed step with observed footprint [observed]: its pending
   action no longer provably commutes with what the step actually did.
   A sleeping process with no pending footprint (it is not [Ready]
   anymore, which cannot happen for frozen continuations but is cheap
   to guard) is woken conservatively. *)
let wakes ~observed ~pending =
  match pending with
  | None -> true
  | Some fp -> not (Runtime.footprints_commute observed fp)

(* Advance a sleep set across an executed decision: crashes perturb
   every frozen continuation's future (the crash event is visible to
   all), so they wake everyone (not counted as reversals); invocations
   touch only the invoker's local state and commute with any pending
   step; a schedule keeps exactly the sleepers whose pending footprints
   commute with the step's observed accesses, and returns the woken
   ones — the race reversals — second. *)
let advance ~observed ~pending sleep d =
  match d with
  | Driver.Crash _ -> ([], [])
  | Driver.Invoke _ | Driver.Stop -> (sleep, [])
  | Driver.Schedule _ ->
      List.partition (fun z -> not (wakes ~observed ~pending:(pending z))) sleep

(* ------------------------------------------------------------------ *)
(* Bitmask forms of the oracle above: same verdicts, no list walks.
   The engines precompute pending masks at suspension
   ([Runner.Cursor.pending_mask]) and the probe precomputes its
   observation mask at step end, so the per-decision race check is two
   word ANDs ([Runtime.masks_commute]). *)

let observed_step_mask ~probe ~declared =
  match probe with
  | Some pr -> Runtime.probe_last_observed_mask pr
  | None -> Option.value declared ~default:Runtime.opaque_mask

let wakes_mask ~observed ~pending =
  match pending with
  | None -> true
  | Some m -> not (Runtime.masks_commute observed m)

let advance_mask ~observed ~pending sleep d =
  match d with
  | Driver.Crash _ -> ([], [])
  | Driver.Invoke _ | Driver.Stop -> (sleep, [])
  | Driver.Schedule _ ->
      List.partition
        (fun z -> not (wakes_mask ~observed ~pending:(pending z)))
        sleep
