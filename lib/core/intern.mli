(** Hash-consing tables for compact configuration encodings.

    The exploration engines intern structural values into dense
    small-int ids once, so transposition keys become single ints (or
    short int tuples) hashed with a 64-bit mixer instead of deep
    structural traversals on every visit.

    {b Soundness.}  [intern t a = intern t b] iff [a = b] (structural
    equality), for interns through the same table: an id is assigned
    exactly once per distinct value and looked up by structural
    equality afterwards.  Replacing key components with their interned
    ids therefore preserves exactly the equality the caches relied on
    — no new collisions, no lost distinctions.  The property is
    QCheck-tested in [test/test_compact.ml].

    Interners grow monotonically (one entry per distinct value seen);
    engines scope them per search so the pools die with the search.
    Single-domain by design: each engine domain owns its own pools,
    matching its per-domain transposition cache. *)

type 'a t
(** An interner over structural equality of ['a]. *)

val create : ?initial:int -> unit -> 'a t
(** A fresh, empty interner ([initial]: initial table size). *)

val intern : 'a t -> 'a -> int
(** The id of the value: dense from 0 in first-seen order. *)

val count : 'a t -> int
(** Distinct values interned so far. *)

(** Interning specialized to [int array] keys, with an explicit
    full-array mix fold for the bucket hash — the polymorphic hash
    would sample only a prefix of long keys. *)
module Ints : sig
  type t

  val create : ?initial:int -> unit -> t
  val intern : t -> int array -> int
  val count : t -> int
end
