(** Source-set dynamic partial-order reduction, shared by the safety
    explorer ({!Explore}) and the fair-cycle search ({!Live_explore}).

    Classic sleep sets prune a scheduling decision when the slept
    process's {e declared} footprint commutes with every step taken
    since it went to sleep.  The DPOR variant keeps the same walk shape
    — at each node the active (non-slept) children form the node's
    {e source set}, and a process falls asleep once its subtree is
    explored — but advances the sleep set from {e dynamic} conflicts:
    after a step executes, the engine reads its physically observed
    accesses from a {!Slx_sim.Runtime.probe} and wakes exactly the
    sleepers whose pending actions raced with what the step actually
    did (a {e race reversal}: the reversed order must be explored).
    Observed accesses refine declarations (a clean implementation
    touches a subset of what it declares, the invariant the sanitizer
    certifies), so the dynamic oracle never prunes less than the
    declared one and prunes strictly more whenever a declared conflict
    does not materialize at runtime — no wakeup trees needed: the
    engines' in-order walk already explores the reversal as the woken
    sibling's subtree.

    The conflict relation is the one the happens-before certifier
    ({!Slx_analysis.Hb}) derives: two accesses conflict iff they touch
    the same base object and at least one writes ({!observed_conflict}
    is that oracle, generalized here so core engines can consult it
    without depending on the analysis layer). *)

open Slx_history
open Slx_sim

val observed_conflict : Runtime.access -> Runtime.access -> bool
(** [observed_conflict a b]: same object, at least one write — the
    observed-access conflict oracle. *)

val footprint_of_touches : Runtime.access list -> Runtime.footprint
(** Canonical footprint of a touch list (merged per object, sorted);
    the empty list yields the empty footprint, which commutes with
    everything. *)

val observed_commute : Runtime.footprint -> Runtime.footprint -> bool
(** Footprint-level commutation ({!Slx_sim.Runtime.footprints_commute});
    on canonical touch footprints this is the negation of
    "some pair of accesses satisfies {!observed_conflict}". *)

val observed_step :
  probe:Runtime.probe option ->
  declared:Runtime.footprint option ->
  Runtime.footprint
(** The observed footprint of the step just executed: the probe's last
    observation when a probe is installed, else the declared pending
    footprint ([Opaque] when neither is available). *)

val wakes :
  observed:Runtime.footprint -> pending:Runtime.footprint option -> bool
(** Whether a sleeper with this pending footprint must be woken by a
    step with this observed footprint — true exactly when the two do
    not provably commute (or the sleeper has no pending footprint). *)

val advance :
  observed:Runtime.footprint ->
  pending:(Proc.t -> Runtime.footprint option) ->
  Proc.t list ->
  ('inv, 'res) Driver.decision ->
  Proc.t list * Proc.t list
(** [advance ~observed ~pending sleep d] splits [sleep] into the
    processes that stay asleep across the executed decision [d] and
    the ones it wakes, in that order.  [Crash] wakes everyone (the
    crash event invalidates every sleeper's equivalence argument —
    not a race reversal); [Invoke] is local and keeps everyone;
    [Schedule] wakes exactly the sleepers racing with [observed] —
    the race reversals the engines count and re-explore. *)

(** {1 Bitmask forms}

    The same oracle on precomputed {!Slx_sim.Runtime.mask}s — the
    representation the engines' hot paths use ([Runner.Cursor.pending_mask]
    for sleepers, {!Slx_sim.Runtime.probe_last_observed_mask} for the
    executed step), turning each race check into two word operations.
    Verdict-identical to the footprint forms above by
    [masks_commute ∘ mask_of_footprint = footprints_commute]
    (QCheck-tested in [test/test_compact.ml]). *)

val observed_step_mask :
  probe:Runtime.probe option ->
  declared:Runtime.mask option ->
  Runtime.mask
(** {!observed_step} on masks. *)

val wakes_mask :
  observed:Runtime.mask -> pending:Runtime.mask option -> bool
(** {!wakes} on masks. *)

val advance_mask :
  observed:Runtime.mask ->
  pending:(Proc.t -> Runtime.mask option) ->
  Proc.t list ->
  ('inv, 'res) Driver.decision ->
  Proc.t list * Proc.t list
(** {!advance} on masks. *)
