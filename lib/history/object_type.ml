module type S = sig
  type state
  type invocation
  type response

  val name : string
  val initial : state
  val seq : invocation -> state -> (state * response) list
  val good : response -> bool
  val equal_state : state -> state -> bool
  val equal_invocation : invocation -> invocation -> bool
  val equal_response : response -> response -> bool
  val pp_state : Format.formatter -> state -> unit
  val pp_invocation : Format.formatter -> invocation -> unit
  val pp_response : Format.formatter -> response -> unit
end

type ('st, 'inv, 'res) t = (module S
   with type state = 'st and type invocation = 'inv and type response = 'res)

let sequential_responses (type st inv res) (tp : (st, inv, res) t)
    (invs : inv list) : (st * res list) list =
  let module Tp = (val tp) in
  let step acc inv =
    List.concat_map
      (fun (st, responses) ->
        List.map
          (fun (st', res) -> (st', res :: responses))
          (Tp.seq inv st))
      acc
  in
  List.fold_left step [ (Tp.initial, []) ] invs
  |> List.map (fun (st, rev_responses) -> (st, List.rev rev_responses))

let legal_sequential (type st inv res) (tp : (st, inv, res) t)
    (pairs : (inv * res) list) : bool =
  let module Tp = (val tp) in
  let step states (inv, res) =
    List.concat_map
      (fun st ->
        List.filter_map
          (fun (st', res') ->
            if Tp.equal_response res res' then Some st' else None)
          (Tp.seq inv st))
      states
  in
  List.fold_left step [ Tp.initial ] pairs <> []
