(** Histories of shared-object implementations.

    A history is the subsequence of an execution consisting only of
    external actions: invocations, responses and crashes (Section 2 of
    the paper).  Histories are the values on which safety and liveness
    properties are defined (Section 3).

    The representation is persistent; [append] is O(1) and iteration is
    in chronological order. *)

type ('inv, 'res) t
(** A finite history over invocation payloads ['inv] and response
    payloads ['res]. *)

val empty : ('inv, 'res) t
(** The empty history. *)

val append : ('inv, 'res) t -> ('inv, 'res) Event.t -> ('inv, 'res) t
(** [append h e] is the history [h . e]. *)

val of_list : ('inv, 'res) Event.t list -> ('inv, 'res) t
(** Build a history from events in chronological order. *)

val to_list : ('inv, 'res) t -> ('inv, 'res) Event.t list
(** The events of the history in chronological order. *)

val length : ('inv, 'res) t -> int
(** Number of events. *)

val is_empty : ('inv, 'res) t -> bool

val nth : ('inv, 'res) t -> int -> ('inv, 'res) Event.t
(** [nth h i] is the [i]-th event (0-based).
    @raise Invalid_argument if out of bounds. *)

val project : ('inv, 'res) t -> Proc.t -> ('inv, 'res) t
(** [project h p] is [h|p]: the longest subsequence of [h] consisting
    only of events of process [p] (invocations, responses and crashes
    of [p]). *)

val procs : ('inv, 'res) t -> Proc.Set.t
(** The set of processes appearing in the history. *)

val crashed : ('inv, 'res) t -> Proc.Set.t
(** Processes that crash in the history.  Per Section 2, a process is
    {e correct} in a history iff it does not crash in it. *)

val is_correct : ('inv, 'res) t -> Proc.t -> bool
(** [is_correct h p] iff [p] has no crash event in [h]. *)

val is_well_formed : ('inv, 'res) t -> bool
(** Well-formedness per Section 2: for every process [p], the non-crash
    events of [h|p] alternate invocation / response starting with an
    invocation, and no event of [p] follows a [crash_p] event. *)

val pending : ('inv, 'res) t -> Proc.t -> 'inv option
(** [pending h p] is [Some inv] iff [h|p] ends with invocation [inv]
    (ignoring a trailing crash): process [p] is {e pending} in [h]. *)

val pending_procs : ('inv, 'res) t -> Proc.Set.t
(** All processes pending in the history. *)

val prefixes : ('inv, 'res) t -> ('inv, 'res) t list
(** All prefixes of the history, from [empty] to the history itself,
    in increasing length order.  Used to check prefix-closure of safety
    properties (Definition 3.1). *)

val prefix : ('inv, 'res) t -> int -> ('inv, 'res) t
(** [prefix h k] is the prefix of [h] with [k] events.
    @raise Invalid_argument if [k < 0] or [k > length h]. *)

val is_prefix :
  inv:('inv -> 'inv -> bool) ->
  res:('res -> 'res -> bool) ->
  ('inv, 'res) t ->
  ('inv, 'res) t ->
  bool
(** [is_prefix ~inv ~res h1 h2] iff [h1] is a prefix of [h2]. *)

val equal :
  inv:('inv -> 'inv -> bool) ->
  res:('res -> 'res -> bool) ->
  ('inv, 'res) t ->
  ('inv, 'res) t ->
  bool

val concat : ('inv, 'res) t -> ('inv, 'res) t -> ('inv, 'res) t
(** [concat h1 h2] is the history [h1 . h2]. *)

val filter :
  (('inv, 'res) Event.t -> bool) -> ('inv, 'res) t -> ('inv, 'res) t

val map :
  inv:('inv -> 'inv2) ->
  res:('res -> 'res2) ->
  ('inv, 'res) t ->
  ('inv2, 'res2) t

val rename : (Proc.t -> Proc.t) -> ('inv, 'res) t -> ('inv, 'res) t
(** Rename processes throughout the history (see {!Event.rename}). *)

val responses_of : ('inv, 'res) t -> Proc.t -> 'res list
(** All responses received by a process, in order. *)

val invocations_of : ('inv, 'res) t -> Proc.t -> 'inv list
(** All invocations performed by a process, in order. *)

val count : (('inv, 'res) Event.t -> bool) -> ('inv, 'res) t -> int
(** Number of events satisfying a predicate. *)

val pp :
  pp_inv:(Format.formatter -> 'inv -> unit) ->
  pp_res:(Format.formatter -> 'res -> unit) ->
  Format.formatter ->
  ('inv, 'res) t ->
  unit
(** Prints the history as a [.]-separated event sequence, matching the
    paper's notation, e.g. ["propose(0)_1 . propose(1)_2 . 0_1"]. *)
