type t = int

let compare = Int.compare
let equal = Int.equal
let hash p = p

let pp fmt p = Format.fprintf fmt "p%d" p

let all ~n =
  if n < 1 then invalid_arg "Proc.all: n must be positive";
  List.init n (fun i -> i + 1)

let is_valid ~n p = 1 <= p && p <= n

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let pp_set fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp)
    (Set.elements s)
