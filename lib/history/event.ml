type ('inv, 'res) t =
  | Invocation of Proc.t * 'inv
  | Response of Proc.t * 'res
  | Crash of Proc.t

let proc = function
  | Invocation (p, _) -> p
  | Response (p, _) -> p
  | Crash p -> p

let is_invocation = function Invocation _ -> true | Response _ | Crash _ -> false
let is_response = function Response _ -> true | Invocation _ | Crash _ -> false
let is_crash = function Crash _ -> true | Invocation _ | Response _ -> false

let invocation = function
  | Invocation (_, inv) -> Some inv
  | Response _ | Crash _ -> None

let response = function
  | Response (_, res) -> Some res
  | Invocation _ | Crash _ -> None

let equal ~inv ~res e1 e2 =
  match e1, e2 with
  | Invocation (p1, i1), Invocation (p2, i2) -> Proc.equal p1 p2 && inv i1 i2
  | Response (p1, r1), Response (p2, r2) -> Proc.equal p1 p2 && res r1 r2
  | Crash p1, Crash p2 -> Proc.equal p1 p2
  | (Invocation _ | Response _ | Crash _), _ -> false

let map ~inv ~res = function
  | Invocation (p, i) -> Invocation (p, inv i)
  | Response (p, r) -> Response (p, res r)
  | Crash p -> Crash p

let rename f = function
  | Invocation (p, i) -> Invocation (f p, i)
  | Response (p, r) -> Response (f p, r)
  | Crash p -> Crash (f p)

let pp ~pp_inv ~pp_res fmt = function
  | Invocation (p, i) -> Format.fprintf fmt "%a_%d" pp_inv i p
  | Response (p, r) -> Format.fprintf fmt "%a_%d" pp_res r p
  | Crash p -> Format.fprintf fmt "crash_%d" p
