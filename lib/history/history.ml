(* A history is stored as a reversed event list, so that [append] is
   O(1); chronological order is recovered on demand. *)

type ('inv, 'res) t = { rev_events : ('inv, 'res) Event.t list; len : int }

let empty = { rev_events = []; len = 0 }

let append h e = { rev_events = e :: h.rev_events; len = h.len + 1 }

let of_list events =
  { rev_events = List.rev events; len = List.length events }

let to_list h = List.rev h.rev_events

let length h = h.len
let is_empty h = h.len = 0

let nth h i =
  if i < 0 || i >= h.len then invalid_arg "History.nth: index out of bounds";
  (* The reversed list stores event [len - 1] first. *)
  List.nth h.rev_events (h.len - 1 - i)

let project h p =
  let rev_events = List.filter (fun e -> Proc.equal (Event.proc e) p) h.rev_events in
  { rev_events; len = List.length rev_events }

let procs h =
  List.fold_left
    (fun acc e -> Proc.Set.add (Event.proc e) acc)
    Proc.Set.empty h.rev_events

let crashed h =
  List.fold_left
    (fun acc e ->
      match e with
      | Event.Crash p -> Proc.Set.add p acc
      | Event.Invocation _ | Event.Response _ -> acc)
    Proc.Set.empty h.rev_events

let is_correct h p = not (Proc.Set.mem p (crashed h))

(* Per-process status while scanning chronologically. *)
type status = Idle | Pending | Crashed

let scan_statuses h =
  let statuses = Hashtbl.create 8 in
  let status p = Option.value (Hashtbl.find_opt statuses p) ~default:Idle in
  let ok = ref true in
  let step e =
    let p = Event.proc e in
    match e, status p with
    | _, Crashed -> ok := false
    | Event.Invocation _, Idle -> Hashtbl.replace statuses p Pending
    | Event.Invocation _, Pending -> ok := false
    | Event.Response _, Pending -> Hashtbl.replace statuses p Idle
    | Event.Response _, Idle -> ok := false
    | Event.Crash _, (Idle | Pending) -> Hashtbl.replace statuses p Crashed
  in
  List.iter step (List.rev h.rev_events);
  (!ok, statuses)

let is_well_formed h = fst (scan_statuses h)

let pending h p =
  (* Find the last non-crash event of [p]; pending iff it is an
     invocation.  A trailing crash does not cancel pendingness for the
     purpose of [h|p] inspection, but a crashed process is reported as
     non-pending since it will never take another step. *)
  let rec find = function
    | [] -> None
    | e :: rest ->
        if not (Proc.equal (Event.proc e) p) then find rest
        else begin
          match e with
          | Event.Crash _ -> None
          | Event.Invocation (_, inv) -> Some inv
          | Event.Response _ -> None
        end
  in
  find h.rev_events

let pending_procs h =
  Proc.Set.filter (fun p -> Option.is_some (pending h p)) (procs h)

let prefix h k =
  if k < 0 || k > h.len then invalid_arg "History.prefix";
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  { rev_events = drop (h.len - k) h.rev_events; len = k }

let prefixes h =
  List.init (h.len + 1) (fun k -> prefix h k)

let equal ~inv ~res h1 h2 =
  h1.len = h2.len
  && List.for_all2 (Event.equal ~inv ~res) h1.rev_events h2.rev_events

let is_prefix ~inv ~res h1 h2 =
  h1.len <= h2.len && equal ~inv ~res h1 (prefix h2 h1.len)

let concat h1 h2 =
  { rev_events = h2.rev_events @ h1.rev_events; len = h1.len + h2.len }

let filter f h =
  let rev_events = List.filter f h.rev_events in
  { rev_events; len = List.length rev_events }

let map ~inv ~res h =
  { h with rev_events = List.map (Event.map ~inv ~res) h.rev_events }

let rename f h =
  { h with rev_events = List.map (Event.rename f) h.rev_events }

let responses_of h p =
  List.filter_map
    (fun e ->
      if Proc.equal (Event.proc e) p then Event.response e else None)
    (to_list h)

let invocations_of h p =
  List.filter_map
    (fun e ->
      if Proc.equal (Event.proc e) p then Event.invocation e else None)
    (to_list h)

let count f h =
  List.fold_left (fun n e -> if f e then n + 1 else n) 0 h.rev_events

let pp ~pp_inv ~pp_res fmt h =
  let pp_sep fmt () = Format.fprintf fmt " .@ " in
  Format.fprintf fmt "@[<hov>%a@]"
    (Format.pp_print_list ~pp_sep (Event.pp ~pp_inv ~pp_res))
    (to_list h)
