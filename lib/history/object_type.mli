(** Shared object types.

    The paper (Section 2) defines a shared object type as a tuple
    [Tp = (St, Inv, Res, Seq)] where [Seq <= Inv x St x St x Res] is
    the sequential specification, and (Section 5.1) additionally fixes
    a subset [GTp <= Res] of {e good} responses — the responses that
    constitute progress.  For consensus and registers every response is
    good; for transactional memory only commit responses are.

    An [OBJECT_TYPE] packages all of this, together with the printers
    and equalities the checkers and test harnesses need. *)

module type S = sig
  type state
  (** [St]: states of the object. *)

  type invocation
  (** [Inv]: invocations on the object. *)

  type response
  (** [Res]: responses from the object. *)

  val name : string
  (** Human-readable name of the object type, e.g. ["consensus"]. *)

  val initial : state
  (** The initial state. *)

  val seq : invocation -> state -> (state * response) list
  (** The sequential specification as a relation: [seq inv st] is the
      list of [(st', res)] such that [(inv, st, st', res) in Seq].  An
      empty list means the invocation is illegal in state [st]. *)

  val good : response -> bool
  (** Membership in [GTp]: does this response constitute progress?
      (Definition of progress, Section 5.1.) *)

  val equal_state : state -> state -> bool
  val equal_invocation : invocation -> invocation -> bool
  val equal_response : response -> response -> bool

  val pp_state : Format.formatter -> state -> unit
  val pp_invocation : Format.formatter -> invocation -> unit
  val pp_response : Format.formatter -> response -> unit
end

(** A first-class packing of an object type, convenient for the
    model-checking core which quantifies over object types. *)
type ('st, 'inv, 'res) t = (module S
   with type state = 'st and type invocation = 'inv and type response = 'res)

val sequential_responses :
  ('st, 'inv, 'res) t -> 'inv list -> ('st * 'res list) list
(** [sequential_responses tp invs] runs the invocations of [invs]
    sequentially from the initial state, exploring every
    nondeterministic branch of [Seq]; returns the reachable
    [(final_state, responses)] pairs.  Used by tests and by the
    bounded-universe model checker. *)

val legal_sequential :
  ('st, 'inv, 'res) t -> ('inv * 'res) list -> bool
(** [legal_sequential tp pairs] is [true] iff the sequence of
    invocation/response pairs is a legal sequential execution from the
    initial state: a path through [Seq] exists producing exactly these
    responses. *)
