(** External events of a shared-object implementation.

    Following Section 2 of the paper, the external actions of an
    implementation automaton are the invocations [inv_i], the responses
    [res_i], and the crash actions [crash_i], for each process [p_i].
    The set of these actions for an object type [Tp] is written
    [ext(Tp)] in the paper.

    The type is polymorphic in the invocation and response payloads so
    that the same event machinery serves registers, consensus objects,
    transactional memories, and any user-defined object type. *)

type ('inv, 'res) t =
  | Invocation of Proc.t * 'inv  (** [inv_i]: process [p_i] invokes. *)
  | Response of Proc.t * 'res    (** [res_i]: process [p_i] receives. *)
  | Crash of Proc.t              (** [crash_i]: process [p_i] crashes. *)

val proc : ('inv, 'res) t -> Proc.t
(** The process an event belongs to. *)

val is_invocation : ('inv, 'res) t -> bool
val is_response : ('inv, 'res) t -> bool
val is_crash : ('inv, 'res) t -> bool

val invocation : ('inv, 'res) t -> 'inv option
(** [invocation e] is [Some inv] if [e] is an invocation. *)

val response : ('inv, 'res) t -> 'res option
(** [response e] is [Some res] if [e] is a response. *)

val equal :
  inv:('inv -> 'inv -> bool) ->
  res:('res -> 'res -> bool) ->
  ('inv, 'res) t ->
  ('inv, 'res) t ->
  bool
(** Structural equality given payload equalities. *)

val map :
  inv:('inv -> 'inv2) ->
  res:('res -> 'res2) ->
  ('inv, 'res) t ->
  ('inv2, 'res2) t
(** Map over the payloads of an event. *)

val rename : (Proc.t -> Proc.t) -> ('inv, 'res) t -> ('inv, 'res) t
(** [rename f e] replaces the process of [e] by its image under [f].
    Used to build process-permuted adversaries (e.g. the [F2] adversary
    sets of Corollaries 4.5 and 4.6 are process swaps of [F1]). *)

val pp :
  pp_inv:(Format.formatter -> 'inv -> unit) ->
  pp_res:(Format.formatter -> 'res -> unit) ->
  Format.formatter ->
  ('inv, 'res) t ->
  unit
(** Pretty-print an event, e.g. ["propose(0)_1"] or ["crash_2"]. *)
