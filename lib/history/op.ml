type ('inv, 'res) t = {
  proc : Proc.t;
  inv : 'inv;
  res : 'res option;
  inv_index : int;
  res_index : int option;
}

let of_history h =
  (* Scan chronologically, matching each response with the latest
     unmatched invocation of the same process. *)
  let open_ops : (Proc.t, ('inv, 'res) t) Hashtbl.t = Hashtbl.create 8 in
  let completed = ref [] in
  let handle index e =
    match e with
    | Event.Invocation (p, inv) ->
        Hashtbl.replace open_ops p
          { proc = p; inv; res = None; inv_index = index; res_index = None }
    | Event.Response (p, res) -> begin
        match Hashtbl.find_opt open_ops p with
        | Some op ->
            Hashtbl.remove open_ops p;
            completed :=
              { op with res = Some res; res_index = Some index } :: !completed
        | None ->
            (* Ill-formed history: a response with no matching
               invocation.  Record nothing; callers should check
               well-formedness first. *)
            ()
      end
    | Event.Crash _ -> ()
  in
  List.iteri handle (History.to_list h);
  let pending = Hashtbl.fold (fun _ op acc -> op :: acc) open_ops [] in
  List.sort
    (fun o1 o2 -> Int.compare o1.inv_index o2.inv_index)
    (!completed @ pending)

let is_complete op = Option.is_some op.res

let precedes o1 o2 =
  match o1.res_index with
  | None -> false
  | Some r1 -> r1 < o2.inv_index

let concurrent o1 o2 = (not (precedes o1 o2)) && not (precedes o2 o1)

let pp ~pp_inv ~pp_res fmt op =
  match op.res with
  | Some res ->
      Format.fprintf fmt "%a:%a->%a" Proc.pp op.proc pp_inv op.inv pp_res res
  | None -> Format.fprintf fmt "%a:%a->?" Proc.pp op.proc pp_inv op.inv
