(** Process identifiers.

    The paper considers a system of [n] asynchronous processes
    [p1 ... pn].  We represent a process identifier as a positive
    integer; [1] is the first process.  All modules in this repository
    use this representation. *)

type t = int
(** A process identifier, [1 <= p <= n]. *)

val compare : t -> t -> int
(** Total order on process identifiers. *)

val equal : t -> t -> bool
(** Equality on process identifiers. *)

val hash : t -> int
(** Hashing, for use in hash tables keyed by process. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt p] prints [p] as ["p3"]. *)

val all : n:int -> t list
(** [all ~n] is the list [[1; ...; n]] of all process identifiers in a
    system of [n] processes.  @raise Invalid_argument if [n < 1]. *)

val is_valid : n:int -> t -> bool
(** [is_valid ~n p] is [true] iff [1 <= p <= n]. *)

module Set : Set.S with type elt = t
(** Sets of process identifiers. *)

module Map : Map.S with type key = t
(** Maps keyed by process identifiers. *)

val pp_set : Format.formatter -> Set.t -> unit
(** Prints a set of processes as [{p1, p3}]. *)
