(** Operations: matched invocation/response pairs of a history.

    Linearizability and the other safety checkers reason about
    {e operations} — an invocation together with its matching response
    (or none, if the operation is pending) — and about the real-time
    precedence order between operations.  This module extracts that
    view from a raw event history. *)

type ('inv, 'res) t = {
  proc : Proc.t;          (** The invoking process. *)
  inv : 'inv;             (** The invocation payload. *)
  res : 'res option;      (** The response, or [None] if pending. *)
  inv_index : int;        (** Index of the invocation event in the history. *)
  res_index : int option; (** Index of the response event, if any. *)
}

val of_history : ('inv, 'res) History.t -> ('inv, 'res) t list
(** All operations of a well-formed history, ordered by invocation
    index.  Pending operations (including those cut off by a crash)
    have [res = None]. *)

val is_complete : ('inv, 'res) t -> bool
(** [true] iff the operation has a response. *)

val precedes : ('inv, 'res) t -> ('inv, 'res) t -> bool
(** [precedes o1 o2] iff [o1] completes before [o2] is invoked — the
    real-time order used by linearizability and opacity.  Pending
    operations precede nothing. *)

val concurrent : ('inv, 'res) t -> ('inv, 'res) t -> bool
(** Neither operation precedes the other. *)

val pp :
  pp_inv:(Format.formatter -> 'inv -> unit) ->
  pp_res:(Format.formatter -> 'res -> unit) ->
  Format.formatter ->
  ('inv, 'res) t ->
  unit
