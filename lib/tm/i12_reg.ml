open Slx_base_objects

(* The state a process keeps between the operations of one
   transaction. *)
type local = {
  mutable timestamp : int;
  mutable in_txn : bool;
  mutable version : int;
  mutable oldval : int list;  (* the values copied from C *)
  mutable values : int array; (* the local working copy *)
}

let factory ~vars : _ Slx_sim.Runner.factory =
 fun ~n ->
  let c = Cas.make (1, List.init vars (fun _ -> Tm_type.initial_value)) in
  let r = Slx_objects.Snapshot_alg.make ~n 0 in
  let locals =
    Array.init (n + 1) (fun _ ->
        {
          timestamp = 0;
          in_txn = false;
          version = 0;
          oldval = [];
          values = [||];
        })
  in
  fun ~proc inv ->
    let st = locals.(proc) in
    match inv with
    | Tm_type.Start ->
        st.timestamp <- st.timestamp + 1;
        Slx_objects.Snapshot_alg.update r ~proc st.timestamp;
        let version, oldval = Cas.read c in
        st.version <- version;
        st.oldval <- oldval;
        st.values <- Array.of_list oldval;
        st.in_txn <- true;
        Tm_type.Ok
    | Tm_type.Read x ->
        if st.in_txn && x >= 0 && x < vars then Tm_type.Val st.values.(x)
        else Tm_type.Aborted
    | Tm_type.Write (x, v) ->
        if st.in_txn && x >= 0 && x < vars then begin
          st.values.(x) <- v;
          Tm_type.Ok
        end
        else Tm_type.Aborted
    | Tm_type.Try_commit ->
        if not st.in_txn then Tm_type.Aborted
        else begin
          st.in_txn <- false;
          let snapshot = Slx_objects.Snapshot_alg.scan r in
          let count =
            Array.fold_left
              (fun acc ts -> if ts >= st.timestamp then acc + 1 else acc)
              0 snapshot
          in
          if count >= 3 then Tm_type.Aborted
          else if
            Cas.compare_and_swap c
              ~expected:(st.version, st.oldval)
              ~desired:(st.version + 1, Array.to_list st.values)
          then Tm_type.Committed
          else Tm_type.Aborted
        end
