(** Serializability checkers for TM histories.

    Strict serializability (Papadimitriou 1979) is cited by the paper
    (Section 5.2) as another safety property with which biprogressing
    liveness is impossible; plain serializability drops the real-time
    constraint.  Both differ from opacity in ignoring the reads of
    aborted transactions: only (possibly-)committed transactions must
    be consistent.  Hence [opacity ⊆ strict serializability ⊆
    serializability] — an inclusion chain the property-based tests
    exercise. *)

val strict : Tm_type.history -> bool
(** The committed and commit-pending transactions admit a legal
    serialization preserving real-time order. *)

val plain : Tm_type.history -> bool
(** Same, preserving only per-process program order. *)

val property_strict : Tm_type.history Slx_safety.Property.t
(** ["strict-serializability"]. *)

val property_plain : Tm_type.history Slx_safety.Property.t
(** ["serializability"]. *)
