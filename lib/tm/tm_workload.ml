open Slx_history
open Slx_sim

let next_invocation view p =
  (* Replay the process's events since its last [start] to find its
     position in the canonical increment transaction. *)
  let events = History.to_list (History.project view.Driver.history p) in
  let rec in_txn last_read = function
    | [] ->
        (* Transaction open: next op per position. *)
        begin
          match last_read with
          | None -> Tm_type.Read 0
          | Some v -> Tm_type.Write (0, v + 1)
        end
    | Event.Response (_, Tm_type.Val v) :: rest -> in_txn (Some v) rest
    | Event.Response (_, Tm_type.Ok) :: rest -> begin
        match last_read with
        | Some _ ->
            (* The write completed; commit next (no further responses
               expected before tryC in this program). *)
            after_write rest
        | None -> in_txn last_read rest
      end
    | Event.Response (_, (Tm_type.Committed | Tm_type.Aborted)) :: _ ->
        (* Closed: should have been caught by the outer scan. *)
        Tm_type.Start
    | (Event.Invocation _ | Event.Crash _) :: rest -> in_txn last_read rest
  and after_write = function
    | [] -> Tm_type.Try_commit
    | _ :: rest -> after_write rest
  in
  (* Rebuild the list of events after the last Start, in order. *)
  let rec split_last_start rev_before = function
    | [] -> None
    | Event.Invocation (_, Tm_type.Start) :: rest ->
        (* Candidate; look for a later one first. *)
        begin
          match split_last_start [] rest with
          | Some tail -> Some tail
          | None -> Some rest
        end
    | e :: rest -> split_last_start (e :: rev_before) rest
  in
  match split_last_start [] events with
  | None -> Tm_type.Start
  | Some tail ->
      let closed =
        List.exists
          (fun e ->
            match e with
            | Event.Response (_, (Tm_type.Committed | Tm_type.Aborted)) -> true
            | Event.Response _ | Event.Invocation _ | Event.Crash _ -> false)
          tail
      in
      if closed then Tm_type.Start else in_txn None tail

let eligible view p =
  match view.Driver.status p with
  | Slx_sim.Runtime.Ready -> Some (Driver.Schedule p)
  | Slx_sim.Runtime.Idle -> Some (Driver.Invoke (p, next_invocation view p))
  | Slx_sim.Runtime.Crashed -> None

let round_robin ?procs () : _ Driver.t =
  let cursor = ref 0 in
  fun view ->
    let procs = Option.value procs ~default:(Proc.all ~n:view.Driver.n) in
    let len = List.length procs in
    let rec try_from k =
      if k >= len then Driver.Stop
      else
        let p = List.nth procs ((!cursor + k) mod len) in
        match eligible view p with
        | Some d ->
            cursor := (!cursor + k + 1) mod len;
            d
        | None -> try_from (k + 1)
    in
    try_from 0

let random ?procs ~seed () : _ Driver.t =
  let rng = Random.State.make [| seed |] in
  fun view ->
    let procs = Option.value procs ~default:(Proc.all ~n:view.Driver.n) in
    let candidates = List.filter_map (eligible view) procs in
    match candidates with
    | [] -> Driver.Stop
    | _ :: _ ->
        List.nth candidates (Random.State.int rng (List.length candidates))
