(** A TL2-style lock-based TM: opaque but {e blocking}.

    All the other TMs here are non-blocking.  This one uses commit-time
    write locking with a global version clock (in the style of
    Dice–Shalev–Shavit's TL2): [tryC] CAS-locks its write-set variable,
    bumps the clock, validates, publishes, unlocks.  Opacity holds
    (reads validate against the version they started from), but the
    implementation is {e blocking} in exactly the sense of the paper's
    footnote — “a non-blocking system is one in which no process [p]
    can prevent other processes from making progress once [p] crashes”:
    a process that crashes {e while holding a commit lock} wedges every
    later transaction on that variable, so even (1,1)-freedom fails in
    its presence.  The tests and experiment E16 contrast this with AGP,
    which keeps (1,1)-freedom under the same crash.

    Only one transactional variable is exposed (the single-variable
    case is all the liveness experiments need; multi-variable TL2 adds
    only lock-ordering noise). *)

val factory :
  unit -> (Tm_type.invocation, Tm_type.response) Slx_sim.Runner.factory
(** A fresh single-variable lock-based TM. *)
