(** The counterexample safety property [S'] of Section 5.3.

    A TM history [h] ensures [S'] iff:
    + [h] ensures opacity, and
    + for any three (or more) concurrent transactions [T1, T2, T3, ...]
      executed by {e different} processes, if (1) there is a [t] such
      that each [Ti] is the [t]-th transaction of its process, and (2)
      each [Ti] invokes [tryC] after at least two {e other}
      transactions of the group received their [start] responses, then
      all of [T1, T2, T3, ...] must be aborted.

    [S'] is the paper's witness that (l,k)-freedom has limits: both
    (2,2)- and (1,3)-freedom exclude [S'], yet (1,2)-freedom — weaker
    than both, and their unique lower bound among candidates — does
    not (Algorithm [I(1,2)] implements it, Lemma 5.4).  Hence no
    weakest (l,k)-freedom property excluding [S'] exists. *)

val timestamp_rule : Tm_type.history -> bool
(** Condition 2 alone: no forbidden group has a committed member. *)

val violating_groups : Tm_type.history -> Transaction.t list list
(** The groups that trigger the rule and contain a committed
    transaction — empty iff {!timestamp_rule} holds.  For diagnostics
    and tests. *)

val check : Tm_type.history -> bool
(** [S' = opacity ∧ timestamp_rule] (opacity in its prefix-quantified
    form). *)

val check_final : Tm_type.history -> bool
(** [S'] with final-state opacity — the cheap variant for long
    histories. *)

val property : Tm_type.history Slx_safety.Property.t
(** ["S-prime"]. *)
