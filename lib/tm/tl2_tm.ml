open Slx_base_objects

(* The single transactional variable: a versioned value plus a
   commit-time write lock. *)
type cell = { version : int; value : int; owner : int option }

type local = {
  mutable in_txn : bool;
  mutable rv : int;              (* version observed at start *)
  mutable read_value : int;      (* cached read, if any *)
  mutable has_read : bool;
  mutable write_value : int option;
}

let factory () : _ Slx_sim.Runner.factory =
 fun ~n ->
  let c =
    Cas.make { version = 1; value = Tm_type.initial_value; owner = None }
  in
  let locals =
    Array.init (n + 1) (fun _ ->
        {
          in_txn = false;
          rv = 0;
          read_value = 0;
          has_read = false;
          write_value = None;
        })
  in
  fun ~proc inv ->
    let st = locals.(proc) in
    let abort () =
      st.in_txn <- false;
      Tm_type.Aborted
    in
    match inv with
    | Tm_type.Start ->
        let cur = Cas.read c in
        st.rv <- cur.version;
        st.has_read <- false;
        st.write_value <- None;
        st.in_txn <- true;
        Tm_type.Ok
    | Tm_type.Read x ->
        if (not st.in_txn) || x <> 0 then abort ()
        else begin
          match st.write_value with
          | Some v -> Tm_type.Val v
          | None ->
              let cur = Cas.read c in
              if cur.owner <> None || cur.version > st.rv then abort ()
              else begin
                st.read_value <- cur.value;
                st.has_read <- true;
                Tm_type.Val cur.value
              end
        end
    | Tm_type.Write (x, v) ->
        if (not st.in_txn) || x <> 0 then abort ()
        else begin
          st.write_value <- Some v;
          Tm_type.Ok
        end
    | Tm_type.Try_commit ->
        if not st.in_txn then Tm_type.Aborted
        else begin
          st.in_txn <- false;
          match st.write_value with
          | None ->
              (* Read-only: revalidate. *)
              let cur = Cas.read c in
              if cur.owner <> None || cur.version > st.rv then Tm_type.Aborted
              else Tm_type.Committed
          | Some v ->
              (* Lock, then publish with a version bump. *)
              let cur = Cas.read c in
              if cur.owner <> None || cur.version > st.rv then Tm_type.Aborted
              else if
                not
                  (Cas.compare_and_swap c ~expected:cur
                     ~desired:{ cur with owner = Some proc })
              then Tm_type.Aborted
              else begin
                let locked = { cur with owner = Some proc } in
                let published =
                  Cas.compare_and_swap c ~expected:locked
                    ~desired:
                      { version = cur.version + 1; value = v; owner = None }
                in
                assert published;
                Tm_type.Committed
              end
        end
