(* Enumerate the sub-lists (subsets, order preserved) of a list. *)
let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let tails = subsets rest in
      List.map (fun s -> x :: s) tails @ tails

(* The group [g] triggers the rule: pairwise concurrent, and each
   member invoked tryC after >= 2 other members' start responses. *)
let triggers g =
  let pairwise_concurrent =
    List.for_all
      (fun t1 ->
        List.for_all
          (fun t2 -> Transaction.same t1 t2 || Transaction.concurrent t1 t2)
          g)
      g
  in
  let late_tryc t =
    match t.Transaction.tryc_inv with
    | None -> false
    | Some tc ->
        let earlier_starts =
          List.filter
            (fun t' ->
              (not (Transaction.same t' t))
              &&
              match t'.Transaction.start_res with
              | Some s -> s < tc
              | None -> false)
            g
        in
        List.length earlier_starts >= 2
  in
  pairwise_concurrent && List.for_all late_tryc g

let forbidden_groups h =
  let txns = Transaction.of_history h in
  (* Group by per-process transaction index. *)
  let by_index = Hashtbl.create 8 in
  List.iter
    (fun t ->
      let group =
        Option.value (Hashtbl.find_opt by_index t.Transaction.index) ~default:[]
      in
      Hashtbl.replace by_index t.Transaction.index (t :: group))
    txns;
  Hashtbl.fold
    (fun _ group acc ->
      let candidates =
        List.filter (fun s -> List.length s >= 3) (subsets group)
      in
      List.filter triggers candidates @ acc)
    by_index []

let violating_groups h =
  List.filter
    (fun g ->
      List.exists
        (fun t -> t.Transaction.status = Transaction.Committed)
        g)
    (forbidden_groups h)

let timestamp_rule h = violating_groups h = []

let check h = Opacity.check h && timestamp_rule h

let check_final h = Opacity.check_final h && timestamp_rule h

let property = Slx_safety.Property.make ~name:"S-prime" check
