open Slx_history
open Slx_sim

let commits h =
  let count p =
    List.length
      (List.filter
         (fun r -> r = Tm_type.Committed)
         (History.responses_of h p))
  in
  List.map (fun p -> (p, count p)) (Proc.Set.elements (History.procs h))

let last_response view p =
  match List.rev (History.responses_of view.Driver.history p) with
  | r :: _ -> Some r
  | [] -> None

(* ------------------------------------------------------------------ *)
(* The Section 4.1 local-progress adversary.                           *)

(* The adversary's program counter: which operation it is currently
   driving, for which step of the strategy. *)
type lp_phase =
  | Step1_start
  | Step1_read
  | Step2_start
  | Step2_read
  | Step2_write
  | Step2_tryc
  | Step3_write
  | Step3_tryc
  | Won  (* p1 committed: the implementation was not opaque. *)

let local_progress_adversary ?(swap = false) () : _ Driver.t =
  let p1 = if swap then 2 else 1 in
  let p2 = if swap then 1 else 2 in
  let phase = ref Step1_start in
  (* v' is p1's last read value, v'' is p2's. *)
  let v' = ref 0 and v'' = ref 0 in
  let awaiting = ref false in
  (* The process and invocation of the current phase. *)
  let current () =
    match !phase with
    | Step1_start -> (p1, Tm_type.Start)
    | Step1_read -> (p1, Tm_type.Read 0)
    | Step2_start -> (p2, Tm_type.Start)
    | Step2_read -> (p2, Tm_type.Read 0)
    | Step2_write -> (p2, Tm_type.Write (0, !v' + 1))
    | Step2_tryc -> (p2, Tm_type.Try_commit)
    | Step3_write -> (p1, Tm_type.Write (0, !v'' + 1))
    | Step3_tryc -> (p1, Tm_type.Try_commit)
    | Won -> assert false
  in
  let transition response =
    let aborted = response = Tm_type.Aborted in
    phase :=
      match !phase with
      | Step1_start -> if aborted then Step1_start else Step1_read
      | Step1_read ->
          if aborted then Step1_start
          else begin
            (match response with Tm_type.Val v -> v' := v | _ -> ());
            Step2_start
          end
      | Step2_start -> if aborted then Step2_start else Step2_read
      | Step2_read ->
          if aborted then Step2_start
          else begin
            (match response with Tm_type.Val v -> v'' := v | _ -> ());
            Step2_write
          end
      | Step2_write -> if aborted then Step2_start else Step2_tryc
      | Step2_tryc -> if aborted then Step2_start else Step3_write
      | Step3_write -> if aborted then Step1_start else Step3_tryc
      | Step3_tryc -> if aborted then Step1_start else Won
      | Won -> Won
  in
  fun view ->
    if !phase = Won then Driver.Stop
    else begin
      (* If we were waiting for a response and the process is idle
         again, the response arrived: advance the state machine. *)
      (if !awaiting then
         let p, _ = current () in
         if view.Driver.status p = Runtime.Idle then begin
           awaiting := false;
           match last_response view p with
           | Some r -> transition r
           | None -> ()
         end);
      if !phase = Won then Driver.Stop
      else
        let p, inv = current () in
        match view.Driver.status p with
        | Runtime.Ready -> Driver.Schedule p
        | Runtime.Idle ->
            awaiting := true;
            Driver.Invoke (p, inv)
        | Runtime.Crashed -> Driver.Stop
    end

let run_local_progress ?swap ~factory ~max_steps () =
  Runner.run ~n:2 ~factory
    ~driver:(local_progress_adversary ?swap ())
    ~max_steps ()


(* ------------------------------------------------------------------ *)
(* The alternating-starts adversary (mutual abort).                    *)

let alternating_starts () : _ Driver.t =
  (* After the two opening starts, the cycle [p1 tryC; p1 start;
     p2 tryC; p2 start] guarantees that, against a latest-starter TM,
     every commit attempt finds the other process started in between. *)
  let prologue = [ (1, Tm_type.Start); (2, Tm_type.Start) ] in
  let cycle =
    [
      (1, Tm_type.Try_commit);
      (1, Tm_type.Start);
      (2, Tm_type.Try_commit);
      (2, Tm_type.Start);
    ]
  in
  let position = ref 0 in
  let awaiting = ref false in
  let current () =
    let i = !position in
    if i < List.length prologue then List.nth prologue i
    else List.nth cycle ((i - List.length prologue) mod List.length cycle)
  in
  fun view ->
    (if !awaiting then
       let p, _ = current () in
       if view.Driver.status p = Runtime.Idle then begin
         awaiting := false;
         incr position
       end);
    let p, inv = current () in
    match view.Driver.status p with
    | Runtime.Ready -> Driver.Schedule p
    | Runtime.Idle ->
        awaiting := true;
        Driver.Invoke (p, inv)
    | Runtime.Crashed -> Driver.Stop

let run_alternating_starts ~factory ~max_steps =
  Runner.run ~n:2 ~factory ~driver:(alternating_starts ()) ~max_steps ()

(* ------------------------------------------------------------------ *)
(* The Section 5.3 three-way adversary.                                *)

type tw_stage =
  | Starting   (** Driving three concurrent [start]s to completion. *)
  | Committing (** Driving the survivors' [tryC]s to completion. *)
  | Beaten     (** Someone committed: the implementation violated S'. *)

let three_way_adversary () : _ Driver.t =
  let procs = [ 1; 2; 3 ] in
  let stage = ref Starting in
  (* Who has been invoked in the current stage, and who participates
     (in Committing: those whose start was not aborted). *)
  let invoked = ref Proc.Set.empty in
  let participants = ref (Proc.Set.of_list procs) in
  fun view ->
    if !stage = Beaten then Driver.Stop
    else begin
      let status = view.Driver.status in
      let members = Proc.Set.elements !participants in
      let pending = List.filter (fun p -> status p = Runtime.Ready) members in
      let uninvoked =
        List.filter
          (fun p -> status p = Runtime.Idle && not (Proc.Set.mem p !invoked))
          members
      in
      (* First make every participant invoke, then drive all pending
         operations; when all responded, change stage. *)
      match uninvoked, pending with
      | p :: _, _ ->
          invoked := Proc.Set.add p !invoked;
          Driver.Invoke
            (p, if !stage = Starting then Tm_type.Start else Tm_type.Try_commit)
      | [], p :: _ ->
          (* Fair rotation: pick the pending process with fewest steps. *)
          let least =
            List.fold_left
              (fun best q ->
                if view.Driver.steps q < view.Driver.steps best then q else best)
              p pending
          in
          Driver.Schedule least
      | [], [] ->
          (* Stage complete: everyone responded. *)
          let responded_with r p = last_response view p = Some r in
          let restart_step1 () =
            stage := Starting;
            participants := Proc.Set.of_list procs;
            invoked := Proc.Set.singleton (List.hd procs);
            Driver.Invoke (List.hd procs, Tm_type.Start)
          in
          begin
            match !stage with
            | Starting ->
                let survivors =
                  List.filter
                    (fun p -> not (responded_with Tm_type.Aborted p))
                    members
                in
                begin
                  match survivors with
                  | [] ->
                      (* All starts aborted: restart Step 1. *)
                      restart_step1 ()
                  | first :: _ ->
                      stage := Committing;
                      participants := Proc.Set.of_list survivors;
                      invoked := Proc.Set.singleton first;
                      Driver.Invoke (first, Tm_type.Try_commit)
                end
            | Committing ->
                if List.exists (responded_with Tm_type.Committed) members
                then begin
                  stage := Beaten;
                  Driver.Stop
                end
                else restart_step1 ()
            | Beaten -> Driver.Stop
          end
    end

let run_three_way ~factory ~max_steps =
  Runner.run ~n:3 ~factory ~driver:(three_way_adversary ()) ~max_steps ()
