let factory () : _ Slx_sim.Runner.factory =
 fun ~n:_ ~proc:_ (_ : Tm_type.invocation) -> Tm_type.Aborted
