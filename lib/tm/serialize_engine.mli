(** The serialization-search engine shared by the TM safety checkers.

    Opacity, strict serializability and serializability all ask for a
    legal total order on (a subset of) a history's transactions; they
    differ in which transactions participate and which precedence
    relation the order must respect.  This module provides the common
    memoized backtracking search. *)

val search :
  precedes:(Transaction.t -> Transaction.t -> bool) ->
  Transaction.t list ->
  Transaction.t list option
(** [search ~precedes txns] finds an order of [txns] respecting
    [precedes] in which every transaction reads consistently with the
    committed transactions placed before it (deferred-update
    semantics).  Commit-pending transactions branch over both
    completions; aborted and live ones never publish writes. *)
