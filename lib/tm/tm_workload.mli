(** A protocol-respecting TM workload driver.

    TM invocations must follow the transaction protocol — after an
    abort the only sensible next invocation is [start] — so a workload
    cannot be a fixed invocation sequence; it must react to responses.
    This driver derives each process's next invocation from its own
    projected history: every process runs the canonical conflicting
    increment transaction

    {v start() ; x.read() ; x.write(read value + 1) ; tryC() v}

    forever, restarting after any abort.  All processes touch the same
    variable [x = 0], so the workload is maximally contended — the
    regime in which the (l,k)-freedom differences between TM
    implementations are visible. *)

open Slx_sim

val next_invocation :
  (Tm_type.invocation, Tm_type.response) Driver.view ->
  Slx_history.Proc.t ->
  Tm_type.invocation
(** The next protocol-legal invocation for an idle process, derived
    from its projected history. *)

val round_robin :
  ?procs:Slx_history.Proc.t list ->
  unit ->
  (Tm_type.invocation, Tm_type.response) Driver.t
(** Fair rotation over [procs] (default all), scheduling ready
    processes and issuing {!next_invocation} to idle ones. *)

val random :
  ?procs:Slx_history.Proc.t list ->
  seed:int ->
  unit ->
  (Tm_type.invocation, Tm_type.response) Driver.t
(** Seeded uniform choice among eligible processes. *)
