(** The trivial TM: every transaction is aborted at [start].

    “In TM implementations requiring that each operation returns a
    response is not enough because such requirement can be trivially
    ensured simply by aborting every transaction.” (Section 4.1.)
    This implementation is that triviality: it ensures opacity (and
    [S']) and answers every operation immediately, yet makes no
    progress at all under the TM notion of good responses — the test
    suites use it to confirm that [GTp = {C}] is what gives the TM
    liveness properties their teeth. *)

val factory :
  unit -> (Tm_type.invocation, Tm_type.response) Slx_sim.Runner.factory
