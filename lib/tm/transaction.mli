(** The transaction-level view of a TM history.

    The opacity checker and the Section 5.3 property reason about
    whole transactions — their operations, status, real-time intervals
    and per-process index — rather than raw events.  This module
    extracts that view from a well-formed TM history. *)

open Slx_history

type status =
  | Committed       (** Received the commit event [C]. *)
  | Aborted         (** Received an abort event [A]. *)
  | Commit_pending  (** Invoked [tryC] but got no response yet. *)
  | Live            (** Running; [tryC] not yet invoked. *)

type op =
  | Read_op of Tm_type.var * int   (** A completed read and its value. *)
  | Write_op of Tm_type.var * int  (** A completed write. *)

type t = {
  proc : Proc.t;            (** The executing process. *)
  index : int;              (** [t]-th transaction of its process (1-based). *)
  start_inv : int;          (** Event index of the [start] invocation. *)
  start_res : int option;   (** Event index of the [start] response. *)
  finished : int option;    (** Event index of the final [C]/[A], if any. *)
  tryc_inv : int option;    (** Event index of the [tryC] invocation. *)
  ops : op list;            (** Completed reads and writes, in order. *)
  status : status;
}

val of_history : Tm_type.history -> t list
(** All transactions, ordered by [start_inv].  The history must be
    well-formed; operations outside any transaction (e.g. a [read]
    before any [start]) are ignored. *)

val same : t -> t -> bool
(** Stable identity: same process and same per-process index.  Use
    this instead of physical equality — transactions are rebuilt from
    the history on every check, so sharing is never preserved. *)

val precedes : t -> t -> bool
(** Real-time order: [t1] received its final [C]/[A] before [t2]
    invoked [start]. *)

val concurrent : t -> t -> bool
(** Neither precedes the other. *)

val is_finished : t -> bool
(** Committed or aborted. *)

val writes : t -> (Tm_type.var * int) list
(** The write set, last write per variable winning. *)

val pp : Format.formatter -> t -> unit
