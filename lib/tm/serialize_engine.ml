(* The variable store during serialization: a sorted association list,
   so it can be part of a hash-table key for memoization. *)
module Store = struct
  type t = (Tm_type.var * int) list

  let empty : t = []

  let read store x =
    Option.value (List.assoc_opt x store) ~default:Tm_type.initial_value

  let commit store writes =
    List.fold_left
      (fun acc (x, v) ->
        List.merge
          (fun (a, _) (b, _) -> Int.compare a b)
          (List.remove_assoc x acc) [ (x, v) ])
      store writes
end

module Int_set = Set.Make (Int)

(* Can transaction [txn] execute legally against [store]?  Simulates
   its operations: reads see the transaction's own earlier writes,
   otherwise the store. *)
let legal store txn =
  let rec go local = function
    | [] -> true
    | Transaction.Write_op (x, v) :: rest -> go ((x, v) :: local) rest
    | Transaction.Read_op (x, v) :: rest ->
        let expected =
          match List.assoc_opt x local with
          | Some w -> w
          | None -> Store.read store x
        in
        v = expected && go local rest
  in
  go [] txn.Transaction.ops

let search_rev ~precedes txns =
  let txns = Array.of_list txns in
  let count = Array.length txns in
  let visited : (Int_set.t * Store.t, unit) Hashtbl.t = Hashtbl.create 512 in
  let ready placed i =
    (not (Int_set.mem i placed))
    && (let ok = ref true in
        for j = 0 to count - 1 do
          if
            (not (Int_set.mem j placed))
            && j <> i
            && precedes txns.(j) txns.(i)
          then ok := false
        done;
        !ok)
  in
  let rec go placed store acc =
    if Int_set.cardinal placed = count then Some acc
    else if Hashtbl.mem visited (placed, store) then None
    else begin
      Hashtbl.add visited (placed, store) ();
      let try_txn i =
        if not (ready placed i) then None
        else
          let txn = txns.(i) in
          if not (legal store txn) then None
          else
            let placed' = Int_set.add i placed in
            let acc' = txn :: acc in
            (* Enumerate the completion: committed transactions apply
               their writes; commit-pending ones may go either way;
               aborted and live ones never commit. *)
            let as_committed () =
              go placed' (Store.commit store (Transaction.writes txn)) acc'
            in
            let as_aborted () = go placed' store acc' in
            match txn.Transaction.status with
            | Transaction.Committed -> as_committed ()
            | Transaction.Aborted | Transaction.Live -> as_aborted ()
            | Transaction.Commit_pending -> begin
                match as_committed () with
                | Some _ as result -> result
                | None -> as_aborted ()
              end
      in
      List.find_map try_txn (List.init count (fun i -> i))
    end
  in
  go Int_set.empty Store.empty []

let search ~precedes txns =
  Option.map List.rev (search_rev ~precedes txns)
