(** The TM adversaries of Sections 4.1 and 5.3.

    {b The local-progress adversary} (Section 4.1, after
    Bushkov–Guerraoui–Kapalka 2012): a three-step strategy over two
    processes that defeats local progress against any opaque TM —

    + {e Step 1}: [p1] starts a transaction and reads [x], retrying on
      abort;
    + {e Step 2}: [p2] runs a full conflicting transaction
      (start, read [x], write [x := v' + 1], tryC), retrying on abort,
      until it commits;
    + {e Step 3}: [p1] tries to finish its — now doomed — transaction
      (write [x := v'' + 1], tryC); on abort the adversary returns to
      Step 1; a commit would end the game (and, against an opaque TM,
      never happens).

    The set of histories this strategy produces is the adversary set
    [F1] of Corollary 4.6; every history it produces begins with
    [start_1].  {!local_progress_adversary} with [~swap:true] plays
    the process-swapped twin, producing [F2] (histories beginning with
    [start_2]); [F1 ∩ F2 = ∅], hence [Gmax = ∅] and Corollary 4.6.

    {b The three-way adversary} (Section 5.3): processes [p1 p2 p3]
    repeatedly start same-index transactions concurrently, wait until
    {e all three} start responses arrived, then invoke [tryC]
    concurrently — triggering the timestamp rule of [S'], so every
    implementation of [S'] must abort them all, forever: (1,3)-freedom
    excludes [S']. *)

open Slx_sim

val local_progress_adversary :
  ?swap:bool -> unit -> (Tm_type.invocation, Tm_type.response) Driver.t
(** The Section 4.1 strategy; [swap] exchanges the roles of [p1] and
    [p2] (default [false]).  A 2-process driver. *)

val run_local_progress :
  ?swap:bool ->
  factory:(Tm_type.invocation, Tm_type.response) Runner.factory ->
  max_steps:int ->
  unit ->
  (Tm_type.invocation, Tm_type.response) Run_report.t

val alternating_starts :
  unit -> (Tm_type.invocation, Tm_type.response) Driver.t
(** The mutual-abort adversary for latest-starter TMs
    ({!Mutual_abort_tm}): after two opening [start]s it cycles
    [p1 tryC; p1 start; p2 tryC; p2 start], so each commit attempt
    finds the other process freshly started.  Witnesses that
    obstruction-freedom does not imply lock-freedom. *)

val run_alternating_starts :
  factory:(Tm_type.invocation, Tm_type.response) Runner.factory ->
  max_steps:int ->
  (Tm_type.invocation, Tm_type.response) Run_report.t

val three_way_adversary :
  unit -> (Tm_type.invocation, Tm_type.response) Driver.t
(** The Section 5.3 strategy; a 3-process driver. *)

val run_three_way :
  factory:(Tm_type.invocation, Tm_type.response) Runner.factory ->
  max_steps:int ->
  (Tm_type.invocation, Tm_type.response) Run_report.t

val commits : Tm_type.history -> (Slx_history.Proc.t * int) list
(** Commit counts per process, for inspecting adversary outcomes. *)
