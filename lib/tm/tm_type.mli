(** The transactional memory object type.

    Processes in a TM implementation can invoke (Section 4.1):
    - [start]        — start a new transaction; returns [ok] or an
                       abort event [A];
    - [x.write(v)]   — write [v] to transactional variable [x];
                       returns [ok] or [A];
    - [x.read]       — read a transactional variable; returns a value
                       [v] or [A];
    - [tryC]         — request commit; returns a commit event [C] or
                       [A].

    “In TM implementations requiring that each operation returns a
    response is not enough […]  To make progress transactions should
    be able to eventually commit.  Therefore, the set of good events is
    restricted to commit events.”  Hence [good] accepts only
    {!response.Committed}. *)

type var = int
(** A transactional variable, identified by a small integer. *)

type invocation =
  | Start               (** [start()]: begin a transaction. *)
  | Read of var         (** [x.read()]. *)
  | Write of var * int  (** [x.write(v)]. *)
  | Try_commit          (** [tryC()]. *)

type response =
  | Ok           (** [ok]: a successful start or write. *)
  | Val of int   (** A value returned by a read. *)
  | Committed    (** The commit event [C]. *)
  | Aborted      (** The abort event [A] — may answer any operation. *)

val good : response -> bool
(** [GTp = {C}]: only commits are progress. *)

val equal_invocation : invocation -> invocation -> bool
val equal_response : response -> response -> bool

val pp_invocation : Format.formatter -> invocation -> unit
val pp_response : Format.formatter -> response -> unit

type history = (invocation, response) Slx_history.History.t
(** TM histories. *)

val pp_history : Format.formatter -> history -> unit

val initial_value : int
(** All transactional variables start at this value ([0]). *)
