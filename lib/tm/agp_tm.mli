(** Algorithm AGP (Guerraoui–Kapalka): the lock-free versioned-CAS TM.

    [I(1,2)] without the timestamp rule: a single compare-and-swap
    object holds a version number and all variable values; a
    transaction copies it at [start], works locally, and commits by
    CASing in the next version.  A failed CAS means some other
    transaction committed — so commits never stop system-wide, giving
    (1,n)-freedom (lock-freedom in commits), the strongest
    (l,k)-freedom property implementable with opacity (Theorem 5.3,
    positive half, via [Fraser 2003] / [Guerraoui–Kapalka 2010]). *)

val factory :
  vars:int ->
  (Tm_type.invocation, Tm_type.response) Slx_sim.Runner.factory
