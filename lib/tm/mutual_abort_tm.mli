(** An obstruction-free — but not lock-free — opaque TM.

    AGP ({!Agp_tm}) sits at (1,n)-freedom: some transaction always
    wins the publishing CAS.  This TM shows the other classical point
    of the TM liveness landscape, in the spirit of DSTM's aggressive
    contention management (Herlihy–Luchangco–Moir–Scherer, the paper's
    [21]): a shared {e writer} register is overwritten at every
    [start], and [tryC] aborts unless the caller is still the latest
    starter.  Two processes that keep starting transactions into each
    other abort {e each other} forever — mutual abort, no system-wide
    progress — so lock-freedom ((1,2)-freedom) fails, witnessed by
    {!Tm_adversary.run_alternating_starts}.  A transaction running
    without step contention still commits: (1,1)-freedom
    (obstruction-freedom) holds.  Publication still goes through the
    versioned CAS, so opacity is preserved. *)

val factory :
  vars:int ->
  (Tm_type.invocation, Tm_type.response) Slx_sim.Runner.factory
