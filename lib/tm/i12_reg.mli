(** Algorithm 1 with the snapshot assumption discharged.

    {!I12} takes the paper at its word and uses an {e atomic} snapshot
    object [R] (one step per scan) as a base object.  This variant
    replaces it with {!Slx_objects.Snapshot_alg} — the wait-free
    snapshot constructed from single-writer registers (Afek et al.) —
    so the only remaining non-register base object is the
    compare-and-swap [C].  Scans and updates now take many steps,
    changing the interleavings an adversary can produce but none of the
    Lemma 5.4 guarantees; the test suite re-runs the I(1,2)
    experiments against this factory to confirm. *)

val factory :
  vars:int ->
  (Tm_type.invocation, Tm_type.response) Slx_sim.Runner.factory
