type var = int

type invocation = Start | Read of var | Write of var * int | Try_commit

type response = Ok | Val of int | Committed | Aborted

let good = function Committed -> true | Ok | Val _ | Aborted -> false

let equal_invocation (a : invocation) b = a = b
let equal_response (a : response) b = a = b

let pp_invocation fmt = function
  | Start -> Format.pp_print_string fmt "start"
  | Read x -> Format.fprintf fmt "x%d.read" x
  | Write (x, v) -> Format.fprintf fmt "x%d.write(%d)" x v
  | Try_commit -> Format.pp_print_string fmt "tryC"

let pp_response fmt = function
  | Ok -> Format.pp_print_string fmt "ok"
  | Val v -> Format.fprintf fmt "v%d" v
  | Committed -> Format.pp_print_string fmt "C"
  | Aborted -> Format.pp_print_string fmt "A"

type history = (invocation, response) Slx_history.History.t

let pp_history fmt h =
  Slx_history.History.pp ~pp_inv:pp_invocation ~pp_res:pp_response fmt h

let initial_value = 0
