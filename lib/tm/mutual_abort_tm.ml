open Slx_base_objects

type local = {
  mutable in_txn : bool;
  mutable version : int;
  mutable oldval : int list;
  mutable values : int array;
}

let factory ~vars : _ Slx_sim.Runner.factory =
 fun ~n ->
  let c = Cas.make (1, List.init vars (fun _ -> Tm_type.initial_value)) in
  (* The last process to have started a transaction; anyone else's
     commit attempt is aborted. *)
  let writer = Register.make 0 in
  let locals =
    Array.init (n + 1) (fun _ ->
        { in_txn = false; version = 0; oldval = []; values = [||] })
  in
  fun ~proc inv ->
    let st = locals.(proc) in
    match inv with
    | Tm_type.Start ->
        Register.write writer proc;
        let version, oldval = Cas.read c in
        st.version <- version;
        st.oldval <- oldval;
        st.values <- Array.of_list oldval;
        st.in_txn <- true;
        Tm_type.Ok
    | Tm_type.Read x ->
        if st.in_txn && x >= 0 && x < vars then Tm_type.Val st.values.(x)
        else Tm_type.Aborted
    | Tm_type.Write (x, v) ->
        if st.in_txn && x >= 0 && x < vars then begin
          st.values.(x) <- v;
          Tm_type.Ok
        end
        else Tm_type.Aborted
    | Tm_type.Try_commit ->
        if not st.in_txn then Tm_type.Aborted
        else begin
          st.in_txn <- false;
          if Register.read writer <> proc then Tm_type.Aborted
          else if
            Cas.compare_and_swap c
              ~expected:(st.version, st.oldval)
              ~desired:(st.version + 1, Array.to_list st.values)
          then Tm_type.Committed
          else Tm_type.Aborted
        end
