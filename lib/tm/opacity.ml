open Slx_history

let serialization txns =
  Serialize_engine.search ~precedes:Transaction.precedes txns

let serializable txns = Option.is_some (serialization txns)
let check_final h = serializable (Transaction.of_history h)

let check h = List.for_all check_final (History.prefixes h)

let property = Slx_safety.Property.make ~name:"opacity" check

let property_final =
  Slx_safety.Property.make ~name:"final-state-opacity" check_final
