open Slx_history

type status = Committed | Aborted | Commit_pending | Live

type op = Read_op of Tm_type.var * int | Write_op of Tm_type.var * int

type t = {
  proc : Proc.t;
  index : int;
  start_inv : int;
  start_res : int option;
  finished : int option;
  tryc_inv : int option;
  ops : op list;
  status : status;
}

(* Per-process parser state: the transaction being built, if any, plus
   the invocation awaiting its response. *)
type building = {
  b_index : int;
  b_start_inv : int;
  mutable b_start_res : int option;
  mutable b_tryc_inv : int option;
  mutable b_rev_ops : op list;
  mutable b_pending : (int * Tm_type.invocation) option;
}

let of_history h =
  let finished_txns = ref [] in
  let building : (Proc.t, building) Hashtbl.t = Hashtbl.create 8 in
  let next_index : (Proc.t, int) Hashtbl.t = Hashtbl.create 8 in
  let close p b ~finished ~status =
    Hashtbl.remove building p;
    finished_txns :=
      {
        proc = p;
        index = b.b_index;
        start_inv = b.b_start_inv;
        start_res = b.b_start_res;
        finished;
        tryc_inv = b.b_tryc_inv;
        ops = List.rev b.b_rev_ops;
        status;
      }
      :: !finished_txns
  in
  let handle i e =
    match e with
    | Event.Invocation (p, inv) -> begin
        match Hashtbl.find_opt building p, inv with
        | None, Tm_type.Start ->
            let index =
              Option.value (Hashtbl.find_opt next_index p) ~default:1
            in
            Hashtbl.replace next_index p (index + 1);
            Hashtbl.replace building p
              {
                b_index = index;
                b_start_inv = i;
                b_start_res = None;
                b_tryc_inv = None;
                b_rev_ops = [];
                b_pending = Some (i, Tm_type.Start);
              }
        | None, (Tm_type.Read _ | Tm_type.Write _ | Tm_type.Try_commit) ->
            (* An operation outside a transaction: ignored. *)
            ()
        | Some b, inv ->
            if inv = Tm_type.Try_commit then b.b_tryc_inv <- Some i;
            b.b_pending <- Some (i, inv)
      end
    | Event.Response (p, res) -> begin
        match Hashtbl.find_opt building p with
        | None -> ()
        | Some b -> begin
            let pending = b.b_pending in
            b.b_pending <- None;
            match res, pending with
            | Tm_type.Aborted, _ -> close p b ~finished:(Some i) ~status:Aborted
            | Tm_type.Committed, _ ->
                close p b ~finished:(Some i) ~status:Committed
            | Tm_type.Ok, Some (_, Tm_type.Start) -> b.b_start_res <- Some i
            | Tm_type.Ok, Some (_, Tm_type.Write (x, v)) ->
                b.b_rev_ops <- Write_op (x, v) :: b.b_rev_ops
            | Tm_type.Val v, Some (_, Tm_type.Read x) ->
                b.b_rev_ops <- Read_op (x, v) :: b.b_rev_ops
            | (Tm_type.Ok | Tm_type.Val _), _ ->
                (* A response not matching the pending invocation:
                   ill-formed protocol use; ignored. *)
                ()
          end
      end
    | Event.Crash _ -> ()
  in
  List.iteri handle (History.to_list h);
  let open_txns =
    Hashtbl.fold
      (fun p b acc ->
        {
          proc = p;
          index = b.b_index;
          start_inv = b.b_start_inv;
          start_res = b.b_start_res;
          finished = None;
          tryc_inv = b.b_tryc_inv;
          ops = List.rev b.b_rev_ops;
          status = (if b.b_tryc_inv <> None then Commit_pending else Live);
        }
        :: acc)
      building []
  in
  List.sort
    (fun t1 t2 -> Int.compare t1.start_inv t2.start_inv)
    (!finished_txns @ open_txns)

let same t1 t2 = Proc.equal t1.proc t2.proc && t1.index = t2.index

let precedes t1 t2 =
  match t1.finished with None -> false | Some f -> f < t2.start_inv

let concurrent t1 t2 = (not (precedes t1 t2)) && not (precedes t2 t1)

let is_finished t =
  match t.status with
  | Committed | Aborted -> true
  | Commit_pending | Live -> false

let writes t =
  List.fold_left
    (fun acc op ->
      match op with
      | Write_op (x, v) -> (x, v) :: List.remove_assoc x acc
      | Read_op _ -> acc)
    [] t.ops
  |> List.sort (fun (x, _) (y, _) -> Int.compare x y)

let pp fmt t =
  let status_str =
    match t.status with
    | Committed -> "C"
    | Aborted -> "A"
    | Commit_pending -> "tryC?"
    | Live -> "live"
  in
  Format.fprintf fmt "T(%a,#%d,%s)" Proc.pp t.proc t.index status_str
