(** Opacity (Guerraoui & Kapalka, PPoPP 2008) — the TM safety property
    of Corollaries 4.6 and 4.11 and of Section 5.

    “History [h] ensures opacity if for every finite prefix [h'] of [h]
    there exists a sequential history [s] such that [s] is equivalent
    to some completion [comp(h')] of [h'], [s] preserves the real time
    order of [comp(h')], and [s] respects the sequential specification
    [Seq].” (Section 4.1.)

    The checker searches for a serialization order of the history's
    transactions such that:
    - the real-time order of transactions is preserved;
    - every transaction — {e aborted ones included} — reads values
      consistent with the writes of the committed transactions
      serialized before it (deferred-update semantics: aborted and live
      transactions' writes are invisible);
    - completions are enumerated: a commit-pending transaction may be
      completed with [C] or [A]; live transactions are aborted.

    The search memoizes on (serialized-set, variable store), and the
    real-time order prunes heavily, so histories from bounded runs
    check quickly despite the worst-case exponential bound. *)

val serializable : Transaction.t list -> bool
(** Whether the transaction set admits a legal serialization as
    described above. *)

val serialization : Transaction.t list -> Transaction.t list option
(** A witness order, if one exists (the committed-completion choice is
    not reported). *)

val check_final : Tm_type.history -> bool
(** Final-state opacity: the history's transactions are serializable. *)

val check : Tm_type.history -> bool
(** Full opacity: every prefix of the history passes {!check_final}.
    (Final-state opacity is not prefix-closed in general — a read that
    becomes justifiable only by a later commit-pending transaction can
    make a bad prefix look good — so this is the faithful, quadratic
    check.) *)

val property : Tm_type.history Slx_safety.Property.t
(** {!check} packaged, named ["opacity"]. *)

val property_final : Tm_type.history Slx_safety.Property.t
(** {!check_final} packaged, named ["final-state-opacity"] — the cheap
    variant used on long benchmark histories. *)
