(** Algorithm 1 of the paper: the TM implementation [I(1,2)].

    A modification of algorithm AGP from [Guerraoui–Kapalka,
    "Principles of Transactional Memory"] whose purpose is to show
    that (1,2)-freedom does not exclude the Section 5.3 property [S']
    (Lemma 5.4).

    Shared state: a single compare-and-swap object [C] holding a
    version number and the value of every transactional variable, and
    a snapshot object [R] of [n] registers holding per-process
    timestamps.

    Per the paper's pseudocode, for process [p_i]:
    - [start()]: increment the local timestamp, publish it in [R[i]],
      copy [C] (version and values) into local memory, return [ok];
    - [x.read()] / [x.write(v)]: purely local (no atomic step);
    - [tryC()]: scan [R]; if at least three processes (self included)
      have a timestamp [>=] the local one, abort — this is the
      timestamp rule enforcing requirement 2 of [S']; otherwise
      compare-and-swap [C] from the copied [(version, values)] to
      [(version + 1, new values)], committing on success and aborting
      on failure — the version numbers ensure opacity.

    With two processes the timestamp test can count at most two, so it
    never fires and the algorithm degenerates to AGP — which is why it
    is (1,2)-free but, by design, aborts any three same-index fully
    concurrent transactions. *)

val factory :
  vars:int ->
  (Tm_type.invocation, Tm_type.response) Slx_sim.Runner.factory
(** A fresh instance over transactional variables [0 .. vars - 1].
    Protocol misuse (e.g. [read] outside a transaction) answers
    [Aborted]. *)
