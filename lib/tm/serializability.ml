(* Only transactions that may commit participate; aborted and live
   transactions are invisible to serializability. *)
let committable txns =
  List.filter
    (fun t ->
      match t.Transaction.status with
      | Transaction.Committed | Transaction.Commit_pending -> true
      | Transaction.Aborted | Transaction.Live -> false)
    txns

let strict h =
  let txns = committable (Transaction.of_history h) in
  Option.is_some (Serialize_engine.search ~precedes:Transaction.precedes txns)

let program_order t1 t2 =
  Slx_history.Proc.equal t1.Transaction.proc t2.Transaction.proc
  && t1.Transaction.start_inv < t2.Transaction.start_inv

let plain h =
  let txns = committable (Transaction.of_history h) in
  Option.is_some (Serialize_engine.search ~precedes:program_order txns)

let property_strict =
  Slx_safety.Property.make ~name:"strict-serializability" strict

let property_plain = Slx_safety.Property.make ~name:"serializability" plain
