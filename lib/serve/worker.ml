module Json = Slx_obs.Json
module Progress = Slx_obs.Progress

let cancelled = ref false

let reply line =
  print_string line;
  print_newline ();
  flush stdout

let handle_line line =
  match Json.parse line with
  | Error e ->
      reply
        (Printf.sprintf "{\"lease\": -1, \"result\": %s}"
           (Queries.error_result ("bad task line: " ^ e)))
  | Ok j -> begin
      let lease =
        Option.value ~default:(-1) (Option.bind (Json.member "lease" j) Json.int)
      in
      let result =
        match
          ( Option.map Queries.spec_of_json (Json.member "spec" j),
            Option.map Queries.mode_of_json (Json.member "task" j) )
        with
        | Some (Ok spec), Some (Ok mode) ->
            (* Heartbeats ride the result pipe; the coordinator keys
               them to this lease because a worker runs one task at a
               time. *)
            let progress =
              Progress.create ~interval:0.2 ~json:true ~out:stdout ()
            in
            Queries.run_task ~cancel:(fun () -> !cancelled) ~progress spec mode
        | Some (Error e), _ | _, Some (Error e) -> Queries.error_result e
        | None, _ -> Queries.error_result "task without spec"
        | _, None -> Queries.error_result "task without mode"
      in
      reply (Printf.sprintf "{\"lease\": %d, \"result\": %s}" lease result);
      (* Consume the cancel flag only after the reply: a SIGUSR1 can
         land while the task line is still being read or parsed (slice
         tasks run to tens of megabytes of JSON), and a reset at task
         start would erase it.  The dual race — a stale signal
         cancelling the next task instantly — is self-healing: the
         coordinator re-leases a task answered "cancelled" when it
         never cancelled its lease. *)
      cancelled := false
    end

let main () =
  Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> cancelled := true));
  (* The coordinator owns the terminal's SIGINT story; a worker only
     stops on stdin EOF or an explicit kill. *)
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  (try
     while true do
       handle_line (input_line stdin)
     done
   with End_of_file -> ());
  0
