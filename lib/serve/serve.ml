module Json = Slx_obs.Json
module Store = Slx_store.Store

(* ------------------------------------------------------------------ *)
(* State.                                                              *)

type worker = {
  w_idx : int;
  mutable w_pid : int;
  mutable w_in : Unix.file_descr;  (* coordinator -> worker: task lines *)
  mutable w_out : Unix.file_descr;  (* worker -> coordinator: results *)
  mutable w_acc : Buffer.t;  (* partial line from w_out *)
  mutable w_lease : int option;
}

type lease = {
  l_id : int;
  l_query : int;
  l_mode : Queries.mode;
  l_index : int;  (* slice position, for lex-correct witness choice *)
  mutable l_cancelled : bool;
}

type qstate = Queued | Running | Done of string | Failed of string | Timeout

type query = {
  q_id : int;
  q_spec : Queries.spec;
  q_key : string;
  q_qid : int;
  q_created : float;
  mutable q_state : qstate;
  mutable q_pending : int;  (* outstanding leases *)
  mutable q_slices : (int * Json.t) list;  (* slice index -> result *)
  mutable q_base : Store.frontier option;  (* added exactly once *)
  mutable q_base_depth : int;
  mutable q_base_steps : int;  (* split/stored steps feeding r_steps *)
  mutable q_source : string;
  mutable q_deadline : float option;
  mutable q_waiters : Unix.file_descr list;
  mutable q_last_hb : string option;
  mutable q_steps : int;
}

type client = { c_fd : Unix.file_descr; c_acc : Buffer.t }

type t = {
  store : Store.t;
  listen_fd : Unix.file_descr;
  workers : worker array;
  leases : (int, lease) Hashtbl.t;
  queries : (int, query) Hashtbl.t;
  inflight : (string, int) Hashtbl.t;  (* dedup key -> query id *)
  mutable pending : lease list;  (* FIFO; re-leases go to the front *)
  mutable clients : client list;
  mutable next_query : int;
  mutable next_lease : int;
  mutable dedup_hits : int;
  mutable re_leases : int;
  mutable timeouts : int;
  mutable running : bool;
}

(* ------------------------------------------------------------------ *)
(* Small IO helpers.                                                   *)

let write_all fd s =
  let len = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < len then
      let n = Unix.write fd b off (len - off) in
      go (off + n)
  in
  go 0

(* Streamed waiters can die mid-query; a failed write just drops the
   waiter rather than the coordinator. *)
let try_write fd s =
  match write_all fd s with () -> true | exception Unix.Unix_error _ -> false

let respond ?(status = "200 OK") fd body =
  let body = body ^ "\n" in
  ignore
    (try_write fd
       (Printf.sprintf
          "HTTP/1.1 %s\r\nContent-Type: application/json\r\n\
           Content-Length: %d\r\nConnection: close\r\n\r\n%s"
          status (String.length body) body));
  (try Unix.close fd with Unix.Unix_error _ -> ())

let stream_header fd =
  try_write fd
    "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
     Connection: close\r\n\r\n"

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Workers.                                                            *)

let spawn_worker idx =
  let task_r, task_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  Unix.set_close_on_exec task_w;
  Unix.set_close_on_exec res_r;
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "worker" |]
      task_r res_w Unix.stderr
  in
  Unix.close task_r;
  Unix.close res_w;
  {
    w_idx = idx;
    w_pid = pid;
    w_in = task_w;
    w_out = res_r;
    w_acc = Buffer.create 256;
    w_lease = None;
  }

let respawn_worker w =
  close_quiet w.w_in;
  close_quiet w.w_out;
  (try ignore (Unix.waitpid [ Unix.WNOHANG ] w.w_pid)
   with Unix.Unix_error _ -> ());
  let fresh = spawn_worker w.w_idx in
  w.w_pid <- fresh.w_pid;
  w.w_in <- fresh.w_in;
  w.w_out <- fresh.w_out;
  w.w_acc <- Buffer.create 256;
  w.w_lease <- None

let send_task t w lease =
  let line =
    Printf.sprintf "{\"lease\": %d, \"spec\": %s, \"task\": %s}\n" lease.l_id
      (Queries.spec_to_json
         (Hashtbl.find t.queries lease.l_query).q_spec)
      (Queries.mode_to_json lease.l_mode)
  in
  match write_all w.w_in line with
  | () -> w.w_lease <- Some lease.l_id
  | exception Unix.Unix_error _ ->
      (* Dead pipe: the EOF path will re-lease and respawn. *)
      t.pending <- lease :: t.pending

let dispatch t =
  Array.iter
    (fun w ->
      if w.w_lease = None then
        match t.pending with
        | [] -> ()
        | lease :: rest ->
            t.pending <- rest;
            send_task t w lease)
    t.workers

(* ------------------------------------------------------------------ *)
(* Query lifecycle.                                                    *)

let now () = Unix.gettimeofday ()

let finalize t q result_json ~source =
  q.q_state <- Done result_json;
  q.q_source <- source;
  Hashtbl.remove t.inflight q.q_key;
  let line =
    Printf.sprintf
      "{\"id\": %d, \"state\": \"done\", \"source\": %S, \"elapsed_s\": \
       %.3f, \"result\": %s}"
      q.q_id source (now () -. q.q_created) result_json
  in
  List.iter
    (fun fd ->
      ignore (try_write fd (line ^ "\n"));
      close_quiet fd)
    q.q_waiters;
  q.q_waiters <- []

let fail t q msg =
  q.q_state <- Failed msg;
  Hashtbl.remove t.inflight q.q_key;
  let line =
    Printf.sprintf "{\"id\": %d, \"state\": \"failed\", \"error\": %S}" q.q_id
      msg
  in
  List.iter
    (fun fd ->
      ignore (try_write fd (line ^ "\n"));
      close_quiet fd)
    q.q_waiters;
  q.q_waiters <- []

(* Re-serialize a parsed JSON value (worker results are re-emitted
   into status payloads and the store path).  Integral numbers print
   as ints — every counter in the protocol is one. *)
let rec json_str = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        string_of_int (int_of_float f)
      else Printf.sprintf "%g" f
  | Json.Str s -> Printf.sprintf "%S" s
  | Json.Arr xs -> "[" ^ String.concat ", " (List.map json_str xs) ^ "]"
  | Json.Obj kvs ->
      "{"
      ^ String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k (json_str v)) kvs)
      ^ "}"

let new_lease t q mode index =
  let lease =
    {
      l_id = t.next_lease;
      l_query = q.q_id;
      l_mode = mode;
      l_index = index;
      l_cancelled = false;
    }
  in
  t.next_lease <- t.next_lease + 1;
  Hashtbl.replace t.leases lease.l_id lease;
  q.q_pending <- q.q_pending + 1;
  lease

(* Partition seeds into at most [slots] contiguous chunks, preserving
   the first-visit order the lex-least-witness argument depends on. *)
let chunk_seeds ~slots seeds =
  let n = List.length seeds in
  let slots = max 1 (min slots n) in
  let per = (n + slots - 1) / slots in
  let rec go acc i = function
    | [] -> List.rev acc
    | rest ->
        let rec take k xs =
          if k = 0 then ([], xs)
          else
            match xs with
            | [] -> ([], [])
            | x :: tl ->
                let a, b = take (k - 1) tl in
                (x :: a, b)
        in
        let chunk, rest = take per rest in
        go ((i, chunk) :: acc) (i + 1) rest
  in
  go [] 0 seeds

let rec start_slices t q ~base_depth ~(base : Store.frontier) ~base_steps
    ~source =
  q.q_base <- Some base;
  q.q_base_depth <- base_depth;
  q.q_base_steps <- base_steps;
  q.q_source <- source;
  match base.Store.f_seeds with
  | [] ->
      (* No cut leaves: the shallow tree was already complete, so its
         totals are the full-depth answer. *)
      let result =
        match q.q_spec.Queries.sp_kind with
        | `Explore ->
            Printf.sprintf
              "{\"outcome\": \"ok\", \"runs\": %d, \"digest\": %d, \
               \"steps\": %d}"
              base.Store.f_base_runs base.Store.f_base_digest q.q_steps
        | `Live ->
            Printf.sprintf
              "{\"outcome\": \"no_fair_cycle\", \"runs\": %d, \"steps\": %d}"
              base.Store.f_base_runs q.q_steps
      in
      store_final t q result;
      finalize t q result ~source
  | seeds ->
      let chunks = chunk_seeds ~slots:(Array.length t.workers) seeds in
      List.iter
        (fun (i, chunk) ->
          let lease = new_lease t q (Queries.Slice (base_depth, chunk)) i in
          t.pending <- t.pending @ [ lease ])
        chunks;
      dispatch t

(* Store the final verdict of a computed (non-warm) query, stitching
   the slice frontiers onto the base so the record resumes later runs. *)
and store_final t q result_json =
  match (Queries.qid q.q_spec, Json.parse result_json) with
  | Error _, _ | _, Error _ -> ()
  | Ok _, Ok j -> begin
      let sp = q.q_spec in
      let outcome =
        Option.value ~default:""
          (Option.bind (Json.member "outcome" j) Json.str)
      in
      let int_of k =
        Option.value ~default:0 (Option.bind (Json.member k j) Json.int)
      in
      let codes k =
        List.filter_map Json.int
          (Json.to_list (Option.value ~default:Json.Null (Json.member k j)))
      in
      let frontier =
        (* A full-task result carries its own frontier; a sliced
           result's is stitched in [combine].  Either way it arrives
           under "frontier". *)
        Option.bind (Json.member "frontier" j) Queries.frontier_of_json
      in
      let verdict =
        match outcome with
        | "ok" -> Some (Store.V_ok (int_of "runs"))
        | "counterexample" -> Some (Store.V_counterexample (codes "witness"))
        | "no_fair_cycle" -> Some Store.V_no_fair_cycle
        | "lasso" ->
            Some (Store.V_lasso { stem = codes "stem"; cycle = codes "cycle" })
        | _ -> None
      in
      match verdict with
      | None -> ()
      | Some v ->
          Store.add t.store
            {
              Store.r_qid = q.q_qid;
              r_depth = sp.Queries.sp_depth;
              r_max_period = sp.Queries.sp_max_period;
              r_pump_ticks = sp.Queries.sp_pump;
              r_runs = int_of "runs";
              r_steps = q.q_base_steps + q.q_steps;
              r_verdict = v;
              r_frontier = frontier;
            };
          (match q.q_source with
          | "resumed" -> Store.bump t.store (`Resume q.q_base_steps)
          | _ -> Store.bump t.store `Cold);
          Store.commit t.store
    end

let start_full t q ~source =
  q.q_source <- source;
  let lease = new_lease t q Queries.Full 0 in
  t.pending <- t.pending @ [ lease ];
  dispatch t

(* Plan a freshly created query: warm, resume-and-slice, split-and-
   slice, or a single full task. *)
let plan t q =
  let sp = q.q_spec in
  Store.bump t.store `Query;
  let warm =
    match Store.find t.store ~qid:q.q_qid ~depth:sp.Queries.sp_depth with
    | Some r -> begin
        match Queries.warm_result sp r with
        | Some result ->
            Store.bump t.store (`Warm r.Store.r_steps);
            Store.commit t.store;
            finalize t q result ~source:"warm";
            true
        | None ->
            Store.bump t.store `Rejected;
            false
      end
    | None -> false
  in
  if not warm then begin
    q.q_state <- Running;
    let resumable =
      match Store.best_resumable t.store ~qid:q.q_qid ~depth:sp.Queries.sp_depth with
      | Some r
        when sp.Queries.sp_kind = `Explore
             || (r.Store.r_pump_ticks = sp.Queries.sp_pump
                && r.Store.r_max_period
                   >= min sp.Queries.sp_max_period (r.Store.r_depth / 2)) -> (
          match r.Store.r_frontier with
          | Some f -> Some (r.Store.r_depth, f, r.Store.r_steps)
          | None -> None)
      | _ -> None
    in
    match resumable with
    | Some (base_depth, base, base_steps) ->
        start_slices t q ~base_depth ~base ~base_steps ~source:"resumed"
    | None ->
        if sp.Queries.sp_depth >= 4 then begin
          (* Split pass: cut a frontier two levels up, then shard. *)
          q.q_source <- "split";
          let lease =
            new_lease t q (Queries.Split (sp.Queries.sp_depth - 2)) 0
          in
          t.pending <- t.pending @ [ lease ];
          dispatch t
        end
        else start_full t q ~source:"full"
  end

(* ------------------------------------------------------------------ *)
(* Combining slice results.                                            *)

let combine t q =
  let slices = List.sort compare q.q_slices in
  let outcome_of j =
    Option.value ~default:"" (Option.bind (Json.member "outcome" j) Json.str)
  in
  let failing =
    List.find_opt
      (fun (_, j) ->
        match outcome_of j with
        | "counterexample" | "lasso" -> true
        | _ -> false)
      slices
  in
  match failing with
  | Some (_, j) -> begin
      (* The lowest-indexed failing slice: its witness is the
         lex-least failing run of the whole tree, because slices are
         contiguous runs of the first-visit seed order. *)
      let codes k =
        List.filter_map Json.int
          (Json.to_list (Option.value ~default:Json.Null (Json.member k j)))
      in
      let pp k =
        let vals =
          List.filter_map Json.str
            (Json.to_list (Option.value ~default:Json.Null (Json.member k j)))
        in
        "[" ^ String.concat ", " (List.map (Printf.sprintf "%S") vals) ^ "]"
      in
      let result =
        match outcome_of j with
        | "counterexample" ->
            Printf.sprintf
              "{\"outcome\": \"counterexample\", \"witness\": %s, \
               \"witness_pp\": %s, \"steps\": %d}"
              ("["
              ^ String.concat ", " (List.map string_of_int (codes "witness"))
              ^ "]")
              (pp "witness_pp") q.q_steps
        | _ ->
            Printf.sprintf
              "{\"outcome\": \"lasso\", \"stem\": %s, \"cycle\": %s, \
               \"stem_pp\": %s, \"cycle_pp\": %s, \"period\": %d, \
               \"steps\": %d}"
              ("["
              ^ String.concat ", " (List.map string_of_int (codes "stem"))
              ^ "]")
              ("["
              ^ String.concat ", " (List.map string_of_int (codes "cycle"))
              ^ "]")
              (pp "stem_pp") (pp "cycle_pp")
              (Option.value ~default:0
                 (Option.bind (Json.member "period" j) Json.int))
              q.q_steps
      in
      store_final t q result;
      finalize t q result ~source:q.q_source
    end
  | None -> begin
      let base = Option.get q.q_base in
      let int_of j k =
        Option.value ~default:0 (Option.bind (Json.member k j) Json.int)
      in
      let runs =
        List.fold_left
          (fun acc (_, j) -> acc + int_of j "runs")
          base.Store.f_base_runs slices
      in
      let digest =
        List.fold_left
          (fun acc (_, j) -> acc + int_of j "digest")
          base.Store.f_base_digest slices
      in
      (* Stitch the deep frontier: slice bases sum onto the inherited
         base; seeds concatenate in slice order = first-visit order. *)
      let fronts =
        List.map
          (fun (_, j) ->
            Option.bind (Json.member "frontier" j) Queries.frontier_of_json)
          slices
      in
      let frontier =
        if List.for_all Option.is_some fronts then begin
          let fs = List.map Option.get fronts in
          Some
            {
              Store.f_base_runs =
                List.fold_left
                  (fun acc f -> acc + f.Store.f_base_runs)
                  base.Store.f_base_runs fs;
              f_base_digest =
                List.fold_left
                  (fun acc f -> acc + f.Store.f_base_digest)
                  base.Store.f_base_digest fs;
              f_seeds = List.concat_map (fun f -> f.Store.f_seeds) fs;
            }
        end
        else None
      in
      let result =
        match q.q_spec.Queries.sp_kind with
        | `Explore ->
            Printf.sprintf
              "{\"outcome\": \"ok\", \"runs\": %d, \"digest\": %d, \
               \"steps\": %d%s}"
              runs digest q.q_steps
              (match frontier with
              | Some f ->
                  Printf.sprintf ", \"frontier\": %s"
                    (Queries.frontier_to_json f)
              | None -> "")
        | `Live ->
            Printf.sprintf
              "{\"outcome\": \"no_fair_cycle\", \"runs\": %d, \"steps\": %d%s}"
              runs q.q_steps
              (match frontier with
              | Some f ->
                  Printf.sprintf ", \"frontier\": %s"
                    (Queries.frontier_to_json f)
              | None -> "")
      in
      store_final t q result;
      finalize t q result ~source:q.q_source
    end

(* ------------------------------------------------------------------ *)
(* Worker lines.                                                       *)

let rec handle_result t lease result_j =
  match Hashtbl.find_opt t.queries lease.l_query with
  | None -> ()
  | Some q ->
      q.q_steps <-
        q.q_steps
        + Option.value ~default:0
            (Option.bind (Json.member "steps" result_j) Json.int);
      if lease.l_cancelled || q.q_state <> Running then ()
      else begin
        q.q_pending <- q.q_pending - 1;
        let outcome =
          Option.value ~default:""
            (Option.bind (Json.member "outcome" result_j) Json.str)
        in
        match outcome with
        | "error" ->
            fail t q
              (Option.value ~default:"worker error"
                 (Option.bind (Json.member "message" result_j) Json.str))
        | "cancelled" ->
            (* We did not cancel it: a stray signal.  Re-lease. *)
            lease.l_cancelled <- true;
            let fresh = new_lease t q lease.l_mode lease.l_index in
            t.re_leases <- t.re_leases + 1;
            t.pending <- fresh :: t.pending;
            dispatch t
        | _ -> begin
            match lease.l_mode with
            | Queries.Full -> begin
                let raw = json_str result_j in
                store_final t q raw;
                finalize t q raw ~source:q.q_source
              end
            | Queries.Split base_depth -> begin
                match outcome with
                | "ok" | "no_fair_cycle" -> begin
                    match
                      Option.bind
                        (Json.member "frontier" result_j)
                        Queries.frontier_of_json
                    with
                    | Some base ->
                        start_slices t q ~base_depth ~base
                          ~base_steps:
                            (Option.value ~default:0
                               (Option.bind (Json.member "steps" result_j)
                                  Json.int))
                          ~source:"split"
                    | None ->
                        (* Persist was gated off in the engine (e.g. a
                           wide n): fall back to one full task. *)
                        start_full t q ~source:"full"
                  end
                | _ ->
                    (* A shallow violation's witness need not be the
                       full-depth lex-least one; recompute honestly. *)
                    start_full t q ~source:"full"
              end
            | Queries.Slice _ ->
                q.q_slices <- (lease.l_index, result_j) :: q.q_slices;
                if q.q_pending = 0 then combine t q
          end
      end

and handle_worker_line t w line =
  match Json.parse line with
  | Error _ -> ()
  | Ok j -> (
      match Option.bind (Json.member "lease" j) Json.int with
      | Some lid -> begin
          w.w_lease <- None;
          (match Hashtbl.find_opt t.leases lid with
          | Some lease -> (
              Hashtbl.remove t.leases lid;
              match Json.member "result" j with
              | Some r -> handle_result t lease r
              | None -> ())
          | None -> ());
          dispatch t
        end
      | None -> (
          (* A heartbeat: attribute it to the worker's current task. *)
          match w.w_lease with
          | None -> ()
          | Some lid -> (
              match Hashtbl.find_opt t.leases lid with
              | None -> ()
              | Some lease -> (
                  match Hashtbl.find_opt t.queries lease.l_query with
                  | None -> ()
                  | Some q ->
                      q.q_last_hb <- Some line;
                      let fwd =
                        Printf.sprintf
                          "{\"id\": %d, \"state\": \"running\", \
                           \"heartbeat\": %s}\n"
                          q.q_id line
                      in
                      q.q_waiters <-
                        List.filter
                          (fun fd -> try_write fd fwd)
                          q.q_waiters))))

let handle_worker_eof t w =
  (* The worker died (crash or kill): re-queue its lease at the front
     and put a fresh process in its slot. *)
  (match w.w_lease with
  | Some lid -> begin
      match Hashtbl.find_opt t.leases lid with
      | Some lease when not lease.l_cancelled -> begin
          match Hashtbl.find_opt t.queries lease.l_query with
          | Some q when q.q_state = Running ->
              Hashtbl.remove t.leases lid;
              let fresh = new_lease t q lease.l_mode lease.l_index in
              q.q_pending <- q.q_pending - 1;
              t.re_leases <- t.re_leases + 1;
              t.pending <- fresh :: t.pending
          | _ -> Hashtbl.remove t.leases lid
        end
      | Some _ -> Hashtbl.remove t.leases lid
      | None -> ()
    end
  | None -> ());
  respawn_worker w;
  dispatch t

(* ------------------------------------------------------------------ *)
(* Timeouts.                                                           *)

let cancel_query_workers t q =
  Array.iter
    (fun w ->
      match w.w_lease with
      | Some lid -> begin
          match Hashtbl.find_opt t.leases lid with
          | Some lease when lease.l_query = q.q_id ->
              lease.l_cancelled <- true;
              (try Unix.kill w.w_pid Sys.sigusr1
               with Unix.Unix_error _ -> ())
          | _ -> ()
        end
      | None -> ())
    t.workers;
  t.pending <-
    List.filter (fun lease -> lease.l_query <> q.q_id) t.pending

let check_deadlines t =
  let now = now () in
  Hashtbl.iter
    (fun _ q ->
      match (q.q_state, q.q_deadline) with
      | (Queued | Running), Some dl when now > dl ->
          t.timeouts <- t.timeouts + 1;
          cancel_query_workers t q;
          q.q_state <- Timeout;
          Hashtbl.remove t.inflight q.q_key;
          let line =
            Printf.sprintf "{\"id\": %d, \"state\": \"timeout\"}\n" q.q_id
          in
          List.iter
            (fun fd ->
              ignore (try_write fd line);
              close_quiet fd)
            q.q_waiters;
          q.q_waiters <- []
      | _ -> ())
    t.queries

(* ------------------------------------------------------------------ *)
(* HTTP.                                                               *)

let status_json q =
  let state, extra =
    match q.q_state with
    | Queued -> ("queued", "")
    | Running -> ("running", "")
    | Done r -> ("done", Printf.sprintf ", \"result\": %s" r)
    | Failed e -> ("failed", Printf.sprintf ", \"error\": %S" e)
    | Timeout -> ("timeout", "")
  in
  let hb =
    match q.q_last_hb with
    | Some h when q.q_state = Running ->
        Printf.sprintf ", \"heartbeat\": %s" h
    | _ -> ""
  in
  Printf.sprintf
    "{\"id\": %d, \"state\": %S, \"source\": %S, \"spec\": %s, \
     \"elapsed_s\": %.3f%s%s}"
    q.q_id state q.q_source
    (Queries.spec_to_json q.q_spec)
    (now () -. q.q_created) extra hb

let stats_json t =
  let c = Store.counters t.store in
  let h = Store.health t.store in
  let active =
    Hashtbl.fold
      (fun _ q acc -> match q.q_state with Queued | Running -> acc + 1 | _ -> acc)
      t.queries 0
  in
  let busy =
    Array.fold_left
      (fun acc w -> if w.w_lease <> None then acc + 1 else acc)
      0 t.workers
  in
  Printf.sprintf
    "{\"queries\": %d, \"active\": %d, \"dedup_hits\": %d, \"re_leases\": \
     %d, \"timeouts\": %d, \"workers\": %d, \"workers_busy\": %d, \
     \"store\": {\"path\": %S, \"records\": %d, \"queries\": %d, \
     \"warm_hits\": %d, \"resumes\": %d, \"colds\": %d, \"rejected\": %d, \
     \"steps_saved\": %d, \"created\": %b, \"invalidated\": %s, \
     \"records_dropped\": %d}}"
    (t.next_query - 1) active t.dedup_hits t.re_leases t.timeouts
    (Array.length t.workers) busy (Store.path t.store)
    (List.length (Store.records t.store))
    c.Store.c_queries c.Store.c_warm_hits c.Store.c_resumes c.Store.c_colds
    c.Store.c_rejected c.Store.c_steps_saved h.Store.h_created
    (match h.Store.h_invalidated with
    | None -> "null"
    | Some r -> Printf.sprintf "%S" r)
    h.Store.h_records_dropped

let handle_query_post t fd body =
  match Json.parse body with
  | Error e -> respond ~status:"400 Bad Request" fd (Queries.error_result e)
  | Ok j -> begin
      match Queries.spec_of_json j with
      | Error e -> respond ~status:"400 Bad Request" fd (Queries.error_result e)
      | Ok spec -> begin
          match Queries.qid spec with
          | Error e ->
              respond ~status:"400 Bad Request" fd (Queries.error_result e)
          | Ok qid -> begin
              let wait =
                match Json.member "wait" j with
                | Some (Json.Bool b) -> b
                | _ -> false
              in
              let timeout =
                Option.bind (Json.member "timeout" j) Json.num
              in
              let key = Queries.key spec in
              let attach q deduped =
                if wait then begin
                  if stream_header fd then begin
                    match q.q_state with
                    | Done _ | Failed _ | Timeout ->
                        ignore (try_write fd (status_json q ^ "\n"));
                        close_quiet fd
                    | _ -> q.q_waiters <- fd :: q.q_waiters
                  end
                  else close_quiet fd
                end
                else
                  respond ~status:"202 Accepted" fd
                    (Printf.sprintf "{\"id\": %d, \"deduped\": %b}" q.q_id
                       deduped)
              in
              match Hashtbl.find_opt t.inflight key with
              | Some qi ->
                  t.dedup_hits <- t.dedup_hits + 1;
                  attach (Hashtbl.find t.queries qi) true
              | None ->
                  let q =
                    {
                      q_id = t.next_query;
                      q_spec = spec;
                      q_key = key;
                      q_qid = qid;
                      q_created = now ();
                      q_state = Queued;
                      q_pending = 0;
                      q_slices = [];
                      q_base = None;
                      q_base_depth = 0;
                      q_base_steps = 0;
                      q_source = "";
                      q_deadline = Option.map (fun s -> now () +. s) timeout;
                      q_waiters = [];
                      q_last_hb = None;
                      q_steps = 0;
                    }
                  in
                  t.next_query <- t.next_query + 1;
                  Hashtbl.replace t.queries q.q_id q;
                  Hashtbl.replace t.inflight key q.q_id;
                  plan t q;
                  attach q false
            end
        end
    end

let handle_request t fd ~meth ~path ~body =
  match (meth, path) with
  | "POST", "/query" -> handle_query_post t fd body
  | "GET", p when String.length p > 8 && String.sub p 0 8 = "/status/" -> begin
      match int_of_string_opt (String.sub p 8 (String.length p - 8)) with
      | Some id -> begin
          match Hashtbl.find_opt t.queries id with
          | Some q -> respond fd (status_json q)
          | None ->
              respond ~status:"404 Not Found" fd
                (Printf.sprintf "{\"error\": \"no query %d\"}" id)
        end
      | None -> respond ~status:"400 Bad Request" fd "{\"error\": \"bad id\"}"
    end
  | "GET", "/stats" -> respond fd (stats_json t)
  | "POST", "/shutdown" ->
      respond fd "{\"ok\": true}";
      t.running <- false
  | _ ->
      respond ~status:"404 Not Found" fd
        (Printf.sprintf "{\"error\": \"no route %s %s\"}" meth path)

(* Try to cut one complete HTTP request out of a client's buffer. *)
let try_parse_request acc =
  let data = Buffer.contents acc in
  match String.index_opt data '\r' with
  | None -> None
  | Some _ -> (
      let hdr_end =
        let rec find i =
          if i + 3 >= String.length data then None
          else if String.sub data i 4 = "\r\n\r\n" then Some i
          else find (i + 1)
        in
        find 0
      in
      match hdr_end with
      | None -> None
      | Some he -> (
          let head = String.sub data 0 he in
          let lines = String.split_on_char '\n' head in
          let lines = List.map (fun l -> String.trim l) lines in
          match lines with
          | [] -> None
          | req :: headers -> (
              let content_length =
                List.fold_left
                  (fun acc h ->
                    match String.index_opt h ':' with
                    | Some i
                      when String.lowercase_ascii (String.sub h 0 i)
                           = "content-length" ->
                        int_of_string_opt
                          (String.trim
                             (String.sub h (i + 1) (String.length h - i - 1)))
                        |> Option.value ~default:acc
                    | _ -> acc)
                  0 headers
              in
              let body_start = he + 4 in
              if String.length data >= body_start + content_length then begin
                let body = String.sub data body_start content_length in
                match String.split_on_char ' ' req with
                | meth :: path :: _ -> Some (meth, path, body)
                | _ -> Some ("BAD", "/", "")
              end
              else None)))

(* ------------------------------------------------------------------ *)
(* Main loop.                                                          *)

let main ?(host = "127.0.0.1") ~port ~workers ~store () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let store = Store.open_ store in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listen_fd 64;
  let nworkers = max 1 workers in
  let t =
    {
      store;
      listen_fd;
      workers = Array.init nworkers spawn_worker;
      leases = Hashtbl.create 32;
      queries = Hashtbl.create 32;
      inflight = Hashtbl.create 32;
      pending = [];
      clients = [];
      next_query = 1;
      next_lease = 1;
      dedup_hits = 0;
      re_leases = 0;
      timeouts = 0;
      running = true;
    }
  in
  let stop = ref false in
  let on_term _ = stop := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_term);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_term);
  Printf.printf "{\"serving\": \"%s:%d\", \"workers\": %d, \"store\": %S}\n%!"
    host port nworkers (Store.path t.store);
  while t.running && not !stop do
    let worker_fds = Array.to_list (Array.map (fun w -> w.w_out) t.workers) in
    let client_fds = List.map (fun c -> c.c_fd) t.clients in
    let fds = (t.listen_fd :: worker_fds) @ client_fds in
    match Unix.select fds [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.listen_fd then begin
              match Unix.accept t.listen_fd with
              | cfd, _ ->
                  t.clients <-
                    { c_fd = cfd; c_acc = Buffer.create 256 } :: t.clients
              | exception Unix.Unix_error _ -> ()
            end
            else
              match
                Array.to_list t.workers
                |> List.find_opt (fun w -> w.w_out = fd)
              with
              | Some w -> begin
                  let buf = Bytes.create 65536 in
                  match Unix.read w.w_out buf 0 65536 with
                  | 0 -> handle_worker_eof t w
                  | n ->
                      Buffer.add_subbytes w.w_acc buf 0 n;
                      let data = Buffer.contents w.w_acc in
                      let parts = String.split_on_char '\n' data in
                      let rec go = function
                        | [] -> ()
                        | [ last ] ->
                            Buffer.clear w.w_acc;
                            Buffer.add_string w.w_acc last
                        | line :: rest ->
                            if String.trim line <> "" then
                              handle_worker_line t w line;
                            go rest
                      in
                      go parts
                  | exception Unix.Unix_error _ -> handle_worker_eof t w
                end
              | None -> (
                  match List.find_opt (fun c -> c.c_fd = fd) t.clients with
                  | None -> ()
                  | Some c -> (
                      let buf = Bytes.create 65536 in
                      let drop () =
                        t.clients <-
                          List.filter (fun c' -> c'.c_fd <> c.c_fd) t.clients
                      in
                      match Unix.read c.c_fd buf 0 65536 with
                      | 0 ->
                          drop ();
                          close_quiet c.c_fd
                      | n -> begin
                          Buffer.add_subbytes c.c_acc buf 0 n;
                          match try_parse_request c.c_acc with
                          | Some (meth, path, body) ->
                              (* The fd's fate now belongs to the
                                 handler (respond closes it; a waiter
                                 keeps it). *)
                              drop ();
                              handle_request t c.c_fd ~meth ~path ~body
                          | None -> ()
                        end
                      | exception Unix.Unix_error _ ->
                          drop ();
                          close_quiet c.c_fd)))
          ready;
        check_deadlines t
  done;
  (* Drain: EOF every worker's stdin, reap, flush the store. *)
  Array.iter (fun w -> close_quiet w.w_in) t.workers;
  Array.iter
    (fun w ->
      try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ())
    t.workers;
  Store.commit t.store;
  close_quiet t.listen_fd;
  0
