let connect ?(host = "127.0.0.1") ~port () =
  match Unix.inet_addr_of_string host with
  | exception Failure _ -> Error (Printf.sprintf "bad host %S" host)
  | addr -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot reach %s:%d: %s" host port
               (Unix.error_message e)))

let send_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

(* Responses are [Connection: close]: stream everything after the
   header block straight to [out] until EOF.  That one loop serves
   both fixed-length JSON bodies and ndjson heartbeat streams. *)
let relay_body fd ~out =
  let buf = Bytes.create 65536 in
  let acc = Buffer.create 256 in
  let in_body = ref false in
  let rec loop () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        if !in_body then (
          output_string out (Bytes.sub_string buf 0 n);
          flush out)
        else begin
          Buffer.add_subbytes acc buf 0 n;
          let s = Buffer.contents acc in
          (match String.index_opt s '\r' with
          | Some _ -> (
              match
                (* End of header block. *)
                let rec find i =
                  if i + 3 >= String.length s then None
                  else if String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
                  else find (i + 1)
                in
                find 0
              with
              | Some body_off ->
                  in_body := true;
                  output_string out
                    (String.sub s body_off (String.length s - body_off));
                  flush out
              | None -> ())
          | None -> ());
          ()
        end;
        loop ()
  in
  (try loop () with Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ())

let request ?host ~port ~meth ~path ?(body = "") ~out () =
  match connect ?host ~port () with
  | Error _ as e -> e
  | Ok fd -> (
      let req =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: slx\r\nContent-Length: %d\r\n\
           Connection: close\r\n\r\n%s"
          meth path (String.length body) body
      in
      match send_all fd req with
      | () ->
          relay_body fd ~out;
          Ok ()
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Unix.error_message e))

(* The body is the spec object with the transport members spliced in;
   validating it parses here beats a server-side 400 later. *)
let post_query ?host ~port ~wait ?timeout spec_json ~out =
  match Slx_obs.Json.parse spec_json with
  | Error e -> Error ("bad spec JSON: " ^ e)
  | Ok (Slx_obs.Json.Obj _) ->
      let trimmed = String.trim spec_json in
      let inner = String.sub trimmed 0 (String.length trimmed - 1) in
      let sep = if String.trim (String.sub inner 1 (String.length inner - 1)) = "" then "" else ", " in
      let body =
        Printf.sprintf "%s%s\"wait\": %b%s}" inner sep wait
          (match timeout with
          | None -> ""
          | Some s -> Printf.sprintf ", \"timeout\": %g" s)
      in
      request ?host ~port ~meth:"POST" ~path:"/query" ~body ~out ()
  | Ok _ -> Error "spec must be a JSON object"

let get ?host ~port path ~out = request ?host ~port ~meth:"GET" ~path ~out ()

let shutdown ?host ~port () =
  request ?host ~port ~meth:"POST" ~path:"/shutdown" ~out:stdout ()
