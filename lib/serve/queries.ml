open Slx_sim
open Slx_core
open Slx_liveness
open Slx_consensus
module Json = Slx_obs.Json
module Obs = Slx_obs.Obs
module Progress = Slx_obs.Progress
module Store = Slx_store.Store
module Persist = Slx_store.Persist

type spec = {
  sp_kind : [ `Explore | `Live ];
  sp_impl : string;
  sp_property : string;
  sp_n : int;
  sp_depth : int;
  sp_crashes : int;
  sp_max_period : int;
  sp_pump : int;
}

(* ------------------------------------------------------------------ *)
(* Vocabulary: implementations and freedom points, as the CLI names
   them.  The reduction flags are pinned to the CLI defaults so every
   producer lands on the same store key. *)

let point_of_string ~n = function
  | "obstruction" -> Ok Freedom.obstruction_freedom
  | "lock" -> Ok (Freedom.lock_freedom ~n)
  | "wait" -> Ok (Freedom.wait_freedom ~n)
  | s -> begin
      match String.split_on_char ',' s with
      | [ l; k ] -> begin
          match
            (int_of_string_opt (String.trim l), int_of_string_opt (String.trim k))
          with
          | Some l, Some k when l >= 1 && k >= 1 -> Ok (Freedom.make ~l ~k)
          | _ -> Error (Printf.sprintf "unknown property %S" s)
        end
      | _ -> Error (Printf.sprintf "unknown property %S" s)
    end

let factory_of_spec sp =
  match sp.sp_impl with
  | "cas" -> Ok (fun () -> Cas_consensus.factory ())
  | "register" ->
      (* The liveness searches need enough rounds for any bounded
         schedule, exactly as [slx live-explore] arranges. *)
      Ok
        (if sp.sp_kind = `Live then fun () ->
           Register_consensus.factory ~max_rounds:(max 8 sp.sp_depth) ()
         else fun () -> Register_consensus.factory ())
  | "selfish" -> Ok (fun () -> Selfish_consensus.factory ())
  | other -> Error (Printf.sprintf "unknown implementation %S" other)

let safety_invoke =
  Explore.workload_invoke
    (Driver.n_times 1 (fun p _ -> Consensus_type.Propose (p - 1)))

let live_invoke =
  Explore.workload_invoke
    (Driver.forever (fun p -> Consensus_type.Propose (p - 1)))

let good (_ : Consensus_type.response) = true
let check r = Consensus_safety.check r.Run_report.history

let dec_string = function
  | Driver.Schedule p -> Printf.sprintf "S%d" p
  | Driver.Invoke (p, Consensus_type.Propose v) -> Printf.sprintf "I%d(%d)" p v
  | Driver.Crash p -> Printf.sprintf "C%d" p
  | Driver.Stop -> "stop"

(* ------------------------------------------------------------------ *)
(* Wire forms.                                                         *)

let kind_string = function `Explore -> "explore" | `Live -> "live"

let spec_of_json j =
  let str k = Option.bind (Json.member k j) Json.str in
  let int k = Option.bind (Json.member k j) Json.int in
  let kind =
    match str "kind" with
    | Some "explore" | None -> Ok `Explore
    | Some "live" -> Ok `Live
    | Some other -> Error (Printf.sprintf "unknown kind %S" other)
  in
  match kind with
  | Error e -> Error e
  | Ok kind ->
      let impl = Option.value (str "impl") ~default:"cas" in
      let depth = Option.value (int "depth") ~default:8 in
      let n = Option.value (int "n") ~default:2 in
      let crashes = Option.value (int "crashes") ~default:0 in
      let property = Option.value (str "property") ~default:"obstruction" in
      if depth < 1 || depth > 64 then
        Error (Printf.sprintf "depth %d out of range" depth)
      else if n < 1 || n > 16 then Error (Printf.sprintf "n %d out of range" n)
      else begin
        let sp =
          {
            sp_kind = kind;
            sp_impl = impl;
            sp_property = (if kind = `Live then property else "");
            sp_n = n;
            sp_depth = depth;
            sp_crashes = crashes;
            sp_max_period =
              (if kind = `Live then
                 Option.value (int "max_period")
                   ~default:(max 1 ((depth + 1) / 2))
               else 0);
            sp_pump =
              (if kind = `Live then
                 Option.value (int "pump") ~default:(4 * depth)
               else 0);
          }
        in
        match factory_of_spec sp with
        | Error e -> Error e
        | Ok _ ->
            if kind = `Live then
              match point_of_string ~n sp.sp_property with
              | Error e -> Error e
              | Ok _ -> Ok sp
            else Ok sp
      end

let spec_to_json sp =
  Printf.sprintf
    "{\"kind\": %S, \"impl\": %S, \"property\": %S, \"n\": %d, \"depth\": \
     %d, \"crashes\": %d, \"max_period\": %d, \"pump\": %d}"
    (kind_string sp.sp_kind) sp.sp_impl sp.sp_property sp.sp_n sp.sp_depth
    sp.sp_crashes sp.sp_max_period sp.sp_pump

let key sp =
  Printf.sprintf "%s|%s|%s|n=%d|d=%d|c=%d|mp=%d|pt=%d"
    (kind_string sp.sp_kind) sp.sp_impl sp.sp_property sp.sp_n sp.sp_depth
    sp.sp_crashes sp.sp_max_period sp.sp_pump

let check_id sp =
  match sp.sp_kind with
  | `Explore -> "consensus-safety"
  | `Live -> (
      match point_of_string ~n:sp.sp_n sp.sp_property with
      | Ok point -> "live:" ^ Format.asprintf "%a" Freedom.pp point
      | Error _ -> "live:?" ^ sp.sp_property)

let qid sp =
  match factory_of_spec sp with
  | Error e -> Error e
  | Ok factory ->
      let rd = Persist.instance_digest ~n:sp.sp_n ~factory in
      Ok
        (match sp.sp_kind with
        | `Explore ->
            Persist.query_key ~ident:sp.sp_impl ~check:(check_id sp)
              ~n:sp.sp_n ~registry_digest:rd ~max_crashes:sp.sp_crashes
              ~por:true ~dpor:true ~symmetry:true ()
        | `Live ->
            Persist.query_key ~ident:sp.sp_impl ~check:(check_id sp)
              ~n:sp.sp_n ~registry_digest:rd ~max_crashes:sp.sp_crashes
              ~dpor:true ())

(* ------------------------------------------------------------------ *)
(* Task modes.                                                         *)

type mode = Full | Split of int | Slice of int * Store.seed list

let ints xs = "[" ^ String.concat ", " (List.map string_of_int xs) ^ "]"

let seed_to_json (s : Store.seed) =
  Printf.sprintf "{\"k\": %s, \"m\": %s}" (ints s.Store.sd_script)
    (ints s.Store.sd_sleep)

let json_ints j = List.filter_map Json.int (Json.to_list j)

let seed_of_json j =
  match (Json.member "k" j, Json.member "m" j) with
  | Some k, Some m ->
      Some { Store.sd_script = json_ints k; sd_sleep = json_ints m }
  | _ -> None

let frontier_to_json (f : Store.frontier) =
  Printf.sprintf "{\"base_runs\": %d, \"base_digest\": %d, \"seeds\": [%s]}"
    f.Store.f_base_runs f.Store.f_base_digest
    (String.concat ", " (List.map seed_to_json f.Store.f_seeds))

let frontier_of_json j =
  match
    ( Option.bind (Json.member "base_runs" j) Json.int,
      Option.bind (Json.member "base_digest" j) Json.int,
      Json.member "seeds" j )
  with
  | Some base_runs, Some base_digest, Some seeds ->
      Some
        {
          Store.f_base_runs = base_runs;
          f_base_digest = base_digest;
          f_seeds = List.filter_map seed_of_json (Json.to_list seeds);
        }
  | _ -> None

let mode_to_json = function
  | Full -> "{\"mode\": \"full\"}"
  | Split d -> Printf.sprintf "{\"mode\": \"split\", \"split_depth\": %d}" d
  | Slice (base, seeds) ->
      Printf.sprintf "{\"mode\": \"slice\", \"base_depth\": %d, \"seeds\": [%s]}"
        base
        (String.concat ", " (List.map seed_to_json seeds))

let mode_of_json j =
  match Option.bind (Json.member "mode" j) Json.str with
  | Some "full" | None -> Ok Full
  | Some "split" -> begin
      match Option.bind (Json.member "split_depth" j) Json.int with
      | Some d -> Ok (Split d)
      | None -> Error "split task without split_depth"
    end
  | Some "slice" -> begin
      match
        (Option.bind (Json.member "base_depth" j) Json.int, Json.member "seeds" j)
      with
      | Some base, Some seeds ->
          Ok (Slice (base, List.filter_map seed_of_json (Json.to_list seeds)))
      | _ -> Error "slice task without base_depth/seeds"
    end
  | Some other -> Error (Printf.sprintf "unknown task mode %S" other)

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)

let witness_json ds =
  Printf.sprintf "\"witness\": %s, \"witness_pp\": [%s]"
    (ints (Explore.codes_of_script ds))
    (String.concat ", " (List.map (fun d -> Printf.sprintf "%S" (dec_string d)) ds))

let frontier_field = function
  | None -> ""
  | Some f -> Printf.sprintf ", \"frontier\": %s" (frontier_to_json f)

let safety_result (e : (_, _) Explore.exploration) =
  let stats = e.Explore.stats in
  match e.Explore.outcome with
  | Explore.Ok runs ->
      Printf.sprintf
        "{\"outcome\": \"ok\", \"runs\": %d, \"digest\": %d, \"steps\": %d%s}"
        runs stats.Explore_stats.history_digest
        stats.Explore_stats.steps_executed
        (frontier_field
           (Option.map Slx_store.Persist.frontier_to_store e.Explore.frontier))
  | Explore.Counterexample _ ->
      Printf.sprintf "{\"outcome\": \"counterexample\", %s, \"steps\": %d}"
        (witness_json (Option.get e.Explore.witness_script))
        stats.Explore_stats.steps_executed

let live_result (r : (_, _) Live_explore.result) =
  let stats = r.Live_explore.stats in
  match r.Live_explore.outcome with
  | Live_explore.No_fair_cycle ->
      Printf.sprintf
        "{\"outcome\": \"no_fair_cycle\", \"runs\": %d, \"steps\": %d%s}"
        stats.Explore_stats.runs stats.Explore_stats.steps_executed
        (frontier_field
           (Option.map Slx_store.Persist.live_frontier_to_store
              r.Live_explore.frontier))
  | Live_explore.Lasso c ->
      let pp ds =
        "["
        ^ String.concat ", "
            (List.map (fun d -> Printf.sprintf "%S" (dec_string d)) ds)
        ^ "]"
      in
      Printf.sprintf
        "{\"outcome\": \"lasso\", \"stem\": %s, \"cycle\": %s, \"stem_pp\": \
         %s, \"cycle_pp\": %s, \"period\": %d, \"steps\": %d}"
        (ints (Explore.codes_of_script c.Lasso.c_stem))
        (ints (Explore.codes_of_script c.Lasso.c_cycle))
        (pp c.Lasso.c_stem) (pp c.Lasso.c_cycle)
        (List.length c.Lasso.c_cycle)
        stats.Explore_stats.steps_executed

let cancelled_result (stats : Explore_stats.t) =
  Printf.sprintf "{\"outcome\": \"cancelled\", \"steps\": %d}"
    stats.Explore_stats.steps_executed

let error_result msg = Printf.sprintf "{\"outcome\": \"error\", \"message\": %S}" msg

let run_task ?cancel ?(progress = Progress.off) sp mode =
  match factory_of_spec sp with
  | Error e -> error_result e
  | Ok factory -> begin
      let obs = Obs.create ~tracing:false ~progress () in
      match sp.sp_kind with
      | `Explore -> begin
          let depth, resume =
            match mode with
            | Full -> (sp.sp_depth, None)
            | Split d -> (d, None)
            | Slice (base, seeds) ->
                ( sp.sp_depth,
                  Option.map
                    (fun f -> { f with Explore.fr_depth = base })
                    (Slx_store.Persist.frontier_of_store
                       {
                         Store.f_base_runs = 0;
                         f_base_digest = 0;
                         f_seeds = seeds;
                       }) )
          in
          match
            Explore.explore ~n:sp.sp_n ~factory ~invoke:safety_invoke ~depth
              ~max_crashes:sp.sp_crashes ~por:true ~dpor:true ~symmetry:true
              ~obs ~persist:true ?resume ?cancel ~check ()
          with
          | e -> safety_result e
          | exception Explore.Interrupted stats -> cancelled_result stats
        end
      | `Live -> begin
          match point_of_string ~n:sp.sp_n sp.sp_property with
          | Error e -> error_result e
          | Ok point -> begin
              let depth, resume =
                match mode with
                | Full -> (sp.sp_depth, None)
                | Split d -> (d, None)
                | Slice (base, seeds) ->
                    ( sp.sp_depth,
                      Some
                        {
                          Live_explore.lf_depth = base;
                          lf_max_period = sp.sp_max_period;
                          lf_pump_ticks = sp.sp_pump;
                          lf_base_runs = 0;
                          lf_seeds =
                            List.map
                              (fun (s : Store.seed) ->
                                {
                                  Live_explore.ls_script = s.Store.sd_script;
                                  ls_sleep = s.Store.sd_sleep;
                                })
                              seeds;
                        } )
              in
              match
                Live_explore.search ~n:sp.sp_n ~factory ~invoke:live_invoke
                  ~good ~point ~depth ~max_crashes:sp.sp_crashes
                  ~max_period:sp.sp_max_period ~pump_ticks:sp.sp_pump
                  ~dpor:true ~obs ~persist:true ?resume ?cancel ()
              with
              | r -> live_result r
              | exception Explore.Interrupted stats -> cancelled_result stats
            end
        end
    end

(* ------------------------------------------------------------------ *)
(* Warm service.                                                       *)

let warm_result sp (r : Store.record) =
  match (sp.sp_kind, r.Store.r_verdict) with
  | `Explore, Store.V_ok runs ->
      Some
        (Printf.sprintf
           "{\"outcome\": \"ok\", \"runs\": %d, \"steps\": 0, \
            \"stored_steps\": %d}"
           runs r.Store.r_steps)
  | `Explore, Store.V_counterexample codes -> begin
      match factory_of_spec sp with
      | Error _ -> None
      | Ok factory -> begin
          match
            Explore.run_of_codes ~n:sp.sp_n ~factory ~invoke:safety_invoke
              codes
          with
          | ds, report when not (check report) ->
              Some
                (Printf.sprintf
                   "{\"outcome\": \"counterexample\", %s, \"steps\": %d, \
                    \"stored_steps\": %d}"
                   (witness_json ds) (List.length codes) r.Store.r_steps)
          | _ | (exception _) -> None
        end
    end
  | `Live, _
    when r.Store.r_max_period <> sp.sp_max_period
         || r.Store.r_pump_ticks <> sp.sp_pump ->
      None
  | `Live, Store.V_no_fair_cycle ->
      Some
        (Printf.sprintf
           "{\"outcome\": \"no_fair_cycle\", \"runs\": %d, \"steps\": 0, \
            \"stored_steps\": %d}"
           r.Store.r_runs r.Store.r_steps)
  | `Live, Store.V_lasso { stem; cycle } -> begin
      match (factory_of_spec sp, point_of_string ~n:sp.sp_n sp.sp_property) with
      | Ok factory, Ok point -> begin
          match
            Live_explore.validate_cert_codes ~n:sp.sp_n ~factory
              ~invoke:live_invoke ~good ~point ~pump_ticks:sp.sp_pump ~stem
              ~cycle ()
          with
          | Some c ->
              let pp ds =
                "["
                ^ String.concat ", "
                    (List.map (fun d -> Printf.sprintf "%S" (dec_string d)) ds)
                ^ "]"
              in
              Some
                (Printf.sprintf
                   "{\"outcome\": \"lasso\", \"stem\": %s, \"cycle\": %s, \
                    \"stem_pp\": %s, \"cycle_pp\": %s, \"period\": %d, \
                    \"steps\": 0, \"stored_steps\": %d}"
                   (ints stem) (ints cycle) (pp c.Lasso.c_stem)
                   (pp c.Lasso.c_cycle)
                   (List.length c.Lasso.c_cycle)
                   r.Store.r_steps)
          | None -> None
        end
      | _ -> None
    end
  | _ -> None
