(** The verification worker: the child-process half of {!Serve}.

    A worker is [slx]'s own binary re-executed with the hidden
    [worker] subcommand, wired to the coordinator by two pipes.  The
    protocol is JSON-lines on stdin/stdout:

    - stdin, one line per task:
      [{"lease": N, "spec": {...}, "task": {"mode": ...}}]
      ({!Queries.spec_of_json} / {!Queries.mode_of_json});
    - stdout, zero or more progress heartbeats (the engines'
      JSON-lines reporter, no ["lease"] member) followed by exactly
      one result line [{"lease": N, "result": {...}}]
      ({!Queries.run_task}).

    Workers never open the store — verdict-relevant state travels
    inline in the task (frontier seeds) and the result (frontier,
    witness codes), so the coordinator stays the store's only
    writer.  [SIGUSR1] requests graceful cancellation: the engines
    poll a flag per node and the task answers
    [{"outcome": "cancelled"}].  EOF on stdin is shutdown. *)

val main : unit -> int
(** Run the task loop until stdin closes.  Exit code 0. *)
