(** The serve subsystem's query vocabulary: what a verification query
    {e is} on the wire, and how any process — coordinator, worker, or
    the [slx query] client — runs one.

    A query names an implementation and property from the same
    vocabulary as the [slx explore] / [slx live-explore] subcommands
    (consensus implementations [cas]/[register]/[selfish]; the
    freedom-point grammar of the CLI), with the CLI's default
    reduction flags pinned — so a verdict computed by the service, by
    a worker, or by the CLI with [--store] lands on the {e same}
    store key ({!qid}) and they warm-serve each other.

    Tasks are the unit of work leased to workers: a [Full] run, a
    shallow [Split] pass that cuts a frontier for sharding, or a
    [Slice] resuming a subset of frontier seeds (base totals are
    added once by the coordinator).  {!run_task} executes any of them
    and returns the result as a JSON object string — the exact line a
    worker writes back. *)

open Slx_obs

type spec = {
  sp_kind : [ `Explore | `Live ];
  sp_impl : string;  (** cas | register | selfish. *)
  sp_property : string;
      (** Liveness only: obstruction | lock | wait | "l,k".  [""] for
          safety queries. *)
  sp_n : int;
  sp_depth : int;
  sp_crashes : int;
  sp_max_period : int;  (** Resolved (liveness); 0 for safety. *)
  sp_pump : int;  (** Resolved (liveness); 0 for safety. *)
}

val spec_of_json : Json.t -> (spec, string) result
(** Parse a client query object: [kind] ("explore" | "live"), [impl],
    [n], [depth], [crashes], and for liveness [property],
    [max_period], [pump] — unknown implementations, malformed freedom
    points and non-positive bounds are errors, so a bad query dies at
    the door instead of inside a worker.  Liveness defaults resolve
    here ([max_period = ceil(depth/2)], [pump = 4*depth]). *)

val spec_to_json : spec -> string

val key : spec -> string
(** Canonical dedup key: two requests with equal keys are the same
    query (same verdict, same store record). *)

val qid : spec -> (int, string) result
(** The store key ({!Slx_store.Persist.query_key}) of this query,
    with the implementation's instance digest and the pinned default
    flags bound in.  [Error] on unknown implementation/property. *)

type mode =
  | Full  (** The whole depth-[sp_depth] tree, one worker. *)
  | Split of int
      (** A persist run at this shallower depth; the result carries
          the frontier the coordinator slices. *)
  | Slice of int * Slx_store.Store.seed list
      (** Resume these seeds (cut at the given base depth) to full
          depth; totals exclude the base, which the coordinator adds
          exactly once. *)

val mode_to_json : mode -> string
val mode_of_json : Json.t -> (mode, string) result

val run_task :
  ?cancel:(unit -> bool) ->
  ?progress:Progress.t ->
  spec ->
  mode ->
  string
(** Execute one task in-process and return its result as a one-line
    JSON object (no trailing newline):

    - safety: [{"outcome": "ok" | "counterexample", "runs", "digest",
      "steps", "witness": [codes], "frontier": {...}}]
    - liveness: [{"outcome": "no_fair_cycle" | "lasso", "stem",
      "cycle", "period", "runs", "steps", "frontier": {...}}]
    - [{"outcome": "cancelled", "steps"}] when [cancel] fired;
    - [{"outcome": "error", "message"}] on a bad spec.

    [Split] results always carry ["frontier"]; [Slice]/[Full] runs
    carry theirs too (persist mode), so the coordinator can stitch a
    full-depth frontier back into the store.  [progress] is handed to
    the engine — pass a JSON-lines reporter on stdout and the task's
    heartbeats interleave with the final line, which is
    distinguishable by its ["outcome"] member. *)

val error_result : string -> string
(** [{"outcome": "error", "message": ...}] — the uniform failure form
    of {!run_task}, exported for protocol-level errors (a task line
    that does not even parse). *)

val warm_result : spec -> Slx_store.Store.record -> string option
(** Serve a stored record for exactly this query without exploring:
    positive verdicts are trusted (the store's version header and the
    qid vouch for them), witnesses are re-validated by replay
    ({!Slx_core.Explore.run_of_codes} /
    {!Slx_core.Live_explore.validate_cert_codes}).  [None] means the
    record must not be served (failed validation, wrong budgets) and
    the query has to be computed. *)

val frontier_to_json : Slx_store.Store.frontier -> string
val frontier_of_json : Json.t -> Slx_store.Store.frontier option
