(** [slx serve]: a resumable, multi-process verification service.

    One coordinator process owns an HTTP/1.1 endpoint (plain [Unix]
    sockets, JSON bodies — no dependencies beyond the stdlib), the
    persistent verdict store ({!Slx_store.Store}, single writer), and
    a pool of worker processes ({!Worker}, the [slx] binary
    re-executed) it leases work to.

    {b Endpoints.}
    - [POST /query] — body {!Queries.spec_of_json} plus optional
      ["timeout"] (seconds) and ["wait"] (bool).  Without [wait]:
      [202] with [{"id", "deduped"}].  With [wait]: a close-delimited
      [application/x-ndjson] stream of progress heartbeats ending in
      the result object.
    - [GET /status/ID] — query state ([queued]/[running]/[done]/
      [failed]/[timeout]), the latest heartbeat, and the result when
      done.
    - [GET /stats] — service counters (dedup hits, re-leases,
      timeouts, worker states) and the store's counters/health.
    - [POST /shutdown] — drain and exit.

    {b Answer planning} mirrors {!Slx_store.Persist}: warm store hits
    answer immediately (witnesses re-validated); otherwise the query
    is sharded — a stored frontier's seeds, or the frontier cut by a
    shallow {e split pass} at [depth - 2], are partitioned into
    contiguous slices leased across workers, whose totals the
    coordinator stitches back (base added exactly once; on a failing
    verdict all slices complete and the lowest-indexed failure is the
    witness, preserving the engines' lex-least guarantee; a failing
    split pass falls back to one full-depth task so served verdicts
    are byte-identical to cold runs).  Identical in-flight queries
    dedupe onto one computation.  A worker that dies mid-task gets
    its lease re-queued ([re_leases] in [/stats]) and its process
    respawned; a query past its timeout has its workers cancelled
    ([SIGUSR1]) and reports [timeout]. *)

val main :
  ?host:string ->
  port:int ->
  workers:int ->
  store:string ->
  unit ->
  int
(** Serve until [POST /shutdown] (or SIGINT/SIGTERM).  [host] defaults
    to ["127.0.0.1"]; [workers] is clamped to at least 1.  Returns the
    process exit code; the store is committed on every completed query
    and again on shutdown. *)
