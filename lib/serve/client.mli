(** The [slx query] side of the wire: a minimal HTTP/1.1 client for
    {!Serve}, built on the same plain [Unix] sockets.

    Every call opens one connection, sends one request, and reads to
    close (the server sets [Connection: close] on every response), so
    there is no connection state to manage.  Streaming responses
    ([POST /query] with [wait]) are relayed line-by-line to [out] as
    they arrive — heartbeats and the final result object — which is
    exactly what a terminal or a pipe into [jq] wants. *)

val post_query :
  ?host:string ->
  port:int ->
  wait:bool ->
  ?timeout:float ->
  string ->
  out:out_channel ->
  (unit, string) result
(** Submit the given spec JSON (the body's ["spec"]-level members —
    see {!Queries.spec_of_json}).  With [wait:false] prints the [202]
    ticket ([{"id", "deduped"}]); with [wait:true] streams heartbeats
    until the result line.  [timeout] is forwarded to the server as
    the query's deadline. *)

val get :
  ?host:string -> port:int -> string -> out:out_channel ->
  (unit, string) result
(** [GET] an arbitrary path ([/status/ID], [/stats]) and print the
    response body. *)

val shutdown : ?host:string -> port:int -> unit -> (unit, string) result
(** [POST /shutdown] — asks the server to drain and exit. *)
