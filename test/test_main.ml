(* Entry point of the test suite: one Alcotest section per library. *)

let () =
  Alcotest.run "slx"
    (Test_history.suites @ Test_automata.suites @ Test_sim.suites @ Test_drivers.suites @ Test_safety.suites
   @ Test_liveness.suites @ Test_consensus.suites @ Test_tm.suites @ Test_core.suites @ Test_live.suites @ Test_objects.suites @ Test_failures.suites @ Test_universal.suites @ Test_chaos.suites @ Test_differential.suites @ Test_dpor.suites @ Test_compact.suites @ Test_obs.suites @ Test_analysis.suites @ Test_store.suites @ Test_lint.suites)
