(* The static soundness linter: rule families over parse-only fixture
   sources, waiver round-trips, the malformed-source path, the dogfood
   sweep of the shipped tree, the static-vs-dynamic E26 pair, and the
   normalized stats CLI error path. *)

open Support
module Lint = Slx_lint.Lint
module Finding = Slx_lint.Finding
module Waivers = Slx_lint.Waivers
module Audit = Slx_analysis.Audit
module Registry = Slx_analysis.Audit_registry

(* Test fixtures live under [lint_fixtures/]; the repo tree itself is
   reachable as [..] from the test's working directory. *)
let fixture_root = "lint_fixtures"

let repo_root = ".."

let lint_one ?waiver_file ?today ?strict_waivers file =
  Lint.run ~root:fixture_root ~paths:[ file ] ?waiver_file ?today
    ?strict_waivers ()

let rules_of rp =
  List.sort_uniq String.compare
    (List.map (fun f -> f.Finding.rule) rp.Lint.findings)

let has_rule rule rp =
  List.exists (fun f -> f.Finding.rule = rule) rp.Lint.findings

let contains ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec at i = i + lsub <= ls && (String.sub s i lsub = sub || at (i + 1)) in
  lsub = 0 || at 0

(* ------------------------------------------------------------------ *)
(* Rule families: one positive and one negative per family.            *)

let test_escape_family () =
  let global = lint_one "bad_escape_global.ml" in
  check_bool "module-level capture flagged" true
    (has_rule "escape-global-mutable" global);
  check_bool "naked mutation of it flagged too" true
    (has_rule "escape-naked-mutation" global);
  let closure = lint_one "bad_escape_closure.ml" in
  Alcotest.(check (list string))
    "unregistered captured ref flagged, nothing else"
    [ "escape-unregistered-state" ] (rules_of closure);
  let good = lint_one "good_escape.ml" in
  Alcotest.(check (list string))
    "registered state, local scratch and driver state allowed" []
    (rules_of good)

let test_determinism_family () =
  let random = lint_one "bad_det_random.ml" in
  Alcotest.(check (list string))
    "Random.int and Hashtbl.hash flagged" [ "det-banned-call" ]
    (rules_of random);
  check_int "both call sites" 2 (List.length random.Lint.findings);
  let physeq = lint_one "bad_det_physeq.ml" in
  Alcotest.(check (list string))
    "== and != flagged" [ "det-physical-equality" ] (rules_of physeq);
  let good = lint_one "good_det.ml" in
  Alcotest.(check (list string))
    "seeded Random.State and structural equality allowed" []
    (rules_of good)

let test_footprint_family () =
  let undeclared = lint_one "bad_fp_undeclared.ml" in
  Alcotest.(check (list string))
    "touch outside the declaration flagged" [ "fp-undeclared-handle" ]
    (rules_of undeclared);
  let wrote = lint_one "bad_fp_write.ml" in
  Alcotest.(check (list string))
    "write under read declaration flagged" [ "fp-write-under-read" ]
    (rules_of wrote);
  let good = lint_one "good_fp.ml" in
  Alcotest.(check (list string))
    "declared touches through helpers allowed" [] (rules_of good)

let test_malformed_source_is_a_finding () =
  let rp = lint_one "malformed.ml" in
  Alcotest.(check (list string))
    "a structured parse-error finding, not an exception" [ "parse-error" ]
    (rules_of rp);
  check_bool "the report gates" false (Lint.clean rp)

(* ------------------------------------------------------------------ *)
(* Waivers.                                                            *)

let test_waiver_parse_round_trip () =
  let text =
    "# comment\n\
     \n\
     rule=det-banned-call file=a.ml match=\"Random.int x\" \
     expires=2031-12-31 reason=\"seeded later\"\n\
     rule=parse-error file=b.ml reason=vendored\n"
  in
  match Waivers.parse text with
  | Error (msg, line) -> Alcotest.failf "parse failed at %d: %s" line msg
  | Ok [ a; b ] ->
      Alcotest.(check string) "rule" "det-banned-call" a.Waivers.w_rule;
      Alcotest.(check (option string))
        "quoted match survives spaces" (Some "Random.int x") a.Waivers.w_match;
      Alcotest.(check (option string))
        "expiry" (Some "2031-12-31") a.Waivers.w_expires;
      check_int "line numbers skip comments and blanks" 3 a.Waivers.w_line;
      Alcotest.(check (option string)) "no expiry" None b.Waivers.w_expires;
      check_bool "dated entry live before its date" false
        (Waivers.expired ~today:"2031-12-31" a);
      check_bool "dated entry dead after its date" true
        (Waivers.expired ~today:"2032-01-01" a);
      check_bool "undated entry never expires" false
        (Waivers.expired ~today:"9999-12-31" b)
  | Ok es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)

let test_waiver_rejects_malformed () =
  let bad checks text =
    match Waivers.parse text with
    | Ok _ -> Alcotest.failf "accepted malformed waiver: %s" text
    | Error (msg, _) ->
        check_bool
          (Printf.sprintf "error %S mentions %S" msg checks)
          true
          (contains ~sub:checks msg)
  in
  bad "missing rule=" "file=a.ml reason=x\n";
  bad "reason" "rule=parse-error file=a.ml\n";
  bad "unknown rule" "rule=not-a-rule file=a.ml reason=x\n";
  bad "YYYY-MM-DD" "rule=parse-error file=a.ml expires=soon reason=x\n";
  bad "unknown key" "rule=parse-error file=a.ml reason=x color=red\n"

let temp_waivers contents =
  let path = Filename.temp_file "slx_lint_waivers" ".conf" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let test_waiver_suppresses_and_gates () =
  (* A matching waiver suppresses the finding; an expired one turns
     into an error; an unused one gates only under --ci strictness. *)
  let wf =
    temp_waivers
      "rule=det-physical-equality file=bad_det_physeq.ml expires=2031-12-31 \
       reason=\"legacy identity check\"\n\
       rule=det-banned-call file=never_matches.ml reason=stale\n"
  in
  let rp = lint_one ~waiver_file:wf ~today:"2026-08-08" "bad_det_physeq.ml" in
  check_int "both physeq findings suppressed" 2 (List.length rp.Lint.waived);
  Alcotest.(check (list string))
    "only the stale-entry note remains" [ "waiver-unused" ] (rules_of rp);
  check_bool "unused waiver does not gate a human run" true (Lint.clean rp);
  let strict =
    lint_one ~waiver_file:wf ~today:"2026-08-08" ~strict_waivers:true
      "bad_det_physeq.ml"
  in
  check_bool "unused waiver gates a --ci run" false (Lint.clean strict);
  let past = lint_one ~waiver_file:wf ~today:"2032-01-01" "bad_det_physeq.ml" in
  check_bool "expired waiver stops suppressing" true
    (has_rule "det-physical-equality" past);
  check_bool "and reports its own expiry" true (has_rule "waiver-expired" past);
  Sys.remove wf

let test_waiver_file_malformed_is_a_finding () =
  let wf = temp_waivers "rule=not-a-rule file=a.ml reason=x\n" in
  let rp = lint_one ~waiver_file:wf "good_fp.ml" in
  Alcotest.(check (list string))
    "malformed waiver file is a structured finding" [ "waiver-malformed" ]
    (rules_of rp);
  check_bool "and it gates" false (Lint.clean rp);
  Sys.remove wf

(* ------------------------------------------------------------------ *)
(* Dogfood: the shipped tree is clean under the shipped waiver file,   *)
(* and the waiver count is exact — a new finding or a stale entry      *)
(* both fail here before CI sees them.                                 *)

let test_shipped_tree_clean_with_exact_waivers () =
  let rp =
    Lint.run ~root:repo_root ~waiver_file:"lint-waivers.conf"
      ~today:"2026-08-08" ~strict_waivers:true ()
  in
  Alcotest.(check (list string))
    "no unwaived findings on the shipped tree" []
    (List.map (Format.asprintf "%a" Finding.pp) rp.Lint.findings);
  check_int "exactly the six shipped waivers in use" 6
    (List.length rp.Lint.waived);
  check_bool "sweep actually covered the tree" true
    (List.length rp.Lint.files > 40)

(* ------------------------------------------------------------------ *)
(* E26: the deep leak is invisible to bounded dynamic exploration and  *)
(* caught statically.                                                  *)

let test_deep_leak_static_vs_dynamic () =
  let case =
    match Registry.select ~name:"fixture-deep-leak" (Registry.fixture_cases ())
    with
    | [ c ] -> c
    | _ -> Alcotest.fail "fixture-deep-leak not registered exactly once"
  in
  let dyn = Audit.run_case ~bound:`Runtest case in
  check_bool "sanitized exploration at the audit depth reports clean" true
    (Audit.case_clean dyn);
  check_bool "and it did sweep runs" true (dyn.Audit.cr_runs > 0);
  let static =
    Lint.run ~root:repo_root ~paths:[ "lib/analysis/fixtures.ml" ] ()
  in
  check_bool "the static lint flags the deep leak site" true
    (List.exists
       (fun f ->
         f.Finding.rule = "fp-undeclared-handle"
         && contains ~sub:"store b (v + k)" f.Finding.snippet)
       static.Lint.findings)

(* ------------------------------------------------------------------ *)
(* The CLI: exit codes per fixture, and the normalized stats errors.   *)

let slx args = Sys.command (Printf.sprintf "../bin/slx_cli.exe %s" args)

let test_cli_exit_codes () =
  List.iter
    (fun f ->
      check_int
        (Printf.sprintf "slx lint exits 1 on %s" f)
        1
        (slx
           (Printf.sprintf "lint --root %s %s >/dev/null 2>&1" fixture_root f)))
    [
      "bad_escape_global.ml"; "bad_escape_closure.ml"; "bad_det_random.ml";
      "bad_det_physeq.ml"; "bad_fp_undeclared.ml"; "bad_fp_write.ml";
      "malformed.ml";
    ];
  List.iter
    (fun f ->
      check_int
        (Printf.sprintf "slx lint exits 0 on %s" f)
        0
        (slx
           (Printf.sprintf "lint --root %s %s >/dev/null 2>&1" fixture_root f)))
    [ "good_escape.ml"; "good_det.ml"; "good_fp.ml" ]

let test_cli_ci_clean_on_shipped_tree () =
  check_int "slx lint --ci is clean on the shipped tree" 0
    (slx (Printf.sprintf "lint --ci --root %s >/dev/null 2>&1" repo_root))

let test_stats_errors_normalized () =
  let run args =
    let err = Filename.temp_file "slx_stats" ".err" in
    let rc = slx (Printf.sprintf "%s >/dev/null 2>%s" args err) in
    let ic = open_in_bin err in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove err;
    (rc, contents)
  in
  let check_path args =
    let rc, stderr_out = run args in
    check_int (args ^ " exits 2") 2 rc;
    check_bool
      (args ^ " reports through the structured error path")
      true
      (contains ~sub:"[slx] error:" stderr_out)
  in
  check_path "stats --store /nonexistent/dir/store.slx";
  check_path "stats --trace /nonexistent/dir/trace.json";
  check_path "stats"

let suites =
  [
    ( "lint.rules",
      [
        quick "escape family: positives and negative" test_escape_family;
        quick "determinism family: positives and negative"
          test_determinism_family;
        quick "footprint family: positives and negative"
          test_footprint_family;
        quick "malformed source is a structured finding"
          test_malformed_source_is_a_finding;
      ] );
    ( "lint.waivers",
      [
        quick "parse round-trip with quoting, dates and line numbers"
          test_waiver_parse_round_trip;
        quick "malformed entries rejected with the reason"
          test_waiver_rejects_malformed;
        quick "suppression, expiry and strict unused gating"
          test_waiver_suppresses_and_gates;
        quick "malformed waiver file is a structured finding"
          test_waiver_file_malformed_is_a_finding;
      ] );
    ( "lint.dogfood",
      [
        quick "shipped tree clean with exactly the shipped waivers"
          test_shipped_tree_clean_with_exact_waivers;
        quick "deep leak: dynamically clean, statically caught (E26)"
          test_deep_leak_static_vs_dynamic;
      ] );
    ( "lint.cli",
      [
        quick "exit codes across the fixture set" test_cli_exit_codes;
        quick "lint --ci clean on the shipped tree"
          test_cli_ci_clean_on_shipped_tree;
        quick "stats errors share one structured path"
          test_stats_errors_normalized;
      ] );
  ]
