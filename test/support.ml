(* Shared helpers for the test suites: a register object type, history
   generators, and Alcotest shortcuts. *)

open Slx_history

(* A single integer read/write register as an object type, used by the
   safety-checker tests. *)
module Register_type = struct
  type state = int
  type invocation = Read | Write of int
  type response = Val of int | Ok

  let name = "register"
  let initial = 0

  let seq inv st =
    match inv with Read -> [ (st, Val st) ] | Write v -> [ (v, Ok) ]

  let good (_ : response) = true
  let equal_state = Int.equal
  let equal_invocation a b = a = b
  let equal_response a b = a = b

  let pp_state = Format.pp_print_int

  let pp_invocation fmt = function
    | Read -> Format.pp_print_string fmt "read"
    | Write v -> Format.fprintf fmt "write(%d)" v

  let pp_response fmt = function
    | Val v -> Format.fprintf fmt "val(%d)" v
    | Ok -> Format.pp_print_string fmt "ok"
end

let check_bool msg expected actual = Alcotest.(check bool) msg expected actual
let check_int msg expected actual = Alcotest.(check int) msg expected actual

let quick name f = Alcotest.test_case name `Quick f

let qcheck cases = List.map QCheck_alcotest.to_alcotest cases

(* Generator of well-formed register histories: a random walk that only
   appends legal events. *)
let well_formed_register_history_gen ~n ~len =
  QCheck2.Gen.(
    let* moves = list_size (return len) (pair (int_range 1 n) (int_range 0 5)) in
    let add (h, pending) (p, roll) =
      if Proc.Set.mem p (History.crashed h) then (h, pending)
      else
        match List.assoc_opt p pending with
        | Some inv ->
            (* Pending: respond (usually) or crash (rarely). *)
            if roll = 5 then
              (History.append h (Event.Crash p), List.remove_assoc p pending)
            else
              let res =
                match inv with
                | Register_type.Read -> Register_type.Val roll
                | Register_type.Write _ -> Register_type.Ok
              in
              ( History.append h (Event.Response (p, res)),
                List.remove_assoc p pending )
        | None ->
            let inv =
              if roll mod 2 = 0 then Register_type.Read
              else Register_type.Write roll
            in
            ( History.append h (Event.Invocation (p, inv)),
              (p, inv) :: pending )
    in
    let h, _ = List.fold_left add (History.empty, []) moves in
    return h)

let pp_register_history fmt h =
  History.pp ~pp_inv:Register_type.pp_invocation
    ~pp_res:Register_type.pp_response fmt h

let register_history_print h = Format.asprintf "%a" pp_register_history h
