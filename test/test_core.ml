open Slx_history
open Slx_liveness
open Slx_core
open Support

(* ------------------------------------------------------------------ *)
(* The exclusion game.                                                 *)

let propose_own : (Slx_consensus.Consensus_type.invocation, _) Slx_sim.Driver.workload =
  Slx_sim.Driver.forever (fun p -> Slx_consensus.Consensus_type.Propose (p - 1))

let test_exclusion_game_adversary_wins () =
  let v =
    Exclusion.play ~n:2
      ~factory:(Slx_consensus.Register_consensus.factory ())
      ~adversary:(Slx_consensus.Consensus_adversary.lockstep ())
      ~safety:Slx_consensus.Consensus_safety.property
      ~liveness:
        (Live_property.of_freedom
           ~good:(fun (_ : Slx_consensus.Consensus_type.response) -> true)
           (Freedom.make ~l:1 ~k:2))
      ~max_steps:1000
  in
  check_bool "fair" true v.Exclusion.fair;
  check_bool "safety holds" true v.Exclusion.safety_holds;
  check_bool "liveness violated" false v.Exclusion.liveness_holds;
  check_bool "adversary wins" true (Exclusion.adversary_wins v);
  check_bool "implementation does not survive" false
    (Exclusion.implementation_survives v)

let test_exclusion_game_implementation_survives () =
  let v =
    Exclusion.play ~n:2
      ~factory:(Slx_consensus.Cas_consensus.factory ())
      ~adversary:(Slx_consensus.Consensus_adversary.lockstep ())
      ~safety:Slx_consensus.Consensus_safety.property
      ~liveness:
        (Live_property.wait_freedom
           ~good:(fun (_ : Slx_consensus.Consensus_type.response) -> true)
           ~n:2)
      ~max_steps:1000
  in
  check_bool "CAS consensus survives the lockstep adversary" true
    (Exclusion.implementation_survives v);
  check_bool "adversary does not win" false (Exclusion.adversary_wins v)

let test_exclusion_sweep () =
  let adversaries =
    [
      Slx_consensus.Consensus_adversary.lockstep ();
      Slx_sim.Driver.random ~seed:3 ~workload:propose_own ();
    ]
  in
  let verdicts =
    Exclusion.sweep ~n:2
      ~factory:(Slx_consensus.Register_consensus.factory ())
      ~adversaries
      ~safety:Slx_consensus.Consensus_safety.property
      ~liveness:
        (Live_property.of_freedom
           ~good:(fun (_ : Slx_consensus.Consensus_type.response) -> true)
           (Freedom.make ~l:1 ~k:2))
      ~max_steps:600
  in
  check_int "two verdicts" 2 (List.length verdicts);
  check_bool "all safe" true
    (List.for_all (fun v -> v.Exclusion.safety_holds) verdicts);
  check_bool "lockstep wins, random does not" true
    (Exclusion.adversary_wins (List.nth verdicts 0)
    && not (Exclusion.adversary_wins (List.nth verdicts 1)))

(* ------------------------------------------------------------------ *)
(* Gmax machinery with the paper's F1/F2.                              *)

let test_gmax_consensus_corollary () =
  let f1 =
    Gmax.make ~name:"F1" (Slx_consensus.Consensus_adversary_sets.f1 ~v:0 ~v':1)
  in
  let f2 =
    Gmax.make ~name:"F2" (Slx_consensus.Consensus_adversary_sets.f2 ~v:0 ~v':1)
  in
  let equal = Slx_consensus.Consensus_adversary_sets.equal_history in
  check_bool "F1 subset of S" true
    (Gmax.subset_of_safety Slx_consensus.Consensus_safety.property f1);
  check_bool "F2 subset of S" true
    (Gmax.subset_of_safety Slx_consensus.Consensus_safety.property f2);
  (* Condition 2: every member leaves a correct invoking process
     undecided — the finite witness of violating wait-freedom. *)
  let violates_wait_freedom h =
    Proc.Set.exists
      (fun p ->
        History.is_correct h p
        && History.invocations_of h p <> []
        && History.responses_of h p = [])
      (History.procs h)
  in
  check_bool "F1 avoids Lmax" true
    (Gmax.avoids_liveness ~violates:violates_wait_freedom f1);
  check_bool "disjoint" true (Gmax.disjoint ~equal f1 f2);
  check_bool "intersection empty" true (Gmax.intersect_all ~equal [ f1; f2 ] = []);
  check_bool "self-intersection full" true
    (List.length (Gmax.intersect ~equal f1 f1) = 6);
  Alcotest.check_raises "empty adversary set rejected"
    (Invalid_argument "Gmax.make: an adversary set is non-empty") (fun () ->
      ignore (Gmax.make ~name:"empty" ([] : int list)))

(* ------------------------------------------------------------------ *)
(* Theorem 4.4 micro-universes.                                        *)

let test_theorem_4_4_traps () =
  let t0 = Theorem_4_4.traps ~n:1 ~quotas:[ 0 ] in
  check_int "never-respond has one trap" 1 (List.length t0);
  check_int "trap is [ping]" 1 (History.length (List.hd t0));
  let t1 = Theorem_4_4.traps ~n:1 ~quotas:[ 1 ] in
  check_int "respond-once has one trap" 1 (List.length t1);
  check_int "trap is ping.ack.ping" 3 (History.length (List.hd t1));
  let t00 = Theorem_4_4.traps ~n:2 ~quotas:[ 0; 0 ] in
  check_int "two-process never-respond: both interleavings" 2
    (List.length t00);
  let t10 = Theorem_4_4.traps ~n:2 ~quotas:[ 1; 0 ] in
  check_int "respond p1 once: four interleavings" 4 (List.length t10)

let test_theorem_4_4_positive () =
  let inst = Theorem_4_4.positive () in
  let g = Theorem_4_4.gmax inst in
  check_int "Gmax has both traps" 2 (List.length g);
  check_bool "Gmax is an adversary set" true
    (Theorem_4_4.gmax_is_adversary_set inst);
  check_bool "weakest excluding liveness exists" true
    (Theorem_4_4.weakest_excluding_exists inst);
  check_bool "matches brute-force enumeration" true
    (Theorem_4_4.verify_by_enumeration inst)

let test_theorem_4_4_negative () =
  let inst = Theorem_4_4.negative () in
  check_bool "Gmax is empty" true (Theorem_4_4.gmax inst = []);
  check_bool "Gmax is not an adversary set" false
    (Theorem_4_4.gmax_is_adversary_set inst);
  check_bool "no weakest excluding liveness" false
    (Theorem_4_4.weakest_excluding_exists inst);
  check_bool "matches brute-force enumeration" true
    (Theorem_4_4.verify_by_enumeration inst)


(* The Gmax characterization validated on randomly generated
   micro-universes: the singleton-trap formula must agree with brute
   force over every covering subset, whatever the instance. *)
let prop_gmax_characterization =
  QCheck2.Test.make ~name:"Gmax characterization matches brute force"
    ~count:40
    QCheck2.Gen.(
      let* n = int_range 1 2 in
      let* count = int_range 1 3 in
      let* quota_sets =
        list_size (return count)
          (list_size (return n) (int_range 0 (if n = 1 then 2 else 1)))
      in
      return (n, List.sort_uniq compare quota_sets))
    (fun (n, quota_sets) ->
      let inst = Theorem_4_4.instance_of ~n ~quota_sets in
      (* Keep the brute force feasible; oversized instances pass
         vacuously. *)
      List.length inst.Theorem_4_4.universe > 14
      || Theorem_4_4.verify_by_enumeration inst)

(* ------------------------------------------------------------------ *)
(* Theorem 4.9 constructions.                                          *)

let test_theorem_4_9 () =
  let r = Theorem_4_9.run ~depth:5 in
  check_bool "both It and Ib ensure S" true r.Theorem_4_9.both_ensure_s;
  check_bool "h = ping separates fair(It) from fair(Ib)" true
    r.Theorem_4_9.h_separates;
  check_bool "h' = ping.ack.ping separates fair(Ib) from fair(It)" true
    r.Theorem_4_9.h'_separates;
  check_bool "both outside Lmax" true r.Theorem_4_9.h_outside_lmax;
  check_bool "Lt and Lb incomparable" true r.Theorem_4_9.incomparable;
  check_bool "all checks pass" true (Theorem_4_9.holds r)

let test_theorem_4_9_depth_stability () =
  (* The verdicts must not depend on the exploration depth once the
     separating histories fit. *)
  List.iter
    (fun depth ->
      check_bool
        (Printf.sprintf "holds at depth %d" depth)
        true
        (Theorem_4_9.holds (Theorem_4_9.run ~depth)))
    [ 4; 5; 6; 7 ]

let test_lemma_4_8 () =
  check_bool "Lemma 4.8 on the bounded universe (depth 5)" true
    (Theorem_4_9.lemma_4_8 ~depth:5);
  check_bool "Lemma 4.8 at depth 7" true (Theorem_4_9.lemma_4_8 ~depth:7)

let test_theorem_4_9_automata_structure () =
  let it = Theorem_4_9.it () and ib = Theorem_4_9.ib () in
  let open Slx_automata in
  check_bool "It never outputs" true
    (List.for_all
       (fun tr -> not (List.exists (fun a -> a = "ack_1") tr))
       (Automaton.traces it ~depth:5));
  check_bool "Ib outputs at most once" true
    (List.for_all
       (fun tr ->
         List.length (List.filter (fun a -> a = "ack_1") tr) <= 1)
       (Automaton.traces ib ~depth:6));
  (* Composition smoke test: It composed with a compatible environment
     automaton. *)
  let env =
    Automaton.make ~name:"env" ~inputs:[] ~outputs:[ "ping_1" ] ~internals:[]
      ~init:[ State.leaf "e0" ]
      ~delta:(fun s ->
        if State.equal s (State.leaf "e0") then
          [ ("ping_1", State.leaf "e1") ]
        else [])
  in
  check_bool "compatible" true (Automaton.compatible it env);
  let comp = Automaton.compose it env in
  check_bool "ping hidden in composition" true
    (Action.Set.mem "ping_1" (Automaton.internals comp));
  check_bool "composition reaches pending" true
    (Slx_automata.State.Set.exists
       (fun s ->
         match s with
         | State.Pair (a, _) -> State.equal a (State.leaf "pending")
         | State.Leaf _ -> false)
       (Automaton.reachable comp ~depth:3))

(* ------------------------------------------------------------------ *)
(* Figure 1 grids.                                                     *)

let cells_by_color grid color =
  List.filter_map
    (fun (p, c) -> if c = color then Some p else None)
    grid.Figure1.cells

let test_figure_1a_consensus () =
  let grid = Figure1.consensus ~n:3 ~max_steps:900 ~seeds:[ 1; 2 ] () in
  check_bool "no unknowns" true (cells_by_color grid Figure1.Unknown = []);
  check_bool "(1,1) white" true
    (Figure1.color_at grid ~l:1 ~k:1 = Some Figure1.Not_excluded);
  check_bool "(1,2) black" true
    (Figure1.color_at grid ~l:1 ~k:2 = Some Figure1.Excluded);
  check_bool "every k >= 2 point black" true
    (List.for_all
       (fun (p, c) -> Freedom.k p < 2 || c = Figure1.Excluded)
       grid.Figure1.cells);
  (* Theorem 5.2 conclusions. *)
  check_bool "strongest implementable is (1,1)" true
    (Freedom.unique (Figure1.strongest_not_excluded grid)
    = Some Freedom.obstruction_freedom);
  check_bool "weakest non-implementable is (1,2)" true
    (Freedom.unique (Figure1.weakest_excluded grid)
    = Some (Freedom.make ~l:1 ~k:2))

let test_figure_1b_tm () =
  let grid = Figure1.tm ~n:3 ~max_steps:900 ~seeds:[ 1; 2 ] () in
  check_bool "no unknowns" true (cells_by_color grid Figure1.Unknown = []);
  check_bool "bottom row white" true
    (List.for_all
       (fun k -> Figure1.color_at grid ~l:1 ~k = Some Figure1.Not_excluded)
       [ 1; 2; 3 ]);
  check_bool "l >= 2 black" true
    (List.for_all
       (fun (p, c) -> Freedom.l p < 2 || c = Figure1.Excluded)
       grid.Figure1.cells);
  (* Theorem 5.3 conclusions. *)
  check_bool "strongest implementable is (1,n)" true
    (Freedom.unique (Figure1.strongest_not_excluded grid)
    = Some (Freedom.lock_freedom ~n:3));
  check_bool "weakest non-implementable is (2,2)" true
    (Freedom.unique (Figure1.weakest_excluded grid)
    = Some (Freedom.make ~l:2 ~k:2))

let test_s_prime_grid () =
  let grid = Figure1.s_prime ~n:3 ~max_steps:900 ~seeds:[ 1; 2 ] () in
  check_bool "no unknowns" true (cells_by_color grid Figure1.Unknown = []);
  check_bool "(1,1) and (1,2) white" true
    (Figure1.color_at grid ~l:1 ~k:1 = Some Figure1.Not_excluded
    && Figure1.color_at grid ~l:1 ~k:2 = Some Figure1.Not_excluded);
  check_bool "(1,3) black" true
    (Figure1.color_at grid ~l:1 ~k:3 = Some Figure1.Excluded);
  check_bool "(2,2) black" true
    (Figure1.color_at grid ~l:2 ~k:2 = Some Figure1.Excluded);
  (* The Section 5.3 punchline: TWO incomparable minimal excluders. *)
  let weakest = Figure1.weakest_excluded grid in
  check_int "two minimal black points" 2 (List.length weakest);
  check_bool "no unique weakest excluding (l,k)-freedom" true
    (Freedom.unique weakest = None);
  check_bool "they are (2,2) and (1,3)" true
    (List.exists (Freedom.equal (Freedom.make ~l:2 ~k:2)) weakest
    && List.exists (Freedom.equal (Freedom.make ~l:1 ~k:3)) weakest);
  check_bool "strongest implementable is (1,2)" true
    (Freedom.unique (Figure1.strongest_not_excluded grid)
    = Some (Freedom.make ~l:1 ~k:2))

let test_grids_stable_at_n4 () =
  (* The theorem shapes are independent of the system size: re-run the
     classification at n = 4 (10 grid points). *)
  let ca = Figure1.consensus ~n:4 ~max_steps:1200 ~seeds:[ 1; 2 ] () in
  check_bool "consensus n=4: white only at (1,1)" true
    (List.for_all
       (fun (p, c) ->
         if Freedom.equal p Freedom.obstruction_freedom then
           c = Figure1.Not_excluded
         else c = Figure1.Excluded)
       ca.Figure1.cells);
  let tm = Figure1.tm ~n:4 ~max_steps:1200 ~seeds:[ 1; 2 ] () in
  check_bool "tm n=4: white exactly on the l=1 row" true
    (List.for_all
       (fun (p, c) ->
         if Freedom.l p = 1 then c = Figure1.Not_excluded
         else c = Figure1.Excluded)
       tm.Figure1.cells);
  check_bool "tm n=4 strongest is (1,4)" true
    (Freedom.unique (Figure1.strongest_not_excluded tm)
    = Some (Freedom.lock_freedom ~n:4))

let test_mutex_grid_all_white () =
  let grid = Figure1.mutex ~n:3 ~max_steps:1200 ~seeds:[ 1; 2 ] () in
  check_bool "every point white: no trade-off for mutual exclusion" true
    (List.for_all (fun (_, c) -> c = Figure1.Not_excluded) grid.Figure1.cells);
  check_bool "strongest not excluding is Lmax = (n,n)" true
    (Freedom.unique (Figure1.strongest_not_excluded grid)
    = Some (Freedom.wait_freedom ~n:3));
  check_bool "nothing excluded" true (Figure1.weakest_excluded grid = [])

let test_render () =
  let grid = Figure1.consensus ~n:2 ~max_steps:600 ~seeds:[ 1 ] () in
  let s = Figure1.render grid in
  check_bool "render mentions the name" true
    (String.length s > 0
    && String.sub s 0 6 = "Figure");
  check_bool "render has a white and a black mark" true
    (String.contains s 'o' && String.contains s '#')


(* ------------------------------------------------------------------ *)
(* Exhaustive bounded exploration.                                     *)

let one_proposal =
  Explore.workload_invoke
    (Slx_sim.Driver.n_times 1 (fun p _ ->
         Slx_consensus.Consensus_type.Propose (p - 1)))

let test_explore_cas_consensus_all_schedules () =
  match
    Explore.forall_schedules ~n:2
      ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
      ~invoke:one_proposal ~depth:10
      ~check:(fun r ->
        Slx_consensus.Consensus_safety.check r.Slx_sim.Run_report.history)
      ()
  with
  | Explore.Ok runs ->
      check_int "all 20 interleavings of two 3-step ops" 20 runs
  | Explore.Counterexample _ ->
      Alcotest.fail "CAS consensus must be safe on every schedule"

let test_explore_register_consensus_all_schedules () =
  match
    Explore.forall_schedules ~n:2
      ~factory:(fun () -> Slx_consensus.Register_consensus.factory ())
      ~invoke:one_proposal ~depth:9
      ~check:(fun r ->
        Slx_consensus.Consensus_safety.check r.Slx_sim.Run_report.history)
      ()
  with
  | Explore.Ok runs -> check_bool "explored schedules" true (runs > 20)
  | Explore.Counterexample _ ->
      Alcotest.fail "register consensus must be safe on every schedule"

let test_explore_finds_selfish_counterexample () =
  match
    Explore.forall_schedules ~n:2
      ~factory:(fun () -> Slx_consensus.Selfish_consensus.factory ())
      ~invoke:one_proposal ~depth:6
      ~check:(fun r ->
        Slx_consensus.Consensus_safety.check r.Slx_sim.Run_report.history)
      ()
  with
  | Explore.Ok _ -> Alcotest.fail "selfish consensus must disagree somewhere"
  | Explore.Counterexample r ->
      check_bool "counterexample really violates safety" false
        (Slx_consensus.Consensus_safety.check r.Slx_sim.Run_report.history)

let explore_selfish ?cache ?cache_capacity ?por ?symmetry ?domains engine =
  let check r =
    Slx_consensus.Consensus_safety.check r.Slx_sim.Run_report.history
  in
  let factory () = Slx_consensus.Selfish_consensus.factory () in
  match engine with
  | `Naive ->
      Explore.explore_naive ~n:2 ~factory ~invoke:one_proposal ~depth:6 ~check
        ()
  | `Incremental ->
      Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:6 ?cache
        ?cache_capacity ?por ?symmetry ?domains ~check ()

let selfish_witness =
  (* The lexicographically least failing script: in the canonical menu
     order process 1's invocation comes first, then process 2's, and the
     selfish implementation decides its own value already during the
     invocation — two decisions, two different values. *)
  [
    Slx_sim.Driver.Invoke (1, Slx_consensus.Consensus_type.Propose 0);
    Slx_sim.Driver.Invoke (2, Slx_consensus.Consensus_type.Propose 1);
  ]

let decision_testable =
  Alcotest.testable
    (fun fmt d ->
      match d with
      | Slx_sim.Driver.Schedule p -> Format.fprintf fmt "S%d" p
      | Slx_sim.Driver.Invoke (p, Slx_consensus.Consensus_type.Propose v) ->
          Format.fprintf fmt "I%d(%d)" p v
      | Slx_sim.Driver.Crash p -> Format.fprintf fmt "C%d" p
      | Slx_sim.Driver.Stop -> Format.fprintf fmt "stop")
    ( = )

let test_explore_witness_is_deterministic () =
  (* Satellite (c): every engine configuration — naive, incremental,
     cache off, several domains — reports the same counterexample, the
     one with the lexicographically least decision script. *)
  let configs =
    [
      ("naive", explore_selfish `Naive);
      ("incremental", explore_selfish `Incremental);
      ("no-cache", explore_selfish ~cache:false `Incremental);
      ("bounded-cache", explore_selfish ~cache_capacity:4 `Incremental);
      ("por", explore_selfish ~por:true `Incremental);
      ("symmetry", explore_selfish ~symmetry:true `Incremental);
      ("por+symmetry", explore_selfish ~por:true ~symmetry:true `Incremental);
      ("domains-3", explore_selfish ~domains:3 `Incremental);
      ("domains-8", explore_selfish ~domains:8 `Incremental);
      ( "por+symmetry domains-3",
        explore_selfish ~por:true ~symmetry:true ~domains:3 `Incremental );
    ]
  in
  List.iter
    (fun (name, e) ->
      match (e.Explore.outcome, e.Explore.witness_script) with
      | Explore.Counterexample _, Some script ->
          Alcotest.(check (list decision_testable))
            (name ^ " pins the least witness script") selfish_witness script
      | Explore.Counterexample _, None ->
          Alcotest.fail (name ^ ": counterexample without witness script")
      | Explore.Ok _, _ -> Alcotest.fail (name ^ ": missed the violation"))
    configs

let test_explore_stats_sanity () =
  let check r =
    Slx_consensus.Consensus_safety.check r.Slx_sim.Run_report.history
  in
  let factory () = Slx_consensus.Cas_consensus.factory () in
  let inc =
    Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:10 ~check ()
  in
  let naive =
    Explore.explore_naive ~n:2 ~factory ~invoke:one_proposal ~depth:10 ~check
      ()
  in
  let s = inc.Explore.stats and ns = naive.Explore.stats in
  check_int "both engines count the same maximal runs" ns.Explore_stats.runs
    s.Explore_stats.runs;
  check_bool "same multiset of final histories" true
    (s.Explore_stats.history_digest = ns.Explore_stats.history_digest);
  check_bool "cache prunes something" true (s.Explore_stats.cache_hits > 0);
  check_bool "in-place extension avoids replays" true
    (s.Explore_stats.replays_avoided > 0);
  check_bool "incremental executes fewer steps" true
    (s.Explore_stats.steps_executed < ns.Explore_stats.steps_executed);
  check_bool "check ran on fewer runs than were credited" true
    (s.Explore_stats.runs_checked <= s.Explore_stats.runs);
  check_int "naive replays at every node" ns.Explore_stats.steps_executed
    ns.Explore_stats.steps_replayed

let test_explore_reduction_stats () =
  (* The reductions and the bounded cache must each leave their trace
     in the stats — and none of them may change the verdict. *)
  let check r =
    Slx_consensus.Consensus_safety.check r.Slx_sim.Run_report.history
  in
  let factory () = Slx_consensus.Register_consensus.factory () in
  let explore ?cache_capacity ?(por = false) ?(symmetry = false) () =
    Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:10
      ?cache_capacity ~por ~symmetry ~check ()
  in
  let plain = explore () in
  let reduced = explore ~por:true ~symmetry:true () in
  let bounded = explore ~cache_capacity:8 () in
  let safe e =
    match e.Explore.outcome with
    | Explore.Ok _ -> true
    | Explore.Counterexample _ -> false
  in
  check_bool "register consensus safe under reductions" true
    (safe plain && safe reduced && safe bounded);
  let s = reduced.Explore.stats in
  check_bool "POR put processes to sleep" true (s.Explore_stats.por_prunes > 0);
  check_bool "symmetry pruned untouched-process decisions" true
    (s.Explore_stats.symmetry_pruned > 0);
  check_bool "reductions cut executed steps" true
    (s.Explore_stats.steps_executed
    < plain.Explore.stats.Explore_stats.steps_executed);
  check_bool "reductions explore fewer representatives" true
    (s.Explore_stats.runs < plain.Explore.stats.Explore_stats.runs);
  check_bool "plain engine sleeps and prunes nothing" true
    (plain.Explore.stats.Explore_stats.por_prunes = 0
    && plain.Explore.stats.Explore_stats.symmetry_pruned = 0);
  let b = bounded.Explore.stats in
  check_bool "tiny cache evicts" true (b.Explore_stats.cache_evictions > 0);
  check_bool "bounded cache stays within capacity" true
    (b.Explore_stats.cache_entries <= 8);
  check_int "bounded cache agrees on the run count"
    plain.Explore.stats.Explore_stats.runs b.Explore_stats.runs;
  check_bool "bounded cache agrees on the run set" true
    (b.Explore_stats.history_digest
    = plain.Explore.stats.Explore_stats.history_digest)

let test_explore_parallel_matches_sequential () =
  let check r =
    Slx_consensus.Consensus_safety.check r.Slx_sim.Run_report.history
  in
  let factory () = Slx_consensus.Cas_consensus.factory () in
  let seq =
    Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:10 ~check ()
  in
  let par =
    Explore.explore ~n:2 ~factory ~invoke:one_proposal ~depth:10 ~domains:3
      ~check ()
  in
  (match (seq.Explore.outcome, par.Explore.outcome) with
  | Explore.Ok a, Explore.Ok b -> check_int "same run count" a b
  | _ -> Alcotest.fail "CAS consensus must be safe in both engines");
  check_bool "same history digest" true
    (seq.Explore.stats.Explore_stats.history_digest
    = par.Explore.stats.Explore_stats.history_digest);
  check_bool "fanned out" true (par.Explore.stats.Explore_stats.domains_used > 1);
  let sum rows = List.fold_left ( + ) 0 (Explore_stats.values rows) in
  check_int "per-domain runs sum to the total"
    par.Explore.stats.Explore_stats.runs
    (sum par.Explore.stats.Explore_stats.per_domain_runs);
  check_int "per-domain steps sum to the total"
    par.Explore.stats.Explore_stats.steps_executed
    (sum par.Explore.stats.Explore_stats.per_domain_steps);
  check_int "one per-domain entry per domain"
    par.Explore.stats.Explore_stats.domains_used
    (List.length par.Explore.stats.Explore_stats.per_domain_steps);
  check_int "per-domain rows are index-tagged in spawn order" 0
    (fst (List.hd par.Explore.stats.Explore_stats.per_domain_steps));
  check_bool "exploration measured its own wall clock" true
    (par.Explore.stats.Explore_stats.elapsed_ns >= 0
    && seq.Explore.stats.Explore_stats.elapsed_ns >= 0);
  check_int "no telemetry, no drops" 0
    (par.Explore.stats.Explore_stats.events_dropped)

let test_stats_merge_out_of_order () =
  (* The per-domain rows are keyed by spawn index, so merging partial
     stats in any arrival order must yield the same spawn-ordered
     report — the bug this guards against is a join that concatenates
     lists positionally and silently misattributes domains. *)
  let partial index runs steps =
    {
      Explore_stats.zero with
      Explore_stats.runs;
      steps_executed = steps;
      domains_used = 3;
      elapsed_ns = 10;
      events_dropped = index;
      hb_edges = runs;
      commutation_checks = steps;
      footprint_violations = index;
      per_domain_runs = [ (index, runs) ];
      per_domain_steps = [ (index, steps) ];
    }
  in
  let d0 = partial 0 5 50 and d1 = partial 1 7 70 and d2 = partial 2 3 30 in
  let forward =
    Explore_stats.merge (Explore_stats.merge d0 d1) d2
  in
  let scrambled =
    Explore_stats.merge d2 (Explore_stats.merge d1 d0)
  in
  let pairs =
    Alcotest.(check (list (pair int int)))
  in
  pairs "runs rows land in spawn order regardless of merge order"
    [ (0, 5); (1, 7); (2, 3) ]
    scrambled.Explore_stats.per_domain_runs;
  pairs "steps rows land in spawn order regardless of merge order"
    forward.Explore_stats.per_domain_steps
    scrambled.Explore_stats.per_domain_steps;
  check_int "scalar counters merge pointwise" 15 scrambled.Explore_stats.runs;
  check_int "elapsed sums" 30 scrambled.Explore_stats.elapsed_ns;
  check_int "drops sum" 3 scrambled.Explore_stats.events_dropped;
  check_int "hb edges sum" 15 scrambled.Explore_stats.hb_edges;
  check_int "commutation checks sum" 150
    scrambled.Explore_stats.commutation_checks;
  check_int "footprint violations sum" 3
    scrambled.Explore_stats.footprint_violations;
  Alcotest.(check (list int))
    "values strips the indices in spawn order" [ 50; 70; 30 ]
    (Explore_stats.values scrambled.Explore_stats.per_domain_steps)

(* One start-tryC transaction per process, derived from the history. *)
let one_txn view p =
  let h = History.project view.Slx_sim.Driver.history p in
  let started =
    History.count
      (fun e -> Event.invocation e = Some Slx_tm.Tm_type.Start)
      h
    > 0
  in
  let tried =
    History.count
      (fun e -> Event.invocation e = Some Slx_tm.Tm_type.Try_commit)
      h
    > 0
  in
  if not started then Some Slx_tm.Tm_type.Start
  else if not tried then Some Slx_tm.Tm_type.Try_commit
  else None

let test_explore_agp_opacity_all_schedules () =
  match
    Explore.forall_schedules ~n:2
      ~factory:(fun () -> Slx_tm.Agp_tm.factory ~vars:1)
      ~invoke:one_txn ~depth:10
      ~check:(fun r ->
        Slx_tm.Opacity.check_final r.Slx_sim.Run_report.history)
      ()
  with
  | Explore.Ok runs -> check_bool "explored schedules" true (runs > 20)
  | Explore.Counterexample _ ->
      Alcotest.fail "AGP must be opaque on every schedule"

let test_explore_with_crashes () =
  match
    Explore.forall_schedules ~n:2
      ~factory:(fun () -> Slx_consensus.Cas_consensus.factory ())
      ~invoke:one_proposal ~depth:7 ~max_crashes:1
      ~check:(fun r ->
        Slx_consensus.Consensus_safety.check r.Slx_sim.Run_report.history)
      ()
  with
  | Explore.Ok runs ->
      check_bool "crash branches multiply the schedules" true (runs > 20)
  | Explore.Counterexample _ ->
      Alcotest.fail "CAS consensus must survive single crashes too"

(* ------------------------------------------------------------------ *)
(* The clock (second-chance) cache store.                              *)

let test_clock_cache_capacity_zero () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Clock_cache.create: capacity < 1") (fun () ->
      ignore (Clock_cache.create ~capacity:0 ()));
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Clock_cache.create: capacity < 1") (fun () ->
      ignore (Clock_cache.create ~capacity:(-3) ()))

let test_clock_cache_capacity_one () =
  let c = Clock_cache.create ~capacity:1 () in
  Clock_cache.replace c "a" 1;
  check_int "one entry" 1 (Clock_cache.length c);
  check_bool "a present" true (Clock_cache.find_opt c "a" = Some 1);
  (* Even a referenced sole entry is evicted: the sweep clears its bit
     on the first pass and takes it on the second. *)
  Clock_cache.replace c "b" 2;
  check_int "still one entry" 1 (Clock_cache.length c);
  check_bool "a evicted" true (Clock_cache.find_opt c "a" = None);
  check_bool "b present" true (Clock_cache.find_opt c "b" = Some 2);
  check_int "one eviction" 1 (Clock_cache.evictions c);
  (* Updating the resident key is not an eviction. *)
  Clock_cache.replace c "b" 3;
  check_bool "b updated in place" true (Clock_cache.find_opt c "b" = Some 3);
  check_int "no further eviction" 1 (Clock_cache.evictions c)

let test_clock_cache_second_chance_order () =
  let c = Clock_cache.create ~capacity:3 () in
  Clock_cache.replace c "a" 1;
  Clock_cache.replace c "b" 2;
  Clock_cache.replace c "c" 3;
  (* Reference a: the hand (at slot 0) must clear a's bit, pass it
     over, and evict b — the first unreferenced entry in ring order. *)
  ignore (Clock_cache.find_opt c "a");
  Clock_cache.replace c "d" 4;
  check_bool "b evicted first" true (Clock_cache.find_opt c "b" = None);
  check_bool "a survived its second chance" true
    (Clock_cache.find_opt c "a" = Some 1);
  check_bool "c retained" true (Clock_cache.find_opt c "c" = Some 3);
  check_bool "d inserted" true (Clock_cache.find_opt c "d" = Some 4);
  (* The hand now stands past b's old slot; c's bit was just set by the
     lookup above, a's and d's too — all referenced, so the next
     insertion sweeps a full circle clearing bits and evicts the first
     entry it re-reaches: c (slot 2, where the hand stopped). *)
  Clock_cache.replace c "e" 5;
  check_bool "c evicted on the full sweep" true
    (Clock_cache.find_opt c "c" = None);
  check_bool "a still present" true (Clock_cache.find_opt c "a" = Some 1);
  check_int "two evictions total" 2 (Clock_cache.evictions c)

let test_clock_cache_eviction_counter () =
  let c = Clock_cache.create ~capacity:2 () in
  for i = 1 to 10 do
    Clock_cache.replace c i i
  done;
  check_int "over-capacity insertions each evict" 8 (Clock_cache.evictions c);
  check_int "length stays at capacity" 2 (Clock_cache.length c);
  let unbounded = Clock_cache.create () in
  for i = 1 to 100 do
    Clock_cache.replace unbounded i i
  done;
  check_int "unbounded cache never evicts" 0 (Clock_cache.evictions unbounded);
  check_int "unbounded cache keeps everything" 100
    (Clock_cache.length unbounded)

let suites =
  [
    ( "core-exclusion",
      [
        quick "adversary wins" test_exclusion_game_adversary_wins;
        quick "implementation survives" test_exclusion_game_implementation_survives;
        quick "sweep" test_exclusion_sweep;
      ] );
    ( "core-gmax",
      [ quick "consensus corollary sets" test_gmax_consensus_corollary ] );
    ( "core-theorem-4.4",
      [
        quick "trap enumeration" test_theorem_4_4_traps;
        quick "positive universe" test_theorem_4_4_positive;
        quick "negative universe" test_theorem_4_4_negative;
      ]
      @ qcheck [ prop_gmax_characterization ] );
    ( "core-theorem-4.9",
      [
        quick "proof checks" test_theorem_4_9;
        quick "Lemma 4.8 bounded check" test_lemma_4_8;
        quick "depth stability" test_theorem_4_9_depth_stability;
        quick "automata structure" test_theorem_4_9_automata_structure;
      ] );
    ( "core-explore",
      [
        quick "CAS consensus: all schedules safe" test_explore_cas_consensus_all_schedules;
        quick "register consensus: all schedules safe"
          test_explore_register_consensus_all_schedules;
        quick "selfish foil: counterexample found" test_explore_finds_selfish_counterexample;
        quick "AGP: all schedules opaque" test_explore_agp_opacity_all_schedules;
        quick "crash branching" test_explore_with_crashes;
        quick "deterministic least witness" test_explore_witness_is_deterministic;
        quick "stats sanity" test_explore_stats_sanity;
        quick "reduction + eviction stats" test_explore_reduction_stats;
        quick "parallel matches sequential" test_explore_parallel_matches_sequential;
        quick "stats merge out of order" test_stats_merge_out_of_order;
      ] );
    ( "core-clock-cache",
      [
        quick "capacity 0 rejected" test_clock_cache_capacity_zero;
        quick "capacity 1" test_clock_cache_capacity_one;
        quick "second-chance eviction order" test_clock_cache_second_chance_order;
        quick "eviction counter" test_clock_cache_eviction_counter;
      ] );
    ( "core-figure1",
      [
        quick "Figure 1a (consensus)" test_figure_1a_consensus;
        quick "Figure 1b (TM)" test_figure_1b_tm;
        quick "Section 5.3 grid (S')" test_s_prime_grid;
        quick "grids stable at n=4" test_grids_stable_at_n4;
        quick "mutex grid all white" test_mutex_grid_all_white;
        quick "render" test_render;
      ] );
  ]
